//! `fsmc` — command-line front end to the library.
//!
//! ```text
//! fsmc solve                         solver table for all anchors/partitions
//! fsmc certify                       certify every FS pipeline
//! fsmc diagram [--mix RRRWWRRR]      render the Figure-1 pipeline
//! fsmc simulate [--scheduler K] [--workload NAME] [--cycles N]
//!               [--cores N] [--seed S]
//! fsmc suite    [--schedulers K,K,..] [--cycles N] [--seed S] [--metrics]
//! fsmc attack [--scheduler K]        non-interference measurement
//! fsmc trace  [--scheduler K] [--out FILE]   Chrome-trace timeline export
//! fsmc record --workload NAME --ops N --out FILE
//! ```

use fsmc::bench::throughput::{SnapshotScenario, ThroughputSnapshot};
use fsmc::bench::{metrics_csv, weighted_ipc_suite_metrics, weighted_ipc_suite_with};
use fsmc::core::sched::SchedulerKind;
use fsmc::core::solver::diagram::render_uniform;
use fsmc::core::solver::{
    certify_reordered, certify_uniform, solve, solve_best, solve_for_threads, Anchor,
    PartitionLevel, ReorderedBpSchedule, SlotSchedule,
};
use fsmc::cpu::trace_file::record_trace;
use fsmc::dram::DeviceGeneration;
use fsmc::leak::{
    measure_cell, run_leak_campaign, run_leak_case, shrink_leak, LeakCampaignConfig, Protocol,
};
use fsmc::obs::ChromeTraceBuilder;
use fsmc::security::noninterference::check_noninterference_on;
use fsmc::security::run_covert_channel_on;
use fsmc::serve::pool::HANG_ENV;
use fsmc::serve::{serve, ChaosSpec, Client, ServeOptions};
use fsmc::sim::{
    run_campaign, run_single, CampaignConfig, Engine, ExperimentJob, ExperimentPlan, FaultPlan,
    JobSpec, System, SystemConfig,
};
use fsmc::workload::{BenchProfile, SyntheticTrace, WorkloadMix};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "solve" => cmd_solve(&opts),
        "certify" => cmd_certify(&opts),
        "diagram" => cmd_diagram(&opts),
        "simulate" => cmd_simulate(&opts),
        "suite" => cmd_suite(&opts),
        "attack" => cmd_attack(&opts),
        "leak" => cmd_leak(&opts),
        "trace" => cmd_trace(&opts),
        "chaos" => cmd_chaos(&opts),
        "bench-throughput" => cmd_bench_throughput(&opts),
        "record" => cmd_record(&opts),
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "status" => cmd_status(&opts),
        // Hidden: the worker-process entry point `fsmc serve` spawns.
        // Reads one spec line from stdin; exits 0 with the result
        // payload on stdout, 3 with the rendered typed error.
        "job-exec" => return cmd_job_exec(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
fsmc — Fixed-Service memory controllers (MICRO'15 reproduction)

USAGE (every command also takes --device GEN):
  fsmc solve                          minimum-pitch table (Sec. 3.1/4.2/4.3)
  fsmc certify                        certify every FS pipeline conflict-free
  fsmc diagram [--mix RRRRRWWR]       render the pipeline timing diagram
  fsmc simulate [--scheduler KIND] [--workload NAME] [--cycles N]
                [--cores N] [--seed S]
  fsmc suite [--schedulers K,K,..] [--cycles N] [--seed S] [--metrics]
                                      weighted-IPC table over the 12-mix suite;
                                      --metrics appends per-domain latency
                                      histogram columns as CSV
  fsmc attack [--scheduler KIND]      measure co-runner interference
  fsmc leak [--scheduler KIND] [--protocol P] [--window N] [--windows N]
                                      covert-channel capacity study: BER, MI
                                      and gated bits/sec per protocol (P one
                                      of intensity, bank-conflict, row-buffer,
                                      or all) on this device generation
  fsmc leak --campaign [--population N] [--seed S] [--scheduler KIND]
            [--protocol P]            leak-hunting chaos campaign: injects
                                      faults (incl. the shared-arbiter
                                      misconfiguration), watches the online
                                      estimator, shrinks each leak-detected
                                      case to a 1-minimal repro
  fsmc leak --faults 'SPEC' [--fault-seed S] [--scheduler KIND] [--protocol P]
                                      reproduce one leak case from its spec
  fsmc trace [--scheduler KIND] [--workload NAME] [--cycles N] [--cores N]
             [--seed S] [--out FILE] [--faults 'SPEC']
                                      export a Chrome-trace-event command
                                      timeline (Perfetto / chrome://tracing)
                                      with per-domain lanes, plus metrics;
                                      --faults takes reconfiguration events
                                      only (leave/join/stuck-bank/dead-rank/
                                      thermal-refresh) and marks adoptions
  fsmc chaos [--scheduler KIND] [--workload NAME] [--cycles N] [--cores N]
             [--population N] [--seed S] [--run-seed S] [--metrics] [--churn]
             [--fault-seed S --faults 'SPEC']
                                      fault-injection campaign with shrinking;
                                      with --faults, reproduce one case
                                      (FSMC_NO_FASTPATH applies identically
                                      to repro and campaign modes);
                                      --churn adds persistent faults and
                                      domain join/leave to the fault pool;
                                      --metrics adds observability reports
  fsmc bench-throughput [--cycles N] [--seed S] [--out FILE]
             [--check BASELINE.json]
                                      measure simulated cycles/sec with and
                                      without the event-driven fast path;
                                      with --check, fail on a >20% regression
                                      versus a recorded snapshot
  fsmc record --workload NAME --ops N --out FILE   export a USIMM trace
  fsmc serve [--socket PATH] [--workers N] [--timeout MS] [--max-attempts K]
             [--queue N]
                                      run the crash-tolerant experiment
                                      service: a worker-process pool with
                                      retry/backoff and a content-addressed
                                      result cache; suite/chaos and the
                                      figure binaries submit to it whenever
                                      FSMC_SERVE names its socket
  fsmc submit [--workload NAME] [--scheduler KIND] [--cycles N] [--cores N]
              [--seed S] [--priority P] [--spec 'LINE'] [--socket PATH]
                                      run one experiment through the service
                                      and print its bit-exact result payload
  fsmc status [--socket PATH] [--stats] [--shutdown]
                                      daemon status page; --stats prints the
                                      machine-readable counters line and
                                      --shutdown stops the daemon

SCHEDULERS: baseline, baseline-prefetch, fs-rp, fs-rp-prefetch, fs-bp,
            fs-reordered-bp, fs-np, fs-ta, tp-bp, tp-np, tp-fence,
            channel-part
DEVICES:    ddr3-1600 (default), ddr4-2400, lpddr4-3200, hbm2
WORKLOADS:  mix1 mix2 CG SP astar lbm libquantum mcf milc zeusmp
            GemsFDTD xalancbmk
ENV:        FSMC_DEVICE    default device generation for fsmc and the
                           figure binaries (--device overrides it)
            FSMC_THREADS   worker threads for suite runs (default: all cores;
                           results are identical at any thread count)
            FSMC_BATCH     engine batch width: up to K jobs sharing a
                           (workload, seed, cycles) tuple replay
                           interleaved on one worker (default 1;
                           results are identical at any width)
            FSMC_CYCLES / FSMC_SEED   defaults for the figure binaries
            FSMC_RESULTS_DIR          where figure binaries write CSVs
            FSMC_NO_FASTPATH=1        force per-cycle stepping (debugging;
                                      results are bit-identical either way)
            FSMC_SERVE     experiment-service socket path; when set, suite
                           and chaos campaigns route through the daemon
            FSMC_SERVE_WORKERS        service worker processes (default:
                                      all cores)
            FSMC_JOB_TIMEOUT          per-attempt deadline in ms
                                      (default 120000)
            FSMC_CACHE_DIR result cache directory (default results/cache)";

/// Parses `--key value` pairs; a `--key` followed by another option (or
/// nothing) is a bare flag and records the value `"true"`.
fn parse_opts(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(k) = it.next() {
        let key = k.strip_prefix("--").ok_or_else(|| format!("expected --option, got {k:?}"))?;
        let v = match it.peek() {
            Some(next) if !next.starts_with("--") => it.next().expect("peeked").clone(),
            _ => String::from("true"),
        };
        out.insert(key.to_string(), v);
    }
    Ok(out)
}

/// A boolean flag: present (bare or with a truthy value) unless spelled
/// `false`/`0`/`no`/`off`.
fn get_flag(opts: &HashMap<String, String>, key: &str) -> bool {
    match opts.get(key).map(String::as_str) {
        None => false,
        Some("false") | Some("0") | Some("no") | Some("off") => false,
        Some(_) => true,
    }
}

fn scheduler_kind(name: &str) -> Result<SchedulerKind, String> {
    Ok(match name {
        "baseline" => SchedulerKind::Baseline,
        "baseline-prefetch" => SchedulerKind::BaselinePrefetch,
        "fs-rp" => SchedulerKind::FsRankPartitioned,
        "fs-rp-prefetch" => SchedulerKind::FsRankPartitionedPrefetch,
        "fs-bp" => SchedulerKind::FsBankPartitioned,
        "fs-reordered-bp" => SchedulerKind::FsReorderedBankPartitioned,
        "fs-np" => SchedulerKind::FsNoPartitionNaive,
        "fs-ta" => SchedulerKind::FsTripleAlternation,
        "tp-bp" => SchedulerKind::TpBankPartitioned { turn: 60 },
        "tp-np" => SchedulerKind::TpNoPartition { turn: 172 },
        "tp-fence" => SchedulerKind::TpFence { period: 300 },
        "channel-part" => SchedulerKind::ChannelPartitioned,
        other => return Err(format!("unknown scheduler {other:?}")),
    })
}

/// `--device` wins over `FSMC_DEVICE`; both default to DDR3-1600. An
/// unknown `--device` is a hard CLI error (the env knob only warns).
fn device_gen(opts: &HashMap<String, String>) -> Result<DeviceGeneration, String> {
    match opts.get("device") {
        None => Ok(fsmc::sim::env::device(DeviceGeneration::Ddr3_1600)),
        Some(v) => DeviceGeneration::parse(v).ok_or_else(|| {
            format!("--device: unknown device generation {v:?} (expected ddr3-1600, ddr4-2400, lpddr4-3200, hbm2)")
        }),
    }
}

fn profile(name: &str) -> Result<BenchProfile, String> {
    BenchProfile::by_name(name).ok_or_else(|| format!("unknown workload {name:?}"))
}

fn get_u64(opts: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
    }
}

fn cmd_solve(opts: &HashMap<String, String>) -> Result<(), String> {
    let p = device_gen(opts)?.profile();
    let t = p.timing;
    println!("device: {}", p.generation);
    println!("{:<8} {:<22} {:>4} {:>8} {:>10}", "part.", "anchor", "l", "Q(8thr)", "peak util");
    for level in [PartitionLevel::Rank, PartitionLevel::Bank, PartitionLevel::None] {
        for anchor in Anchor::all() {
            let s = solve(&t, anchor, level).map_err(|e| e.to_string())?;
            println!(
                "{:<8} {:<22} {:>4} {:>8} {:>9.1}%",
                format!("{level:?}"),
                format!("{anchor:?}"),
                s.l,
                s.interval_q(8),
                100.0 * s.peak_data_utilization(&t)
            );
        }
    }
    Ok(())
}

fn cmd_certify(opts: &HashMap<String, String>) -> Result<(), String> {
    let p = device_gen(opts)?.profile();
    let (t, geom) = (p.timing, p.geometry);
    println!("device: {}", p.generation);
    let mut all_ok = true;
    let mut show = |name: &str, r: &fsmc::core::solver::CertifyReport| {
        println!(
            "{name:<42} {:>7} cases  {}",
            r.cases,
            if r.certified() { "CERTIFIED" } else { "FAILED" }
        );
        all_ok &= r.certified();
    };
    let sol =
        solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank).map_err(|e| e.to_string())?;
    show(
        &format!("rank-partitioned (l={})", sol.l),
        &certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::Rank, &t, &geom, 4),
    );
    let sol = solve_for_threads(&t, Anchor::FixedPeriodicRas, PartitionLevel::Bank, 8)
        .map_err(|e| e.to_string())?;
    show(
        &format!("bank-partitioned (l={})", sol.l),
        &certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::Bank, &t, &geom, 4),
    );
    let sol = solve_for_threads(&t, Anchor::FixedPeriodicRas, PartitionLevel::None, 8)
        .map_err(|e| e.to_string())?;
    show(
        &format!("no-partitioning naive (l={})", sol.l),
        &certify_uniform(&SlotSchedule::uniform(sol, 8), PartitionLevel::None, &t, &geom, 4),
    );
    let ta = SlotSchedule::triple_alternation(&t, 8).map_err(|e| e.to_string())?;
    show("triple alternation", &certify_uniform(&ta, PartitionLevel::None, &t, &geom, 3));
    let reordered = ReorderedBpSchedule::new(&t, 8);
    show(
        &format!("reordered bank-partitioned (Q={})", reordered.q()),
        &certify_reordered(&reordered, &t, &geom, 3),
    );
    if all_ok {
        Ok(())
    } else {
        Err("certification failed".into())
    }
}

fn cmd_diagram(opts: &HashMap<String, String>) -> Result<(), String> {
    let p = device_gen(opts)?.profile();
    let t = p.timing;
    let mix_str = opts.get("mix").map(String::as_str).unwrap_or("RRRRRWWR");
    let mix: Vec<bool> = mix_str
        .chars()
        .map(|c| match c {
            'R' | 'r' => Ok(false),
            'W' | 'w' => Ok(true),
            other => Err(format!("mix must be R/W characters, got {other:?}")),
        })
        .collect::<Result<_, _>>()?;
    let sol = solve_best(&t, PartitionLevel::Rank).map_err(|e| e.to_string())?;
    let s = SlotSchedule::uniform(sol, 8);
    println!(
        "{} rank-partitioned pipeline, l = {}, Q = {}, mix = {mix_str}\n",
        p.generation,
        sol.l,
        s.q()
    );
    print!("{}", render_uniform(&s, &t, &mix, 16));
    Ok(())
}

fn cmd_simulate(opts: &HashMap<String, String>) -> Result<(), String> {
    let kind = scheduler_kind(opts.get("scheduler").map(String::as_str).unwrap_or("fs-rp"))?;
    let cycles = get_u64(opts, "cycles", 60_000)?;
    let seed = get_u64(opts, "seed", 42)?;
    let cores = get_u64(opts, "cores", 8)? as usize;
    let wl = opts.get("workload").map(String::as_str).unwrap_or("mix1");
    let mix = WorkloadMix::by_name(wl, cores).ok_or_else(|| format!("unknown workload {wl:?}"))?;
    let device = device_gen(opts)?;
    let cfg = SystemConfig::for_device(device, kind, cores as u8);
    let job = ExperimentJob::new(mix.clone(), kind, cycles, seed).with_config(cfg);
    let stats = job.run().map_err(|e| e.to_string())?.stats;
    println!("scheduler        {kind}");
    println!("device           {device}");
    println!("workload         {} x{} cores", mix.name, cores);
    println!("DRAM cycles      {cycles}");
    println!("IPC sum          {:.3}", stats.ipc_sum());
    println!("reads completed  {}", stats.reads_completed);
    println!("avg read latency {:.0} DRAM cycles", stats.avg_read_latency());
    println!("bus utilization  {:.1}%", 100.0 * stats.bus_utilization);
    println!("dummy fraction   {:.1}%", 100.0 * stats.mc.dummy_fraction());
    println!("row-hit rate     {:.1}%", 100.0 * stats.mc.row_hit_rate());
    println!("forwarded reads  {}", stats.forwarded_reads);
    println!("memory energy    {:.3} mJ", stats.energy.total_mj());
    Ok(())
}

fn cmd_suite(opts: &HashMap<String, String>) -> Result<(), String> {
    let kinds: Vec<SchedulerKind> = opts
        .get("schedulers")
        .map(String::as_str)
        .unwrap_or("fs-rp,fs-reordered-bp,tp-bp")
        .split(',')
        .map(scheduler_kind)
        .collect::<Result<_, _>>()?;
    let cycles = get_u64(opts, "cycles", 60_000)?;
    let seed = get_u64(opts, "seed", 42)?;
    let mixes = WorkloadMix::suite(8);
    let table = if get_flag(opts, "metrics") {
        let (table, rows) =
            weighted_ipc_suite_metrics(&Engine::from_env(), &mixes, &kinds, cycles, seed);
        println!("Sum of weighted IPCs vs the non-secure baseline ({cycles} DRAM cycles)\n");
        print!("{}", table.render("weighted IPC"));
        let domains = rows.first().map(|r| r.report.domains.len()).unwrap_or(0);
        println!("\nper-run metrics (CSV, histogram columns appended):");
        print!("{}", metrics_csv(&rows, domains));
        table
    } else {
        let table = weighted_ipc_suite_with(&Engine::from_env(), &mixes, &kinds, cycles, seed, &[]);
        println!("Sum of weighted IPCs vs the non-secure baseline ({cycles} DRAM cycles)\n");
        print!("{}", table.render("weighted IPC"));
        table
    };
    if table.all_failed() {
        return Err("every run in the suite failed".into());
    }
    Ok(())
}

fn cmd_attack(opts: &HashMap<String, String>) -> Result<(), String> {
    let kind = scheduler_kind(opts.get("scheduler").map(String::as_str).unwrap_or("fs-rp"))?;
    let device = device_gen(opts)?;
    let report = check_noninterference_on(device, kind, 2_000, 10);
    println!("scheduler                   {kind}");
    println!("device                      {device}");
    println!(
        "attacker with idle peers    {:>12} CPU cycles",
        report.idle_profile.boundaries.last().copied().unwrap_or(0)
    );
    println!(
        "attacker with flooding peers{:>12} CPU cycles",
        report.intensive_profile.boundaries.last().copied().unwrap_or(0)
    );
    println!("max divergence              {:>12} CPU cycles", report.max_divergence());
    println!(
        "verdict                     {}",
        if report.is_non_interfering() { "NON-INTERFERING (zero leakage)" } else { "LEAKS" }
    );
    // The active-adversary view of the same question: an intensity-keyed
    // covert channel measured on this device generation.
    let secret = vec![true, false, true, true, false, false, true, false];
    let covert = run_covert_channel_on(device, kind, &secret, 2_500, 100)
        .map_err(|e| format!("covert-channel estimate: {e}"))?;
    println!("covert-channel BER          {:>12.3}", covert.ber);
    println!("covert-channel MI           {:>12.3} bits/window", covert.mutual_information_bits);
    println!("covert-channel capacity     {:>12.0} bits/second", covert.capacity_bps);
    Ok(())
}

fn cmd_leak(opts: &HashMap<String, String>) -> Result<(), String> {
    let device = device_gen(opts)?;
    let window_cycles = get_u64(opts, "window", 2_500)?;
    let windows = get_u64(opts, "windows", 80)? as usize;
    let proto_arg = opts.get("protocol").map(String::as_str).unwrap_or("all");
    let parse_protocol = |name: &str| {
        Protocol::parse(name).ok_or_else(|| {
            format!("--protocol: unknown protocol {name:?} (expected intensity, bank-conflict, row-buffer, or all)")
        })
    };

    if get_flag(opts, "campaign") || opts.contains_key("faults") {
        let kind = scheduler_kind(opts.get("scheduler").map(String::as_str).unwrap_or("fs-rp"))?;
        let mut cfg = LeakCampaignConfig::new(get_u64(opts, "seed", 1)?);
        cfg.device = device;
        cfg.scheduler = kind;
        cfg.protocol =
            if proto_arg == "all" { Protocol::Intensity } else { parse_protocol(proto_arg)? };
        cfg.window_cycles = window_cycles;
        cfg.windows = windows;
        cfg.population = get_u64(opts, "population", 12)? as usize;
        if let Some(spec) = opts.get("faults") {
            // Repro mode: classify exactly one explicit plan.
            let plan = FaultPlan::parse_spec(get_u64(opts, "fault-seed", 0)?, spec)?;
            let (outcome, mi, samples) = run_leak_case(&cfg, &plan);
            println!("scheduler  {kind}");
            println!("device     {device}");
            println!("protocol   {}", cfg.protocol);
            println!("faults     {}", plan.spec());
            println!("online MI  {mi:.4} bits ({samples} samples)");
            println!("outcome    {}", outcome.name());
            if outcome == fsmc::sim::Outcome::LeakDetected {
                let minimal = shrink_leak(&cfg, &plan);
                if minimal != plan {
                    println!("shrunk to  {}", minimal.spec());
                }
            }
            return Ok(());
        }
        let report = run_leak_campaign(&Engine::from_env(), &cfg);
        print!("{}", report.render());
        return Ok(());
    }

    // Study mode: the capacity table for this device generation.
    let schedulers: Vec<SchedulerKind> = match opts.get("scheduler") {
        Some(name) => vec![scheduler_kind(name)?],
        None => vec![
            SchedulerKind::Baseline,
            SchedulerKind::TpBankPartitioned { turn: 60 },
            SchedulerKind::TpFence { period: 300 },
            SchedulerKind::FsRankPartitioned,
            SchedulerKind::FsBankPartitioned,
            SchedulerKind::FsNoPartitionNaive,
            SchedulerKind::FsTripleAlternation,
        ],
    };
    let protocols: Vec<Protocol> = if proto_arg == "all" {
        Protocol::all().to_vec()
    } else {
        vec![parse_protocol(proto_arg)?]
    };
    let secret = fsmc::leak::default_secret();
    let mut jobs = Vec::new();
    for &kind in &schedulers {
        for &protocol in &protocols {
            jobs.push((kind, protocol));
        }
    }
    let cells = Engine::from_env().map(&jobs, |_, &(kind, protocol)| {
        measure_cell(device, kind, protocol, &secret, window_cycles, windows, false)
    });
    println!("device: {device}  ({} windows x {window_cycles} cycles)", windows);
    println!(
        "{:<24} {:<14} {:>7} {:>7} {:>9} {:>7} {:>12}",
        "scheduler", "protocol", "windows", "BER", "adaptBER", "MI", "bits/sec"
    );
    for cell in cells {
        let c = cell.map_err(|e| format!("capacity estimate: {e}"))?;
        println!(
            "{:<24} {:<14} {:>7} {:>7.3} {:>9.3} {:>7.3} {:>12.0}",
            c.scheduler.label(),
            c.protocol.name(),
            c.windows_used,
            c.ber,
            c.adaptive_ber,
            c.mi_bits,
            c.capacity_bps
        );
    }
    Ok(())
}

fn cmd_chaos(opts: &HashMap<String, String>) -> Result<(), String> {
    let kind = scheduler_kind(opts.get("scheduler").map(String::as_str).unwrap_or("fs-rp"))?;
    let cores = get_u64(opts, "cores", 4)? as usize;
    let wl = opts.get("workload").map(String::as_str).unwrap_or("mcf");
    let mut cfg = CampaignConfig::new(get_u64(opts, "seed", 1)?);
    cfg.mix = WorkloadMix::by_name(wl, cores).ok_or_else(|| format!("unknown workload {wl:?}"))?;
    cfg.scheduler = kind;
    cfg.device = device_gen(opts)?;
    cfg.cycles = get_u64(opts, "cycles", 8_000)?;
    cfg.run_seed = get_u64(opts, "run-seed", 42)?;
    cfg.population = get_u64(opts, "population", 16)? as usize;
    cfg.metrics = get_flag(opts, "metrics");
    cfg.churn = get_flag(opts, "churn");
    if let Some(spec) = opts.get("faults") {
        // Repro mode: classify exactly one explicit plan.
        let plan = FaultPlan::parse_spec(get_u64(opts, "fault-seed", 0)?, spec)?;
        let case = run_single(&cfg, plan).map_err(|e| e.to_string())?;
        println!("scheduler  {kind}");
        println!("device     {}", cfg.device);
        println!("workload   {} x{} cores, {} cycles", cfg.mix.name, cores, cfg.cycles);
        println!("faults     {}", case.plan.spec());
        println!("outcome    {}", case.outcome);
        if let Some(e) = &case.error {
            println!("error      {e}");
        }
        if let Some(s) = &case.shrunk {
            println!("shrunk to  {}", s.spec());
        }
        if let Some(m) = &case.metrics {
            print!("{}", m.render());
        }
        return Ok(());
    }
    let report = run_campaign(&Engine::from_env(), &cfg).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    Ok(())
}

fn cmd_trace(opts: &HashMap<String, String>) -> Result<(), String> {
    let kind = scheduler_kind(opts.get("scheduler").map(String::as_str).unwrap_or("fs-rp"))?;
    let cycles = get_u64(opts, "cycles", 4_000)?;
    let seed = get_u64(opts, "seed", 42)?;
    let cores = get_u64(opts, "cores", 8)? as usize;
    let wl = opts.get("workload").map(String::as_str).unwrap_or("mix1");
    let mix = WorkloadMix::by_name(wl, cores).ok_or_else(|| format!("unknown workload {wl:?}"))?;
    let out = opts.get("out").map(String::as_str).unwrap_or("results/trace.json");
    let device = device_gen(opts)?;
    let cfg = SystemConfig::for_device(device, kind, cores as u8);
    let mut sys = System::try_from_mix(&cfg, &mix, seed).map_err(|e| e.to_string())?;
    if let Some(spec) = opts.get("faults") {
        let plan = FaultPlan::parse_spec(get_u64(opts, "fault-seed", 0)?, spec)?;
        if !plan.is_pure_reconfig() {
            return Err("fsmc trace accepts only reconfiguration events in --faults \
                 (stuck-bank/dead-rank/thermal-refresh/leave/join)"
                .into());
        }
        for (at, ev) in plan.reconfig_events() {
            sys.schedule_reconfig(at, ev);
        }
    }
    sys.enable_tracing();
    sys.enable_metrics();
    sys.try_run_cycles(cycles).map_err(|e| e.to_string())?;
    let events = sys.take_trace();
    let title = format!("{kind} / {device} / {} x{cores} / {cycles} DRAM cycles", mix.name);
    let json = ChromeTraceBuilder::new(sys.lane_layout(), &title).export(&events);
    if let Some(dir) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    std::fs::write(out, &json).map_err(|e| e.to_string())?;
    println!("scheduler  {kind}");
    println!("workload   {} x{cores} cores, {cycles} DRAM cycles", mix.name);
    println!("events     {}", events.len());
    println!("wrote      {out}  (load in Perfetto or chrome://tracing)");
    if let Some(m) = sys.metrics_report() {
        print!("{}", m.render());
    }
    Ok(())
}

/// One throughput scenario: a scheduler under a mix, timed twice.
struct ThroughputRow {
    name: &'static str,
    scheduler: SchedulerKind,
    workload: &'static str,
    per_cycle_cps: f64,
    fastpath_cps: f64,
}

impl ThroughputRow {
    fn speedup(&self) -> f64 {
        self.fastpath_cps / self.per_cycle_cps
    }
}

/// Times one scenario on both paths, interleaving repeats so that
/// wall-clock noise epochs (co-tenants, frequency scaling) hit the
/// per-cycle and fast-path samples alike instead of biasing the ratio.
/// Noise only ever slows a run down, so the fastest repeat per path is
/// the best estimate of true throughput, and every repeat of either
/// path must reproduce the same stats fingerprint — a free determinism
/// and fast-path-equivalence check. Returns (per-cycle, fast-path)
/// simulated cycles per second.
fn time_pair(
    device: DeviceGeneration,
    kind: SchedulerKind,
    mix: &WorkloadMix,
    cycles: u64,
    seed: u64,
) -> Result<(f64, f64), String> {
    use fsmc::sim::System;
    let cfg = SystemConfig::for_device(device, kind, mix.cores() as u8);
    let mut best = [f64::MAX; 2];
    let mut fingerprint: Option<String> = None;
    for _rep in 0..3 {
        for (slot, fast) in [(0, false), (1, true)] {
            let mut sys = System::try_from_mix(&cfg, mix, seed).map_err(|e| e.to_string())?;
            if !fast {
                sys.disable_fastpath();
            }
            // Untimed warmup past the cold-start transient (empty queues,
            // closed rows) so the figure reflects steady-state throughput.
            sys.run_cycles(cycles / 5);
            let t0 = std::time::Instant::now();
            let stats = sys.run_cycles(cycles);
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            best[slot] = best[slot].min(secs);
            let fp = format!(
                "{:.9}/{}/{}/{}",
                stats.ipc_sum(),
                stats.reads_completed,
                stats.mc.row_hits + stats.mc.row_misses,
                stats.cores.iter().map(|c| c.stall_cycles).sum::<u64>()
            );
            match &fingerprint {
                None => fingerprint = Some(fp),
                Some(first) if *first != fp => {
                    return Err(format!("fast path diverged from per-cycle run: {fp} vs {first}"));
                }
                _ => {}
            }
        }
    }
    Ok((cycles as f64 / best[0], cycles as f64 / best[1]))
}

/// Times `width` copies of one job run back to back against the same
/// jobs interleaved as a single K-wide batch, both on one worker
/// thread and with the fast path on, so the figure isolates the
/// batching win (one decoded tape, warm timing tables) from
/// parallelism. Repeats interleave like [`time_pair`], and every
/// repeat of either mode must produce byte-identical slot results — a
/// free end-to-end check of the batching contract. Returns
/// (unbatched, batched) aggregate simulated cycles per second.
fn time_batch(
    device: DeviceGeneration,
    kind: SchedulerKind,
    mix: &WorkloadMix,
    cycles: u64,
    seed: u64,
    width: usize,
) -> Result<(f64, f64), String> {
    let cfg = SystemConfig::for_device(device, kind, mix.cores() as u8);
    let mut plan = ExperimentPlan::new();
    for _ in 0..width {
        plan.push(ExperimentJob::new(mix.clone(), kind, cycles, seed).with_config(cfg));
    }
    let engines = [Engine::with_threads(1), Engine::with_threads(1).with_batch(width)];
    let mut best = [f64::MAX; 2];
    let mut fingerprint: Option<String> = None;
    for _rep in 0..3 {
        for (slot, engine) in engines.iter().enumerate() {
            let t0 = std::time::Instant::now();
            let out = engine.run(&plan);
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            for r in &out {
                if let Err(e) = r {
                    return Err(e.to_string());
                }
            }
            best[slot] = best[slot].min(secs);
            let fp = format!("{out:?}");
            match &fingerprint {
                None => fingerprint = Some(fp),
                Some(first) if *first != fp => {
                    return Err("batched replay diverged from unbatched runs".into());
                }
                _ => {}
            }
        }
    }
    let total = (width as u64 * cycles) as f64;
    Ok((total / best[0], total / best[1]))
}

fn cmd_bench_throughput(opts: &HashMap<String, String>) -> Result<(), String> {
    let cycles = get_u64(opts, "cycles", 500_000)?;
    let seed = get_u64(opts, "seed", 42)?;
    let device = device_gen(opts)?;
    let out = opts.get("out").map(String::as_str).unwrap_or("results/bench_throughput.json");
    // The acceptance scenarios: the l=43 no-partitioning schedule leaves
    // the controller idle for most of each slot (every core blocks on
    // its distant turn), the baseline under a memory-intensive mix skips
    // only the short data-return gaps, and the two middle rows track the
    // paper's main configurations.
    let scenarios: [(&str, SchedulerKind, &str, WorkloadMix); 4] = [
        (
            "fs-np-idle-heavy",
            SchedulerKind::FsNoPartitionNaive,
            "mcf",
            WorkloadMix::rate(BenchProfile::mcf(), 8),
        ),
        ("fs-rp-mix1", SchedulerKind::FsRankPartitioned, "mix1", WorkloadMix::mix1_for(8)),
        (
            "baseline-memory-intensive",
            SchedulerKind::Baseline,
            "mcf",
            WorkloadMix::rate(BenchProfile::mcf(), 8),
        ),
        (
            "tp-bp-mix2",
            SchedulerKind::TpBankPartitioned { turn: 60 },
            "mix2",
            WorkloadMix::mix2_for(8),
        ),
    ];
    let mut rows = Vec::new();
    println!("{:<33} {:>14} {:>14} {:>8}", "scenario", "per-cycle c/s", "fast-path c/s", "speedup");
    for (name, kind, workload, mix) in scenarios {
        let (slow_cps, fast_cps) =
            time_pair(device, kind, &mix, cycles, seed).map_err(|e| format!("{name}: {e}"))?;
        let row = ThroughputRow {
            name,
            scheduler: kind,
            workload,
            per_cycle_cps: slow_cps,
            fastpath_cps: fast_cps,
        };
        println!(
            "{:<33} {:>14.0} {:>14.0} {:>7.2}x",
            row.name,
            row.per_cycle_cps,
            row.fastpath_cps,
            row.speedup()
        );
        rows.push(row);
    }
    // Saturated scenarios on a second device generation: HBM2's 8
    // channels and short tCK stress the SoA timing tables far from the
    // paper's DDR3 point, under the standard per-cycle vs fast-path
    // pairing.
    {
        let mix = WorkloadMix::rate(BenchProfile::mcf(), 8);
        let (slow_cps, fast_cps) =
            time_pair(DeviceGeneration::Hbm2, SchedulerKind::Baseline, &mix, cycles, seed)
                .map_err(|e| format!("baseline-hbm2-memory-intensive: {e}"))?;
        let row = ThroughputRow {
            name: "baseline-hbm2-memory-intensive",
            scheduler: SchedulerKind::Baseline,
            workload: "mcf",
            per_cycle_cps: slow_cps,
            fastpath_cps: fast_cps,
        };
        println!(
            "{:<33} {:>14.0} {:>14.0} {:>7.2}x",
            row.name,
            row.per_cycle_cps,
            row.fastpath_cps,
            row.speedup()
        );
        rows.push(row);
    }
    // Batched-replay rows for the two saturated scenarios. The columns
    // are reinterpreted: "per-cycle" records K=1 (eight jobs run back
    // to back, fast path on) and "fast-path" records K=8 (the same
    // eight jobs interleaved as one batch), so the gate below guards
    // batched throughput and the speedup column reads as the batching
    // gain.
    let batch_scenarios: [(&str, SchedulerKind, &str, WorkloadMix); 2] = [
        ("fs-rp-mix1-batch8", SchedulerKind::FsRankPartitioned, "mix1", WorkloadMix::mix1_for(8)),
        (
            "baseline-memory-intensive-batch8",
            SchedulerKind::Baseline,
            "mcf",
            WorkloadMix::rate(BenchProfile::mcf(), 8),
        ),
    ];
    for (name, kind, workload, mix) in batch_scenarios {
        let (k1_cps, k8_cps) =
            time_batch(device, kind, &mix, cycles, seed, 8).map_err(|e| format!("{name}: {e}"))?;
        let row = ThroughputRow {
            name,
            scheduler: kind,
            workload,
            per_cycle_cps: k1_cps,
            fastpath_cps: k8_cps,
        };
        println!(
            "{:<33} {:>14.0} {:>14.0} {:>7.2}x",
            row.name,
            row.per_cycle_cps,
            row.fastpath_cps,
            row.speedup()
        );
        rows.push(row);
    }
    // The snapshot format (and its strict parser) live in
    // `fsmc::bench::throughput`, so writer and checker can't drift.
    let snapshot = ThroughputSnapshot {
        cycles,
        seed,
        scenarios: rows
            .iter()
            .map(|r| SnapshotScenario {
                name: r.name.to_string(),
                scheduler: r.scheduler.cli_name().to_string(),
                workload: r.workload.to_string(),
                per_cycle_cps: r.per_cycle_cps,
                fastpath_cps: r.fastpath_cps,
                speedup: r.speedup(),
            })
            .collect(),
    };
    if let Some(dir) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    std::fs::write(out, snapshot.to_json()).map_err(|e| e.to_string())?;
    println!("\nwrote {out}");
    // Regression gate: fresh fast-path throughput must stay within 20%
    // of the recorded snapshot for every scenario. A malformed or
    // truncated snapshot is a typed SnapshotError naming the bad line.
    if let Some(baseline) = opts.get("check") {
        let recorded = ThroughputSnapshot::load(baseline).map_err(|e| format!("--check: {e}"))?;
        let measured: Vec<(&str, f64)> = rows.iter().map(|r| (r.name, r.fastpath_cps)).collect();
        let checked = recorded.check(&measured, 0.20).map_err(|e| e.to_string())?;
        println!("throughput within 20% of {baseline} for {checked} scenarios");
    }
    Ok(())
}

/// `--socket` wins over `FSMC_SERVE`; the daemon and its clients must
/// agree on one of them.
fn serve_socket_path(opts: &HashMap<String, String>) -> Result<PathBuf, String> {
    match opts.get("socket") {
        Some(p) => Ok(PathBuf::from(p)),
        None => fsmc::sim::env::serve_socket()
            .ok_or_else(|| "pass --socket PATH or set FSMC_SERVE".to_string()),
    }
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let socket = serve_socket_path(opts)?;
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut so = ServeOptions::from_env(socket, vec![exe.display().to_string(), "job-exec".into()]);
    if let Some(w) = opts.get("workers") {
        so.workers = w.parse().map_err(|e| format!("--workers: {e}"))?;
        if so.workers == 0 {
            return Err("--workers: must be at least 1".into());
        }
    }
    so.timeout_ms = get_u64(opts, "timeout", so.timeout_ms)?;
    let attempts = get_u64(opts, "max-attempts", u64::from(so.max_attempts))?;
    so.max_attempts = u32::try_from(attempts)
        .ok()
        .filter(|a| *a >= 1)
        .ok_or("--max-attempts: must be 1..=2^32")?;
    so.queue_capacity = get_u64(opts, "queue", so.queue_capacity as u64)? as usize;
    // Hidden chaos knobs for the robustness CI: deterministically kill /
    // hang a percentage of worker attempts (never a job's final one).
    let kill = get_u64(opts, "chaos-kill", 0)?;
    let hang = get_u64(opts, "chaos-hang", 0)?;
    if kill > 0 || hang > 0 {
        if kill + hang > 100 {
            return Err("--chaos-kill + --chaos-hang must not exceed 100".into());
        }
        so.chaos = Some(ChaosSpec {
            kill_pct: kill as u8,
            hang_pct: hang as u8,
            seed: get_u64(opts, "chaos-seed", 0)?,
        });
    }
    println!(
        "fsmc serve: listening on {} ({} workers, {}ms deadline, cache {})",
        so.socket.display(),
        so.workers,
        so.timeout_ms,
        so.cache_dir.display()
    );
    serve(so).map_err(|e| e.to_string())
}

fn cmd_submit(opts: &HashMap<String, String>) -> Result<(), String> {
    let socket = serve_socket_path(opts)?;
    let spec = match opts.get("spec") {
        // Raw canonical spec line, exactly as the daemon hashes it.
        Some(raw) => JobSpec::parse_line(raw)?,
        None => {
            let sched = opts.get("scheduler").map(String::as_str).unwrap_or("fs-rp");
            let scheduler = fsmc::sim::spec::parse_scheduler(sched)
                .ok_or_else(|| format!("unknown scheduler {sched:?}"))?;
            let cores = u32::try_from(get_u64(opts, "cores", 8)?)
                .map_err(|_| "--cores: too large".to_string())?;
            let wl = opts.get("workload").map(String::as_str).unwrap_or("mix1");
            // Catch typos locally instead of as a remote failure record.
            WorkloadMix::by_name(wl, cores as usize)
                .ok_or_else(|| format!("unknown workload {wl:?}"))?;
            JobSpec {
                mix: wl.to_string(),
                cores,
                scheduler,
                device: device_gen(opts)?,
                cycles: get_u64(opts, "cycles", 60_000)?,
                seed: get_u64(opts, "seed", 42)?,
            }
        }
    };
    let priority = u8::try_from(get_u64(opts, "priority", 1)?)
        .map_err(|_| "--priority: must be 0..=255".to_string())?;
    let client = Client::new(socket.clone());
    if !client.ping() {
        return Err(format!("no experiment service at {} (start `fsmc serve`)", socket.display()));
    }
    let reply = client.submit(priority, &spec)?;
    eprintln!(
        "job {} key {} ({})",
        reply.id,
        &reply.key[..16],
        if reply.cached { "cache hit" } else { "submitted" }
    );
    match client.wait(reply.id)? {
        Ok(payload) => {
            print!("{payload}");
            Ok(())
        }
        Err(record) => Err(format!(
            "job poisoned after {} attempt(s) ({}): {}",
            record.attempts, record.reason, record.error
        )),
    }
}

fn cmd_status(opts: &HashMap<String, String>) -> Result<(), String> {
    let socket = serve_socket_path(opts)?;
    let client = Client::new(socket.clone());
    let nope = |e: std::io::Error| format!("no experiment service at {}: {e}", socket.display());
    if get_flag(opts, "shutdown") {
        client.shutdown();
        println!("sent SHUTDOWN to {}", socket.display());
        return Ok(());
    }
    if get_flag(opts, "stats") {
        print!("{}", client.stats().map_err(nope)?);
    } else {
        print!("{}", client.status().map_err(nope)?);
    }
    Ok(())
}

/// The worker-process entry point (`fsmc job-exec`): reads one spec line
/// from stdin, runs it, and reports through the pool's process protocol
/// — payload on stdout / exit 0, rendered typed error on stdout /
/// exit 3. Anything else (signal, other exit) the pool counts a crash.
fn cmd_job_exec() -> ExitCode {
    use std::io::Read as _;
    // The chaos harness wedges a worker by setting this; honouring it
    // here exercises the daemon's deadline watchdog end to end.
    if std::env::var_os(HANG_ENV).is_some() {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    let mut line = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut line) {
        println!("job-exec: reading spec from stdin: {e}");
        return ExitCode::from(3);
    }
    let spec = match JobSpec::parse_line(line.trim()) {
        Ok(spec) => spec,
        Err(e) => {
            println!("job-exec: bad spec: {e}");
            return ExitCode::from(3);
        }
    };
    match spec.run() {
        Ok(payload) => {
            print!("{payload}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("{e}");
            ExitCode::from(3)
        }
    }
}

fn cmd_record(opts: &HashMap<String, String>) -> Result<(), String> {
    let name = opts.get("workload").ok_or("--workload is required")?;
    let out = opts.get("out").ok_or("--out is required")?;
    let ops = get_u64(opts, "ops", 100_000)? as usize;
    let seed = get_u64(opts, "seed", 42)?;
    let mut src = SyntheticTrace::new(profile(name)?, seed);
    record_trace(&mut src, ops, out).map_err(|e| e.to_string())?;
    println!("wrote {ops} memory operations of {name} to {out}");
    Ok(())
}
