//! # fsmc — Fixed-Service memory controllers
//!
//! Facade crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of *"Avoiding Information Leakage in the Memory Controller
//! with Fixed Service Policies"* (MICRO-48, 2015).
//!
//! The crates compose bottom-up:
//!
//! * [`dram`] — cycle-accurate DDR3 device model and timing checker
//! * [`core`] — the paper's contribution: FS pipelines, the constraint
//!   solver, TP and the non-secure baseline
//! * [`cpu`] — trace-driven out-of-order core model
//! * [`workload`] — synthetic SPEC-like workload generators
//! * [`energy`] — Micron-style DDR3 power model
//! * [`obs`] — observability: trace events, per-domain metrics, Chrome
//!   trace export
//! * [`sim`] — full-system simulator, statistics and the deterministic
//!   parallel experiment engine
//! * [`security`] — leakage measurement and non-interference harness
//! * [`leak`] — active-adversary covert-channel harness: protocol
//!   senders, adaptive receivers, capacity matrices and online leak
//!   detection for chaos campaigns
//! * [`serve`] — the crash-tolerant experiment service: `fsmc serve`
//!   daemon, worker-process pool, content-addressed result cache
//! * [`mod@bench`] — figure/table suites built on the engine
//!
//! ## Quickstart
//!
//! ```
//! use fsmc::sim::config::SystemConfig;
//! use fsmc::sim::system::System;
//! use fsmc::core::sched::SchedulerKind;
//! use fsmc::workload::profile::BenchProfile;
//!
//! let config = SystemConfig::paper_default(SchedulerKind::FsRankPartitioned);
//! let mut system = System::homogeneous(&config, BenchProfile::mcf(), 42);
//! let stats = system.run_reads(2_000);
//! assert!(stats.weighted_ipc_sum() > 0.0);
//! ```

pub use fsmc_bench as bench;
pub use fsmc_core as core;
pub use fsmc_cpu as cpu;
pub use fsmc_dram as dram;
pub use fsmc_energy as energy;
pub use fsmc_leak as leak;
pub use fsmc_obs as obs;
pub use fsmc_security as security;
pub use fsmc_serve as serve;
pub use fsmc_sim as sim;
pub use fsmc_workload as workload;
