//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the proptest 1.x API its property tests use:
//!
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for integer
//!   and float ranges, tuples (up to 6 elements) and
//!   [`collection::vec`];
//! * [`any`] over [`Arbitrary`] types (`bool`, [`sample::Index`]);
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! its case number; re-running is deterministic, so the case reproduces),
//! and no persistence (`.proptest-regressions` files are ignored). Case
//! generation is seeded from the test name, so runs are stable across
//! processes and machines.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to drive strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from the test name, so every run of a given
    /// test explores the same cases.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 to fill the state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Test-runner configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                // 53 uniform mantissa bits in [0, 1).
                let u = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy (subset of upstream `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_arbitrary!(u8, u16, u32, u64, usize);

/// Strategy form of [`Arbitrary`]; build with [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a runtime-sized collection (upstream
    /// `prop::sample::Index`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index onto a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Uniform choice among a fixed set of options (upstream
    /// `prop::sample::select` over a `Vec`).
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> super::Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select over empty options");
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }

    /// A strategy that picks one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Collection sizes: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `Z`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };

    /// Namespace mirror of upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// item runs its body for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let run = move || { $body; };
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)).is_err() {
                    panic!(
                        "proptest case {}/{} of {} failed (deterministic; re-run reproduces it)",
                        case + 1, config.cases, stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy)]
    struct Pair {
        a: u8,
        b: u32,
    }

    fn pair() -> impl Strategy<Value = Pair> {
        (0u8..8, 10u32..20).prop_map(|(a, b)| Pair { a, b })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps_stay_in_bounds(p in pair(), flag in any::<bool>()) {
            prop_assert!(p.a < 8);
            prop_assert!((10..20).contains(&p.b));
            let _ = flag;
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u64..100, 3..7), w in prop::collection::vec(any::<bool>(), 4)) {
            prop_assert!((3..7).contains(&v.len()), "len {}", v.len());
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn sample_index_in_range(ix in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(ix.index(len) < len);
        }

        #[test]
        fn float_ranges_stay_in_bounds(x in -2.5f64..7.0, y in 0.0f64..=1.0, z in 1.0f32..4.0) {
            prop_assert!((-2.5..7.0).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
            prop_assert!((1.0..4.0).contains(&z));
        }
    }

    #[test]
    fn determinism_across_runners() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
