//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the rand 0.8 API it actually uses: a seedable
//! [`rngs::StdRng`], [`Rng::gen_range`] over integer and float ranges and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, which is all the simulator needs
//! (workload generation is calibrated against measured statistics, not a
//! particular stream).
//!
//! Deviations from upstream rand, chosen deliberately:
//!
//! * Streams differ from upstream `StdRng` (which is ChaCha12). Anything
//!   depending on exact upstream sequences must be re-calibrated.
//! * Sampling an *empty float range* returns the start bound instead of
//!   panicking, so a degenerate profile parameter degrades a trace
//!   instead of killing a whole experiment suite.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A range (or inclusive range) that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample(&self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(&self, rng: &mut dyn RngCore) -> $t {
                if self.end.partial_cmp(&self.start) != Some(core::cmp::Ordering::Greater) {
                    return self.start; // lenient: degenerate range yields its bound
                }
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (`p` is clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut state = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs =
            (0..100).any(|_| a.gen_range(0u64..1_000_000) != c.gen_range(0u64..1_000_000));
        assert!(differs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn empty_float_range_is_lenient() {
        let mut r = StdRng::seed_from_u64(1);
        assert_eq!(r.gen_range(0.0f64..0.0), 0.0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
