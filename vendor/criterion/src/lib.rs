//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of the criterion 0.5 API its benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple calibrated loop reporting mean wall-clock time per iteration —
//! enough to compare hot paths locally, with none of upstream's
//! statistics, plotting or baseline persistence.

use std::time::{Duration, Instant};

/// Re-export of the standard black box (same role as criterion's).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`: warms up briefly, then runs enough iterations to fill
    /// the measurement window and records the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly the measurement window.
        let calib_start = Instant::now();
        black_box(f());
        let once = calib_start.elapsed().max(Duration::from_nanos(1));
        let window = Duration::from_millis(200);
        let iters = (window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

/// Benchmark harness entry point (subset of upstream `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0, iters: 0 };
        f(&mut b);
        let (value, unit) = if b.mean_ns >= 1_000_000.0 {
            (b.mean_ns / 1_000_000.0, "ms")
        } else if b.mean_ns >= 1_000.0 {
            (b.mean_ns / 1_000.0, "us")
        } else {
            (b.mean_ns, "ns")
        };
        println!("{name:<40} {value:>10.3} {unit}/iter ({} iters)", b.iters);
        self
    }
}

/// Declares a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_returns_self() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)))
            .bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }
}
