//! Set-associative caches with LRU replacement.
//!
//! The simulator's traces are post-LLC (Table 1's cache hierarchy has
//! already filtered them), but the cache model is a first-class substrate:
//! workload generation can pass raw address streams through a modelled
//! L1/L2 to derive realistic miss streams, and the `cache_filtering`
//! example demonstrates exactly that.

use fsmc_dram::geometry::LineAddr;

/// Cache shape: capacity, associativity, line size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    pub size_bytes: u64,
    pub ways: u32,
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Table 1 L1: 32 KB, 2-way.
    pub fn paper_l1() -> Self {
        CacheConfig { size_bytes: 32 * 1024, ways: 2, line_bytes: 64 }
    }

    /// Table 1 L2 (shared LLC): 4 MB, 8-way.
    pub fn paper_l2() -> Self {
        CacheConfig { size_bytes: 4 * 1024 * 1024, ways: 8, line_bytes: 64 }
    }

    fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes as u64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp: larger is more recent.
    used: u64,
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    pub hit: bool,
    /// A dirty line evicted by this access (writeback traffic).
    pub writeback: Option<LineAddr>,
}

/// One set-associative cache level with LRU replacement and
/// write-allocate, write-back policy.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    pub hits: u64,
    pub misses: u64,
}

impl Cache {
    /// # Panics
    ///
    /// Panics unless sets and ways are non-zero powers of two.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets > 0 && sets.is_power_of_two(), "set count must be a power of two");
        assert!(cfg.ways > 0, "associativity must be non-zero");
        Cache {
            cfg,
            sets: vec![
                vec![Line { tag: 0, valid: false, dirty: false, used: 0 }; cfg.ways as usize];
                sets as usize
            ],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accesses `addr` (a line address); allocates on miss.
    pub fn access(&mut self, addr: LineAddr, is_write: bool) -> AccessResult {
        self.clock += 1;
        let set_count = self.sets.len() as u64;
        let set_idx = (addr.0 % set_count) as usize;
        let tag = addr.0 / set_count;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.used = self.clock;
            line.dirty |= is_write;
            self.hits += 1;
            return AccessResult { hit: true, writeback: None };
        }
        self.misses += 1;
        // Victim: invalid first, else LRU.
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.used + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("non-zero associativity");
        let old = set[victim];
        let writeback =
            (old.valid && old.dirty).then(|| LineAddr(old.tag * set_count + set_idx as u64));
        set[victim] = Line { tag, valid: true, dirty: is_write, used: self.clock };
        AccessResult { hit: false, writeback }
    }

    /// Hit rate over all accesses so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A two-level hierarchy: private L1 in front of a (logically shared) L2.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    pub l1: Cache,
    pub l2: Cache,
}

/// What a hierarchy access produced at the memory boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyResult {
    /// The demand access missed all levels (a memory read is needed).
    pub memory_read: Option<LineAddr>,
    /// An L2 dirty eviction produced a memory write.
    pub memory_write: Option<LineAddr>,
}

impl Hierarchy {
    pub fn paper_default() -> Self {
        Hierarchy {
            l1: Cache::new(CacheConfig::paper_l1()),
            l2: Cache::new(CacheConfig::paper_l2()),
        }
    }

    /// Runs one demand access through L1 then L2, returning any memory
    /// traffic it generates.
    pub fn access(&mut self, addr: LineAddr, is_write: bool) -> HierarchyResult {
        let r1 = self.l1.access(addr, is_write);
        let mut result = HierarchyResult { memory_read: None, memory_write: None };
        if r1.hit {
            // L1 writebacks go to L2 below on eviction; nothing else to do.
            return result;
        }
        // L1 victim writeback lands in L2.
        if let Some(wb) = r1.writeback {
            let r2 = self.l2.access(wb, true);
            if let Some(mem_wb) = r2.writeback {
                result.memory_write = Some(mem_wb);
            }
        }
        let r2 = self.l2.access(addr, false);
        if !r2.hit {
            result.memory_read = Some(addr);
        }
        if let Some(mem_wb) = r2.writeback {
            result.memory_write = Some(mem_wb);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_access_hits() {
        let mut c = Cache::new(CacheConfig::paper_l1());
        assert!(!c.access(LineAddr(5), false).hit);
        assert!(c.access(LineAddr(5), false).hit);
        assert_eq!((c.hits, c.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Tiny 2-way cache with 2 sets: lines 0,2,4 map to set 0.
        let cfg = CacheConfig { size_bytes: 4 * 64, ways: 2, line_bytes: 64 };
        let mut c = Cache::new(cfg);
        c.access(LineAddr(0), false);
        c.access(LineAddr(2), false);
        c.access(LineAddr(0), false); // refresh 0
        c.access(LineAddr(4), false); // evicts 2
        assert!(c.access(LineAddr(0), false).hit);
        assert!(!c.access(LineAddr(2), false).hit);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let cfg = CacheConfig { size_bytes: 2 * 64, ways: 1, line_bytes: 64 };
        let mut c = Cache::new(cfg);
        c.access(LineAddr(0), true);
        let r = c.access(LineAddr(2), false); // same set, evicts dirty 0
        assert_eq!(r.writeback, Some(LineAddr(0)));
    }

    #[test]
    fn clean_eviction_is_silent() {
        let cfg = CacheConfig { size_bytes: 2 * 64, ways: 1, line_bytes: 64 };
        let mut c = Cache::new(cfg);
        c.access(LineAddr(0), false);
        let r = c.access(LineAddr(2), false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn streaming_working_set_larger_than_cache_misses() {
        let mut h = Hierarchy::paper_default();
        let llc_lines = CacheConfig::paper_l2().size_bytes / 64;
        let mut mem_reads = 0;
        for a in 0..llc_lines * 2 {
            if h.access(LineAddr(a), false).memory_read.is_some() {
                mem_reads += 1;
            }
        }
        assert_eq!(mem_reads, llc_lines * 2, "cold streaming misses everywhere");
    }

    #[test]
    fn small_working_set_lives_in_l1() {
        let mut h = Hierarchy::paper_default();
        for round in 0..10 {
            for a in 0..64u64 {
                let r = h.access(LineAddr(a), false);
                if round > 0 {
                    assert_eq!(r.memory_read, None);
                }
            }
        }
        assert!(h.l1.hit_rate() > 0.85);
    }

    #[test]
    fn dirty_l2_evictions_reach_memory() {
        let mut h = Hierarchy::paper_default();
        let llc_lines = CacheConfig::paper_l2().size_bytes / 64;
        let mut mem_writes = 0;
        for a in 0..llc_lines * 3 {
            let r = h.access(LineAddr(a), true);
            if r.memory_write.is_some() {
                mem_writes += 1;
            }
        }
        assert!(mem_writes > 0, "dirty working set must spill writebacks");
    }
}
