//! The per-core prefetch buffer: completed prefetches park here until a
//! demand access consumes them (or FIFO pressure evicts them).

use fsmc_dram::geometry::LineAddr;
use std::collections::VecDeque;

/// A small FIFO buffer of prefetched lines.
#[derive(Debug, Clone)]
pub struct PrefetchBuffer {
    lines: VecDeque<LineAddr>,
    capacity: usize,
    pub useful: u64,
    pub inserted: u64,
}

impl PrefetchBuffer {
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch buffer capacity must be non-zero");
        PrefetchBuffer {
            lines: VecDeque::with_capacity(capacity),
            capacity,
            useful: 0,
            inserted: 0,
        }
    }

    /// Inserts a completed prefetch, evicting the oldest line if full.
    pub fn insert(&mut self, addr: LineAddr) {
        if self.lines.contains(&addr) {
            return;
        }
        if self.lines.len() >= self.capacity {
            self.lines.pop_front();
        }
        self.lines.push_back(addr);
        self.inserted += 1;
    }

    /// A demand access checks the buffer; a hit consumes the line.
    pub fn take(&mut self, addr: LineAddr) -> bool {
        if let Some(i) = self.lines.iter().position(|&a| a == addr) {
            self.lines.remove(i);
            self.useful += 1;
            true
        } else {
            false
        }
    }

    /// Fraction of inserted prefetches that a demand access consumed.
    pub fn usefulness(&self) -> f64 {
        if self.inserted == 0 {
            0.0
        } else {
            self.useful as f64 / self.inserted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_consumes_line() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(LineAddr(5));
        assert!(b.take(LineAddr(5)));
        assert!(!b.take(LineAddr(5)));
        assert_eq!(b.useful, 1);
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut b = PrefetchBuffer::new(2);
        b.insert(LineAddr(1));
        b.insert(LineAddr(2));
        b.insert(LineAddr(3)); // evicts 1
        assert!(!b.take(LineAddr(1)));
        assert!(b.take(LineAddr(2)));
        assert!(b.take(LineAddr(3)));
    }

    #[test]
    fn duplicate_inserts_ignored() {
        let mut b = PrefetchBuffer::new(4);
        b.insert(LineAddr(9));
        b.insert(LineAddr(9));
        assert_eq!(b.inserted, 1);
        assert!((b.usefulness() - 0.0).abs() < f64::EPSILON);
        b.take(LineAddr(9));
        assert!((b.usefulness() - 1.0).abs() < f64::EPSILON);
    }
}
