//! The out-of-order core model: ROB occupancy, fetch/retire width, posted
//! writes, reads blocking retirement.
//!
//! This is the USIMM timing model with the paper's Table-1 core
//! parameters: 64-entry ROB, 4-wide fetch/dispatch/retire, 3.2 GHz.
//! Memory reads occupy a ROB slot until their data returns from the
//! memory controller; writes retire through a posted write path and only
//! stall the core via controller back-pressure.

use crate::trace::{MemOp, TraceOp, TraceSource};
use std::collections::VecDeque;

/// Result of offering a memory operation to the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// Accepted; the read will complete via [`OooCore::complete_read`]
    /// with this tag.
    Accepted { tag: u64 },
    /// Queue full: retry next cycle (core stalls).
    Rejected,
    /// Served without a memory transaction (prefetch-buffer or MSHR
    /// merge hit). Reads retire after the pipeline latency.
    Hit,
}

/// What the core can do before some external event, as classified by
/// [`OooCore::idle_until`] after a call to [`OooCore::cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreIdle {
    /// The next cycle performs real work (retire, fetch, or a memory
    /// submit) — it must be executed normally.
    Active,
    /// ROB full behind an outstanding read: every cycle until
    /// [`OooCore::complete_read`] is called is provably stall-only.
    BlockedOnMemory,
    /// ROB full behind a non-memory instruction: every CPU cycle strictly
    /// before this one is provably stall-only.
    WakeAt(u64),
}

/// Core microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    pub rob_size: usize,
    /// Fetch/retire width per CPU cycle.
    pub width: u32,
    /// Pipeline depth: cycles from fetch to earliest retirement for
    /// non-memory instructions.
    pub pipeline_depth: u32,
}

impl CoreConfig {
    /// Table 1: 64-entry ROB, 4-wide.
    pub fn paper_default() -> Self {
        CoreConfig { rob_size: 64, width: 4, pipeline_depth: 10 }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper_default()
    }
}

/// Per-core execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    pub instructions_retired: u64,
    pub cpu_cycles: u64,
    pub reads_issued: u64,
    pub writes_issued: u64,
    pub stall_cycles: u64,
}

impl CoreStats {
    /// Instructions per CPU cycle.
    pub fn ipc(&self) -> f64 {
        if self.cpu_cycles == 0 {
            0.0
        } else {
            self.instructions_retired as f64 / self.cpu_cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    /// CPU cycle at which a non-memory instruction may retire.
    retire_at: u64,
    /// For reads: the tag we are waiting on (`None` once data returned).
    waiting_on: Option<u64>,
}

/// A single out-of-order core consuming a trace.
pub struct OooCore {
    cfg: CoreConfig,
    trace: Box<dyn TraceSource>,
    rob: VecDeque<RobEntry>,
    /// Non-memory instructions still to fetch before the pending mem op.
    nonmem_left: u32,
    pending_mem: Option<MemOp>,
    completed_tags: Vec<u64>,
    next_tag: u64,
    stats: CoreStats,
}

impl std::fmt::Debug for OooCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OooCore")
            .field("cfg", &self.cfg)
            .field("rob_occupancy", &self.rob.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl OooCore {
    pub fn new(cfg: CoreConfig, trace: Box<dyn TraceSource>) -> Self {
        OooCore {
            cfg,
            trace,
            rob: VecDeque::with_capacity(cfg.rob_size),
            nonmem_left: 0,
            pending_mem: None,
            completed_tags: Vec::new(),
            next_tag: 0,
            stats: CoreStats::default(),
        }
    }

    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Data for the read tagged `tag` has arrived.
    pub fn complete_read(&mut self, tag: u64) {
        self.completed_tags.push(tag);
    }

    /// Classifies what the *next* cycles would do, so a simulator can
    /// skip provably stall-only spans in bulk via
    /// [`OooCore::skip_stalled`]. Sound only when queried after
    /// [`OooCore::cycle`] has run for the current cycle and no completion
    /// has been delivered since.
    ///
    /// A stall-only cycle touches exactly two stats (`cpu_cycles`,
    /// `stall_cycles`) and nothing else: that requires a full ROB (no
    /// fetch, so the trace is never consulted), no pending completions,
    /// and a head entry that cannot retire.
    pub fn idle_until(&self) -> CoreIdle {
        if !self.completed_tags.is_empty() || self.rob.len() < self.cfg.rob_size {
            return CoreIdle::Active;
        }
        match self.rob.front() {
            Some(e) => match e.waiting_on {
                Some(_) => CoreIdle::BlockedOnMemory,
                None => CoreIdle::WakeAt(e.retire_at),
            },
            // Unreachable for rob_size > 0, but an empty ROB fetches.
            None => CoreIdle::Active,
        }
    }

    /// Accounts `skipped` stall-only CPU cycles in bulk, advancing the
    /// clock to `next_cpu_cycle` (the first cycle that will run normally
    /// again). Bit-identical to executing each skipped cycle, *provided*
    /// [`OooCore::idle_until`] proved the whole span stall-only.
    pub fn skip_stalled(&mut self, skipped: u64, next_cpu_cycle: u64) {
        self.stats.stall_cycles += skipped;
        self.stats.cpu_cycles = self.stats.cpu_cycles.max(next_cpu_cycle);
    }

    /// Advances one CPU cycle. `submit` offers memory operations to the
    /// memory system (the system simulator routes them to the controller)
    /// and reports acceptance; tags are assigned by the core and echoed
    /// back through [`OooCore::complete_read`].
    pub fn cycle<F>(&mut self, now_cpu: u64, mut submit: F)
    where
        F: FnMut(MemOp, u64) -> SubmitResult,
    {
        self.stats.cpu_cycles = self.stats.cpu_cycles.max(now_cpu + 1);

        // Drain completions into the ROB.
        if !self.completed_tags.is_empty() {
            for e in self.rob.iter_mut() {
                if let Some(t) = e.waiting_on {
                    if self.completed_tags.contains(&t) {
                        e.waiting_on = None;
                        e.retire_at = e.retire_at.max(now_cpu);
                    }
                }
            }
            self.completed_tags.clear();
        }

        // Retire in order, up to `width` per cycle.
        let mut retired = 0;
        while retired < self.cfg.width {
            match self.rob.front() {
                Some(e) if e.waiting_on.is_none() && e.retire_at <= now_cpu => {
                    self.rob.pop_front();
                    self.stats.instructions_retired += 1;
                    retired += 1;
                }
                _ => break,
            }
        }

        // Fetch, up to `width` per cycle, while ROB space remains.
        let mut fetched = 0;
        let mut stalled = false;
        while fetched < self.cfg.width && self.rob.len() < self.cfg.rob_size && !stalled {
            if self.nonmem_left == 0 && self.pending_mem.is_none() {
                let op: TraceOp = self.trace.next_op();
                self.nonmem_left = op.nonmem;
                self.pending_mem = op.mem;
                if op.nonmem == 0 && op.mem.is_none() {
                    // Degenerate empty op; avoid an infinite loop.
                    break;
                }
            }
            if self.nonmem_left > 0 {
                self.nonmem_left -= 1;
                self.rob.push_back(RobEntry {
                    retire_at: now_cpu + self.cfg.pipeline_depth as u64,
                    waiting_on: None,
                });
                fetched += 1;
                continue;
            }
            if let Some(mem) = self.pending_mem {
                let tag = self.next_tag;
                match submit(mem, tag) {
                    SubmitResult::Accepted { tag: t } => {
                        debug_assert_eq!(t, tag, "memory system must echo the core's tag");
                        self.next_tag += 1;
                        if mem.is_write {
                            self.stats.writes_issued += 1;
                            self.rob.push_back(RobEntry {
                                retire_at: now_cpu + self.cfg.pipeline_depth as u64,
                                waiting_on: None,
                            });
                        } else {
                            self.stats.reads_issued += 1;
                            self.rob
                                .push_back(RobEntry { retire_at: now_cpu, waiting_on: Some(tag) });
                        }
                        self.pending_mem = None;
                        fetched += 1;
                    }
                    SubmitResult::Hit => {
                        self.next_tag += 1;
                        self.rob.push_back(RobEntry {
                            retire_at: now_cpu + self.cfg.pipeline_depth as u64,
                            waiting_on: None,
                        });
                        self.pending_mem = None;
                        fetched += 1;
                    }
                    SubmitResult::Rejected => {
                        stalled = true;
                    }
                }
            }
        }
        if stalled || (self.rob.len() >= self.cfg.rob_size && fetched == 0) {
            self.stats.stall_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn compute_only_core() -> OooCore {
        OooCore::new(
            CoreConfig::paper_default(),
            Box::new(VecTrace::new(vec![TraceOp::compute(100)])),
        )
    }

    #[test]
    fn compute_bound_core_reaches_full_width_ipc() {
        let mut core = compute_only_core();
        for c in 0..10_000 {
            core.cycle(c, |_, _| unreachable!("no memory ops in this trace"));
        }
        let ipc = core.stats().ipc();
        assert!(ipc > 3.8, "IPC {ipc} should approach width 4");
    }

    #[test]
    fn read_blocks_retirement_until_completion() {
        let trace =
            VecTrace::new(vec![TraceOp::with_mem(0, MemOp::read(1)), TraceOp::compute(200)]);
        let mut core = OooCore::new(CoreConfig::paper_default(), Box::new(trace));
        let issued = Rc::new(RefCell::new(Vec::new()));
        let issued2 = issued.clone();
        // Run 50 cycles without completing the read: the ROB fills and
        // retirement stops after the read reaches the head.
        for c in 0..50 {
            core.cycle(c, |op, tag| {
                issued2.borrow_mut().push((op, tag));
                SubmitResult::Accepted { tag }
            });
        }
        assert_eq!(issued.borrow().len(), 1);
        assert_eq!(core.stats().instructions_retired, 0);
        assert!(core.stats().stall_cycles > 0, "ROB should have filled");
        // Complete the read: retirement resumes.
        core.complete_read(0);
        for c in 50..200 {
            core.cycle(c, |_, tag| SubmitResult::Accepted { tag });
        }
        assert!(core.stats().instructions_retired > 100);
    }

    #[test]
    fn writes_are_posted_and_do_not_block() {
        let trace = VecTrace::new(vec![TraceOp::with_mem(3, MemOp::write(1))]);
        let mut core = OooCore::new(CoreConfig::paper_default(), Box::new(trace));
        for c in 0..1000 {
            core.cycle(c, |_, tag| SubmitResult::Accepted { tag });
        }
        assert!(core.stats().instructions_retired > 3000);
        assert!(core.stats().writes_issued > 700);
    }

    #[test]
    fn rejected_memory_op_stalls_fetch_and_retries() {
        let trace = VecTrace::new(vec![TraceOp::with_mem(0, MemOp::read(7))]);
        let mut core = OooCore::new(CoreConfig::paper_default(), Box::new(trace));
        let accept_after = 20u64;
        let mut first_accept = None;
        for c in 0..40 {
            core.cycle(c, |_, tag| {
                if c < accept_after {
                    SubmitResult::Rejected
                } else {
                    if first_accept.is_none() {
                        first_accept = Some(c);
                    }
                    SubmitResult::Accepted { tag }
                }
            });
        }
        assert_eq!(first_accept, Some(accept_after));
        assert!(core.stats().stall_cycles >= accept_after);
    }

    #[test]
    fn hit_responses_retire_like_compute() {
        let trace = VecTrace::new(vec![TraceOp::with_mem(0, MemOp::read(3))]);
        let mut core = OooCore::new(CoreConfig::paper_default(), Box::new(trace));
        for c in 0..1000 {
            core.cycle(c, |_, _| SubmitResult::Hit);
        }
        // All reads served as hits: the core never waits on memory.
        assert!(core.stats().ipc() > 3.0, "ipc = {}", core.stats().ipc());
    }

    #[test]
    fn skip_stalled_matches_per_cycle_execution() {
        // Two identical cores blocked on the same never-completing read:
        // one steps every cycle, the other accounts the stall span in
        // bulk. Stats must match exactly.
        let mk = || {
            let trace =
                VecTrace::new(vec![TraceOp::with_mem(0, MemOp::read(5)), TraceOp::compute(500)]);
            OooCore::new(CoreConfig::paper_default(), Box::new(trace))
        };
        let (mut stepped, mut skipped) = (mk(), mk());
        let warmup = 40u64; // enough to fill the 64-entry ROB
        for c in 0..warmup {
            stepped.cycle(c, |_, tag| SubmitResult::Accepted { tag });
            skipped.cycle(c, |_, tag| SubmitResult::Accepted { tag });
        }
        assert_eq!(stepped.idle_until(), CoreIdle::BlockedOnMemory);
        assert_eq!(skipped.idle_until(), CoreIdle::BlockedOnMemory);
        let span = 10_000u64;
        for c in warmup..warmup + span {
            stepped.cycle(c, |_, _| unreachable!("full ROB never fetches"));
        }
        skipped.skip_stalled(span, warmup + span);
        assert_eq!(stepped.stats(), skipped.stats());
        // Both resume identically once the read completes.
        stepped.complete_read(0);
        skipped.complete_read(0);
        for c in warmup + span..warmup + span + 200 {
            stepped.cycle(c, |_, tag| SubmitResult::Accepted { tag });
            skipped.cycle(c, |_, tag| SubmitResult::Accepted { tag });
        }
        assert_eq!(stepped.stats(), skipped.stats());
    }

    #[test]
    fn mlp_is_bounded_by_rob() {
        // All-read trace, nothing completes: the number of issued reads
        // can never exceed the ROB size.
        let trace = VecTrace::new(vec![TraceOp::with_mem(0, MemOp::read(9))]);
        let mut core = OooCore::new(CoreConfig::paper_default(), Box::new(trace));
        let mut issued = 0;
        for c in 0..500 {
            core.cycle(c, |_, tag| {
                issued += 1;
                SubmitResult::Accepted { tag }
            });
        }
        assert_eq!(issued, 64);
    }
}
