//! Miss-status holding registers: merge duplicate outstanding reads so a
//! line is fetched from memory once no matter how many instructions wait
//! on it.

use fsmc_dram::geometry::LineAddr;
use std::collections::HashMap;

/// Outcome of registering a read miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss to this line: send a memory transaction.
    Primary,
    /// The line is already in flight: just wait.
    Secondary,
    /// No MSHR available: the core must stall and retry.
    Full,
}

/// A bounded MSHR file keyed by line address; each entry collects the
/// waiter tags to wake when the line returns.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: HashMap<LineAddr, Vec<u64>>,
    capacity: usize,
}

impl MshrFile {
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        MshrFile { entries: HashMap::with_capacity(capacity), capacity }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers `tag` as waiting on `addr`.
    pub fn alloc(&mut self, addr: LineAddr, tag: u64) -> MshrOutcome {
        if let Some(waiters) = self.entries.get_mut(&addr) {
            waiters.push(tag);
            return MshrOutcome::Secondary;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        self.entries.insert(addr, vec![tag]);
        MshrOutcome::Primary
    }

    /// The line has arrived; returns every waiter tag to wake.
    pub fn complete(&mut self, addr: LineAddr) -> Vec<u64> {
        self.entries.remove(&addr).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary_then_wake_all() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.alloc(LineAddr(9), 1), MshrOutcome::Primary);
        assert_eq!(m.alloc(LineAddr(9), 2), MshrOutcome::Secondary);
        assert_eq!(m.alloc(LineAddr(8), 3), MshrOutcome::Primary);
        let woken = m.complete(LineAddr(9));
        assert_eq!(woken, vec![1, 2]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn capacity_limits_distinct_lines_not_waiters() {
        let mut m = MshrFile::new(2);
        assert_eq!(m.alloc(LineAddr(1), 1), MshrOutcome::Primary);
        assert_eq!(m.alloc(LineAddr(2), 2), MshrOutcome::Primary);
        assert_eq!(m.alloc(LineAddr(3), 3), MshrOutcome::Full);
        // Secondary misses still merge at capacity.
        assert_eq!(m.alloc(LineAddr(1), 4), MshrOutcome::Secondary);
    }

    #[test]
    fn completing_unknown_line_is_empty() {
        let mut m = MshrFile::new(2);
        assert!(m.complete(LineAddr(77)).is_empty());
    }
}
