//! The post-LLC trace format consumed by the core model.
//!
//! A trace is an infinite instruction stream summarised as "run `nonmem`
//! non-memory instructions, then perform this memory operation". This is
//! the USIMM trace abstraction: caches have already filtered the stream,
//! so every [`MemOp`] is a last-level-cache miss or writeback.

use fsmc_dram::geometry::LineAddr;

/// One memory operation in a core's local address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOp {
    /// Domain-local line address (the controller's partition policy maps
    /// it to a physical DRAM location).
    pub addr: LineAddr,
    pub is_write: bool,
}

impl MemOp {
    pub fn read(addr: u64) -> Self {
        MemOp { addr: LineAddr(addr), is_write: false }
    }

    pub fn write(addr: u64) -> Self {
        MemOp { addr: LineAddr(addr), is_write: true }
    }
}

/// A batch of instructions: `nonmem` ALU/branch instructions followed by
/// an optional memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    pub nonmem: u32,
    pub mem: Option<MemOp>,
}

impl TraceOp {
    /// Only non-memory work.
    pub fn compute(nonmem: u32) -> Self {
        TraceOp { nonmem, mem: None }
    }

    /// `nonmem` instructions then one memory access.
    pub fn with_mem(nonmem: u32, mem: MemOp) -> Self {
        TraceOp { nonmem, mem: Some(mem) }
    }

    /// Total instructions this op represents.
    pub fn instructions(&self) -> u64 {
        self.nonmem as u64 + self.mem.is_some() as u64
    }
}

/// An endless instruction stream feeding one core.
///
/// Implementations must be deterministic given their construction
/// parameters — determinism is what makes the non-interference harness
/// in `fsmc-security` meaningful.
pub trait TraceSource {
    /// Produces the next batch. Streams never end; benchmarks that run
    /// out should loop.
    fn next_op(&mut self) -> TraceOp;
}

/// Replays a fixed vector of ops in a loop — handy in tests.
#[derive(Debug, Clone)]
pub struct VecTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl VecTrace {
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "trace must contain at least one op");
        VecTrace { ops, pos: 0 }
    }
}

impl TraceSource for VecTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_op_instruction_counting() {
        assert_eq!(TraceOp::compute(5).instructions(), 5);
        assert_eq!(TraceOp::with_mem(5, MemOp::read(1)).instructions(), 6);
    }

    #[test]
    fn vec_trace_loops() {
        let mut t = VecTrace::new(vec![TraceOp::compute(1), TraceOp::compute(2)]);
        assert_eq!(t.next_op().nonmem, 1);
        assert_eq!(t.next_op().nonmem, 2);
        assert_eq!(t.next_op().nonmem, 1);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_vec_trace_rejected() {
        VecTrace::new(Vec::new());
    }
}
