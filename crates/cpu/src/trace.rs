//! The post-LLC trace format consumed by the core model.
//!
//! A trace is an infinite instruction stream summarised as "run `nonmem`
//! non-memory instructions, then perform this memory operation". This is
//! the USIMM trace abstraction: caches have already filtered the stream,
//! so every [`MemOp`] is a last-level-cache miss or writeback.

use fsmc_dram::geometry::LineAddr;
use std::sync::{Arc, Mutex};

/// One memory operation in a core's local address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOp {
    /// Domain-local line address (the controller's partition policy maps
    /// it to a physical DRAM location).
    pub addr: LineAddr,
    pub is_write: bool,
}

impl MemOp {
    pub fn read(addr: u64) -> Self {
        MemOp { addr: LineAddr(addr), is_write: false }
    }

    pub fn write(addr: u64) -> Self {
        MemOp { addr: LineAddr(addr), is_write: true }
    }
}

/// A batch of instructions: `nonmem` ALU/branch instructions followed by
/// an optional memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    pub nonmem: u32,
    pub mem: Option<MemOp>,
}

impl TraceOp {
    /// Only non-memory work.
    pub fn compute(nonmem: u32) -> Self {
        TraceOp { nonmem, mem: None }
    }

    /// `nonmem` instructions then one memory access.
    pub fn with_mem(nonmem: u32, mem: MemOp) -> Self {
        TraceOp { nonmem, mem: Some(mem) }
    }

    /// Total instructions this op represents.
    pub fn instructions(&self) -> u64 {
        self.nonmem as u64 + self.mem.is_some() as u64
    }
}

/// An endless instruction stream feeding one core.
///
/// Implementations must be deterministic given their construction
/// parameters — determinism is what makes the non-interference harness
/// in `fsmc-security` meaningful. Sources are `Send` so the experiment
/// engine can construct and drive them from worker threads.
pub trait TraceSource: Send {
    /// Produces the next batch. Streams never end; benchmarks that run
    /// out should loop.
    fn next_op(&mut self) -> TraceOp;
}

/// Replays a fixed vector of ops in a loop — handy in tests.
#[derive(Debug, Clone)]
pub struct VecTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl VecTrace {
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "trace must contain at least one op");
        VecTrace { ops, pos: 0 }
    }
}

impl TraceSource for VecTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

/// Ops generated per locked extension of a [`SharedTape`]. Large enough
/// that readers almost never contend on the tape mutex, small enough
/// that short runs don't over-synthesize.
const TAPE_CHUNK_OPS: usize = 1024;

struct TapeInner {
    source: Box<dyn TraceSource>,
    chunks: Vec<Arc<[TraceOp]>>,
}

/// A lazily materialised, immutable recording of a trace stream that
/// many concurrent readers can replay.
///
/// The underlying source is consumed exactly once, in chunk order, under
/// a mutex — so every [`TapeReader`] observes the identical op sequence
/// the bare source would have produced, regardless of how many readers
/// exist or which thread first demands a chunk. This is what lets the
/// experiment engine synthesize each `(profile, seed)` workload once and
/// replay it across the N policy runs that share the stream.
pub struct SharedTape {
    inner: Mutex<TapeInner>,
}

impl std::fmt::Debug for SharedTape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTape").field("recorded_ops", &self.recorded_ops()).finish()
    }
}

impl SharedTape {
    pub fn new(source: Box<dyn TraceSource>) -> Self {
        SharedTape { inner: Mutex::new(TapeInner { source, chunks: Vec::new() }) }
    }

    /// Convenience: record `source` behind an [`Arc`] ready for
    /// [`SharedTape::reader`].
    pub fn record(source: impl TraceSource + 'static) -> Arc<Self> {
        Arc::new(SharedTape::new(Box::new(source)))
    }

    /// Ops materialised so far (grows monotonically as readers advance).
    pub fn recorded_ops(&self) -> usize {
        self.inner.lock().expect("tape poisoned").chunks.len() * TAPE_CHUNK_OPS
    }

    /// Returns chunk `idx`, extending the recording as needed. Chunks are
    /// always generated sequentially, so the source's state advances
    /// identically no matter which reader triggers the extension.
    fn chunk(&self, idx: usize) -> Arc<[TraceOp]> {
        let mut inner = self.inner.lock().expect("tape poisoned");
        let TapeInner { source, chunks } = &mut *inner;
        while chunks.len() <= idx {
            let mut ops = Vec::with_capacity(TAPE_CHUNK_OPS);
            for _ in 0..TAPE_CHUNK_OPS {
                ops.push(source.next_op());
            }
            chunks.push(ops.into());
        }
        chunks[idx].clone()
    }

    /// A fresh cursor over the recording, starting at op 0.
    pub fn reader(self: &Arc<Self>) -> TapeReader {
        TapeReader { chunk: self.chunk(0), tape: Arc::clone(self), chunk_idx: 0, pos: 0 }
    }
}

/// A [`TraceSource`] replaying a [`SharedTape`] from the beginning.
///
/// Readers cache the current chunk locally, so steady-state replay is
/// lock-free; the tape mutex is touched only at chunk boundaries.
#[derive(Debug)]
pub struct TapeReader {
    tape: Arc<SharedTape>,
    chunk: Arc<[TraceOp]>,
    chunk_idx: usize,
    pos: usize,
}

impl TraceSource for TapeReader {
    fn next_op(&mut self) -> TraceOp {
        if self.pos == self.chunk.len() {
            self.chunk_idx += 1;
            self.chunk = self.tape.chunk(self.chunk_idx);
            self.pos = 0;
        }
        let op = self.chunk[self.pos];
        self.pos += 1;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_op_instruction_counting() {
        assert_eq!(TraceOp::compute(5).instructions(), 5);
        assert_eq!(TraceOp::with_mem(5, MemOp::read(1)).instructions(), 6);
    }

    #[test]
    fn vec_trace_loops() {
        let mut t = VecTrace::new(vec![TraceOp::compute(1), TraceOp::compute(2)]);
        assert_eq!(t.next_op().nonmem, 1);
        assert_eq!(t.next_op().nonmem, 2);
        assert_eq!(t.next_op().nonmem, 1);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_vec_trace_rejected() {
        VecTrace::new(Vec::new());
    }

    /// A deterministic endless counter stream for tape tests.
    #[derive(Default)]
    struct Counter(u32);

    impl TraceSource for Counter {
        fn next_op(&mut self) -> TraceOp {
            self.0 += 1;
            TraceOp::compute(self.0)
        }
    }

    #[test]
    fn tape_readers_replay_the_source_exactly() {
        let tape = SharedTape::record(Counter::default());
        let mut fresh = Counter::default();
        let mut a = tape.reader();
        let mut b = tape.reader();
        // Interleave two readers across several chunk boundaries: both
        // must see what the bare source would have produced.
        for _ in 0..3 * TAPE_CHUNK_OPS {
            let expect = fresh.next_op();
            assert_eq!(a.next_op(), expect);
        }
        let mut fresh = Counter::default();
        for _ in 0..3 * TAPE_CHUNK_OPS {
            assert_eq!(b.next_op(), fresh.next_op());
        }
    }

    #[test]
    fn tape_extends_lazily_from_concurrent_readers() {
        let tape = SharedTape::record(Counter::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let mut r = tape.reader();
                std::thread::spawn(move || {
                    (0..2 * TAPE_CHUNK_OPS).map(|_| r.next_op().nonmem as u64).sum::<u64>()
                })
            })
            .collect();
        let sums: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(sums.windows(2).all(|w| w[0] == w[1]), "readers diverged: {sums:?}");
    }
}
