//! Trace file I/O in the USIMM text format, so real captured traces can
//! drive the simulator and synthetic traces can be exported for other
//! tools.
//!
//! Format: one memory operation per line,
//!
//! ```text
//! <gap> R <line-address-hex>
//! <gap> W <line-address-hex>
//! ```
//!
//! where `<gap>` is the number of non-memory instructions preceding the
//! operation (USIMM's lead field) and the address is a cache-line
//! address in hex (with or without a `0x` prefix). Blank lines and lines
//! starting with `#` are ignored.

use crate::trace::{MemOp, TraceOp, TraceSource};
use fsmc_dram::geometry::LineAddr;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Why a trace could not be loaded.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader failed (including invalid UTF-8 bytes).
    Io(io::Error),
    /// A record did not parse; carries its 1-based line number and the
    /// offending text so the operator can find and fix it.
    Parse { line: usize, record: String, message: String },
    /// The trace contains no memory operations at all.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace read error: {e}"),
            TraceError::Parse { line, record, message } => {
                write!(f, "trace parse error at line {line} ({record:?}): {message}")
            }
            TraceError::Empty => write!(f, "empty trace"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<TraceError> for io::Error {
    fn from(e: TraceError) -> Self {
        match e {
            TraceError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// An in-memory trace loaded from a file; replays in a loop (benchmarks
/// that run out restart, as in the paper's rate-mode methodology).
#[derive(Debug, Clone)]
pub struct FileTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl FileTrace {
    /// Loads a trace from `path`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] for I/O failures, [`TraceError::Parse`] for a
    /// malformed record (with line number and the offending text),
    /// [`TraceError::Empty`] when no memory operations were found.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, TraceError> {
        FileTrace::from_reader(File::open(path)?)
    }

    /// Parses a trace from any reader.
    ///
    /// # Errors
    ///
    /// As for [`FileTrace::load`].
    pub fn from_reader<R: Read>(reader: R) -> Result<Self, TraceError> {
        let mut ops = Vec::new();
        for (idx, line) in BufReader::new(reader).lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            ops.push(parse_line(trimmed).map_err(|message| TraceError::Parse {
                line: idx + 1,
                record: trimmed.to_string(),
                message,
            })?);
        }
        if ops.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(FileTrace { ops, pos: 0 })
    }

    /// Number of memory operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

fn parse_line(line: &str) -> Result<TraceOp, String> {
    let mut parts = line.split_whitespace();
    let gap: u32 =
        parts.next().ok_or("missing gap field")?.parse().map_err(|e| format!("bad gap: {e}"))?;
    let dir = parts.next().ok_or("missing R/W field")?;
    let is_write = match dir {
        "R" | "r" => false,
        "W" | "w" => true,
        other => return Err(format!("expected R or W, got {other:?}")),
    };
    let addr_str = parts.next().ok_or("missing address field")?;
    let addr_str = addr_str.strip_prefix("0x").unwrap_or(addr_str);
    let addr = u64::from_str_radix(addr_str, 16).map_err(|e| format!("bad address: {e}"))?;
    if parts.next().is_some() {
        return Err("trailing fields".into());
    }
    Ok(TraceOp::with_mem(gap, MemOp { addr: LineAddr(addr), is_write }))
}

impl TraceSource for FileTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

/// Records `ops` memory operations from `source` into the text format.
///
/// Compute-only trace ops are folded into the next memory op's gap, so
/// the file round-trips to an equivalent miss stream.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write, S: TraceSource + ?Sized>(
    source: &mut S,
    ops: usize,
    writer: W,
) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# fsmc trace: <gap> <R|W> <line-address-hex>")?;
    let mut written = 0;
    let mut gap_acc: u64 = 0;
    while written < ops {
        let op = source.next_op();
        gap_acc += op.nonmem as u64;
        if let Some(m) = op.mem {
            writeln!(
                w,
                "{} {} {:x}",
                gap_acc.min(u32::MAX as u64),
                if m.is_write { 'W' } else { 'R' },
                m.addr.0
            )?;
            gap_acc = 0;
            written += 1;
        }
        if gap_acc > 100_000_000 {
            break; // source never produces memory ops; stop gracefully
        }
    }
    w.flush()
}

/// Records a trace to a file path.
///
/// # Errors
///
/// As for [`write_trace`].
pub fn record_trace<P: AsRef<Path>, S: TraceSource + ?Sized>(
    source: &mut S,
    ops: usize,
    path: P,
) -> io::Result<()> {
    write_trace(source, ops, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;

    #[test]
    fn parse_roundtrip() {
        let text = "# comment\n10 R 1a2b\n0 W 0xff\n\n3 r 0\n";
        let mut t = FileTrace::from_reader(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        let a = t.next_op();
        assert_eq!(a.nonmem, 10);
        assert_eq!(a.mem, Some(MemOp::read(0x1a2b)));
        let b = t.next_op();
        assert_eq!(b.mem, Some(MemOp::write(0xff)));
        let c = t.next_op();
        assert_eq!(c.nonmem, 3);
        // Loops.
        assert_eq!(t.next_op().nonmem, 10);
    }

    #[test]
    fn malformed_lines_are_rejected_with_location() {
        for (text, needle) in [
            ("R 10\n", "bad gap"),
            ("5 X 10\n", "expected R or W"),
            ("5 R zz\n", "bad address"),
            ("5 R 10 extra\n", "trailing"),
            ("", "empty trace"),
        ] {
            let err = FileTrace::from_reader(text.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "{text:?}: {msg}");
        }
    }

    #[test]
    fn truncated_record_reports_line_and_offending_text() {
        let text = "# header\n3 R 10\n5 R\n";
        let err = FileTrace::from_reader(text.as_bytes()).unwrap_err();
        match &err {
            TraceError::Parse { line, record, message } => {
                assert_eq!(*line, 3);
                assert_eq!(record, "5 R");
                assert!(message.contains("missing address"), "{message}");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn garbage_bytes_surface_as_io_errors() {
        // Invalid UTF-8 in the byte stream is an I/O-level failure, not a
        // parse failure of any particular record.
        let bytes: &[u8] = b"3 R 10\n\xff\xfe\xfd\n";
        let err = FileTrace::from_reader(bytes).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)), "{err:?}");
        use std::error::Error;
        assert!(err.source().is_some());
    }

    #[test]
    fn trace_errors_convert_to_io_errors_for_legacy_callers() {
        let err = FileTrace::from_reader("bogus R 10\n".as_bytes()).unwrap_err();
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("bad gap"), "{io_err}");
    }

    #[test]
    fn write_then_read_preserves_the_stream() {
        let mut src = VecTrace::new(vec![
            TraceOp::compute(7),
            TraceOp::with_mem(3, MemOp::read(0x100)),
            TraceOp::with_mem(0, MemOp::write(0x200)),
        ]);
        let mut buf = Vec::new();
        write_trace(&mut src, 4, &mut buf).unwrap();
        let mut rt = FileTrace::from_reader(buf.as_slice()).unwrap();
        // First memory op carries the folded compute gap: 7 + 3 = 10.
        let a = rt.next_op();
        assert_eq!(a.nonmem, 10);
        assert_eq!(a.mem, Some(MemOp::read(0x100)));
        let b = rt.next_op();
        assert_eq!(b.nonmem, 0);
        assert_eq!(b.mem, Some(MemOp::write(0x200)));
    }

    #[test]
    fn record_to_file_and_load() {
        let path = std::env::temp_dir().join("fsmc_test_trace.txt");
        let mut src = VecTrace::new(vec![TraceOp::with_mem(2, MemOp::read(42))]);
        record_trace(&mut src, 5, &path).unwrap();
        let t = FileTrace::load(&path).unwrap();
        assert_eq!(t.len(), 5);
        std::fs::remove_file(&path).ok();
    }
}
