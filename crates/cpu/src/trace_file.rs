//! Trace file I/O in the USIMM text format, so real captured traces can
//! drive the simulator and synthetic traces can be exported for other
//! tools.
//!
//! Format: one memory operation per line,
//!
//! ```text
//! <gap> R <line-address-hex>
//! <gap> W <line-address-hex>
//! ```
//!
//! where `<gap>` is the number of non-memory instructions preceding the
//! operation (USIMM's lead field) and the address is a cache-line
//! address in hex (with or without a `0x` prefix). Blank lines and lines
//! starting with `#` are ignored.

use crate::trace::{MemOp, TraceOp, TraceSource};
use fsmc_dram::geometry::LineAddr;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A parse failure with its line number.
#[derive(Debug)]
pub struct ParseTraceError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

impl From<ParseTraceError> for io::Error {
    fn from(e: ParseTraceError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// An in-memory trace loaded from a file; replays in a loop (benchmarks
/// that run out restart, as in the paper's rate-mode methodology).
#[derive(Debug, Clone)]
pub struct FileTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl FileTrace {
    /// Loads a trace from `path`.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`ParseTraceError`] (wrapped in `io::Error`) for
    /// malformed lines or an empty trace.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        FileTrace::from_reader(File::open(path)?)
    }

    /// Parses a trace from any reader.
    ///
    /// # Errors
    ///
    /// As for [`FileTrace::load`].
    pub fn from_reader<R: Read>(reader: R) -> io::Result<Self> {
        let mut ops = Vec::new();
        for (idx, line) in BufReader::new(reader).lines().enumerate() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            ops.push(parse_line(trimmed).map_err(|message| ParseTraceError {
                line: idx + 1,
                message,
            })?);
        }
        if ops.is_empty() {
            return Err(ParseTraceError { line: 0, message: "empty trace".into() }.into());
        }
        Ok(FileTrace { ops, pos: 0 })
    }

    /// Number of memory operations in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

fn parse_line(line: &str) -> Result<TraceOp, String> {
    let mut parts = line.split_whitespace();
    let gap: u32 = parts
        .next()
        .ok_or("missing gap field")?
        .parse()
        .map_err(|e| format!("bad gap: {e}"))?;
    let dir = parts.next().ok_or("missing R/W field")?;
    let is_write = match dir {
        "R" | "r" => false,
        "W" | "w" => true,
        other => return Err(format!("expected R or W, got {other:?}")),
    };
    let addr_str = parts.next().ok_or("missing address field")?;
    let addr_str = addr_str.strip_prefix("0x").unwrap_or(addr_str);
    let addr = u64::from_str_radix(addr_str, 16).map_err(|e| format!("bad address: {e}"))?;
    if parts.next().is_some() {
        return Err("trailing fields".into());
    }
    Ok(TraceOp::with_mem(gap, MemOp { addr: LineAddr(addr), is_write }))
}

impl TraceSource for FileTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

/// Records `ops` memory operations from `source` into the text format.
///
/// Compute-only trace ops are folded into the next memory op's gap, so
/// the file round-trips to an equivalent miss stream.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write, S: TraceSource + ?Sized>(
    source: &mut S,
    ops: usize,
    writer: W,
) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# fsmc trace: <gap> <R|W> <line-address-hex>")?;
    let mut written = 0;
    let mut gap_acc: u64 = 0;
    while written < ops {
        let op = source.next_op();
        gap_acc += op.nonmem as u64;
        if let Some(m) = op.mem {
            writeln!(
                w,
                "{} {} {:x}",
                gap_acc.min(u32::MAX as u64),
                if m.is_write { 'W' } else { 'R' },
                m.addr.0
            )?;
            gap_acc = 0;
            written += 1;
        }
        if gap_acc > 100_000_000 {
            break; // source never produces memory ops; stop gracefully
        }
    }
    w.flush()
}

/// Records a trace to a file path.
///
/// # Errors
///
/// As for [`write_trace`].
pub fn record_trace<P: AsRef<Path>, S: TraceSource + ?Sized>(
    source: &mut S,
    ops: usize,
    path: P,
) -> io::Result<()> {
    write_trace(source, ops, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;

    #[test]
    fn parse_roundtrip() {
        let text = "# comment\n10 R 1a2b\n0 W 0xff\n\n3 r 0\n";
        let mut t = FileTrace::from_reader(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 3);
        let a = t.next_op();
        assert_eq!(a.nonmem, 10);
        assert_eq!(a.mem, Some(MemOp::read(0x1a2b)));
        let b = t.next_op();
        assert_eq!(b.mem, Some(MemOp::write(0xff)));
        let c = t.next_op();
        assert_eq!(c.nonmem, 3);
        // Loops.
        assert_eq!(t.next_op().nonmem, 10);
    }

    #[test]
    fn malformed_lines_are_rejected_with_location() {
        for (text, needle) in [
            ("R 10\n", "bad gap"),
            ("5 X 10\n", "expected R or W"),
            ("5 R zz\n", "bad address"),
            ("5 R 10 extra\n", "trailing"),
            ("", "empty trace"),
        ] {
            let err = FileTrace::from_reader(text.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "{text:?}: {msg}");
        }
    }

    #[test]
    fn write_then_read_preserves_the_stream() {
        let mut src = VecTrace::new(vec![
            TraceOp::compute(7),
            TraceOp::with_mem(3, MemOp::read(0x100)),
            TraceOp::with_mem(0, MemOp::write(0x200)),
        ]);
        let mut buf = Vec::new();
        write_trace(&mut src, 4, &mut buf).unwrap();
        let mut rt = FileTrace::from_reader(buf.as_slice()).unwrap();
        // First memory op carries the folded compute gap: 7 + 3 = 10.
        let a = rt.next_op();
        assert_eq!(a.nonmem, 10);
        assert_eq!(a.mem, Some(MemOp::read(0x100)));
        let b = rt.next_op();
        assert_eq!(b.nonmem, 0);
        assert_eq!(b.mem, Some(MemOp::write(0x200)));
    }

    #[test]
    fn record_to_file_and_load() {
        let path = std::env::temp_dir().join("fsmc_test_trace.txt");
        let mut src = VecTrace::new(vec![TraceOp::with_mem(2, MemOp::read(42))]);
        record_trace(&mut src, 5, &path).unwrap();
        let t = FileTrace::load(&path).unwrap();
        assert_eq!(t.len(), 5);
        std::fs::remove_file(&path).ok();
    }
}
