//! # fsmc-cpu — trace-driven out-of-order core model
//!
//! The CPU substrate of the reproduction: a USIMM-style timing-first core
//! model (the paper pairs Simics functional simulation with USIMM's
//! timing model; the memory-controller study only needs the core's
//! memory-level parallelism and retirement-stall behaviour, which this
//! captures).
//!
//! * [`trace`] — the post-LLC trace format ("N non-memory instructions,
//!   then a read/write to line X") and the [`trace::TraceSource`] trait
//!   workload generators implement.
//! * [`core`] — the out-of-order core: 64-entry ROB, 4-wide fetch and
//!   retire, posted writes, reads blocking retirement until data returns.
//! * [`cache`] — a set-associative write-allocate cache hierarchy used by
//!   trace generation paths and examples.
//! * [`mshr`] — miss-status holding registers that merge duplicate
//!   outstanding reads.
//! * [`prefetch_buffer`] — the small per-core buffer that holds
//!   prefetched lines until a demand access consumes them.
//! * [`trace_file`] — USIMM-format trace file I/O, for driving the
//!   simulator with captured traces or exporting synthetic ones.

pub mod cache;
pub mod core;
pub mod mshr;
pub mod prefetch_buffer;
pub mod trace;
pub mod trace_file;

pub use crate::core::{CoreConfig, CoreIdle, CoreStats, OooCore, SubmitResult};
pub use cache::{Cache, CacheConfig};
pub use mshr::{MshrFile, MshrOutcome};
pub use prefetch_buffer::PrefetchBuffer;
pub use trace::{MemOp, SharedTape, TapeReader, TraceOp, TraceSource};
pub use trace_file::{record_trace, write_trace, FileTrace, TraceError};
