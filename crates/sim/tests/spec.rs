//! Job-spec hashing is the experiment service's correctness anchor: the
//! content-addressed cache key must be stable across process restarts
//! and field orderings, must change when any field changes, and must
//! never depend on ambient environment (thread count, fast-path mode)
//! that does not affect simulation results.

use fsmc_dram::DeviceGeneration;
use fsmc_sim::spec::parse_scheduler;
use fsmc_sim::JobSpec;
use proptest::prelude::*;

fn spec(mix: &str, cores: u32, sched: &str, dev: &str, cycles: u64, seed: u64) -> JobSpec {
    JobSpec {
        mix: mix.to_string(),
        cores,
        scheduler: parse_scheduler(sched).expect("scheduler"),
        device: DeviceGeneration::parse(dev).expect("device"),
        cycles,
        seed,
    }
}

fn default_spec() -> JobSpec {
    spec("mix1", 8, "fs-rp", "ddr3-1600", 60_000, 42)
}

/// The golden key: recorded once, asserted forever. A daemon restart —
/// or a new build — must hash the same spec to the same cache entry, or
/// every warm cache in existence silently dies.
#[test]
fn golden_key_is_stable_across_restarts() {
    let s = default_spec();
    assert_eq!(
        s.canonical_line(),
        "cores=8 cycles=60000 device=ddr3-1600 mix=mix1 scheduler=fs-rp seed=42"
    );
    assert_eq!(s.cache_key(), "76cea13ffbed80b1f323d771f04999ecc3dc4f93cc381308397c158f55ef6956");
}

#[test]
fn key_changes_when_any_field_changes() {
    let base = default_spec();
    let variants = [
        spec("mix2", 8, "fs-rp", "ddr3-1600", 60_000, 42),
        spec("mix1", 4, "fs-rp", "ddr3-1600", 60_000, 42),
        spec("mix1", 8, "tp-bp:60", "ddr3-1600", 60_000, 42),
        spec("mix1", 8, "fs-rp", "hbm2", 60_000, 42),
        spec("mix1", 8, "fs-rp", "ddr3-1600", 60_001, 42),
        spec("mix1", 8, "fs-rp", "ddr3-1600", 60_000, 43),
    ];
    let mut keys: Vec<String> = variants.iter().map(JobSpec::cache_key).collect();
    keys.push(base.cache_key());
    let distinct: std::collections::HashSet<&String> = keys.iter().collect();
    assert_eq!(distinct.len(), keys.len(), "two different specs share a cache key");
}

/// A spec line is a set of `key=value` fields, not a sequence: any
/// ordering parses to the same spec and therefore the same hash.
#[test]
fn field_order_does_not_change_the_key() {
    let s = default_spec();
    let line = s.canonical_line();
    let mut fields: Vec<&str> = line.split(' ').collect();
    for _ in 0..fields.len() {
        fields.rotate_left(1);
        let parsed = JobSpec::parse_line(&fields.join(" ")).expect("rotated line parses");
        assert_eq!(parsed, s);
        assert_eq!(parsed.cache_key(), s.cache_key());
    }
    fields.reverse();
    let parsed = JobSpec::parse_line(&fields.join(" ")).expect("reversed line parses");
    assert_eq!(parsed.cache_key(), s.cache_key());
}

/// Simulation results are byte-identical at any `FSMC_THREADS` and with
/// the fast path disabled, so neither may reach the hash — a cache
/// populated on a 64-core box must hit on a laptop.
#[test]
fn ambient_environment_does_not_reach_the_key() {
    let before = default_spec().cache_key();
    std::env::set_var("FSMC_THREADS", "3");
    std::env::set_var("FSMC_NO_FASTPATH", "1");
    let during = default_spec().cache_key();
    std::env::remove_var("FSMC_THREADS");
    std::env::remove_var("FSMC_NO_FASTPATH");
    assert_eq!(before, during);
}

#[test]
fn malformed_lines_are_rejected() {
    let line = default_spec().canonical_line();
    // Duplicate field.
    assert!(JobSpec::parse_line(&format!("{line} seed=7")).is_err());
    // Unknown field.
    assert!(JobSpec::parse_line(&format!("{line} turbo=1")).is_err());
    // Missing field.
    assert!(JobSpec::parse_line(line.strip_prefix("cores=8 ").unwrap()).is_err());
    // Degenerate values.
    assert!(JobSpec::parse_line(&line.replace("cores=8", "cores=0")).is_err());
    assert!(JobSpec::parse_line(&line.replace("cycles=60000", "cycles=0")).is_err());
}

fn arb_spec() -> impl Strategy<Value = JobSpec> {
    (
        prop::sample::select(vec!["mix1", "mix2", "mcf", "lbm", "CG", "libquantum"]),
        1u32..=16,
        prop::sample::select(vec![
            "baseline",
            "fs-rp",
            "fs-bp",
            "fs-reordered-bp",
            "fs-np",
            "fs-ta",
            "tp-bp:60",
            "tp-np:172",
            "channel-part",
        ]),
        prop::sample::select(vec!["ddr3-1600", "ddr4-2400", "lpddr4-3200", "hbm2"]),
        1u64..=10_000_000,
        any::<u64>(),
    )
        .prop_map(|(m, cores, s, d, cycles, seed)| spec(m, cores, s, d, cycles, seed))
}

proptest! {
    /// Encode → parse round-trips exactly, for every representable spec.
    #[test]
    fn canonical_line_round_trips(s in arb_spec()) {
        let parsed = JobSpec::parse_line(&s.canonical_line()).expect("canonical line parses");
        prop_assert_eq!(&parsed, &s);
        prop_assert_eq!(parsed.cache_key(), s.cache_key());
    }

    /// The key is a pure function of the field *set*: any rotation of
    /// the fields hashes identically.
    #[test]
    fn hashing_ignores_field_order(s in arb_spec(), rot in 0usize..6) {
        let line = s.canonical_line();
        let mut fields: Vec<&str> = line.split(' ').collect();
        let len = fields.len();
        fields.rotate_left(rot % len);
        let parsed = JobSpec::parse_line(&fields.join(" ")).expect("rotated line parses");
        prop_assert_eq!(parsed.cache_key(), s.cache_key());
    }

    /// Two specs collide only if they are the same spec (the canonical
    /// encoding is injective, and SHA-256 does the rest).
    #[test]
    fn distinct_specs_get_distinct_keys(a in arb_spec(), b in arb_spec()) {
        prop_assert_eq!(a.cache_key() == b.cache_key(), a == b);
    }
}
