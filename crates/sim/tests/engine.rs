//! Engine determinism and failure isolation: the contract that lets the
//! figure binaries run on a thread pool without changing a single byte
//! of output.

use fsmc_core::sched::SchedulerKind as K;
use fsmc_sim::faults::{FaultKind, FaultPlan, TimingField};
use fsmc_sim::{Engine, ExperimentJob, ExperimentPlan, FsmcError};
use fsmc_workload::WorkloadMix;

const CYCLES: u64 = 4_000;

fn small_plan() -> ExperimentPlan {
    let mixes = [WorkloadMix::mix1(), WorkloadMix::mix2()];
    let kinds = [K::Baseline, K::FsRankPartitioned, K::TpBankPartitioned { turn: 60 }];
    ExperimentPlan::grid(&mixes, &kinds, CYCLES, 7)
}

/// An infeasible configuration: tRTRS inflated so far past the pitch
/// that the rank-partitioned pipeline has no solution.
fn infeasible() -> FaultPlan {
    FaultPlan::new(5).with(FaultKind::PerturbTiming { field: TimingField::TRtrs, delta: 600 })
}

#[test]
fn thread_count_does_not_change_results() {
    let plan = small_plan();
    let serial = Engine::with_threads(1).run(&plan);
    let parallel = Engine::with_threads(8).run(&plan);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        let s = s.as_ref().expect("small plan is feasible");
        let p = p.as_ref().expect("small plan is feasible");
        assert_eq!(s.stats.ipcs(), p.stats.ipcs(), "slot {i} diverged across thread counts");
        assert_eq!(
            s.stats.reads_completed, p.stats.reads_completed,
            "slot {i} diverged across thread counts"
        );
    }
}

#[test]
fn results_land_in_declaration_order() {
    let mixes = [WorkloadMix::mix1(), WorkloadMix::mix2()];
    let kinds = [K::Baseline, K::FsRankPartitioned];
    let plan = ExperimentPlan::grid(&mixes, &kinds, CYCLES, 7);
    let runs = Engine::with_threads(4).run(&plan);
    // Slot i must hold the result of job i: re-run each job serially and
    // compare against the slot the engine filled.
    for (i, job) in plan.jobs().iter().enumerate() {
        let solo = job.run().expect("feasible");
        let slot = runs[i].as_ref().expect("feasible");
        assert_eq!(solo.stats.ipcs(), slot.stats.ipcs(), "slot {i} out of order");
    }
}

#[test]
fn one_infeasible_job_does_not_poison_the_plan() {
    let mut plan = ExperimentPlan::new();
    plan.push(ExperimentJob::new(WorkloadMix::mix1(), K::FsRankPartitioned, CYCLES, 7));
    plan.push(
        ExperimentJob::new(WorkloadMix::mix1(), K::FsRankPartitioned, CYCLES, 7)
            .with_faults(infeasible()),
    );
    plan.push(ExperimentJob::new(WorkloadMix::mix2(), K::Baseline, CYCLES, 7));
    let runs = Engine::with_threads(2).run(&plan);
    assert!(runs[0].is_ok(), "healthy job failed: {:?}", runs[0].as_ref().err());
    assert!(
        matches!(runs[1], Err(FsmcError::Solve(_))),
        "infeasible job should fail with a solve error, got {:?}",
        runs[1].as_ref().map(|_| ())
    );
    assert!(runs[2].is_ok(), "healthy job failed: {:?}", runs[2].as_ref().err());
}

#[test]
fn engine_map_preserves_input_order() {
    let items: Vec<u64> = (0..23).collect();
    let out = Engine::with_threads(5).map(&items, |i, &x| (i, x * x));
    for (i, &(slot, sq)) in out.iter().enumerate() {
        assert_eq!(slot, i);
        assert_eq!(sq, (i as u64) * (i as u64));
    }
}
