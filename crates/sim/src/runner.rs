//! Experiment orchestration: run a workload mix under a policy, with the
//! baseline run supplying the normalisation IPCs for the paper's
//! weighted-IPC metric.

use crate::config::SystemConfig;
use crate::stats::SystemStats;
use crate::system::System;
use fsmc_core::sched::SchedulerKind;
use fsmc_workload::WorkloadMix;

/// The result of running one mix under one scheduler.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub mix_name: &'static str,
    pub scheduler: SchedulerKind,
    pub stats: SystemStats,
    /// Per-core IPCs of this run.
    pub ipcs: Vec<f64>,
}

impl RunResult {
    /// The paper's metric: sum over cores of (IPC / baseline IPC).
    pub fn weighted_ipc_vs(&self, baseline: &RunResult) -> f64 {
        self.stats.weighted_ipc_vs(&baseline.ipcs)
    }
}

/// Runs `mix` under `scheduler` for `cycles` DRAM cycles with a fixed
/// seed, so policy comparisons see identical instruction streams.
///
/// ```no_run
/// use fsmc_sim::runner::run_mix;
/// use fsmc_core::sched::SchedulerKind;
/// use fsmc_workload::WorkloadMix;
///
/// let mix = WorkloadMix::mix1();
/// let base = run_mix(&mix, SchedulerKind::Baseline, 60_000, 42);
/// let fs = run_mix(&mix, SchedulerKind::FsRankPartitioned, 60_000, 42);
/// println!("weighted IPC: {:.2}", fs.weighted_ipc_vs(&base));
/// ```
pub fn run_mix(mix: &WorkloadMix, scheduler: SchedulerKind, cycles: u64, seed: u64) -> RunResult {
    let cfg = SystemConfig::with_cores(scheduler, mix.cores() as u8);
    let mut sys = System::from_mix(&cfg, mix, seed);
    let stats = sys.run_cycles(cycles);
    RunResult { mix_name: mix.name, scheduler, ipcs: stats.ipcs(), stats }
}

/// Runs the baseline plus each listed policy on one mix, returning
/// `(baseline, runs)`; weighted IPCs come from
/// [`RunResult::weighted_ipc_vs`] against the baseline element.
pub fn run_mix_suite(
    mix: &WorkloadMix,
    schedulers: &[SchedulerKind],
    cycles: u64,
    seed: u64,
) -> (RunResult, Vec<RunResult>) {
    let baseline = run_mix(mix, SchedulerKind::Baseline, cycles, seed);
    let runs = schedulers.iter().map(|&k| run_mix(mix, k, cycles, seed)).collect();
    (baseline, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_workload::BenchProfile;

    #[test]
    fn baseline_normalises_to_core_count() {
        let mix = WorkloadMix::rate(BenchProfile::zeusmp(), 4);
        let base = run_mix(&mix, SchedulerKind::Baseline, 15_000, 11);
        let w = base.weighted_ipc_vs(&base);
        assert!((w - 4.0).abs() < 1e-9, "baseline weighted IPC = {w}");
    }

    #[test]
    fn secure_policies_score_below_baseline() {
        let mix = WorkloadMix::rate(BenchProfile::milc(), 8);
        let (base, runs) = run_mix_suite(
            &mix,
            &[SchedulerKind::FsRankPartitioned, SchedulerKind::TpBankPartitioned { turn: 60 }],
            20_000,
            13,
        );
        for r in &runs {
            let w = r.weighted_ipc_vs(&base);
            assert!(w < 8.0, "{} scored {w} >= 8", r.scheduler);
            assert!(w > 0.0);
        }
    }

    #[test]
    fn identical_seed_gives_identical_results() {
        let mix = WorkloadMix::rate(BenchProfile::astar(), 2);
        let a = run_mix(&mix, SchedulerKind::FsRankPartitioned, 8_000, 5);
        let b = run_mix(&mix, SchedulerKind::FsRankPartitioned, 8_000, 5);
        assert_eq!(a.ipcs, b.ipcs);
    }
}
