//! Experiment orchestration: run a workload mix under a policy, with the
//! baseline run supplying the normalisation IPCs for the paper's
//! weighted-IPC metric.
//!
//! Runs return `Result<RunResult, FsmcError>`, so one infeasible or
//! faulted policy yields a structured error in its slot of a
//! [`SuiteResult`] instead of killing the whole suite. The `_faulted`
//! variants additionally apply a [`FaultPlan`] to one scheduler's run.
//!
//! These helpers are thin wrappers over the [`crate::engine`] layer:
//! [`run_mix_suite`] declares one [`ExperimentPlan`] (baseline + each
//! policy) and executes it on the `FSMC_THREADS`-sized worker pool with
//! a shared, memoized trace cache. Larger grids should build their own
//! plan and hand it to [`Engine::run`] directly.

use crate::engine::{Engine, ExperimentJob, ExperimentPlan};
use crate::error::FsmcError;
use crate::faults::FaultPlan;
use crate::stats::SystemStats;
use fsmc_core::sched::SchedulerKind;
use fsmc_cpu::trace::TraceSource;
use fsmc_cpu::{write_trace, FileTrace, TraceError};
use fsmc_workload::{SyntheticTrace, TraceCache, WorkloadMix};

/// The result of running one mix under one scheduler.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub mix_name: &'static str,
    pub scheduler: SchedulerKind,
    pub stats: SystemStats,
    /// Per-core IPCs of this run.
    pub ipcs: Vec<f64>,
    /// Observability metrics, present when the job ran with
    /// [`crate::engine::ExperimentJob::with_metrics`].
    pub metrics: Option<fsmc_obs::MetricsReport>,
}

impl RunResult {
    /// The paper's metric: sum over cores of (IPC / baseline IPC).
    pub fn weighted_ipc_vs(&self, baseline: &RunResult) -> f64 {
        self.stats.weighted_ipc_vs(&baseline.ipcs)
    }
}

/// The outcome of a whole suite: the baseline plus one slot per policy,
/// each of which may independently have failed.
#[derive(Debug)]
pub struct SuiteResult {
    pub mix_name: &'static str,
    pub baseline: Result<RunResult, FsmcError>,
    /// One `(policy, outcome)` pair per requested scheduler, in order.
    pub runs: Vec<(SchedulerKind, Result<RunResult, FsmcError>)>,
}

impl SuiteResult {
    /// Unwraps a suite where every run is expected to have succeeded,
    /// returning `(baseline, runs)` as the pre-fault-injection API did.
    ///
    /// # Panics
    ///
    /// Panics with the structured error if any run failed.
    pub fn expect_ok(self) -> (RunResult, Vec<RunResult>) {
        let mix = self.mix_name;
        let base = self.baseline.unwrap_or_else(|e| panic!("{mix}: baseline failed: {e}"));
        let runs = self
            .runs
            .into_iter()
            .map(|(k, r)| r.unwrap_or_else(|e| panic!("{mix}: {k} failed: {e}")))
            .collect();
        (base, runs)
    }

    /// The failed runs, if any, as `(policy, error)` pairs.
    pub fn failures(&self) -> Vec<(SchedulerKind, &FsmcError)> {
        self.runs.iter().filter_map(|(k, r)| r.as_ref().err().map(|e| (*k, e))).collect()
    }
}

/// Builds the per-core trace sources, routing any trace the plan corrupts
/// through the text format so the corruption hits the real parser.
///
/// With a [`TraceCache`], uncorrupted streams replay the memoized tape
/// for `(profile, seed + core)` — op-for-op identical to fresh synthesis
/// — so the N policy runs sharing a mix synthesize each stream once.
/// Corrupted streams always bypass the cache: the corruption is specific
/// to this run's fault plan.
pub(crate) fn build_traces(
    mix: &WorkloadMix,
    seed: u64,
    plan: &FaultPlan,
    cache: Option<&TraceCache>,
) -> Result<Vec<Box<dyn TraceSource>>, FsmcError> {
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(mix.cores());
    for (i, p) in mix.profiles.iter().enumerate() {
        let core_seed = seed + i as u64;
        if let Some(period) = plan.trace_corruption(i) {
            let mut synth = SyntheticTrace::new(*p, core_seed);
            let mut buf = Vec::new();
            write_trace(&mut synth, 256, &mut buf).map_err(TraceError::from)?;
            let text = String::from_utf8_lossy(&buf);
            let corrupted = plan.corrupt_trace_text(&text, period);
            traces.push(Box::new(FileTrace::from_reader(corrupted.as_bytes())?));
        } else if let Some(cache) = cache {
            traces.push(Box::new(cache.source(*p, core_seed)));
        } else {
            traces.push(Box::new(SyntheticTrace::new(*p, core_seed)));
        }
    }
    Ok(traces)
}

/// Runs `mix` under `scheduler` for `cycles` DRAM cycles with a fixed
/// seed, so policy comparisons see identical instruction streams.
///
/// # Errors
///
/// Any [`FsmcError`]: infeasible pipeline, bad configuration, runtime
/// timing poisoning, or a watchdog-detected stall.
///
/// ```no_run
/// use fsmc_sim::runner::run_mix;
/// use fsmc_core::sched::SchedulerKind;
/// use fsmc_workload::WorkloadMix;
///
/// let mix = WorkloadMix::mix1();
/// let base = run_mix(&mix, SchedulerKind::Baseline, 60_000, 42).unwrap();
/// let fs = run_mix(&mix, SchedulerKind::FsRankPartitioned, 60_000, 42).unwrap();
/// println!("weighted IPC: {:.2}", fs.weighted_ipc_vs(&base));
/// ```
pub fn run_mix(
    mix: &WorkloadMix,
    scheduler: SchedulerKind,
    cycles: u64,
    seed: u64,
) -> Result<RunResult, FsmcError> {
    run_mix_faulted(mix, scheduler, cycles, seed, &FaultPlan::default())
}

/// [`run_mix`] with a [`FaultPlan`] applied: configured-timing
/// perturbations before construction, trace corruption during workload
/// setup, and command faults / device-timing skew armed on the built
/// controller before the first cycle.
///
/// # Errors
///
/// As for [`run_mix`], plus whatever the injected faults provoke (e.g.
/// [`FsmcError::Trace`] from a corrupted record, [`FsmcError::Timing`]
/// once a stretched device poisons the pipeline).
pub fn run_mix_faulted(
    mix: &WorkloadMix,
    scheduler: SchedulerKind,
    cycles: u64,
    seed: u64,
    plan: &FaultPlan,
) -> Result<RunResult, FsmcError> {
    ExperimentJob::new(mix.clone(), scheduler, cycles, seed).with_faults(plan.clone()).run()
}

/// Runs the baseline plus each listed policy on one mix. Failures stay
/// in their slot of the [`SuiteResult`]; the other runs complete.
pub fn run_mix_suite(
    mix: &WorkloadMix,
    schedulers: &[SchedulerKind],
    cycles: u64,
    seed: u64,
) -> SuiteResult {
    run_mix_suite_faulted(mix, schedulers, cycles, seed, &[])
}

/// [`run_mix_suite`] with per-scheduler fault plans: each `(policy,
/// plan)` pair in `faults` applies that plan to that policy's run. The
/// baseline is never faulted (it supplies the normalisation IPCs).
///
/// Runs execute on the [`Engine`] (worker pool sized by `FSMC_THREADS`)
/// against one shared [`TraceCache`]; results are identical to the old
/// serial loop at any thread count.
pub fn run_mix_suite_faulted(
    mix: &WorkloadMix,
    schedulers: &[SchedulerKind],
    cycles: u64,
    seed: u64,
    faults: &[(SchedulerKind, FaultPlan)],
) -> SuiteResult {
    let plan_for = |k: SchedulerKind| {
        faults.iter().find(|(fk, _)| *fk == k).map(|(_, p)| p.clone()).unwrap_or_default()
    };
    let mut plan = ExperimentPlan::new();
    plan.push(ExperimentJob::new(mix.clone(), SchedulerKind::Baseline, cycles, seed));
    for &k in schedulers {
        plan.push(ExperimentJob::new(mix.clone(), k, cycles, seed).with_faults(plan_for(k)));
    }
    let mut results = Engine::from_env().run(&plan).into_iter();
    let baseline = results.next().expect("baseline slot declared");
    let runs = schedulers.iter().copied().zip(results).collect();
    SuiteResult { mix_name: mix.name, baseline, runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_workload::BenchProfile;

    #[test]
    fn baseline_normalises_to_core_count() {
        let mix = WorkloadMix::rate(BenchProfile::zeusmp(), 4);
        let base = run_mix(&mix, SchedulerKind::Baseline, 15_000, 11).unwrap();
        let w = base.weighted_ipc_vs(&base);
        assert!((w - 4.0).abs() < 1e-9, "baseline weighted IPC = {w}");
    }

    #[test]
    fn secure_policies_score_below_baseline() {
        let mix = WorkloadMix::rate(BenchProfile::milc(), 8);
        let (base, runs) = run_mix_suite(
            &mix,
            &[SchedulerKind::FsRankPartitioned, SchedulerKind::TpBankPartitioned { turn: 60 }],
            20_000,
            13,
        )
        .expect_ok();
        for r in &runs {
            let w = r.weighted_ipc_vs(&base);
            assert!(w < 8.0, "{} scored {w} >= 8", r.scheduler);
            assert!(w > 0.0);
        }
    }

    #[test]
    fn identical_seed_gives_identical_results() {
        let mix = WorkloadMix::rate(BenchProfile::astar(), 2);
        let a = run_mix(&mix, SchedulerKind::FsRankPartitioned, 8_000, 5).unwrap();
        let b = run_mix(&mix, SchedulerKind::FsRankPartitioned, 8_000, 5).unwrap();
        assert_eq!(a.ipcs, b.ipcs);
    }
}
