//! System configuration (the paper's Table 1).

use fsmc_core::sched::fs::EnergyOptions;
use fsmc_core::sched::SchedulerKind;
use fsmc_cpu::CoreConfig;
use fsmc_dram::{DeviceGeneration, Geometry, TimingParams};

/// Everything needed to build a [`crate::System`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// The device generation `geometry`/`timing` were derived from.
    /// Kept alongside the expanded parameters so reports and result
    /// files can name the part without re-deriving it.
    pub device: DeviceGeneration,
    pub geometry: Geometry,
    pub timing: TimingParams,
    pub core: CoreConfig,
    pub scheduler: SchedulerKind,
    /// Cores = security domains (the paper's experiments are 1:1).
    pub cores: u8,
    /// Per-core MSHR entries (merging duplicate outstanding reads).
    pub mshr_capacity: usize,
    /// Per-core prefetch-buffer lines.
    pub prefetch_buffer: usize,
    /// FS energy optimisations (ignored by other schedulers).
    pub energy_options: EnergyOptions,
    /// Record the command stream for post-hoc legality checking.
    pub record_commands: bool,
    /// Starvation watchdog: if no demand read retires for this many DRAM
    /// cycles while reads are outstanding, [`crate::System::try_run_cycles`]
    /// aborts with a [`crate::error::FsmcError::Watchdog`] diagnosis.
    /// Zero disables the watchdog.
    pub watchdog_cycles: u64,
    /// Online invariant monitoring: every issued command is checked
    /// incrementally against the Table-1 rules plus the controller's
    /// advertised FS cadence, refresh deadlines and queue bounds.
    /// Breaches abort [`crate::System::try_run_cycles`] with a
    /// [`crate::error::FsmcError::Invariant`] the cycle they occur.
    /// Implies command recording at the device level.
    pub monitor: bool,
    /// Arm per-domain observability metrics from construction
    /// ([`crate::System::enable_metrics`]): log-bucketed latency
    /// histograms, row-locality counters and queue-occupancy sampling.
    /// Off by default — the disabled hooks are a branch on `None`.
    pub collect_metrics: bool,
}

impl SystemConfig {
    /// Table 1: 8 cores at 3.2 GHz, one DDR3-1600 channel with 8 ranks of
    /// 8 banks.
    pub fn paper_default(scheduler: SchedulerKind) -> Self {
        SystemConfig::for_device(DeviceGeneration::Ddr3_1600, scheduler, 8)
    }

    /// The paper-default system resized to `cores` domains (Figure 10).
    pub fn with_cores(scheduler: SchedulerKind, cores: u8) -> Self {
        SystemConfig { cores, ..SystemConfig::paper_default(scheduler) }
    }

    /// A Table-1 system on a different device generation: the geometry
    /// and timing come from the generation's [`fsmc_dram::DeviceProfile`],
    /// everything else keeps the paper's values.
    pub fn for_device(device: DeviceGeneration, scheduler: SchedulerKind, cores: u8) -> Self {
        let profile = device.profile();
        SystemConfig {
            device,
            geometry: profile.geometry,
            timing: profile.timing,
            core: CoreConfig::paper_default(),
            scheduler,
            cores,
            mshr_capacity: 32,
            prefetch_buffer: 32,
            energy_options: EnergyOptions::default(),
            record_commands: false,
            watchdog_cycles: 20_000,
            monitor: false,
            collect_metrics: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_1() {
        let c = SystemConfig::paper_default(SchedulerKind::Baseline);
        assert_eq!(c.cores, 8);
        assert_eq!(c.core.rob_size, 64);
        assert_eq!(c.core.width, 4);
        assert_eq!(c.geometry.ranks_per_channel(), 8);
        assert_eq!(c.geometry.banks_per_rank(), 8);
        assert_eq!(c.timing.cpu_ratio, 4);
    }

    #[test]
    fn with_cores_resizes() {
        let c = SystemConfig::with_cores(SchedulerKind::FsRankPartitioned, 2);
        assert_eq!(c.cores, 2);
        assert_eq!(c.device, DeviceGeneration::Ddr3_1600);
    }

    #[test]
    fn for_device_expands_the_profile() {
        for device in DeviceGeneration::all() {
            let profile = device.profile();
            let c = SystemConfig::for_device(device, SchedulerKind::FsRankPartitioned, 8);
            assert_eq!(c.device, device);
            assert_eq!(c.geometry, profile.geometry);
            assert_eq!(c.timing, profile.timing);
            assert_eq!(c.cores, 8);
        }
        // The DDR3 profile IS the paper default, field for field.
        let ddr3 = SystemConfig::for_device(
            DeviceGeneration::Ddr3_1600,
            SchedulerKind::FsRankPartitioned,
            8,
        );
        assert_eq!(ddr3, SystemConfig::paper_default(SchedulerKind::FsRankPartitioned));
    }
}
