//! The system simulator: cores + MSHRs + controller + DRAM in one loop.

use crate::config::SystemConfig;
use crate::error::{FsmcError, InvariantBreach, TimingFault, WatchdogReport};
use crate::monitor::InvariantMonitor;
use crate::stats::SystemStats;
use fsmc_core::domain::{DomainId, PartitionPolicy};
use fsmc_core::error::ConfigError;
use fsmc_core::sched::baseline::BaselineScheduler;
use fsmc_core::sched::fs::{FsScheduler, FsVariant};
use fsmc_core::sched::tp::TpScheduler;
use fsmc_core::sched::{
    Completion, MemoryController, ReconfigEvent, SchedEvent, SchedulerKind, SlotGrantKind,
};
use fsmc_core::txn::{Transaction, TxnId, TxnKind};
use fsmc_cpu::trace::TraceSource;
use fsmc_cpu::{CoreIdle, MshrFile, MshrOutcome, OooCore, PrefetchBuffer, SubmitResult};
use fsmc_dram::command::TimedCommand;
use fsmc_dram::geometry::LineAddr;
use fsmc_dram::{CommandKind, ObsCommand};
use fsmc_energy::{EnergyModel, PowerParams};
use fsmc_obs::{
    CmdClass, LaneLayout, LanePartition, MetricsCollector, MetricsReport, SlotKind, TraceEvent,
    TraceSink,
};
use fsmc_workload::{BenchProfile, SyntheticTrace, WorkloadMix};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A completion waiting for its delivery cycle, ordered by finish time.
#[derive(Debug, Clone, Copy)]
struct PendingDelivery {
    finish: u64,
    seq: u64,
    completion: Completion,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        (self.finish, self.seq) == (other.finish, other.seq)
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.finish, self.seq).cmp(&(other.finish, other.seq))
    }
}

/// A reconfiguration waiting for its drained epoch boundary.
///
/// Between `requested_at` and `adopt_at` the old schedule keeps running
/// unchanged (the quiesce window); at `adopt_at` — an interval-start
/// decision cycle chosen by [`MemoryController::reconfig_boundary`] — the
/// accumulated events are applied atomically: churned cores detach or
/// attach, the controller re-solves and re-certifies, the monitor arms
/// the new cadence from exactly that cycle.
#[derive(Debug, Clone)]
struct PendingReconfig {
    requested_at: u64,
    adopt_at: u64,
    events: Vec<ReconfigEvent>,
}

/// A complete simulated machine: one memory channel and its cores.
///
/// ```
/// use fsmc_sim::{System, SystemConfig};
/// use fsmc_core::sched::SchedulerKind;
/// use fsmc_workload::BenchProfile;
///
/// let cfg = SystemConfig::paper_default(SchedulerKind::FsRankPartitioned);
/// let mut system = System::homogeneous(&cfg, BenchProfile::zeusmp(), 1);
/// let stats = system.run_cycles(2_000);
/// assert!(stats.ipc_sum() > 0.0);
/// ```
pub struct System {
    cfg: SystemConfig,
    mc: Box<dyn MemoryController>,
    cores: Vec<OooCore>,
    mshrs: Vec<MshrFile>,
    pf_buffers: Vec<PrefetchBuffer>,
    /// Metadata for in-flight demand reads: `(id, core index, local
    /// line)`. A flat vector, not a map — the population is bounded by
    /// `cores * mshr_capacity`, so linear scans beat hashing and the
    /// hot path never allocates.
    txn_meta: Vec<(TxnId, u32, LineAddr)>,
    deliveries: BinaryHeap<Reverse<PendingDelivery>>,
    dram_cycle: u64,
    next_txn_seq: u64,
    delivery_seq: u64,
    policy: PartitionPolicy,
    reads_completed: u64,
    /// Last DRAM cycle at which a demand read retired (or the pipeline
    /// was verifiably idle) — the watchdog's progress marker.
    last_progress: u64,
    /// Per-core lines with writes still queued in the controller: demand
    /// reads to these lines forward from the store (Section 5.1's
    /// "bypassing from stores to loads"). Flat `(line, count)` lists for
    /// the same reason as `txn_meta`.
    pending_writes: Vec<Vec<(LineAddr, u32)>>,
    /// Reads served by store-to-load forwarding.
    forwarded_reads: u64,
    /// Domain whose demand-read completions are being recorded.
    observe_domain: Option<u8>,
    /// (finish cycle, latency) pairs for the observed domain.
    observations: Vec<(u64, u64)>,
    /// Online invariant monitor ([`SystemConfig::monitor`]).
    monitor: Option<InvariantMonitor>,
    /// Commands already seen by the monitor, retained for
    /// [`System::take_command_log`] when recording is also on.
    monitor_log: Vec<TimedCommand>,
    /// Degradation state at the last monitor drain, to detect schedule
    /// swaps and re-arm the cadence spec.
    was_degraded: bool,
    /// Event-driven time skipping enabled? Cleared by
    /// [`System::disable_fastpath`], by `FSMC_NO_FASTPATH=1`, and by any
    /// [`System::controller_mut`] access (external mutation may
    /// invalidate the controllers' `next_event` contract).
    fastpath: bool,
    /// Reusable per-step completion buffer (hot path, no allocation).
    completion_buf: Vec<Completion>,
    /// Reusable buffer for draining the command log into the monitor.
    monitor_buf: Vec<TimedCommand>,
    /// Per-core scratch: does core `i` execute this DRAM cycle's CPU
    /// sub-cycles, or is it provably stalled throughout (bulk-charged)?
    core_active: Vec<bool>,
    /// Cached [`MemoryController::next_event`] bound: on the fast path,
    /// ticks strictly before this cycle are provable no-ops and are
    /// elided even when cores stay busy. Every `enqueue` lowers it by
    /// the policy's [`MemoryController::enqueue_event_hint`] for the new
    /// transaction (conservative default: re-tick next cycle).
    mc_next_tick: u64,
    /// Scan hysteresis: is a quiet tick allowed to pay for a
    /// [`MemoryController::next_event`] scan? Re-armed by every issuing
    /// tick, disarmed by a scan that finds no gap — in a dense burst a
    /// gap all but requires another issue first, so re-scanning sooner
    /// is almost always wasted work. Purely an effort gate: scans
    /// are pure and elision only drops proven no-op ticks, so results
    /// are bit-identical at any scan frequency.
    elide_armed: bool,
    /// Telemetry: DRAM cycles handled without per-cycle stepping — jumped
    /// outright or batch-ticked by [`System::skip_ahead`].
    fp_skipped: u64,
    /// Telemetry: controller ticks elided inside stepped cycles.
    fp_elided: u64,
    /// Observability: trace-event recorder ([`System::enable_tracing`]).
    /// `None` keeps every hook a single branch — nothing is built,
    /// nothing allocates, results are bit-identical to a build without
    /// the hooks.
    trace: Option<TraceSink>,
    /// Observability: per-domain metrics ([`System::enable_metrics`]).
    obs_metrics: Option<MetricsCollector>,
    /// Reusable drain buffer for the device-level obs command log.
    obs_cmd_buf: Vec<ObsCommand>,
    /// Reusable drain buffer for scheduler slot/degradation events.
    obs_sched_buf: Vec<SchedEvent>,
    /// Is core `i` an active tenant? Distinct from the per-step
    /// `core_active` scratch: a detached core (left, killed by a dead
    /// rank, or not yet joined) is bulk-charged as stalled every cycle
    /// and never vetoes a skip, while its domain's slots carry dummies.
    attached: Vec<bool>,
    /// Scheduled reconfiguration events, sorted by fire cycle (stable
    /// for same-cycle events). [`System::step`] promotes due events into
    /// `pending_reconfig`.
    reconfig_queue: Vec<(u64, ReconfigEvent)>,
    /// The reconfiguration currently quiescing toward its boundary.
    pending_reconfig: Option<PendingReconfig>,
    /// A re-certification failure at adoption, surfaced by the next
    /// health check as a typed error.
    reconfig_error: Option<FsmcError>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("scheduler", &self.cfg.scheduler)
            .field("cores", &self.cores.len())
            .field("dram_cycle", &self.dram_cycle)
            .finish()
    }
}

/// Builds the controller `cfg` describes; FS variants report solver or
/// configuration failures instead of panicking.
pub fn try_build_controller(cfg: &SystemConfig) -> Result<Box<dyn MemoryController>, FsmcError> {
    let g = cfg.geometry;
    let t = cfg.timing;
    let n = cfg.cores;
    let fs = |variant, prefetch| {
        FsScheduler::try_new(g, t, n, variant, prefetch, cfg.energy_options)
            .map(|s| Box::new(s) as Box<dyn MemoryController>)
            .map_err(FsmcError::from)
    };
    Ok(match cfg.scheduler {
        SchedulerKind::Baseline => Box::new(BaselineScheduler::new(g, t, n, false)),
        SchedulerKind::BaselinePrefetch => Box::new(BaselineScheduler::new(g, t, n, true)),
        SchedulerKind::TpBankPartitioned { turn } => {
            Box::new(TpScheduler::new(g, t, n, true, turn))
        }
        SchedulerKind::TpNoPartition { turn } => Box::new(TpScheduler::new(g, t, n, false, turn)),
        SchedulerKind::TpFence { period } => {
            Box::new(fsmc_core::sched::fence::FenceScheduler::new(g, t, n, period))
        }
        SchedulerKind::FsRankPartitioned => fs(FsVariant::RankPartitioned, false)?,
        SchedulerKind::FsRankPartitionedPrefetch => fs(FsVariant::RankPartitioned, true)?,
        SchedulerKind::FsBankPartitioned => fs(FsVariant::BankPartitioned, false)?,
        SchedulerKind::FsReorderedBankPartitioned => {
            fs(FsVariant::ReorderedBankPartitioned, false)?
        }
        SchedulerKind::FsNoPartitionNaive => fs(FsVariant::NoPartitionNaive, false)?,
        SchedulerKind::FsTripleAlternation => fs(FsVariant::TripleAlternation, false)?,
        SchedulerKind::ChannelPartitioned => {
            Box::new(fsmc_core::sched::channel_part::ChannelPartitionedController::new(g, t, n))
        }
        SchedulerKind::FsMultiChannel { channels } => {
            Box::new(fsmc_core::sched::multi_channel::MultiChannelFs::new(
                g,
                t,
                n,
                channels,
                FsVariant::RankPartitioned,
                cfg.energy_options,
            ))
        }
    })
}

fn build_controller(cfg: &SystemConfig) -> Box<dyn MemoryController> {
    try_build_controller(cfg).unwrap_or_else(|e| panic!("controller construction failed: {e}"))
}

impl System {
    /// Builds a system with one trace per core.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != cfg.cores`.
    pub fn new(cfg: &SystemConfig, traces: Vec<Box<dyn TraceSource>>) -> Self {
        let mc = build_controller(cfg);
        System::with_controller(cfg, traces, mc)
    }

    /// Fallible [`System::new`]: solver and configuration failures come
    /// back as [`FsmcError`] values instead of panics.
    ///
    /// # Errors
    ///
    /// [`FsmcError::Config`] for a trace/core-count mismatch,
    /// [`FsmcError::Solve`] when no pipeline (not even the conservative
    /// fallback) is feasible for the configured timing.
    pub fn try_new(
        cfg: &SystemConfig,
        traces: Vec<Box<dyn TraceSource>>,
    ) -> Result<Self, FsmcError> {
        if traces.len() != cfg.cores as usize {
            return Err(ConfigError::new(format!(
                "one trace per core required: {} traces for {} cores",
                traces.len(),
                cfg.cores
            ))
            .into());
        }
        let mc = try_build_controller(cfg)?;
        Ok(System::with_controller(cfg, traces, mc))
    }

    /// Fallible [`System::from_mix`].
    ///
    /// # Errors
    ///
    /// As for [`System::try_new`].
    pub fn try_from_mix(
        cfg: &SystemConfig,
        mix: &WorkloadMix,
        seed: u64,
    ) -> Result<Self, FsmcError> {
        let traces: Vec<Box<dyn TraceSource>> = mix
            .profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Box::new(SyntheticTrace::new(*p, seed + i as u64)) as Box<dyn TraceSource>
            })
            .collect();
        System::try_new(cfg, traces)
    }

    /// Builds a system around a caller-supplied controller — e.g. an
    /// [`FsScheduler`] with a weighted SLA
    /// ([`FsScheduler::with_slot_weights`]), or a custom policy
    /// implementing [`MemoryController`]. `cfg.scheduler` should still
    /// describe the controller so address mapping matches its partition
    /// policy.
    ///
    /// # Panics
    ///
    /// Panics if `traces.len() != cfg.cores`.
    pub fn with_controller(
        cfg: &SystemConfig,
        traces: Vec<Box<dyn TraceSource>>,
        controller: Box<dyn MemoryController>,
    ) -> Self {
        assert_eq!(traces.len(), cfg.cores as usize, "one trace per core required");
        let mut mc = controller;
        if cfg.record_commands || cfg.monitor {
            mc.record_commands();
        }
        let monitor = cfg.monitor.then(|| InvariantMonitor::new(cfg, mc.cadence_spec()));
        let was_degraded = mc.stats().degraded;
        let mut sys = System {
            cfg: *cfg,
            mc,
            cores: traces.into_iter().map(|t| OooCore::new(cfg.core, t)).collect(),
            mshrs: (0..cfg.cores).map(|_| MshrFile::new(cfg.mshr_capacity)).collect(),
            pf_buffers: (0..cfg.cores).map(|_| PrefetchBuffer::new(cfg.prefetch_buffer)).collect(),
            txn_meta: Vec::new(),
            deliveries: BinaryHeap::new(),
            dram_cycle: 0,
            next_txn_seq: 1,
            delivery_seq: 0,
            policy: cfg.scheduler.partition_policy(),
            reads_completed: 0,
            last_progress: 0,
            pending_writes: (0..cfg.cores).map(|_| Vec::new()).collect(),
            forwarded_reads: 0,
            observe_domain: None,
            observations: Vec::new(),
            monitor,
            monitor_log: Vec::new(),
            was_degraded,
            fastpath: !crate::env::no_fastpath(),
            completion_buf: Vec::new(),
            monitor_buf: Vec::new(),
            core_active: vec![true; cfg.cores as usize],
            mc_next_tick: 0,
            elide_armed: true,
            fp_skipped: 0,
            fp_elided: 0,
            trace: None,
            obs_metrics: None,
            obs_cmd_buf: Vec::new(),
            obs_sched_buf: Vec::new(),
            attached: vec![true; cfg.cores as usize],
            reconfig_queue: Vec::new(),
            pending_reconfig: None,
            reconfig_error: None,
        };
        if cfg.collect_metrics {
            sys.enable_metrics();
        }
        sys
    }

    /// `cores` copies of one benchmark (the paper's rate mode).
    pub fn homogeneous(cfg: &SystemConfig, profile: BenchProfile, seed: u64) -> Self {
        let traces: Vec<Box<dyn TraceSource>> = (0..cfg.cores)
            .map(|i| {
                Box::new(SyntheticTrace::new(profile, seed + i as u64)) as Box<dyn TraceSource>
            })
            .collect();
        System::new(cfg, traces)
    }

    /// One core per profile in the mix.
    ///
    /// # Panics
    ///
    /// Panics if the mix size differs from `cfg.cores`.
    pub fn from_mix(cfg: &SystemConfig, mix: &WorkloadMix, seed: u64) -> Self {
        assert_eq!(mix.cores(), cfg.cores as usize, "mix size must match core count");
        let traces: Vec<Box<dyn TraceSource>> = mix
            .profiles
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Box::new(SyntheticTrace::new(*p, seed + i as u64)) as Box<dyn TraceSource>
            })
            .collect();
        System::new(cfg, traces)
    }

    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    pub fn dram_cycle(&self) -> u64 {
        self.dram_cycle
    }

    pub fn controller(&self) -> &dyn MemoryController {
        self.mc.as_ref()
    }

    /// Mutable controller access, e.g. to arm fault injection
    /// ([`MemoryController::inject_command_faults`]) or model slow
    /// silicon ([`MemoryController::set_device_timing`]) before a run.
    ///
    /// Also disables the event-driven fast path: an externally mutated
    /// controller (delayed commands, stretched refresh, swapped device
    /// timing) may no longer honour the [`MemoryController::next_event`]
    /// lower-bound contract, so the run falls back to per-cycle stepping.
    pub fn controller_mut(&mut self) -> &mut dyn MemoryController {
        self.fastpath = false;
        self.mc.as_mut()
    }

    /// Forces per-cycle stepping for the rest of this system's life.
    /// Equivalent to running under `FSMC_NO_FASTPATH=1`; results are
    /// bit-identical either way, only wall-clock time changes.
    pub fn disable_fastpath(&mut self) {
        self.fastpath = false;
    }

    /// Whether event-driven time skipping is still armed.
    pub fn fastpath_enabled(&self) -> bool {
        self.fastpath
    }

    /// Schedules a reconfiguration event to fire at DRAM cycle `at`.
    ///
    /// The event does not take effect at `at`: it is promoted into a
    /// pending reconfiguration whose adoption waits for the controller's
    /// next drained epoch boundary ([`MemoryController::reconfig_boundary`]),
    /// so the slot cadence is never disturbed mid-interval. A
    /// [`ReconfigEvent::DomainJoin`] detaches its core *now* — the tenant
    /// does not exist until the boundary at which it joins.
    pub fn schedule_reconfig(&mut self, at: u64, event: ReconfigEvent) {
        if let ReconfigEvent::DomainJoin { domain } = event {
            self.detach_core(domain as usize);
        }
        let pos = self
            .reconfig_queue
            .iter()
            .position(|&(a, _)| a > at)
            .unwrap_or(self.reconfig_queue.len());
        self.reconfig_queue.insert(pos, (at, event));
    }

    /// The adoption cycle of the in-flight reconfiguration, if one is
    /// quiescing toward its boundary.
    pub fn reconfig_pending_at(&self) -> Option<u64> {
        self.pending_reconfig.as_ref().map(|p| p.adopt_at)
    }

    /// Whether core `i` is currently an attached tenant.
    pub fn is_attached(&self, core: usize) -> bool {
        self.attached.get(core).copied().unwrap_or(false)
    }

    /// Detaches a tenant: its outstanding reads are forgotten (late
    /// deliveries are discarded) and from now on it is bulk-charged as
    /// stalled. Controller-side queue drops happen in
    /// [`MemoryController::reconfigure`].
    fn detach_core(&mut self, i: usize) {
        if i >= self.attached.len() || !self.attached[i] {
            return;
        }
        self.attached[i] = false;
        self.txn_meta.retain(|&(_, core, _)| core as usize != i);
    }

    /// Promotes due events into the pending reconfiguration and adopts
    /// it once the boundary arrives. Runs at the top of [`System::step`],
    /// so adoption lands *before* the boundary cycle's controller tick.
    fn process_reconfig(&mut self, c: u64) {
        while let Some(&(at, ev)) = self.reconfig_queue.first() {
            if at > c {
                break;
            }
            self.reconfig_queue.remove(0);
            let boundary = self.mc.reconfig_boundary(c);
            match &mut self.pending_reconfig {
                Some(p) => {
                    // Events landing mid-quiesce join the pending epoch
                    // switch; the boundary only ever moves later, so
                    // every merged event still gets its full margin.
                    p.adopt_at = p.adopt_at.max(boundary);
                    p.events.push(ev);
                }
                None => {
                    self.pending_reconfig = Some(PendingReconfig {
                        requested_at: c,
                        adopt_at: boundary,
                        events: vec![ev],
                    });
                }
            }
        }
        if self.pending_reconfig.as_ref().is_some_and(|p| c >= p.adopt_at) {
            self.adopt_reconfig(c);
        }
    }

    /// Atomically adopts the pending reconfiguration at its boundary:
    /// churned cores detach/attach, the controller re-solves and
    /// re-certifies for the degraded topology, and the monitor arms the
    /// post-boundary cadence from exactly this cycle.
    fn adopt_reconfig(&mut self, c: u64) {
        let pending =
            self.pending_reconfig.take().expect("adoption requires a pending reconfiguration");
        debug_assert!(pending.requested_at <= c);
        let (domains, ranks) = (self.attached.len() as u8, self.cfg.geometry.ranks_per_channel());
        for ev in &pending.events {
            match *ev {
                ReconfigEvent::DomainLeave { domain } => self.detach_core(domain as usize),
                ReconfigEvent::DomainJoin { domain } => {
                    let i = domain as usize;
                    if i < self.attached.len() {
                        self.attached[i] = true;
                    }
                }
                ReconfigEvent::DeadRank { .. } if matches!(self.policy, PartitionPolicy::Rank) => {
                    // Under rank partitioning the dead rank's tenant has
                    // nowhere left to live: force-detach it.
                    if let Some(d) = ev.touched_domain(domains, ranks) {
                        self.detach_core(d as usize);
                    }
                }
                _ => {}
            }
        }
        if let Err(e) = self.mc.reconfigure(&pending.events, c) {
            self.reconfig_error = Some(e.into());
        }
        if let Some(mon) = &mut self.monitor {
            // Commands issued before the boundary are judged against the
            // old cadence, commands from the boundary on against the new
            // one — the transition window itself is fully covered.
            mon.set_cadence_at(self.mc.cadence_spec(), c);
        }
        // The controller's event bound predates the reconfiguration:
        // force a re-tick and a fresh scan.
        self.mc_next_tick = c;
        self.elide_armed = true;
    }

    /// Fast-path effectiveness telemetry: `(skipped, elided)` — DRAM
    /// cycles handled without per-cycle stepping (jumped or
    /// batch-ticked), and controller ticks elided as proven no-ops.
    /// Both are zero with the fast path off.
    pub fn fastpath_counters(&self) -> (u64, u64) {
        (self.fp_skipped, self.fp_elided)
    }

    /// Takes the recorded command log (empty unless recording enabled).
    /// With the monitor on, commands it has already drained from the
    /// device are included ahead of any still in the controller.
    pub fn take_command_log(&mut self) -> Vec<TimedCommand> {
        let mut log = std::mem::take(&mut self.monitor_log);
        log.extend(self.mc.take_command_log());
        log
    }

    /// Arms trace-event recording: every command issue, transaction
    /// arrival/retire, FS slot grant, refresh, degradation and fast-path
    /// skip lands in the sink, for [`System::take_trace`]. Call before
    /// running; it does not disable the fast path (skips are themselves
    /// events).
    pub fn enable_tracing(&mut self) {
        self.mc.record_obs();
        if self.trace.is_none() {
            self.trace = Some(TraceSink::new());
        }
    }

    /// Arms per-domain metrics collection (latency histograms, row
    /// locality, queue occupancy), for [`System::metrics_report`].
    pub fn enable_metrics(&mut self) {
        self.mc.record_obs();
        if self.obs_metrics.is_none() {
            let g = self.cfg.geometry;
            self.obs_metrics = Some(MetricsCollector::new(
                self.cfg.cores,
                g.ranks_per_channel(),
                g.banks_per_rank(),
            ));
        }
    }

    /// Whether any observability consumer is armed.
    fn obs_on(&self) -> bool {
        self.trace.is_some() || self.obs_metrics.is_some()
    }

    /// Takes the recorded trace events (empty unless
    /// [`System::enable_tracing`] ran), draining anything still buffered
    /// controller-side first. Recording continues afterwards.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        if self.obs_on() {
            self.drain_obs();
        }
        match &mut self.trace {
            Some(sink) => std::mem::take(sink).into_events(),
            None => Vec::new(),
        }
    }

    /// Freezes the armed metrics into a report (`None` unless
    /// [`System::enable_metrics`] ran). The report is a pure function of
    /// the deterministic event stream: byte-identical at any
    /// `FSMC_THREADS` value and on either simulation path.
    pub fn metrics_report(&mut self) -> Option<MetricsReport> {
        self.obs_metrics.as_ref()?;
        self.drain_obs();
        self.mc.finish(self.dram_cycle);
        let util = self.mc.aggregate_counters().data_bus_utilization();
        self.obs_metrics.as_ref().map(|m| m.finish(util))
    }

    /// The lane layout (geometry + partition policy) the Chrome trace
    /// exporter needs to color command lanes by owning domain.
    pub fn lane_layout(&self) -> LaneLayout {
        let partition = match self.policy {
            PartitionPolicy::Rank => LanePartition::Rank,
            PartitionPolicy::BankStriped => LanePartition::BankStriped,
            PartitionPolicy::None => LanePartition::None,
        };
        LaneLayout {
            domains: self.cfg.cores,
            ranks: self.cfg.geometry.ranks_per_channel(),
            banks_per_rank: self.cfg.geometry.banks_per_rank(),
            partition,
        }
    }

    /// Converts a drained device command into its trace event. Refresh
    /// gets its own event kind; everything else keeps its command class.
    fn obs_command_event(oc: &ObsCommand) -> TraceEvent {
        let class = match oc.cmd.kind {
            CommandKind::Refresh => {
                return TraceEvent::Refresh { cycle: oc.cycle, rank: oc.cmd.rank.0 }
            }
            CommandKind::Activate => CmdClass::Activate,
            CommandKind::Read => CmdClass::Read,
            CommandKind::ReadAp => CmdClass::ReadAp,
            CommandKind::Write => CmdClass::Write,
            CommandKind::WriteAp => CmdClass::WriteAp,
            CommandKind::Precharge => CmdClass::Precharge,
            CommandKind::PrechargeAll => CmdClass::PrechargeAll,
            CommandKind::PowerDownEnter => CmdClass::PowerDownEnter,
            CommandKind::PowerDownExit => CmdClass::PowerDownExit,
        };
        TraceEvent::Command {
            cycle: oc.cycle,
            class,
            rank: oc.cmd.rank.0,
            bank: oc.cmd.bank.0,
            row: oc.cmd.row.0,
            suppressed: oc.suppressed,
            data_done: oc.data_done,
        }
    }

    fn obs_sched_event(ev: &SchedEvent) -> TraceEvent {
        match *ev {
            SchedEvent::SlotGrant { cycle, slot, domain, kind } => {
                let kind = match kind {
                    SlotGrantKind::Demand => SlotKind::Demand,
                    SlotGrantKind::Prefetch => SlotKind::Prefetch,
                    SlotGrantKind::Dummy => SlotKind::Dummy,
                    SlotGrantKind::PowerDown => SlotKind::PowerDown,
                    SlotGrantKind::Bubble => SlotKind::Bubble,
                };
                TraceEvent::SlotGrant { cycle, slot, domain: domain.0, kind }
            }
            SchedEvent::Degraded { cycle } => TraceEvent::Degraded { cycle },
            SchedEvent::Reconfigured { cycle, epoch } => TraceEvent::Reconfigured { cycle, epoch },
        }
    }

    /// Drains controller-side observability logs into the armed
    /// consumers. Commands arrive in issue order, so downstream
    /// classification (row locality) sees exactly the bus stream.
    fn drain_obs(&mut self) {
        if self.mc.has_obs() {
            let mut cmds = std::mem::take(&mut self.obs_cmd_buf);
            cmds.clear();
            self.mc.take_obs_into(&mut cmds);
            for oc in &cmds {
                let ev = Self::obs_command_event(oc);
                if let Some(m) = &mut self.obs_metrics {
                    m.on_event(&ev);
                }
                if let Some(t) = &mut self.trace {
                    t.push(ev);
                }
            }
            self.obs_cmd_buf = cmds;
        }
        if self.mc.has_sched_events() {
            let mut evs = std::mem::take(&mut self.obs_sched_buf);
            evs.clear();
            self.mc.take_sched_events_into(&mut evs);
            for se in &evs {
                let ev = Self::obs_sched_event(se);
                if let Some(m) = &mut self.obs_metrics {
                    m.on_event(&ev);
                }
                if let Some(t) = &mut self.trace {
                    t.push(ev);
                }
            }
            self.obs_sched_buf = evs;
        }
    }

    /// Advances one DRAM bus cycle (and the corresponding CPU cycles).
    pub fn step(&mut self) {
        let c = self.dram_cycle;
        // 0. Reconfiguration protocol: promote due events, adopt at the
        // boundary. A single branch on the common (no reconfig) path.
        if !self.reconfig_queue.is_empty() || self.pending_reconfig.is_some() {
            self.process_reconfig(c);
        }
        // 1. Controller tick into the reusable buffer (no allocation).
        // On the fast path the call itself is elided while the
        // controller's own `next_event` bound proves it a no-op and no
        // enqueue has touched the controller since the bound was taken —
        // this is what makes busy-but-gapped schedules (tRCD/tRP waits,
        // refresh windows) cheap even while cores keep executing.
        let ticked = !self.fastpath || c >= self.mc_next_tick;
        self.fp_elided += !ticked as u64;
        // 2. Deliver previously staged data whose time has come. Staged
        // entries carry lower sequence numbers than anything produced
        // this tick, so draining them first preserves the historical
        // (finish, seq) delivery order. The tick never reads core or
        // delivery state, so draining before it is observationally
        // identical and keeps the elided-tick path free of buffer work.
        while let Some(Reverse(d)) = self.deliveries.peek().copied() {
            if d.finish > c {
                break;
            }
            self.deliveries.pop();
            self.deliver(d.completion);
        }
        // 3. This tick's completions: deliver due data directly (the
        // common case — no heap traffic at all), stage only the future.
        if ticked {
            let mut buf = std::mem::take(&mut self.completion_buf);
            buf.clear();
            self.mc.tick_into(c, &mut buf);
            if self.fastpath && self.mc.device().last_issue_at() != Some(c) {
                // Quiet tick: pay for one next_event call to start (or
                // extend) an elision span — but only while armed, so a
                // dense burst costs one failed scan per issue rather
                // than one per quiet tick. Issuing ticks skip the call —
                // a busy controller would return `c + 1` anyway.
                if self.elide_armed {
                    self.mc_next_tick = self.mc.next_event(c);
                    self.elide_armed = self.mc_next_tick > c + 1;
                }
            } else {
                self.elide_armed = true;
            }
            for completion in buf.drain(..) {
                if completion.finish <= c {
                    self.deliver(completion);
                } else {
                    self.delivery_seq += 1;
                    self.deliveries.push(Reverse(PendingDelivery {
                        finish: completion.finish,
                        seq: self.delivery_seq,
                        completion,
                    }));
                }
            }
            self.completion_buf = buf;
            if self.obs_on() {
                self.drain_obs();
            }
        }
        // 4. CPU cycles. Cores provably stalled for the whole DRAM cycle
        // (full ROB, nothing delivered above, head not retirable before
        // the cycle ends) are bulk-charged instead of stepped — they
        // could not fetch, submit, or retire anyway.
        let ratio = self.cfg.timing.cpu_ratio as u64;
        let end_cpu = (c + 1) * ratio;
        let fastpath = self.fastpath;
        let mut all_stalled = true;
        for (i, core) in self.cores.iter_mut().enumerate() {
            let stalled = !self.attached[i]
                || (fastpath
                    && match core.idle_until() {
                        CoreIdle::Active => false,
                        CoreIdle::BlockedOnMemory => true,
                        CoreIdle::WakeAt(wake) => wake >= end_cpu,
                    });
            self.core_active[i] = !stalled;
            all_stalled &= stalled;
            if stalled {
                core.skip_stalled(ratio, end_cpu);
            }
        }
        if !all_stalled {
            for sub in 0..ratio {
                let cpu_now = c * ratio + sub;
                self.cpu_cycle(cpu_now);
            }
        }
        // 5. Online invariant monitoring over this cycle's commands.
        if self.monitor.is_some() {
            self.drain_monitor(c);
        }
        self.dram_cycle += 1;
    }

    /// Event-driven time skipping: jumps `dram_cycle` forward over a
    /// span in which *nothing observable can happen*, charging each core
    /// the stall cycles it would have accumulated stepping through it.
    ///
    /// Called after [`System::step`]; `limit` is the run loop's own
    /// bound (never skip past the end of the run), `health_checked`
    /// says whether the caller runs [`System::health_check`] per step
    /// (and therefore whether the watchdog clock is live).
    ///
    /// The jump target is the minimum of every source of future events:
    ///
    /// * the controller's [`MemoryController::next_event`] lower bound
    ///   (sound by contract: `tick` is a no-op before it);
    /// * the earliest staged delivery (nothing can retire before it);
    /// * each core's wake-up cycle — any core still executing
    ///   ([`CoreIdle::Active`]) vetoes the skip entirely, a core
    ///   blocked on memory imposes no bound, and a core draining a
    ///   fixed-latency instruction wakes at its retire cycle;
    /// * the monitor's next wall-clock deadline poll (a skipped poll
    ///   would latch a breach at a different cycle);
    /// * the watchdog's trigger point, so a starved run still aborts at
    ///   the exact per-cycle-identical cycle.
    ///
    /// Skipped DRAM cycles are provably stall-only for every core, so
    /// bulk-charging `stall_cycles`/`cpu_cycles` reproduces per-cycle
    /// statistics bit for bit ([`OooCore::skip_stalled`]).
    ///
    /// When every core is stalled but the controller is hot (no cached
    /// no-op bound), the span is handed to [`System::batch_ticks`]
    /// instead: the ticks still run, only the per-step core and delivery
    /// machinery is dropped.
    fn skip_ahead(&mut self, limit: u64, health_checked: bool) {
        if !self.fastpath {
            return;
        }

        let now = self.dram_cycle;
        debug_assert!(now > 0, "skip_ahead runs only after a step");
        let ratio = self.cfg.timing.cpu_ratio as u64;
        let mut target = limit;
        // A skipped span must not cross a reconfiguration point: event
        // promotion and boundary adoption happen in `step`, so both the
        // jump and the batch-tick path stop exactly there.
        if let Some(&(at, _)) = self.reconfig_queue.first() {
            target = target.min(at);
        }
        if let Some(p) = &self.pending_reconfig {
            target = target.min(p.adopt_at);
        }
        if target <= now {
            return;
        }
        // Cheapest veto next: an attached core doing real work next
        // cycle, or waking before any skip could start, ends the attempt
        // before the controller scan is even paid for. Detached cores
        // are bulk-charged like stalled ones and never veto.
        for (i, core) in self.cores.iter().enumerate() {
            if !self.attached[i] {
                continue;
            }
            match core.idle_until() {
                CoreIdle::Active => return,
                CoreIdle::BlockedOnMemory => {}
                CoreIdle::WakeAt(retire_at) => target = target.min(retire_at / ratio),
            }
        }
        if target <= now {
            return;
        }
        if let Some(Reverse(d)) = self.deliveries.peek() {
            target = target.min(d.finish);
        }
        if target <= now {
            return;
        }
        if let Some(mon) = &self.monitor {
            target = target.min(mon.next_wall_deadline(now - 1));
        }
        if health_checked && !self.txn_meta.is_empty() && self.cfg.watchdog_cycles > 0 {
            target = target.min(self.last_progress + self.cfg.watchdog_cycles);
        }
        if target <= now {
            return;
        }
        // Controller side. With a cached no-op bound on file (from the
        // last quiet tick, lowered by enqueue hints since), jump the
        // clock outright. With none — the last tick issued a command,
        // so the controller is hot and a fresh `next_event` scan would
        // bound the skip at about one cycle, costing as much as the
        // tick it saves — grind the controller alone instead: the cores
        // are provably stalled to `target`, so their per-cycle stepping
        // machinery can be dropped even though the ticks cannot.
        if self.mc_next_tick > now {
            let target = target.min(self.mc_next_tick);
            if target <= now {
                return;
            }
            for core in &mut self.cores {
                core.skip_stalled((target - now) * ratio, target * ratio);
            }
            self.fp_skipped += target - now;
            self.dram_cycle = target;
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::FastPath { from: now, to: target, batched: false });
            }
        } else {
            self.batch_ticks(target);
        }
        if health_checked && self.txn_meta.is_empty() {
            // health_check would have restarted the stall clock at every
            // skipped cycle; land it where per-cycle stepping would.
            self.last_progress = self.dram_cycle;
        }
    }

    /// Controller-only execution over a span in which every core is
    /// provably stalled but the controller itself is mid-burst: runs
    /// the same ticks per-cycle stepping would (eliding proven no-op
    /// ticks along the way) without the per-step core-classification
    /// and delivery machinery, then bulk-charges the cores once, like a
    /// skip. Stops at `until`, or earlier as soon as a tick produces a
    /// completion due inside the span (its delivery could wake a core).
    /// Observationally identical to stepping: the same ticks run at the
    /// same cycles, completions are staged with the same sequence
    /// numbers, and the monitor drains after every real tick.
    ///
    /// When no per-tick observer is armed (monitor, command/obs
    /// recording), the span is first offered to the controller's own
    /// [`MemoryController::fast_forward`]: a supporting controller
    /// (the pure-FS family) replays its event loop in one call —
    /// stopping right after the first completion-producing tick, whose
    /// completions then flow through the staging below unchanged —
    /// while the default declines and the per-cycle grind proceeds.
    fn batch_ticks(&mut self, mut until: u64) {
        let start = self.dram_cycle;
        let mut c = start;
        let mut buf = std::mem::take(&mut self.completion_buf);
        let opaque = self.monitor.is_none() && !self.obs_on();
        while c < until {
            buf.clear();
            if opaque {
                let r = self.mc.fast_forward(c, until, &mut buf);
                if r == until && buf.is_empty() {
                    // Clean hop to the span end: every tick in the span
                    // ran (or was provably a no-op) without completing
                    // anything. Re-arm the elision scan and finish.
                    c = until;
                    self.elide_armed = true;
                    break;
                }
                if r > c {
                    // The tick at `r - 1` produced completions (or a
                    // fault); resume the per-tick bookkeeping there.
                    c = r - 1;
                } else {
                    self.mc.tick_into(c, &mut buf);
                }
            } else {
                self.mc.tick_into(c, &mut buf);
            }
            let quiet = self.mc.device().last_issue_at() != Some(c);
            for completion in buf.drain(..) {
                if completion.finish <= c {
                    // Same-cycle data (impossible for real CAS timing,
                    // but mirror `step` exactly): deliver now and stop —
                    // a core may have woken.
                    self.deliver(completion);
                    until = c + 1;
                } else {
                    until = until.min(completion.finish);
                    self.delivery_seq += 1;
                    self.deliveries.push(Reverse(PendingDelivery {
                        finish: completion.finish,
                        seq: self.delivery_seq,
                        completion,
                    }));
                }
            }
            if self.monitor.is_some() {
                self.drain_monitor(c);
            }
            if self.obs_on() {
                self.drain_obs();
            }
            if quiet {
                if self.elide_armed {
                    self.mc_next_tick = self.mc.next_event(c);
                    self.elide_armed = self.mc_next_tick > c + 1;
                    let jump = self.mc_next_tick.min(until);
                    if jump > c + 1 {
                        self.fp_elided += jump - c - 1;
                        c = jump;
                        continue;
                    }
                }
            } else {
                self.elide_armed = true;
            }
            c += 1;
        }
        self.completion_buf = buf;
        let ratio = self.cfg.timing.cpu_ratio as u64;
        for core in &mut self.cores {
            core.skip_stalled((c - start) * ratio, c * ratio);
        }
        self.fp_skipped += c - start;
        self.dram_cycle = c;
        if c > start {
            if let Some(t) = &mut self.trace {
                t.push(TraceEvent::FastPath { from: start, to: c, batched: true });
            }
        }
    }

    /// Feeds the monitor everything the controller issued since the last
    /// drain and runs the wall-clock invariants for this cycle.
    fn drain_monitor(&mut self, now: u64) {
        let mut cmds = std::mem::take(&mut self.monitor_buf);
        cmds.clear();
        if self.mc.has_pending_log() {
            self.mc.take_command_log_into(&mut cmds);
        }
        let degraded = self.mc.stats().degraded;
        let transition = degraded != self.was_degraded;
        self.was_degraded = degraded;
        // On a degradation transition the drained batch straddles the
        // schedule swap: commands issued under the old pipeline must not
        // be judged against the new anchors. Suspend cadence checks for
        // this batch only, then re-arm on the controller's new spec
        // (None while degraded — the conservative pipeline has no solved
        // cadence to enforce).
        let new_cadence = transition.then(|| self.mc.cadence_spec());
        let outstanding = self.txn_meta.len();
        let bound = self.cores.len() * self.cfg.mshr_capacity;
        let mon = self.monitor.as_mut().expect("drain_monitor requires the monitor");
        if transition {
            mon.set_cadence(None);
        }
        for tc in &cmds {
            mon.observe(tc);
        }
        if let Some(cadence) = new_cadence {
            mon.set_cadence(cadence);
        }
        mon.on_cycle(now, outstanding, bound);
        if self.cfg.record_commands {
            self.monitor_log.extend(cmds.iter().copied());
        }
        self.monitor_buf = cmds;
    }

    fn deliver(&mut self, completion: Completion) {
        let txn = completion.txn;
        if txn.is_write {
            // The write has been transmitted: close its forwarding window.
            let pending = &mut self.pending_writes[txn.domain.0 as usize];
            if let Some(pos) = pending.iter().position(|&(line, _)| line == txn.local_addr) {
                pending[pos].1 -= 1;
                if pending[pos].1 == 0 {
                    pending.swap_remove(pos);
                }
            }
            return;
        }
        match txn.kind {
            TxnKind::Demand => {
                if self.observe_domain == Some(txn.domain.0) && !txn.is_write {
                    self.observations
                        .push((completion.finish, completion.finish.saturating_sub(txn.arrival)));
                }
                if self.obs_on() {
                    let ev = TraceEvent::TxnRetire {
                        arrival: txn.arrival,
                        finish: completion.finish,
                        domain: txn.domain.0,
                    };
                    if let Some(m) = &mut self.obs_metrics {
                        m.on_event(&ev);
                    }
                    if let Some(t) = &mut self.trace {
                        t.push(ev);
                    }
                }
                if let Some(pos) = self.txn_meta.iter().position(|&(id, _, _)| id == txn.id) {
                    let (_, core, local) = self.txn_meta.swap_remove(pos);
                    let core_idx = core as usize;
                    for tag in self.mshrs[core_idx].complete(local) {
                        self.cores[core_idx].complete_read(tag);
                    }
                    self.reads_completed += 1;
                    self.last_progress = self.dram_cycle;
                }
            }
            TxnKind::Prefetch => {
                let core_idx = txn.domain.0 as usize;
                self.pf_buffers[core_idx].insert(txn.local_addr);
            }
            TxnKind::Dummy => {}
        }
    }

    fn cpu_cycle(&mut self, cpu_now: u64) {
        let System {
            cfg,
            mc,
            cores,
            mshrs,
            pf_buffers,
            txn_meta,
            next_txn_seq,
            dram_cycle,
            policy,
            pending_writes,
            forwarded_reads,
            core_active,
            mc_next_tick,
            trace,
            obs_metrics,
            ..
        } = self;
        let obs_on = trace.is_some() || obs_metrics.is_some();
        let geom = cfg.geometry;
        for (i, core) in cores.iter_mut().enumerate() {
            if !core_active[i] {
                continue;
            }
            let domain = DomainId(i as u8);
            let mshr = &mut mshrs[i];
            let pf = &mut pf_buffers[i];
            let pending = &mut pending_writes[i];
            core.cycle(cpu_now, |op, tag| {
                if op.is_write {
                    if !mc.can_accept(domain) {
                        return SubmitResult::Rejected;
                    }
                    let loc = policy.map(&geom, domain, op.addr);
                    let id = TxnId(*next_txn_seq);
                    *next_txn_seq += 1;
                    let txn =
                        Transaction::write(id, domain, loc, *dram_cycle).with_local_addr(op.addr);
                    mc.enqueue(txn).expect("can_accept was checked");
                    *mc_next_tick = (*mc_next_tick).min(mc.enqueue_event_hint(&txn, *dram_cycle));
                    match pending.iter_mut().find(|(line, _)| *line == op.addr) {
                        Some((_, count)) => *count += 1,
                        None => pending.push((op.addr, 1)),
                    }
                    if obs_on {
                        let ev = TraceEvent::TxnArrival {
                            cycle: *dram_cycle,
                            domain: domain.0,
                            is_write: true,
                            queue_depth: txn_meta.len() as u32,
                        };
                        if let Some(m) = obs_metrics.as_mut() {
                            m.on_event(&ev);
                        }
                        if let Some(t) = trace.as_mut() {
                            t.push(ev);
                        }
                    }
                    return SubmitResult::Accepted { tag };
                }
                // Reads: store-to-load forwarding, then the prefetch
                // buffer, then MSHR merge, then a new memory transaction.
                if pending.iter().any(|&(line, _)| line == op.addr) {
                    *forwarded_reads += 1;
                    return SubmitResult::Hit;
                }
                if pf.take(op.addr) {
                    return SubmitResult::Hit;
                }
                if !mc.can_accept(domain) {
                    return SubmitResult::Rejected;
                }
                match mshr.alloc(op.addr, tag) {
                    MshrOutcome::Secondary => SubmitResult::Accepted { tag },
                    MshrOutcome::Full => SubmitResult::Rejected,
                    MshrOutcome::Primary => {
                        let loc = policy.map(&geom, domain, op.addr);
                        let id = TxnId(*next_txn_seq);
                        *next_txn_seq += 1;
                        let txn = Transaction::read(id, domain, loc, *dram_cycle)
                            .with_local_addr(op.addr);
                        mc.enqueue(txn).expect("can_accept was checked");
                        *mc_next_tick =
                            (*mc_next_tick).min(mc.enqueue_event_hint(&txn, *dram_cycle));
                        txn_meta.push((id, i as u32, op.addr));
                        if obs_on {
                            // Depth counts outstanding demand reads
                            // including the one that just arrived.
                            let ev = TraceEvent::TxnArrival {
                                cycle: *dram_cycle,
                                domain: domain.0,
                                is_write: false,
                                queue_depth: txn_meta.len() as u32,
                            };
                            if let Some(m) = obs_metrics.as_mut() {
                                m.on_event(&ev);
                            }
                            if let Some(t) = trace.as_mut() {
                                t.push(ev);
                            }
                        }
                        SubmitResult::Accepted { tag }
                    }
                }
            });
        }
    }

    /// Runs for `cycles` DRAM cycles.
    pub fn run_cycles(&mut self, cycles: u64) -> SystemStats {
        let end = self.dram_cycle + cycles;
        while self.dram_cycle < end {
            self.step();
            self.skip_ahead(end, false);
        }
        self.stats()
    }

    /// Runs for `cycles` DRAM cycles with health monitoring: aborts with
    /// a structured error if the controller poisons itself on a timing
    /// violation, or if the starvation watchdog sees no demand read
    /// retire for [`SystemConfig::watchdog_cycles`] while reads are
    /// outstanding.
    ///
    /// # Errors
    ///
    /// [`FsmcError::Timing`] carrying the poisoning violation, or
    /// [`FsmcError::Watchdog`] with a diagnosis naming the stuck domain,
    /// rank, bank and oldest outstanding read.
    pub fn try_run_cycles(&mut self, cycles: u64) -> Result<SystemStats, FsmcError> {
        let end = self.dram_cycle + cycles;
        while self.dram_cycle < end {
            self.step();
            self.health_check()?;
            self.skip_ahead(end, true);
        }
        Ok(self.stats())
    }

    /// The per-step health checks shared by [`System::try_run_cycles`]
    /// and [`System::try_run_profile`]: controller poisoning, monitor
    /// breaches, then starvation.
    fn health_check(&mut self) -> Result<(), FsmcError> {
        if let Some(e) = self.reconfig_error.take() {
            return Err(e);
        }
        if let Some(violation) = self.mc.fault() {
            return Err(FsmcError::Timing(TimingFault {
                scheduler: self.cfg.scheduler,
                violation,
                provenance: None,
            }));
        }
        if let Some((cycle, finding)) = self.monitor.as_mut().and_then(|m| m.take_breach()) {
            return Err(FsmcError::Invariant(InvariantBreach {
                scheduler: self.cfg.scheduler,
                cycle,
                finding,
                provenance: None,
            }));
        }
        if self.txn_meta.is_empty() {
            // Idle pipelines are healthy: restart the stall clock.
            self.last_progress = self.dram_cycle;
        } else if self.cfg.watchdog_cycles > 0
            && self.dram_cycle - self.last_progress > self.cfg.watchdog_cycles
        {
            return Err(FsmcError::Watchdog(self.diagnose_stall()));
        }
        Ok(())
    }

    /// Builds the watchdog's diagnosis from the oldest outstanding read.
    fn diagnose_stall(&self) -> WatchdogReport {
        let &(oldest, core, local) =
            self.txn_meta.iter().min_by_key(|(id, _, _)| *id).expect("stall implies outstanding");
        let loc = self.policy.map(&self.cfg.geometry, DomainId(core as u8), local);
        WatchdogReport {
            cycle: self.dram_cycle,
            stalled_for: self.dram_cycle - self.last_progress,
            domain: core as u8,
            rank: loc.rank.0,
            bank: loc.bank.0,
            oldest,
            outstanding: self.txn_meta.len(),
            epoch: self.mc.epoch(),
            reconfig_pending_at: self.reconfig_pending_at(),
            provenance: None,
        }
    }

    /// Runs until `reads` demand reads have completed (the paper's
    /// termination criterion), bounded by `max_cycles`.
    pub fn run_reads(&mut self, reads: u64) -> SystemStats {
        let max_cycles = self.dram_cycle + 400 * reads + 100_000;
        while self.reads_completed < reads && self.dram_cycle < max_cycles {
            self.step();
            if self.reads_completed < reads {
                self.skip_ahead(max_cycles, false);
            }
        }
        self.stats()
    }

    /// Runs until core `core_idx` has retired `buckets * bucket_instrs`
    /// instructions, returning the CPU cycle at which each bucket
    /// boundary was crossed — the execution profile of Figure 4.
    pub fn run_profile(&mut self, core_idx: usize, bucket_instrs: u64, buckets: usize) -> Vec<u64> {
        let mut boundaries = Vec::with_capacity(buckets);
        let mut next_target = bucket_instrs;
        let hard_stop = self.dram_cycle + 80_000_000;
        while boundaries.len() < buckets && self.dram_cycle < hard_stop {
            self.step();
            while boundaries.len() < buckets
                && self.cores[core_idx].stats().instructions_retired >= next_target
            {
                boundaries.push(self.dram_cycle * self.cfg.timing.cpu_ratio as u64);
                next_target += bucket_instrs;
            }
            if boundaries.len() < buckets {
                // Skips retire nothing (every core is stalled), so no
                // bucket boundary can fall inside a skipped span.
                self.skip_ahead(hard_stop, false);
            }
        }
        boundaries
    }

    /// Fallible [`System::run_profile`] with the same health monitoring
    /// as [`System::try_run_cycles`]: used to take execution profiles
    /// under injected faults, where a stall or invariant breach must
    /// surface as a structured error rather than a short profile.
    ///
    /// # Errors
    ///
    /// As for [`System::try_run_cycles`].
    pub fn try_run_profile(
        &mut self,
        core_idx: usize,
        bucket_instrs: u64,
        buckets: usize,
    ) -> Result<Vec<u64>, FsmcError> {
        let mut boundaries = Vec::with_capacity(buckets);
        let mut next_target = bucket_instrs;
        let hard_stop = self.dram_cycle + 80_000_000;
        while boundaries.len() < buckets && self.dram_cycle < hard_stop {
            self.step();
            self.health_check()?;
            while boundaries.len() < buckets
                && self.cores[core_idx].stats().instructions_retired >= next_target
            {
                boundaries.push(self.dram_cycle * self.cfg.timing.cpu_ratio as u64);
                next_target += bucket_instrs;
            }
            if boundaries.len() < buckets {
                self.skip_ahead(hard_stop, true);
            }
        }
        Ok(boundaries)
    }

    /// Starts recording (finish, latency) pairs for `domain`'s demand
    /// reads — the attacker's view of the memory system.
    pub fn observe(&mut self, domain: u8) {
        self.observe_domain = Some(domain);
    }

    /// Takes the recorded observations.
    pub fn take_observations(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.observations)
    }

    /// Per-core statistics snapshot without finalising the run.
    pub fn core_stats(&self, core: usize) -> fsmc_cpu::CoreStats {
        *self.cores[core].stats()
    }

    /// Current statistics snapshot (also finalises device counters).
    pub fn stats(&mut self) -> SystemStats {
        self.mc.finish(self.dram_cycle);
        let counters = self.mc.aggregate_counters();
        let energy = EnergyModel::new(PowerParams::ddr3_4gb())
            .evaluate(&counters, self.mc.stats().boosted_row_hits);
        SystemStats {
            cores: self.cores.iter().map(|c| *c.stats()).collect(),
            mc: self.mc.stats().clone(),
            energy,
            dram_cycles: self.dram_cycle,
            bus_utilization: counters.data_bus_utilization(),
            reads_completed: self.reads_completed,
            useful_prefetches: self.pf_buffers.iter().map(|b| b.useful).sum(),
            forwarded_reads: self.forwarded_reads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: SchedulerKind) -> SystemStats {
        let cfg = SystemConfig::paper_default(kind);
        let mut sys = System::homogeneous(&cfg, BenchProfile::milc(), 3);
        sys.run_cycles(30_000)
    }

    #[test]
    fn baseline_makes_progress_on_all_cores() {
        let s = quick(SchedulerKind::Baseline);
        assert!(s.reads_completed > 500, "reads {}", s.reads_completed);
        for (i, c) in s.cores.iter().enumerate() {
            assert!(c.ipc() > 0.05, "core {i} ipc {}", c.ipc());
        }
    }

    #[test]
    fn fs_rank_partitioned_runs_and_inserts_dummies() {
        let s = quick(SchedulerKind::FsRankPartitioned);
        assert!(s.reads_completed > 100);
        assert!(s.mc.dummy_fraction() > 0.0);
    }

    #[test]
    fn baseline_outperforms_fs_which_outperforms_tp() {
        let base = quick(SchedulerKind::Baseline).ipc_sum();
        let fs = quick(SchedulerKind::FsRankPartitioned).ipc_sum();
        let tp = quick(SchedulerKind::TpBankPartitioned { turn: 60 }).ipc_sum();
        assert!(base > fs, "baseline {base} <= fs {fs}");
        assert!(fs > tp, "fs {fs} <= tp {tp}");
    }

    #[test]
    fn memory_intensity_orders_latency() {
        // mcf sees much higher queueing under TP than baseline.
        let cfg = SystemConfig::paper_default(SchedulerKind::Baseline);
        let mut sys = System::homogeneous(&cfg, BenchProfile::mcf(), 1);
        let base = sys.run_cycles(20_000);
        let cfg = SystemConfig::paper_default(SchedulerKind::TpBankPartitioned { turn: 60 });
        let mut sys = System::homogeneous(&cfg, BenchProfile::mcf(), 1);
        let tp = sys.run_cycles(20_000);
        assert!(tp.avg_read_latency() > base.avg_read_latency());
    }

    #[test]
    fn profile_recording_is_monotone() {
        let cfg = SystemConfig::paper_default(SchedulerKind::FsRankPartitioned);
        let mut sys = System::homogeneous(&cfg, BenchProfile::zeusmp(), 5);
        let profile = sys.run_profile(0, 1000, 20);
        assert_eq!(profile.len(), 20);
        assert!(profile.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn stores_forward_to_subsequent_loads() {
        use fsmc_cpu::trace::{MemOp, TraceOp, VecTrace};
        // Each iteration writes a line then immediately reads it back:
        // the read must forward from the queued store, not go to DRAM.
        let cfg = SystemConfig::paper_default(SchedulerKind::FsRankPartitioned);
        let mut traces: Vec<Box<dyn TraceSource>> = Vec::new();
        for i in 0..cfg.cores {
            let base = i as u64 * 10;
            traces.push(Box::new(VecTrace::new(vec![
                TraceOp::with_mem(8, MemOp::write(base)),
                TraceOp::with_mem(2, MemOp::read(base)),
                TraceOp::compute(50),
            ])));
        }
        let mut sys = System::new(&cfg, traces);
        let stats = sys.run_cycles(20_000);
        assert!(stats.forwarded_reads > 50, "only {} forwarded", stats.forwarded_reads);
        // Forwarded reads never became memory transactions.
        let demand_reads: u64 = stats.mc.domains().iter().map(|d| d.demand_reads).sum();
        assert!(
            demand_reads < stats.forwarded_reads / 2,
            "demand reads {} vs forwarded {}",
            demand_reads,
            stats.forwarded_reads
        );
    }

    #[test]
    fn mix_construction_respects_core_count() {
        let cfg = SystemConfig::paper_default(SchedulerKind::Baseline);
        let mix = WorkloadMix::mix1();
        let mut sys = System::from_mix(&cfg, &mix, 9);
        let s = sys.run_cycles(5_000);
        assert_eq!(s.cores.len(), 8);
    }
}
