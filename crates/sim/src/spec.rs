//! Typed experiment-job specs for the experiment service.
//!
//! The fixed-service policies make every simulation a pure function of
//! its inputs: `(mix × scheduler × device × cycles × seed)` fully
//! determines the result, bit for bit. A [`JobSpec`] is the closed,
//! serializable form of that input tuple — the unit of work `fsmc
//! serve` accepts over its socket, hands to worker *processes*, retries
//! after crashes, and memoizes in a content-addressed cache.
//!
//! Three properties are load-bearing:
//!
//! * **Canonical encoding** — [`JobSpec::canonical_line`] renders the
//!   fields as sorted `key=value` tokens, and [`JobSpec::parse_line`]
//!   accepts them in any order, so the same experiment always encodes
//!   to the same bytes no matter who wrote the spec.
//! * **Stable content hash** — [`JobSpec::cache_key`] is the SHA-256 of
//!   a versioned header plus the canonical encoding. It depends on
//!   *nothing but the spec fields*: not field order, not the process
//!   that computes it, and not ambient environment (`FSMC_THREADS`,
//!   `FSMC_NO_FASTPATH`) — those change wall-clock time, never results,
//!   so they must never fork the cache.
//! * **Exact result transport** — [`ResultPayload`] carries the integer
//!   core counters (instructions, cycles, issue and stall counts) and
//!   bit-patterns of the float statistics, so a result decoded from the
//!   cache or the socket reproduces the direct in-process run *byte for
//!   byte* in every table and CSV derived from it.

use crate::config::SystemConfig;
use crate::engine::ExperimentJob;
use crate::error::FsmcError;
use crate::runner::RunResult;
use crate::stats::SystemStats;
use fsmc_core::error::ConfigError;
use fsmc_core::sched::SchedulerKind;
use fsmc_cpu::CoreStats;
use fsmc_dram::DeviceGeneration;
use fsmc_workload::WorkloadMix;

/// Version header mixed into every cache key, so a format change can
/// never alias an old entry.
const SPEC_MAGIC: &str = "fsmc-job-v1";
/// First line of an encoded successful result.
pub const RESULT_MAGIC: &str = "fsmc-result-v1";
/// First line of an encoded structured failure record.
pub const FAILURE_MAGIC: &str = "fsmc-failure-v1";

/// A self-contained, serializable experiment: everything a worker
/// process needs to reproduce one [`ExperimentJob`], and nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload mix name (`mix1`, `mix2`, or a rate-mode profile name).
    pub mix: String,
    /// Cores = security domains.
    pub cores: u32,
    pub scheduler: SchedulerKind,
    pub device: DeviceGeneration,
    /// DRAM-cycle budget.
    pub cycles: u64,
    /// Workload seed.
    pub seed: u64,
}

/// Renders a scheduler with its parameters, so `tp-bp:60` and
/// `tp-bp:90` are different experiments (and different cache keys).
pub fn scheduler_spec(kind: SchedulerKind) -> String {
    match kind {
        SchedulerKind::TpBankPartitioned { turn } => format!("tp-bp:{turn}"),
        SchedulerKind::TpNoPartition { turn } => format!("tp-np:{turn}"),
        SchedulerKind::TpFence { period } => format!("tp-fence:{period}"),
        SchedulerKind::FsMultiChannel { channels } => format!("fs-mc:{channels}"),
        other => other.cli_name().to_string(),
    }
}

/// Parses [`scheduler_spec`] output plus the CLI spellings: a bare
/// `tp-bp` / `tp-np` takes the CLI's default turn length.
pub fn parse_scheduler(s: &str) -> Option<SchedulerKind> {
    let (base, param) = match s.split_once(':') {
        Some((b, p)) => (b, Some(p)),
        None => (s, None),
    };
    let parsed_param = |default: u32| -> Option<u32> {
        match param {
            None => Some(default),
            Some(p) => p.parse().ok(),
        }
    };
    let kind = match base {
        "baseline" => SchedulerKind::Baseline,
        "baseline-prefetch" => SchedulerKind::BaselinePrefetch,
        "fs-rp" => SchedulerKind::FsRankPartitioned,
        "fs-rp-prefetch" => SchedulerKind::FsRankPartitionedPrefetch,
        "fs-bp" => SchedulerKind::FsBankPartitioned,
        "fs-reordered-bp" => SchedulerKind::FsReorderedBankPartitioned,
        "fs-np" => SchedulerKind::FsNoPartitionNaive,
        "fs-ta" => SchedulerKind::FsTripleAlternation,
        "channel-part" => SchedulerKind::ChannelPartitioned,
        "tp-bp" => SchedulerKind::TpBankPartitioned { turn: parsed_param(60)? },
        "tp-np" => SchedulerKind::TpNoPartition { turn: parsed_param(172)? },
        "tp-fence" => SchedulerKind::TpFence { period: parsed_param(300)? },
        "fs-mc" => SchedulerKind::FsMultiChannel { channels: parsed_param(2)?.try_into().ok()? },
        _ => return None,
    };
    // A parameter on a parameterless scheduler is a malformed spec, not
    // a silently ignored suffix.
    if param.is_some()
        && !matches!(
            kind,
            SchedulerKind::TpBankPartitioned { .. }
                | SchedulerKind::TpNoPartition { .. }
                | SchedulerKind::TpFence { .. }
                | SchedulerKind::FsMultiChannel { .. }
        )
    {
        return None;
    }
    Some(kind)
}

impl JobSpec {
    /// The spec of a plain experiment job (the shape every suite and
    /// figure cell has). Returns `None` for jobs the service cannot
    /// reproduce from a closed description: injected faults, bespoke
    /// controllers, metrics collection, or a hand-edited
    /// [`SystemConfig`] that differs from the stock profile of its
    /// device generation.
    pub fn try_from_job(job: &ExperimentJob) -> Option<JobSpec> {
        if !job.faults.faults.is_empty() || job.controller.is_some() || job.metrics {
            return None;
        }
        let cores = u32::try_from(job.mix.cores()).ok()?;
        let device = match job.config {
            None => DeviceGeneration::Ddr3_1600,
            Some(cfg) => {
                let mut probe = cfg;
                probe.scheduler = job.scheduler;
                if u32::from(probe.cores) != cores
                    || probe != SystemConfig::for_device(probe.device, job.scheduler, probe.cores)
                {
                    return None;
                }
                probe.device
            }
        };
        // The mix must be reconstructible from its name alone.
        let rebuilt = WorkloadMix::by_name(job.mix.name, cores as usize)?;
        if rebuilt != job.mix {
            return None;
        }
        Some(JobSpec {
            mix: job.mix.name.to_string(),
            cores,
            scheduler: job.scheduler,
            device,
            cycles: job.cycles,
            seed: job.seed,
        })
    }

    /// The canonical single-line encoding: `key=value` tokens, keys
    /// sorted, one space between tokens. This exact byte string (under
    /// the versioned header) is what gets hashed.
    pub fn canonical_line(&self) -> String {
        format!(
            "cores={} cycles={} device={} mix={} scheduler={} seed={}",
            self.cores,
            self.cycles,
            self.device,
            self.mix,
            scheduler_spec(self.scheduler),
            self.seed
        )
    }

    /// Parses a spec line: whitespace-separated `key=value` tokens in
    /// any order, every field required exactly once.
    pub fn parse_line(line: &str) -> Result<JobSpec, String> {
        let mut mix = None;
        let mut cores = None;
        let mut scheduler = None;
        let mut device = None;
        let mut cycles = None;
        let mut seed = None;
        for tok in line.split_whitespace() {
            let (k, v) = tok.split_once('=').ok_or_else(|| format!("not key=value: {tok:?}"))?;
            let dup = |k: &str| format!("duplicate field {k:?}");
            match k {
                "mix" => {
                    if mix.replace(v.to_string()).is_some() {
                        return Err(dup(k));
                    }
                }
                "cores" => {
                    let n: u32 = v.parse().map_err(|e| format!("cores: {e}"))?;
                    if cores.replace(n).is_some() {
                        return Err(dup(k));
                    }
                }
                "scheduler" => {
                    let s = parse_scheduler(v).ok_or_else(|| format!("unknown scheduler {v:?}"))?;
                    if scheduler.replace(s).is_some() {
                        return Err(dup(k));
                    }
                }
                "device" => {
                    let d = DeviceGeneration::parse(v)
                        .ok_or_else(|| format!("unknown device {v:?}"))?;
                    if device.replace(d).is_some() {
                        return Err(dup(k));
                    }
                }
                "cycles" => {
                    let n: u64 = v.parse().map_err(|e| format!("cycles: {e}"))?;
                    if cycles.replace(n).is_some() {
                        return Err(dup(k));
                    }
                }
                "seed" => {
                    let n: u64 = v.parse().map_err(|e| format!("seed: {e}"))?;
                    if seed.replace(n).is_some() {
                        return Err(dup(k));
                    }
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        let spec = JobSpec {
            mix: mix.ok_or("missing field mix")?,
            cores: cores.ok_or("missing field cores")?,
            scheduler: scheduler.ok_or("missing field scheduler")?,
            device: device.ok_or("missing field device")?,
            cycles: cycles.ok_or("missing field cycles")?,
            seed: seed.ok_or("missing field seed")?,
        };
        if spec.cores == 0 {
            return Err("cores must be >= 1".into());
        }
        if spec.cycles == 0 {
            return Err("cycles must be >= 1".into());
        }
        Ok(spec)
    }

    /// The content address of this experiment: SHA-256 over the
    /// versioned canonical encoding, as 64 lowercase hex characters.
    /// Stable across field ordering, processes and machines; changed by
    /// any field change; independent of ambient environment.
    pub fn cache_key(&self) -> String {
        sha256_hex(format!("{SPEC_MAGIC}\n{}\n", self.canonical_line()).as_bytes())
    }

    /// Reconstructs the runnable job this spec describes.
    ///
    /// # Errors
    ///
    /// [`FsmcError::Config`] when the mix name is unknown.
    pub fn to_job(&self) -> Result<ExperimentJob, FsmcError> {
        let mix = WorkloadMix::by_name(&self.mix, self.cores as usize)
            .ok_or_else(|| ConfigError::new(format!("unknown workload mix {:?}", self.mix)))?;
        let cores = u8::try_from(self.cores)
            .map_err(|_| ConfigError::new(format!("cores={} exceeds the device", self.cores)))?;
        let cfg = SystemConfig::for_device(self.device, self.scheduler, cores);
        Ok(ExperimentJob::new(mix, self.scheduler, self.cycles, self.seed).with_config(cfg))
    }

    /// Runs the spec to completion in this process and encodes the
    /// result — the entire job of a worker process.
    ///
    /// # Errors
    ///
    /// Any [`FsmcError`] the underlying run surfaces.
    pub fn run(&self) -> Result<String, FsmcError> {
        let result = self.to_job()?.run()?;
        Ok(ResultPayload::of(self, &result).encode())
    }
}

impl ExperimentJob {
    /// The device generation this job simulates (from its config
    /// override, else the paper default).
    pub fn device(&self) -> DeviceGeneration {
        self.config.map(|c| c.device).unwrap_or(DeviceGeneration::Ddr3_1600)
    }
}

/// The transportable form of a successful run: exact integer counters
/// plus float bit-patterns, sufficient to rebuild the [`RunResult`]
/// fields every weighted-IPC table and CSV reads, byte-identically.
///
/// Deliberately *not* carried: per-command McStats, the energy
/// breakdown, and observability metrics — consumers that need those run
/// locally instead of through the service (see
/// `fsmc_bench::weighted_ipc_suite_with` for the routing rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultPayload {
    pub mix: String,
    pub scheduler: String,
    pub cores: Vec<CoreStats>,
    pub reads_completed: u64,
    pub dram_cycles: u64,
    /// `f64::to_bits` of the bus utilization, for exact round-trip.
    pub bus_utilization_bits: u64,
    pub useful_prefetches: u64,
    pub forwarded_reads: u64,
}

impl ResultPayload {
    pub fn of(spec: &JobSpec, result: &RunResult) -> ResultPayload {
        ResultPayload {
            mix: spec.mix.clone(),
            scheduler: scheduler_spec(spec.scheduler),
            cores: result.stats.cores.clone(),
            reads_completed: result.stats.reads_completed,
            dram_cycles: result.stats.dram_cycles,
            bus_utilization_bits: result.stats.bus_utilization.to_bits(),
            useful_prefetches: result.stats.useful_prefetches,
            forwarded_reads: result.stats.forwarded_reads,
        }
    }

    /// Line-oriented encoding, magic first — the bytes that land in the
    /// result cache and on the socket.
    pub fn encode(&self) -> String {
        let mut out = format!("{RESULT_MAGIC}\nmix={}\nscheduler={}\n", self.mix, self.scheduler);
        for c in &self.cores {
            out.push_str(&format!(
                "core={},{},{},{},{}\n",
                c.instructions_retired,
                c.cpu_cycles,
                c.reads_issued,
                c.writes_issued,
                c.stall_cycles
            ));
        }
        out.push_str(&format!(
            "reads_completed={}\ndram_cycles={}\nbus_utilization_bits={:016x}\n\
             useful_prefetches={}\nforwarded_reads={}\n",
            self.reads_completed,
            self.dram_cycles,
            self.bus_utilization_bits,
            self.useful_prefetches,
            self.forwarded_reads
        ));
        out
    }

    /// Strict inverse of [`ResultPayload::encode`]; any deviation
    /// (missing magic, malformed counter, trailing garbage) is an error
    /// naming the offending line — a corrupt cache entry must never
    /// decode into plausible-looking numbers.
    pub fn decode(text: &str) -> Result<ResultPayload, String> {
        let mut lines = text.lines();
        if lines.next() != Some(RESULT_MAGIC) {
            return Err(format!("missing {RESULT_MAGIC} header"));
        }
        let mut mix = None;
        let mut scheduler = None;
        let mut cores = Vec::new();
        let mut tail: Vec<(String, u64)> = Vec::new();
        for line in lines {
            let (k, v) = line.split_once('=').ok_or_else(|| format!("malformed line {line:?}"))?;
            match k {
                "mix" => mix = Some(v.to_string()),
                "scheduler" => scheduler = Some(v.to_string()),
                "core" => {
                    let mut it = v.split(',').map(|n| n.parse::<u64>());
                    let mut next = || {
                        it.next()
                            .ok_or_else(|| format!("short core line {line:?}"))?
                            .map_err(|e| format!("core line {line:?}: {e}"))
                    };
                    let c = CoreStats {
                        instructions_retired: next()?,
                        cpu_cycles: next()?,
                        reads_issued: next()?,
                        writes_issued: next()?,
                        stall_cycles: next()?,
                    };
                    if it.next().is_some() {
                        return Err(format!("trailing fields on core line {line:?}"));
                    }
                    cores.push(c);
                }
                "bus_utilization_bits" => {
                    let bits = u64::from_str_radix(v, 16)
                        .map_err(|e| format!("bus_utilization_bits: {e}"))?;
                    tail.push((k.to_string(), bits));
                }
                "reads_completed" | "dram_cycles" | "useful_prefetches" | "forwarded_reads" => {
                    let n: u64 = v.parse().map_err(|e| format!("{k}: {e}"))?;
                    tail.push((k.to_string(), n));
                }
                other => return Err(format!("unknown result field {other:?}")),
            }
        }
        let get = |name: &str| -> Result<u64, String> {
            tail.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing field {name}"))
        };
        if cores.is_empty() {
            return Err("no core lines".into());
        }
        Ok(ResultPayload {
            mix: mix.ok_or("missing field mix")?,
            scheduler: scheduler.ok_or("missing field scheduler")?,
            cores,
            reads_completed: get("reads_completed")?,
            dram_cycles: get("dram_cycles")?,
            bus_utilization_bits: get("bus_utilization_bits")?,
            useful_prefetches: get("useful_prefetches")?,
            forwarded_reads: get("forwarded_reads")?,
        })
    }

    /// Rebuilds the [`RunResult`] for the job this payload answers. The
    /// caller supplies the job so the result carries its `'static` mix
    /// name; the payload's identity fields must agree with it.
    ///
    /// # Errors
    ///
    /// A description of the mismatch when the payload answers a
    /// different experiment than `job` describes.
    pub fn into_run_result(self, job: &ExperimentJob) -> Result<RunResult, String> {
        if self.mix != job.mix.name {
            return Err(format!("payload is for mix {:?}, job wants {:?}", self.mix, job.mix.name));
        }
        if self.scheduler != scheduler_spec(job.scheduler) {
            return Err(format!(
                "payload is for scheduler {:?}, job wants {:?}",
                self.scheduler,
                scheduler_spec(job.scheduler)
            ));
        }
        if self.cores.len() != job.mix.cores() {
            return Err(format!(
                "payload has {} cores, job mix has {}",
                self.cores.len(),
                job.mix.cores()
            ));
        }
        let stats = SystemStats {
            cores: self.cores,
            reads_completed: self.reads_completed,
            dram_cycles: self.dram_cycles,
            bus_utilization: f64::from_bits(self.bus_utilization_bits),
            useful_prefetches: self.useful_prefetches,
            forwarded_reads: self.forwarded_reads,
            ..SystemStats::default()
        };
        Ok(RunResult {
            mix_name: job.mix.name,
            scheduler: job.scheduler,
            ipcs: stats.ipcs(),
            stats,
            metrics: None,
        })
    }
}

/// A job's structured failure record: how many attempts the service
/// made, why the last one died, and the typed error text (with fault
/// provenance when the run carried one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    pub attempts: u32,
    /// `timeout`, `crash`, or `error` (a typed simulation error).
    pub reason: String,
    /// The last attempt's error detail, newline-flattened.
    pub error: String,
}

impl FailureRecord {
    pub fn encode(&self) -> String {
        format!(
            "{FAILURE_MAGIC}\nattempts={}\nreason={}\nerror={}\n",
            self.attempts,
            self.reason,
            self.error.replace('\n', "; ")
        )
    }

    pub fn decode(text: &str) -> Result<FailureRecord, String> {
        let mut lines = text.lines();
        if lines.next() != Some(FAILURE_MAGIC) {
            return Err(format!("missing {FAILURE_MAGIC} header"));
        }
        let mut attempts = None;
        let mut reason = None;
        let mut error = None;
        for line in lines {
            let (k, v) = line.split_once('=').ok_or_else(|| format!("malformed line {line:?}"))?;
            match k {
                "attempts" => attempts = Some(v.parse().map_err(|e| format!("attempts: {e}"))?),
                "reason" => reason = Some(v.to_string()),
                "error" => error = Some(v.to_string()),
                other => return Err(format!("unknown failure field {other:?}")),
            }
        }
        Ok(FailureRecord {
            attempts: attempts.ok_or("missing field attempts")?,
            reason: reason.ok_or("missing field reason")?,
            error: error.ok_or("missing field error")?,
        })
    }
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4), dependency-free. The cache key must be stable
// across processes, machines and releases, which rules out `DefaultHasher`
// (explicitly unstable) and any vendored stand-in.

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 of `data`, as 64 lowercase hex characters.
pub fn sha256_hex(data: &[u8]) -> String {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];
    // Padded message: data || 0x80 || zeros || 64-bit bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());
    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *slot = slot.wrapping_add(v);
        }
    }
    let mut out = String::with_capacity(64);
    for word in h {
        out.push_str(&format!("{word:08x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            mix: "mix1".into(),
            cores: 8,
            scheduler: SchedulerKind::FsRankPartitioned,
            device: DeviceGeneration::Ddr3_1600,
            cycles: 60_000,
            seed: 42,
        }
    }

    #[test]
    fn sha256_matches_fips_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn canonical_line_round_trips() {
        let s = spec();
        assert_eq!(JobSpec::parse_line(&s.canonical_line()).unwrap(), s);
    }

    #[test]
    fn parse_accepts_any_field_order() {
        let s = spec();
        let shuffled = "seed=42 mix=mix1 scheduler=fs-rp cycles=60000 device=ddr3-1600 cores=8";
        let parsed = JobSpec::parse_line(shuffled).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.cache_key(), s.cache_key());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "",
            "mix=mix1",
            "cores=8 cycles=1 device=ddr3-1600 mix=mix1 scheduler=fs-rp seed=1 seed=2",
            "cores=8 cycles=1 device=ddr3-1600 mix=mix1 scheduler=nope seed=1",
            "cores=8 cycles=1 device=ddr9 mix=mix1 scheduler=fs-rp seed=1",
            "cores=0 cycles=1 device=ddr3-1600 mix=mix1 scheduler=fs-rp seed=1",
            "cores=8 cycles=0 device=ddr3-1600 mix=mix1 scheduler=fs-rp seed=1",
            "cores=8 cycles=1 device=ddr3-1600 mix=mix1 scheduler=fs-rp seed=1 extra=1",
            "notkeyvalue",
        ] {
            assert!(JobSpec::parse_line(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn scheduler_specs_round_trip_with_parameters() {
        for kind in [
            SchedulerKind::Baseline,
            SchedulerKind::FsRankPartitioned,
            SchedulerKind::FsReorderedBankPartitioned,
            SchedulerKind::TpBankPartitioned { turn: 60 },
            SchedulerKind::TpBankPartitioned { turn: 90 },
            SchedulerKind::TpNoPartition { turn: 172 },
            SchedulerKind::TpFence { period: 300 },
            SchedulerKind::TpFence { period: 450 },
            SchedulerKind::FsMultiChannel { channels: 4 },
        ] {
            assert_eq!(parse_scheduler(&scheduler_spec(kind)), Some(kind));
        }
        // Bare CLI names get the CLI defaults.
        assert_eq!(parse_scheduler("tp-bp"), Some(SchedulerKind::TpBankPartitioned { turn: 60 }));
        assert_eq!(parse_scheduler("tp-fence"), Some(SchedulerKind::TpFence { period: 300 }));
        assert_eq!(parse_scheduler("baseline:3"), None);
        assert_eq!(parse_scheduler("tp-bp:x"), None);
    }

    #[test]
    fn plain_jobs_convert_and_rebuild_identically() {
        let job = ExperimentJob::new(
            WorkloadMix::mix1_for(4),
            SchedulerKind::FsRankPartitioned,
            5_000,
            7,
        );
        let spec = JobSpec::try_from_job(&job).expect("plain job is spec-able");
        assert_eq!(spec.cache_key().len(), 64);
        let rebuilt = spec.to_job().unwrap();
        assert_eq!(rebuilt.mix, job.mix);
        assert_eq!(rebuilt.scheduler, job.scheduler);
        assert_eq!(rebuilt.cycles, job.cycles);
        assert_eq!(rebuilt.seed, job.seed);
        // The rebuilt config is the stock profile the direct path uses.
        let a = job.run().unwrap();
        let b = rebuilt.run().unwrap();
        assert_eq!(a.ipcs, b.ipcs);
        assert_eq!(a.stats.reads_completed, b.stats.reads_completed);
    }

    #[test]
    fn faulted_and_bespoke_jobs_are_not_specable() {
        use crate::faults::{FaultKind, FaultPlan};
        let base = ExperimentJob::new(
            WorkloadMix::mix1_for(4),
            SchedulerKind::FsRankPartitioned,
            5_000,
            7,
        );
        let faulted = base
            .clone()
            .with_faults(FaultPlan::new(1).with(FaultKind::DropCommand { period: 5, max: 1 }));
        assert!(JobSpec::try_from_job(&faulted).is_none());
        assert!(JobSpec::try_from_job(&base.clone().with_metrics()).is_none());
        let mut cfg = SystemConfig::for_device(
            DeviceGeneration::Ddr3_1600,
            SchedulerKind::FsRankPartitioned,
            4,
        );
        cfg.mshr_capacity = 4; // hand-edited: not the stock profile
        assert!(JobSpec::try_from_job(&base.clone().with_config(cfg)).is_none());
        // A stock for_device config of another generation IS spec-able.
        let ddr4 = base.with_config(SystemConfig::for_device(
            DeviceGeneration::Ddr4_2400,
            SchedulerKind::FsRankPartitioned,
            4,
        ));
        let spec = JobSpec::try_from_job(&ddr4).expect("stock device config");
        assert_eq!(spec.device, DeviceGeneration::Ddr4_2400);
    }

    #[test]
    fn result_payload_round_trips_bit_exactly() {
        let s = JobSpec { mix: "mcf".into(), cores: 2, cycles: 4_000, ..spec() };
        let payload = s.run().unwrap();
        let decoded = ResultPayload::decode(&payload).unwrap();
        assert_eq!(decoded.encode(), payload);
        let job = s.to_job().unwrap();
        let remote = decoded.into_run_result(&job).unwrap();
        let direct = job.run().unwrap();
        assert_eq!(remote.ipcs, direct.ipcs);
        assert_eq!(remote.stats.cores, direct.stats.cores);
        assert_eq!(remote.stats.bus_utilization.to_bits(), direct.stats.bus_utilization.to_bits());
    }

    #[test]
    fn result_decode_rejects_corruption() {
        let s = JobSpec { mix: "mcf".into(), cores: 2, cycles: 2_000, ..spec() };
        let payload = s.run().unwrap();
        // Truncation at every line boundary fails loudly.
        let lines: Vec<&str> = payload.lines().collect();
        for cut in 0..lines.len() {
            let truncated = lines[..cut].join("\n");
            assert!(ResultPayload::decode(&truncated).is_err(), "cut at line {cut}");
        }
        let garbled = payload.replace("reads_completed=", "reads_completed=x");
        assert!(ResultPayload::decode(&garbled).is_err());
        assert!(ResultPayload::decode("not a payload").is_err());
    }

    #[test]
    fn failure_record_round_trips_and_flattens_newlines() {
        let r = FailureRecord {
            attempts: 3,
            reason: "timeout".into(),
            error: "line one\nline two".into(),
        };
        let enc = r.encode();
        let back = FailureRecord::decode(&enc).unwrap();
        assert_eq!(back.attempts, 3);
        assert_eq!(back.reason, "timeout");
        assert_eq!(back.error, "line one; line two");
        assert!(FailureRecord::decode("garbage").is_err());
    }
}
