//! Deterministic fault injection for robustness experiments.
//!
//! A [`FaultPlan`] describes *what* to break in a run — command-level
//! faults in the controller, a device slower than the certified pipeline,
//! perturbed solver inputs, or corrupted trace records. The plan is pure
//! data and fully deterministic (the `seed` picks corruption shapes, the
//! periods count events), so a faulted run reproduces exactly.
//!
//! The runner applies each kind at the right layer:
//!
//! * [`FaultKind::PerturbTiming`] edits the *configured* timing before
//!   construction (solver and device agree — exercises the construction
//!   fallback path).
//! * [`FaultKind::StretchRefresh`] slows only the *device* (schedule and
//!   refresh cadence stay nominal — exercises runtime degradation).
//! * [`FaultKind::DelayCommand`] / [`FaultKind::DropCommand`] arm the
//!   controller's command-fault injector ([`CmdFaultSpec`]).
//! * [`FaultKind::CorruptTrace`] mangles trace records, exercising the
//!   typed trace-error path.
//! * The *persistent* kinds ([`FaultKind::StuckBank`],
//!   [`FaultKind::DeadRank`], [`FaultKind::ThermalRefresh`]) and the churn
//!   events ([`FaultKind::DomainLeave`], [`FaultKind::DomainJoin`]) fire
//!   once at a scheduled cycle and trigger the epoch-based
//!   reconfiguration protocol instead of the transient injectors.

use fsmc_core::sched::{CmdFaultSpec, ReconfigEvent};
use fsmc_dram::{Cycle, TimingParams};

/// A DRAM timing parameter a fault can perturb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingField {
    TRc,
    TRcd,
    TRas,
    TFaw,
    TRtrs,
    TRfc,
    TWtr,
}

impl TimingField {
    /// The name used in fault-plan spec strings.
    pub fn name(&self) -> &'static str {
        match self {
            TimingField::TRc => "trc",
            TimingField::TRcd => "trcd",
            TimingField::TRas => "tras",
            TimingField::TFaw => "tfaw",
            TimingField::TRtrs => "trtrs",
            TimingField::TRfc => "trfc",
            TimingField::TWtr => "twtr",
        }
    }

    /// Parses a spec-string field name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "trc" => TimingField::TRc,
            "trcd" => TimingField::TRcd,
            "tras" => TimingField::TRas,
            "tfaw" => TimingField::TFaw,
            "trtrs" => TimingField::TRtrs,
            "trfc" => TimingField::TRfc,
            "twtr" => TimingField::TWtr,
            _ => return None,
        })
    }

    /// Applies `delta` to the field in `t`, saturating at zero.
    pub fn apply(&self, t: &mut TimingParams, delta: i32) {
        let f = match self {
            TimingField::TRc => &mut t.t_rc,
            TimingField::TRcd => &mut t.t_rcd,
            TimingField::TRas => &mut t.t_ras,
            TimingField::TFaw => &mut t.t_faw,
            TimingField::TRtrs => &mut t.t_rtrs,
            TimingField::TRfc => &mut t.t_rfc,
            TimingField::TWtr => &mut t.t_wtr,
        };
        *f = f.saturating_add_signed(delta);
    }
}

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Every `period`-th committed transaction's ACT/CAS slip by `delay`
    /// cycles (at most `max` times; 0 = unbounded). Models late silicon.
    DelayCommand { period: u64, delay: u64, max: u64 },
    /// Every `period`-th committed transaction's commands vanish (at most
    /// `max` times; 0 = unbounded). Models lost commands; the watchdog is
    /// expected to notice the missing completions.
    DropCommand { period: u64, max: u64 },
    /// The device's refresh takes `factor` times the certified tRFC while
    /// the controller's schedule and refresh cadence stay nominal.
    StretchRefresh { factor: u32 },
    /// Perturbs a configured timing parameter *before* construction, so
    /// solver and device agree on the (possibly infeasible) value.
    PerturbTiming { field: TimingField, delta: i32 },
    /// Corrupts every `period`-th record of `core`'s input trace.
    CorruptTrace { core: usize, period: usize },
    /// At cycle `at`, bank `bank` of rank `rank` becomes permanently
    /// unusable; the controller reconfigures to mask it and remap demand.
    StuckBank { rank: u8, bank: u8, at: Cycle },
    /// At cycle `at`, rank `rank` dies entirely; its tenant is detached
    /// and the rank's slots become bubbles.
    DeadRank { rank: u8, at: Cycle },
    /// At cycle `at`, a thermal alarm multiplies the refresh rate by
    /// `factor` (tREFI divided by `factor`) for the rest of the run.
    ThermalRefresh { factor: u8, at: Cycle },
    /// At cycle `at`, domain `domain`'s tenant leaves; its slots carry
    /// dummies from the epoch boundary on.
    DomainLeave { domain: u8, at: Cycle },
    /// At cycle `at`, a tenant joins as domain `domain` (the core starts
    /// the run detached and attaches at the epoch boundary).
    DomainJoin { domain: u8, at: Cycle },
    /// A misconfiguration, not a silicon fault: the secure scheduler the
    /// config asks for is silently replaced by the shared FR-FCFS
    /// arbiter (a deployment wiring the wrong policy). The run is
    /// functionally healthy — only the leakage estimator can tell.
    SharedArbiter,
}

impl FaultKind {
    /// The reconfiguration event this fault schedules, if it is one of
    /// the persistent/churn kinds, as `(cycle, event)`.
    pub fn reconfig_event(&self) -> Option<(Cycle, ReconfigEvent)> {
        Some(match *self {
            FaultKind::StuckBank { rank, bank, at } => {
                (at, ReconfigEvent::StuckBank { rank, bank })
            }
            FaultKind::DeadRank { rank, at } => (at, ReconfigEvent::DeadRank { rank }),
            FaultKind::ThermalRefresh { factor, at } => {
                (at, ReconfigEvent::ThermalRefresh { factor })
            }
            FaultKind::DomainLeave { domain, at } => (at, ReconfigEvent::DomainLeave { domain }),
            FaultKind::DomainJoin { domain, at } => (at, ReconfigEvent::DomainJoin { domain }),
            _ => return None,
        })
    }
}

/// A deterministic, seedable set of faults for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Selects corruption shapes; two plans with the same faults and seed
    /// produce byte-identical failures.
    pub seed: u64,
    pub faults: Vec<FaultKind>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Builder-style: adds one fault.
    #[must_use]
    pub fn with(mut self, fault: FaultKind) -> Self {
        self.faults.push(fault);
        self
    }

    /// Applies every [`FaultKind::PerturbTiming`] to `t` (the configured
    /// timing both solver and device will see).
    pub fn perturb_timing(&self, t: &mut TimingParams) {
        for f in &self.faults {
            if let FaultKind::PerturbTiming { field, delta } = f {
                field.apply(t, *delta);
            }
        }
    }

    /// The device-only timing (slower silicon), if any fault calls for it.
    pub fn device_timing(&self, nominal: &TimingParams) -> Option<TimingParams> {
        let mut t = *nominal;
        let mut changed = false;
        for f in &self.faults {
            if let FaultKind::StretchRefresh { factor } = f {
                t.t_rfc = t.t_rfc.saturating_mul((*factor).max(1));
                changed = true;
            }
        }
        changed.then_some(t)
    }

    /// The combined command-fault spec for the controller's injector.
    pub fn cmd_fault_spec(&self) -> Option<CmdFaultSpec> {
        let mut spec = CmdFaultSpec::default();
        for f in &self.faults {
            match f {
                FaultKind::DelayCommand { period, delay, max } => {
                    spec.delay_period = *period;
                    spec.delay_cycles = *delay;
                    spec.max_faults = spec.max_faults.max(*max);
                }
                FaultKind::DropCommand { period, max } => {
                    spec.drop_period = *period;
                    spec.max_faults = spec.max_faults.max(*max);
                }
                _ => {}
            }
        }
        spec.is_enabled().then_some(spec)
    }

    /// The corruption period for `core`'s trace, if any.
    pub fn trace_corruption(&self, core: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            FaultKind::CorruptTrace { core: c, period } if *c == core => Some((*period).max(1)),
            _ => None,
        })
    }

    /// True if the plan swaps the configured scheduler for the shared
    /// FR-FCFS arbiter (the leaky-misconfiguration fault).
    pub fn has_shared_arbiter(&self) -> bool {
        self.faults.contains(&FaultKind::SharedArbiter)
    }

    /// The reconfiguration events this plan schedules, sorted by cycle
    /// (stable, so same-cycle events keep their plan order).
    pub fn reconfig_events(&self) -> Vec<(Cycle, ReconfigEvent)> {
        let mut events: Vec<_> = self.faults.iter().filter_map(FaultKind::reconfig_event).collect();
        events.sort_by_key(|(at, _)| *at);
        events
    }

    /// True if the plan consists solely of reconfiguration events (no
    /// transient command/device/trace faults).
    pub fn is_pure_reconfig(&self) -> bool {
        !self.faults.is_empty() && self.faults.iter().all(|f| f.reconfig_event().is_some())
    }

    /// Renders the fault list as a compact spec string — the repro format
    /// printed in error provenance and accepted by `fsmc chaos --faults`.
    ///
    /// Round-trips through [`FaultPlan::parse_spec`]:
    /// `delay(50,5,1)+stretch-refresh(40)` and friends; an empty plan is
    /// `none`.
    pub fn spec(&self) -> String {
        if self.faults.is_empty() {
            return "none".into();
        }
        self.faults
            .iter()
            .map(|f| match f {
                FaultKind::DelayCommand { period, delay, max } => {
                    format!("delay({period},{delay},{max})")
                }
                FaultKind::DropCommand { period, max } => format!("drop({period},{max})"),
                FaultKind::StretchRefresh { factor } => format!("stretch-refresh({factor})"),
                FaultKind::PerturbTiming { field, delta } => {
                    format!("perturb({},{delta})", field.name())
                }
                FaultKind::CorruptTrace { core, period } => {
                    format!("corrupt-trace({core},{period})")
                }
                FaultKind::StuckBank { rank, bank, at } => {
                    format!("stuck-bank({rank},{bank},{at})")
                }
                FaultKind::DeadRank { rank, at } => format!("dead-rank({rank},{at})"),
                FaultKind::ThermalRefresh { factor, at } => {
                    format!("thermal-refresh({factor},{at})")
                }
                FaultKind::DomainLeave { domain, at } => format!("leave({domain},{at})"),
                FaultKind::DomainJoin { domain, at } => format!("join({domain},{at})"),
                FaultKind::SharedArbiter => "shared-arbiter()".to_string(),
            })
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Parses a spec string produced by [`FaultPlan::spec`] back into a
    /// plan with the given seed.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed component.
    pub fn parse_spec(seed: u64, spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(seed);
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for part in spec.split('+') {
            let part = part.trim();
            let (name, args) = part
                .strip_suffix(')')
                .and_then(|p| p.split_once('('))
                .ok_or_else(|| format!("malformed fault component {part:?}"))?;
            let args: Vec<&str> = args.split(',').map(str::trim).collect();
            let num = |i: usize| -> Result<u64, String> {
                args.get(i)
                    .and_then(|a| a.parse::<u64>().ok())
                    .ok_or_else(|| format!("bad numeric argument {} in {part:?}", i + 1))
            };
            let fault = match (name, args.len()) {
                ("delay", 3) => {
                    FaultKind::DelayCommand { period: num(0)?, delay: num(1)?, max: num(2)? }
                }
                ("drop", 2) => FaultKind::DropCommand { period: num(0)?, max: num(1)? },
                ("stretch-refresh", 1) => FaultKind::StretchRefresh { factor: num(0)? as u32 },
                ("perturb", 2) => {
                    let field = TimingField::from_name(args[0])
                        .ok_or_else(|| format!("unknown timing field {:?} in {part:?}", args[0]))?;
                    let delta = args[1]
                        .parse::<i32>()
                        .map_err(|_| format!("bad delta {:?} in {part:?}", args[1]))?;
                    FaultKind::PerturbTiming { field, delta }
                }
                ("corrupt-trace", 2) => {
                    FaultKind::CorruptTrace { core: num(0)? as usize, period: num(1)? as usize }
                }
                ("stuck-bank", 3) => {
                    FaultKind::StuckBank { rank: num(0)? as u8, bank: num(1)? as u8, at: num(2)? }
                }
                ("dead-rank", 2) => FaultKind::DeadRank { rank: num(0)? as u8, at: num(1)? },
                ("thermal-refresh", 2) => {
                    FaultKind::ThermalRefresh { factor: num(0)? as u8, at: num(1)? }
                }
                ("leave", 2) => FaultKind::DomainLeave { domain: num(0)? as u8, at: num(1)? },
                ("join", 2) => FaultKind::DomainJoin { domain: num(0)? as u8, at: num(1)? },
                // "shared-arbiter()" splits into one empty argument.
                ("shared-arbiter", 1) if args[0].is_empty() => FaultKind::SharedArbiter,
                _ => return Err(format!("unknown fault component {part:?}")),
            };
            plan = plan.with(fault);
        }
        Ok(plan)
    }

    /// Corrupts every `period`-th record line of a text-format trace. The
    /// corruption shape is chosen by the plan's seed: a non-numeric gap, a
    /// bogus direction letter, or a non-hex address.
    pub fn corrupt_trace_text(&self, text: &str, period: usize) -> String {
        let mut out = String::with_capacity(text.len());
        let mut record = 0usize;
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                out.push_str(line);
                out.push('\n');
                continue;
            }
            record += 1;
            if record.is_multiple_of(period) {
                let fields: Vec<&str> = trimmed.split_whitespace().collect();
                let corrupted = match self.seed % 3 {
                    0 => format!("x{} {} {}", fields[0], fields[1], fields[2]),
                    1 => format!("{} Q {}", fields[0], fields[2]),
                    _ => format!("{} {} zz!", fields[0], fields[1]),
                };
                out.push_str(&corrupted);
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perturbation_edits_the_named_field_only() {
        let nominal = TimingParams::ddr3_1600();
        let mut t = nominal;
        let plan = FaultPlan::new(1)
            .with(FaultKind::PerturbTiming { field: TimingField::TRc, delta: 100 });
        plan.perturb_timing(&mut t);
        assert_eq!(t.t_rc, nominal.t_rc + 100);
        assert_eq!(t.t_rcd, nominal.t_rcd);
    }

    #[test]
    fn device_timing_only_set_when_a_device_fault_exists() {
        let nominal = TimingParams::ddr3_1600();
        assert!(FaultPlan::new(0).device_timing(&nominal).is_none());
        let plan = FaultPlan::new(0).with(FaultKind::StretchRefresh { factor: 2 });
        let t = plan.device_timing(&nominal).unwrap();
        assert_eq!(t.t_rfc, 2 * nominal.t_rfc);
        assert_eq!(t.t_rc, nominal.t_rc);
    }

    #[test]
    fn cmd_spec_combines_delay_and_drop() {
        let plan = FaultPlan::new(0)
            .with(FaultKind::DelayCommand { period: 7, delay: 5, max: 1 })
            .with(FaultKind::DropCommand { period: 11, max: 3 });
        let spec = plan.cmd_fault_spec().unwrap();
        assert_eq!((spec.delay_period, spec.delay_cycles), (7, 5));
        assert_eq!(spec.drop_period, 11);
        assert_eq!(spec.max_faults, 3);
        assert!(FaultPlan::new(0).cmd_fault_spec().is_none());
    }

    #[test]
    fn spec_round_trips_every_fault_kind() {
        let plan = FaultPlan::new(17)
            .with(FaultKind::DelayCommand { period: 50, delay: 5, max: 1 })
            .with(FaultKind::DropCommand { period: 400, max: 2 })
            .with(FaultKind::StretchRefresh { factor: 40 })
            .with(FaultKind::PerturbTiming { field: TimingField::TRtrs, delta: -2 })
            .with(FaultKind::CorruptTrace { core: 3, period: 7 })
            .with(FaultKind::SharedArbiter);
        let spec = plan.spec();
        assert_eq!(
            spec,
            "delay(50,5,1)+drop(400,2)+stretch-refresh(40)+perturb(trtrs,-2)+corrupt-trace(3,7)+shared-arbiter()"
        );
        assert_eq!(FaultPlan::parse_spec(17, &spec).unwrap(), plan);
        assert!(plan.has_shared_arbiter());
        assert!(!FaultPlan::new(0).has_shared_arbiter());
        // The empty plan round-trips through "none".
        assert_eq!(FaultPlan::new(9).spec(), "none");
        assert_eq!(FaultPlan::parse_spec(9, "none").unwrap(), FaultPlan::new(9));
    }

    #[test]
    fn reconfig_spec_round_trips_and_events_sort_by_cycle() {
        let plan = FaultPlan::new(3)
            .with(FaultKind::DomainJoin { domain: 5, at: 900 })
            .with(FaultKind::StuckBank { rank: 1, bank: 4, at: 2_000 })
            .with(FaultKind::DeadRank { rank: 2, at: 500 })
            .with(FaultKind::ThermalRefresh { factor: 2, at: 1_500 })
            .with(FaultKind::DomainLeave { domain: 3, at: 500 });
        let spec = plan.spec();
        assert_eq!(
            spec,
            "join(5,900)+stuck-bank(1,4,2000)+dead-rank(2,500)+thermal-refresh(2,1500)+leave(3,500)"
        );
        assert_eq!(FaultPlan::parse_spec(3, &spec).unwrap(), plan);
        assert!(plan.is_pure_reconfig());
        assert!(!plan
            .clone()
            .with(FaultKind::DropCommand { period: 9, max: 1 })
            .is_pure_reconfig());
        // Events come out cycle-sorted, same-cycle events in plan order.
        let cycles: Vec<u64> = plan.reconfig_events().iter().map(|(at, _)| *at).collect();
        assert_eq!(cycles, vec![500, 500, 900, 1_500, 2_000]);
        use fsmc_core::sched::ReconfigEvent as E;
        assert_eq!(plan.reconfig_events()[0].1, E::DeadRank { rank: 2 });
        assert_eq!(plan.reconfig_events()[1].1, E::DomainLeave { domain: 3 });
        // Legacy kinds schedule nothing.
        assert!(FaultPlan::new(0)
            .with(FaultKind::StretchRefresh { factor: 4 })
            .reconfig_events()
            .is_empty());
    }

    #[test]
    fn parse_spec_rejects_garbage_with_context() {
        for (bad, needle) in [
            ("delay(1,2)", "unknown fault component"),
            ("explode(3)", "unknown fault component"),
            ("delay(1,x,3)", "bad numeric argument"),
            ("perturb(tzz,1)", "unknown timing field"),
            ("delay(1,2,3", "malformed fault component"),
        ] {
            let err = FaultPlan::parse_spec(0, bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn corruption_is_periodic_and_seed_deterministic() {
        let text = "# h\n1 R 10\n2 W 20\n3 R 30\n4 W 40\n";
        let plan = FaultPlan::new(2); // seed 2 -> bad address
        let out = plan.corrupt_trace_text(text, 2);
        assert_eq!(out, plan.corrupt_trace_text(text, 2));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[1], "1 R 10");
        assert_eq!(lines[2], "2 W zz!");
        assert_eq!(lines[4], "4 W zz!");
    }
}
