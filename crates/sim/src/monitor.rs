//! Online invariant monitoring for live runs.
//!
//! [`InvariantMonitor`] sits next to the controller inside
//! [`crate::System`] and checks every issued command the cycle it is
//! drained from the device log — no post-hoc replay. Three layers:
//!
//! 1. **Table-1 stream legality** via [`fsmc_dram::StreamMonitor`]: the
//!    same twenty-five device rules the batch [`fsmc_dram::TimingChecker`]
//!    enforces, evaluated incrementally.
//! 2. **FS schedule integrity** via the controller's advertised
//!    [`CadenceSpec`]: ACT and CAS commands must land on their solved
//!    slot phases, and under rank partitioning inside their own domain's
//!    slot. This catches drift that is device-legal — a delayed command
//!    that still satisfies every tRC/tRCD bound but has slipped off the
//!    fixed cadence silently re-opens the timing channel the paper
//!    closes.
//! 3. **Liveness invariants**: per-rank refresh deadlines and the
//!    outstanding-read queue bound, checked against wall-clock cycles.
//!
//! The first breach is latched (with its cycle) and surfaced through
//! [`InvariantMonitor::take_breach`]; [`crate::System::try_run_cycles`]
//! converts it into [`crate::error::FsmcError::Invariant`].

use crate::config::SystemConfig;
use crate::error::MonitorFinding;
use fsmc_core::sched::CadenceSpec;
use fsmc_dram::command::TimedCommand;
use fsmc_dram::geometry::RankId;
use fsmc_dram::{Cycle, StreamMonitor};

/// How often (in DRAM cycles) the wall-clock invariants are evaluated.
/// Deadlines are tens of thousands of cycles, so a coarse poll changes
/// nothing except the constant cost per cycle.
const POLL_PERIOD: Cycle = 64;

/// The online checker composed into [`crate::System`] when
/// [`SystemConfig::monitor`] is set.
#[derive(Debug)]
pub struct InvariantMonitor {
    stream: StreamMonitor,
    cadence: Option<CadenceSpec>,
    /// A cadence armed to take over at an epoch boundary: commands at or
    /// past the cycle promote it into `cadence`, so the old schedule is
    /// enforced strictly up to the boundary and the new one from it —
    /// the transition window itself is never unchecked.
    pending_cadence: Option<(Cycle, Option<CadenceSpec>)>,
    /// First breach, latched with the cycle it was observed.
    breach: Option<(Cycle, MonitorFinding)>,
    /// A rank breaching this many cycles without a REF is flagged. The
    /// budget is two nominal tREFI windows plus one tRFC: the refresh
    /// manager staggers ranks and FS defers REF to slot boundaries, but
    /// anything beyond a whole missed interval means retention is at
    /// risk (e.g. a stretch-refresh fault or a dropped REF command).
    refresh_deadline: Cycle,
    ranks: u8,
    commands_seen: u64,
}

impl InvariantMonitor {
    pub fn new(cfg: &SystemConfig, cadence: Option<CadenceSpec>) -> Self {
        let refresh_deadline = 2 * cfg.timing.t_refi as Cycle + cfg.timing.t_rfc as Cycle;
        InvariantMonitor {
            stream: StreamMonitor::new(cfg.geometry, cfg.timing),
            cadence,
            pending_cadence: None,
            breach: None,
            refresh_deadline,
            ranks: cfg.geometry.ranks_per_channel(),
            commands_seen: 0,
        }
    }

    /// Replaces the cadence being enforced. `None` suspends cadence
    /// checks — used for the single batch of commands straddling a
    /// degradation transition, where old-schedule commands must not be
    /// judged against the new pipeline's anchors.
    pub fn set_cadence(&mut self, cadence: Option<CadenceSpec>) {
        self.cadence = cadence;
        self.pending_cadence = None;
    }

    /// Arms `cadence` to take effect for commands issued at or after
    /// `boundary` — the epoch-based reconfiguration handshake. Unlike
    /// [`Self::set_cadence`] this never suspends checking: commands
    /// before the boundary are still judged against the old cadence,
    /// commands from the boundary on against the new one, covering the
    /// exact transition window on both sides.
    pub fn set_cadence_at(&mut self, cadence: Option<CadenceSpec>, boundary: Cycle) {
        self.pending_cadence = Some((boundary, cadence));
    }

    /// Checks one issued command against the stream rules and the
    /// active cadence. State advances even past a breach so later
    /// commands are still judged in context.
    pub fn observe(&mut self, tc: &TimedCommand) {
        self.commands_seen += 1;
        if let Some((boundary, _)) = self.pending_cadence {
            if tc.cycle >= boundary {
                let (_, cadence) = self.pending_cadence.take().expect("just checked");
                self.cadence = cadence;
            }
        }
        if let Some(spec) = &self.cadence {
            if let Err(invariant) = spec.check(tc) {
                let detail = format!("{tc}");
                self.flag(tc.cycle, MonitorFinding::Invariant { invariant, detail });
            }
        }
        for v in self.stream.observe(tc) {
            self.flag(tc.cycle, MonitorFinding::Command(v));
        }
    }

    /// Wall-clock invariants, called once per DRAM cycle: the
    /// outstanding-read bound and per-rank refresh deadlines.
    pub fn on_cycle(&mut self, now: Cycle, outstanding: usize, bound: usize) {
        if outstanding > bound {
            self.flag(
                now,
                MonitorFinding::Invariant {
                    invariant: "outstanding-read bound",
                    detail: format!("{outstanding} reads in flight exceed {bound} MSHR slots"),
                },
            );
        }
        if !now.is_multiple_of(POLL_PERIOD) || now <= self.refresh_deadline {
            return;
        }
        for r in 0..self.ranks {
            let last = self.stream.last_refresh(RankId(r));
            if now - last > self.refresh_deadline {
                self.flag(
                    now,
                    MonitorFinding::Invariant {
                        invariant: "refresh deadline",
                        detail: format!(
                            "rank {r} last refreshed at cycle {last}, {} cycles ago (budget {})",
                            now - last,
                            self.refresh_deadline
                        ),
                    },
                );
            }
        }
    }

    /// The next cycle strictly after `now` at which [`Self::on_cycle`]
    /// could latch a *new* wall-clock breach — the earliest poll cycle
    /// on which some rank will have exceeded its refresh budget. The
    /// simulator's time-skipping fast path must not jump past this, or
    /// a breach would be latched at a later cycle than per-cycle
    /// stepping reports. `Cycle::MAX` once a breach is already latched
    /// (further flags are no-ops).
    pub fn next_wall_deadline(&self, now: Cycle) -> Cycle {
        if self.breach.is_some() {
            return Cycle::MAX;
        }
        let mut next = Cycle::MAX;
        for r in 0..self.ranks {
            let stale = self.stream.last_refresh(RankId(r)) + self.refresh_deadline;
            // First poll cycle strictly past both the budget and `now`.
            let poll = (stale.max(now) / POLL_PERIOD + 1) * POLL_PERIOD;
            next = next.min(poll);
        }
        next
    }

    fn flag(&mut self, cycle: Cycle, finding: MonitorFinding) {
        if self.breach.is_none() {
            self.breach = Some((cycle, finding));
        }
    }

    /// The latched first breach, if any, clearing it.
    pub fn take_breach(&mut self) -> Option<(Cycle, MonitorFinding)> {
        self.breach.take()
    }

    /// Total commands observed (for reporting).
    pub fn commands_seen(&self) -> u64 {
        self.commands_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_core::sched::SchedulerKind;
    use fsmc_dram::command::Command;
    use fsmc_dram::geometry::{BankId, RowId};

    fn cfg() -> SystemConfig {
        SystemConfig::paper_default(SchedulerKind::FsRankPartitioned)
    }

    fn act(rank: u8, bank: u8, row: u32, cycle: Cycle) -> TimedCommand {
        TimedCommand { cmd: Command::activate(RankId(rank), BankId(bank), RowId(row)), cycle }
    }

    #[test]
    fn flags_cadence_drift_on_device_legal_commands() {
        let spec = CadenceSpec {
            slot_pitch: 7,
            read_act_anchor: 0,
            write_act_anchor: 6,
            read_cas_anchor: 11,
            write_cas_anchor: 17,
            slot_owner_ranks: None,
        };
        let mut mon = InvariantMonitor::new(&cfg(), Some(spec));
        // On-anchor ACT: fine.
        mon.observe(&act(0, 0, 1, 700));
        assert!(mon.take_breach().is_none());
        // Off-phase ACT: device-legal (fresh bank, tRRD satisfied) but
        // off both the read and write ACT phases (703 ≡ 3 mod 7).
        mon.observe(&act(1, 0, 1, 703));
        let (cycle, finding) = mon.take_breach().expect("drift must be flagged");
        assert_eq!(cycle, 703);
        assert!(finding.to_string().contains("off its slot phase"), "{finding}");
    }

    #[test]
    fn boundary_cadence_checks_both_sides_of_the_transition() {
        let spec = |pitch| CadenceSpec {
            slot_pitch: pitch,
            read_act_anchor: 0,
            write_act_anchor: 6,
            read_cas_anchor: 11,
            write_cas_anchor: 17,
            slot_owner_ranks: None,
        };
        let mut mon = InvariantMonitor::new(&cfg(), Some(spec(7)));
        // Arm a different pitch from cycle 710 on.
        mon.set_cadence_at(Some(spec(5)), 710);
        // Before the boundary the *old* cadence is still enforced: 705
        // is on-phase for pitch 5 (705 % 5 == 0) but off both pitch-7
        // ACT phases (705 % 7 == 5, 699 % 7 == 6).
        mon.observe(&act(1, 0, 1, 705));
        let (cycle, finding) = mon.take_breach().expect("pre-boundary drift must be flagged");
        assert_eq!(cycle, 705);
        assert!(finding.to_string().contains("off its slot phase"), "{finding}");
        // From the boundary on the *new* cadence judges: 710 is a
        // multiple of 5 (on-phase) but 710 % 7 == 3 (off the old phase).
        mon.observe(&act(0, 1, 1, 710));
        assert!(mon.take_breach().is_none(), "on the new phase at the boundary");
        mon.observe(&act(1, 1, 1, 714));
        let (cycle, _) = mon.take_breach().expect("post-boundary drift must be flagged");
        assert_eq!(cycle, 714);
    }

    #[test]
    fn refresh_deadline_fires_only_after_budget() {
        let c = cfg();
        let mut mon = InvariantMonitor::new(&c, None);
        let budget = 2 * c.timing.t_refi as Cycle + c.timing.t_rfc as Cycle;
        mon.on_cycle(budget, 0, 64);
        assert!(mon.take_breach().is_none(), "within budget");
        // Poll cycles are multiples of POLL_PERIOD; pick the first one
        // past the budget.
        let late = (budget / POLL_PERIOD + 2) * POLL_PERIOD;
        mon.on_cycle(late, 0, 64);
        let (_, finding) = mon.take_breach().expect("stale rank must be flagged");
        assert!(finding.to_string().contains("refresh deadline"), "{finding}");
    }

    #[test]
    fn next_wall_deadline_is_exactly_the_first_flagging_poll() {
        let c = cfg();
        let mut mon = InvariantMonitor::new(&c, None);
        let deadline = mon.next_wall_deadline(0);
        assert!(deadline.is_multiple_of(POLL_PERIOD));
        // Every poll before the predicted deadline is clean; the
        // deadline poll itself latches the breach.
        for p in (0..deadline).step_by(POLL_PERIOD as usize) {
            mon.on_cycle(p, 0, 64);
        }
        assert!(mon.take_breach().is_none(), "flagged before the predicted deadline");
        mon.on_cycle(deadline, 0, 64);
        assert!(mon.take_breach().is_some(), "deadline poll must flag");
        // With a breach latched, no further wall-clock deadline exists.
        mon.on_cycle(deadline + POLL_PERIOD, 0, 64);
        assert_eq!(mon.next_wall_deadline(deadline), Cycle::MAX);
    }

    #[test]
    fn queue_bound_breach_is_latched_first_only() {
        let mut mon = InvariantMonitor::new(&cfg(), None);
        mon.on_cycle(10, 65, 64);
        mon.on_cycle(11, 99, 64);
        let (cycle, finding) = mon.take_breach().expect("bound breach");
        assert_eq!(cycle, 10, "first breach wins");
        assert!(finding.to_string().contains("65 reads in flight"), "{finding}");
        assert!(mon.take_breach().is_none(), "taken once");
    }
}
