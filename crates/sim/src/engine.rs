//! The deterministic parallel experiment engine.
//!
//! The paper's evaluation is a grid of *independent* `(workload mix ×
//! scheduler policy)` simulations. Callers declare that grid as an
//! [`ExperimentPlan`] of [`ExperimentJob`]s; the [`Engine`] executes the
//! jobs on a scoped worker pool sized by `FSMC_THREADS` (default: the
//! machine's available parallelism) and delivers each outcome into the
//! slot its job was declared in. Three properties hold by construction:
//!
//! * **Determinism** — every job is a self-contained single-threaded
//!   simulation with a fixed seed; results land by declared index, so
//!   output is byte-identical at any thread count and under any
//!   scheduling order. Parallelism lives entirely *outside* the
//!   simulator core, which stays single-threaded and untouched.
//! * **Failure isolation** — a job that fails keeps its [`FsmcError`]
//!   in its own slot; the other slots complete normally.
//! * **Work sharing** — jobs replaying the same `(profile, seed)`
//!   stream share one memoized [`TraceCache`] tape instead of
//!   re-synthesizing identical traces per policy run. With a batch
//!   width above 1 (`FSMC_BATCH` / [`Engine::with_batch`]), jobs that
//!   also share a `(mix, seed, cycles)` replay tuple run as one
//!   interleaved work item — K systems advanced in round-robin spans
//!   over the tape — so the decoded stream stays cache-hot across the
//!   whole group instead of being re-walked K times.

use crate::config::SystemConfig;
use crate::error::FsmcError;
use crate::faults::FaultPlan;
use crate::runner::{build_traces, RunResult};
use crate::system::System;
use fsmc_core::error::ConfigError;
use fsmc_core::sched::{MemoryController, SchedulerKind};
use fsmc_workload::{TraceCache, WorkloadMix};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Builds a controller for a job from the (possibly perturbed) system
/// configuration — the hook non-standard experiments (e.g. the anchor
/// ablation's hand-solved pipelines) use to supply custom controllers
/// while still running on the engine.
pub type ControllerFactory = std::sync::Arc<
    dyn Fn(&SystemConfig) -> Result<Box<dyn MemoryController>, FsmcError> + Send + Sync,
>;

/// One independent simulation: a mix under a scheduler for a number of
/// cycles with a seed, optionally faulted, optionally with a bespoke
/// system configuration or controller.
#[derive(Clone)]
pub struct ExperimentJob {
    pub mix: WorkloadMix,
    pub scheduler: SchedulerKind,
    pub cycles: u64,
    pub seed: u64,
    pub faults: FaultPlan,
    /// Collect per-domain observability metrics (latency histograms, row
    /// locality, queue occupancy) into [`RunResult::metrics`].
    pub metrics: bool,
    /// Overrides the derived `SystemConfig::with_cores(scheduler, mix
    /// cores)` — for geometry/energy-option/core-count experiments. The
    /// job's `scheduler` is written into the override before use.
    pub config: Option<SystemConfig>,
    /// Overrides controller construction (see [`ControllerFactory`]).
    pub controller: Option<ControllerFactory>,
}

impl std::fmt::Debug for ExperimentJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentJob")
            .field("mix", &self.mix.name)
            .field("scheduler", &self.scheduler)
            .field("cycles", &self.cycles)
            .field("seed", &self.seed)
            .field("custom_config", &self.config.is_some())
            .field("custom_controller", &self.controller.is_some())
            .finish()
    }
}

impl ExperimentJob {
    pub fn new(mix: WorkloadMix, scheduler: SchedulerKind, cycles: u64, seed: u64) -> Self {
        ExperimentJob {
            mix,
            scheduler,
            cycles,
            seed,
            faults: FaultPlan::default(),
            metrics: false,
            config: None,
            controller: None,
        }
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Collect per-domain observability metrics during the run.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    pub fn with_config(mut self, config: SystemConfig) -> Self {
        self.config = Some(config);
        self
    }

    pub fn with_controller(mut self, factory: ControllerFactory) -> Self {
        self.controller = Some(factory);
        self
    }

    /// Runs the job in isolation (fresh trace cache).
    ///
    /// # Errors
    ///
    /// Any [`FsmcError`] the run surfaces: solver infeasibility, bad
    /// configuration, trace corruption, runtime timing poisoning, or a
    /// watchdog-detected stall.
    pub fn run(&self) -> Result<RunResult, FsmcError> {
        self.run_with(&TraceCache::new())
    }

    /// Runs the job against a shared trace cache, so concurrent jobs on
    /// the same `(profile, seed)` streams replay one memoized tape.
    ///
    /// # Errors
    ///
    /// As for [`ExperimentJob::run`].
    pub fn run_with(&self, cache: &TraceCache) -> Result<RunResult, FsmcError> {
        self.run_inner(cache).map_err(|e| e.with_provenance(&self.faults))
    }

    fn run_inner(&self, cache: &TraceCache) -> Result<RunResult, FsmcError> {
        let mut run = self.prepare(cache)?;
        run.advance(self.cycles)?;
        Ok(run.finish())
    }

    /// Builds the fully-armed [`System`] for this job — everything
    /// [`ExperimentJob::run_with`] does before the first cycle. Batched
    /// execution prepares K jobs, interleaves [`PreparedRun::advance`]
    /// spans across them, then [`PreparedRun::finish`]es each; because
    /// a system's evolution is a pure function of its construction, the
    /// chunked schedule is byte-identical to the one-shot run.
    fn prepare(&self, cache: &TraceCache) -> Result<PreparedRun, FsmcError> {
        let mut cfg = self
            .config
            .unwrap_or_else(|| SystemConfig::with_cores(self.scheduler, self.mix.cores() as u8));
        cfg.scheduler = self.scheduler;
        if self.faults.has_shared_arbiter() {
            // The misconfiguration fault: whatever secure policy the job
            // asked for, the machine actually runs the shared FR-FCFS
            // arbiter. Nothing else about the run changes — the leak is
            // the only symptom.
            cfg.scheduler = SchedulerKind::Baseline;
        }
        self.faults.perturb_timing(&mut cfg.timing);
        let traces = build_traces(&self.mix, self.seed, &self.faults, Some(cache))?;
        if traces.len() != cfg.cores as usize {
            return Err(ConfigError::new(format!(
                "job mix {:?} supplies {} traces for a {}-core configuration",
                self.mix.name,
                traces.len(),
                cfg.cores
            ))
            .into());
        }
        let mut sys = match &self.controller {
            Some(factory) => System::with_controller(&cfg, traces, factory(&cfg)?),
            None => System::try_new(&cfg, traces)?,
        };
        if self.metrics {
            sys.enable_metrics();
        }
        if !self.faults.faults.is_empty() && !self.faults.is_pure_reconfig() {
            // Injected faults deliberately violate the controllers'
            // `next_event` contract (delayed commands, stretched
            // refresh, perturbed timing), so faulted jobs always run
            // per-cycle; the fast path is for clean measurement runs.
            // Pure-reconfiguration plans keep it: the reconfig protocol
            // runs inside `System::step`, and skips clamp at the next
            // queued event / adoption cycle.
            sys.disable_fastpath();
        }
        for (at, ev) in self.faults.reconfig_events() {
            sys.schedule_reconfig(at, ev);
        }
        if let Some(spec) = self.faults.cmd_fault_spec() {
            sys.controller_mut().inject_command_faults(spec);
        }
        if let Some(t) = self.faults.device_timing(&cfg.timing) {
            sys.controller_mut().set_device_timing(t);
        }
        Ok(PreparedRun {
            sys,
            mix_name: self.mix.name,
            scheduler: self.scheduler,
            metrics: self.metrics,
        })
    }
}

/// A constructed, fully-armed system mid-run: the unit batched
/// execution interleaves. See [`ExperimentJob::prepare`].
struct PreparedRun {
    sys: System,
    mix_name: &'static str,
    scheduler: SchedulerKind,
    metrics: bool,
}

impl PreparedRun {
    /// Advances the system by `cycles` DRAM cycles with health checks.
    /// `advance(a)` then `advance(b)` is byte-identical to
    /// `advance(a + b)`: chunk boundaries only clamp how far the fast
    /// path may *elide* in one jump, never which commands issue.
    fn advance(&mut self, cycles: u64) -> Result<(), FsmcError> {
        self.sys.try_run_cycles(cycles).map(|_| ())
    }

    fn finish(mut self) -> RunResult {
        let stats = self.sys.stats();
        let metrics = if self.metrics { self.sys.metrics_report() } else { None };
        RunResult {
            mix_name: self.mix_name,
            scheduler: self.scheduler,
            ipcs: stats.ipcs(),
            stats,
            metrics,
        }
    }
}

/// An ordered grid of jobs; result slot `i` belongs to the `i`-th push.
#[derive(Debug, Clone, Default)]
pub struct ExperimentPlan {
    jobs: Vec<ExperimentJob>,
}

impl ExperimentPlan {
    pub fn new() -> Self {
        ExperimentPlan::default()
    }

    /// Declares a job, returning the index its result will occupy.
    pub fn push(&mut self, job: ExperimentJob) -> usize {
        self.jobs.push(job);
        self.jobs.len() - 1
    }

    /// The full `mixes × schedulers` grid, row-major (all schedulers of
    /// mix 0, then mix 1, ...).
    pub fn grid(
        mixes: &[WorkloadMix],
        schedulers: &[SchedulerKind],
        cycles: u64,
        seed: u64,
    ) -> Self {
        let mut plan = ExperimentPlan::new();
        for mix in mixes {
            for &k in schedulers {
                plan.push(ExperimentJob::new(mix.clone(), k, cycles, seed));
            }
        }
        plan
    }

    /// Partitions the job indices into work items of at most `width`
    /// jobs that share a replay tuple — same workload mix (name and
    /// per-core profiles), seed, and cycle budget — so one worker can
    /// decode the tape once and interleave the group's systems over it.
    /// Jobs may differ in scheduler, faults, or configuration: each
    /// system still evolves exactly as its independent run would.
    ///
    /// The partition is computed serially from declaration order, so it
    /// (and therefore every downstream result) is independent of
    /// `FSMC_THREADS`. Every index appears in exactly one group.
    pub fn batches(&self, width: usize) -> Vec<Vec<usize>> {
        use std::collections::HashMap;
        let width = width.max(1);
        let mut groups: Vec<Vec<usize>> = Vec::new();
        // Key → index of that key's currently-open (not yet full) group.
        let mut open: HashMap<(&str, u64, u64, Vec<&str>), usize> = HashMap::new();
        for (i, job) in self.jobs.iter().enumerate() {
            let key = (
                job.mix.name,
                job.seed,
                job.cycles,
                job.mix.profiles.iter().map(|p| p.name).collect::<Vec<_>>(),
            );
            match open.get(&key) {
                Some(&g) if groups[g].len() < width => groups[g].push(i),
                _ => {
                    groups.push(vec![i]);
                    open.insert(key, groups.len() - 1);
                }
            }
        }
        groups
    }

    pub fn jobs(&self) -> &[ExperimentJob] {
        &self.jobs
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

// Environment parsing lives in [`crate::env`]; re-exported here because
// the helpers were born in this module and callers still import them
// from it.
pub use crate::env::{env_flag, env_u64};

/// The deterministic parallel executor.
///
/// Worker count comes from `FSMC_THREADS` ([`Engine::from_env`]) or an
/// explicit [`Engine::with_threads`]; either way, results are identical —
/// only wall-clock time changes.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    threads: usize,
    batch: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::from_env()
    }
}

impl Engine {
    /// Sized by `FSMC_THREADS` ([`crate::env::threads`]), defaulting to
    /// the machine's available parallelism, with batch width from
    /// `FSMC_BATCH` ([`crate::env::batch`], default 1). A malformed or
    /// zero value is reported and replaced by the default.
    pub fn from_env() -> Self {
        Engine { threads: crate::env::threads(), batch: crate::env::batch() }
    }

    pub fn with_threads(threads: usize) -> Self {
        Engine { threads: threads.max(1), batch: 1 }
    }

    /// Sets the batch width: up to `width` jobs sharing a `(mix, seed,
    /// cycles)` replay tuple run as one interleaved work item (see
    /// [`ExperimentPlan::batches`]). Results are byte-identical at any
    /// width; only wall-clock time and cache behaviour change.
    pub fn with_batch(mut self, width: usize) -> Self {
        self.batch = width.max(1);
        self
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Applies `f` to every item on the worker pool, returning results
    /// in item order regardless of which worker ran which item. The
    /// generic primitive [`Engine::run`] is built on; also used directly
    /// by experiment binaries whose unit of work is not a plain
    /// mix-under-policy simulation (profiles, covert channels,
    /// certification).
    ///
    /// A panicking item propagates the panic after workers are joined.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            produced.push((i, f(i, &items[i])));
                        }
                        produced
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(produced) => {
                        for (i, result) in produced {
                            slots[i] = Some(result);
                        }
                    }
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        slots.into_iter().map(|slot| slot.expect("every declared slot is filled")).collect()
    }

    /// Executes the plan; slot `i` of the output is job `i`'s outcome.
    /// Failures stay per-slot — no job can abort another.
    pub fn run(&self, plan: &ExperimentPlan) -> Vec<Result<RunResult, FsmcError>> {
        let cache = TraceCache::new();
        self.run_with_cache(plan, &cache)
    }

    /// [`Engine::run`] against a caller-owned [`TraceCache`], letting
    /// several plans share memoized traces.
    ///
    /// With a batch width above 1 ([`Engine::with_batch`] /
    /// `FSMC_BATCH`), jobs sharing a replay tuple are grouped
    /// ([`ExperimentPlan::batches`]) and each group runs as one work
    /// item: every member system is prepared up front, then advanced in
    /// round-robin spans over the shared tape. Output slots, values and
    /// per-slot failures are byte-identical to the unbatched run.
    pub fn run_with_cache(
        &self,
        plan: &ExperimentPlan,
        cache: &TraceCache,
    ) -> Vec<Result<RunResult, FsmcError>> {
        if self.batch <= 1 {
            return self.map(plan.jobs(), |_, job| job.run_with(cache));
        }
        let groups = plan.batches(self.batch);
        let grouped = self.map(&groups, |_, group| run_group(plan, group, cache));
        let mut slots: Vec<Option<Result<RunResult, FsmcError>>> =
            std::iter::repeat_with(|| None).take(plan.len()).collect();
        for (group, results) in groups.iter().zip(grouped) {
            for (&slot, result) in group.iter().zip(results) {
                slots[slot] = Some(result);
            }
        }
        slots.into_iter().map(|slot| slot.expect("every job batched exactly once")).collect()
    }
}

/// DRAM cycles each batched system advances per round-robin turn: long
/// enough to amortise the switch, short enough that the group's working
/// set walks the shared tape roughly in lockstep.
const BATCH_SPAN: u64 = 8192;

/// Executes one batch group in an interleaved pass; result `i` belongs
/// to `group[i]`. A member that fails (at preparation or mid-run) keeps
/// its error in its own slot and drops out of the rotation; the rest
/// complete normally.
fn run_group(
    plan: &ExperimentPlan,
    group: &[usize],
    cache: &TraceCache,
) -> Vec<Result<RunResult, FsmcError>> {
    if let [slot] = group {
        return vec![plan.jobs()[*slot].run_with(cache)];
    }
    let mut out: Vec<Option<Result<RunResult, FsmcError>>> =
        std::iter::repeat_with(|| None).take(group.len()).collect();
    let mut live: Vec<(usize, u64, PreparedRun)> = Vec::new();
    for (i, &slot) in group.iter().enumerate() {
        let job = &plan.jobs()[slot];
        match job.prepare(cache) {
            Ok(run) => live.push((i, job.cycles, run)),
            Err(e) => out[i] = Some(Err(e.with_provenance(&job.faults))),
        }
    }
    while !live.is_empty() {
        let mut still = Vec::with_capacity(live.len());
        for (i, remaining, mut run) in live {
            let span = BATCH_SPAN.min(remaining);
            match run.advance(span) {
                Err(e) => {
                    let job = &plan.jobs()[group[i]];
                    out[i] = Some(Err(e.with_provenance(&job.faults)));
                }
                Ok(()) => {
                    if remaining == span {
                        out[i] = Some(Ok(run.finish()));
                    } else {
                        still.push((i, remaining - span, run));
                    }
                }
            }
        }
        live = still;
    }
    out.into_iter().map(|slot| slot.expect("every group member resolved")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_workload::BenchProfile;

    #[test]
    fn map_preserves_item_order_at_any_width() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1, 2, 8, 64] {
            let out = Engine::with_threads(threads).map(&items, |i, item| {
                assert_eq!(i, *item);
                item * 3
            });
            assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_width_engine_clamps_to_one() {
        assert_eq!(Engine::with_threads(0).threads(), 1);
    }

    #[test]
    fn grid_plan_enumerates_row_major() {
        let mixes =
            [WorkloadMix::rate(BenchProfile::mcf(), 2), WorkloadMix::rate(BenchProfile::milc(), 2)];
        let kinds = [SchedulerKind::Baseline, SchedulerKind::FsRankPartitioned];
        let plan = ExperimentPlan::grid(&mixes, &kinds, 1000, 1);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.jobs()[0].mix.name, "mcf");
        assert_eq!(plan.jobs()[1].scheduler, SchedulerKind::FsRankPartitioned);
        assert_eq!(plan.jobs()[2].mix.name, "milc");
    }

    #[test]
    fn env_u64_rejects_garbage_with_default() {
        std::env::set_var("FSMC_ENGINE_TEST_KNOB", "not-a-number");
        assert_eq!(env_u64("FSMC_ENGINE_TEST_KNOB", 17), 17);
        std::env::set_var("FSMC_ENGINE_TEST_KNOB", " 23 ");
        assert_eq!(env_u64("FSMC_ENGINE_TEST_KNOB", 17), 23);
        std::env::remove_var("FSMC_ENGINE_TEST_KNOB");
        assert_eq!(env_u64("FSMC_ENGINE_TEST_KNOB", 17), 17);
    }
}
