//! The chaos campaign: seeded fault populations, outcome classification
//! and fault shrinking.
//!
//! A campaign generates a deterministic population of random
//! [`FaultPlan`]s from one seed, runs each plan against a fixed
//! `(mix, scheduler)` job on the parallel [`Engine`] with the online
//! invariant monitor armed, and classifies every outcome:
//!
//! * [`Outcome::Clean`] — statistics bit-identical to the fault-free
//!   reference run.
//! * [`Outcome::GracefulDegrade`] — the system absorbed the fault: it
//!   switched to the conservative pipeline, or rejected the bad input
//!   with a structured construction-time error.
//! * [`Outcome::Violation`] — a timing rule or FS invariant was broken
//!   (controller poisoned, or the monitor caught drift the controller
//!   itself missed).
//! * [`Outcome::Stall`] — the starvation watchdog fired.
//! * [`Outcome::Diverged`] — the run finished "healthy" but its results
//!   differ from the reference: a silent wrong-answer, the worst class.
//! * [`Outcome::Reconfigured`] — the plan scheduled persistent-fault or
//!   churn events, the controller adopted a re-certified schedule at an
//!   epoch boundary, and every *surviving* domain's statistics are
//!   bit-identical to the fault-free reference.
//! * [`Outcome::ReconfigLeak`] — a reconfiguration happened but some
//!   survivor's execution changed: the transition leaked. A failure,
//!   shrunk like the others.
//!
//! Failing plans (violation / stall / diverged) are then **shrunk**:
//! faults are removed one at a time to a fixpoint, keeping only those
//! whose removal changes the classification. The result is a 1-minimal
//! fault set and a one-line repro command for every failure.
//!
//! Everything is deterministic: the population depends only on the
//! campaign seed, each run is a single-threaded simulation, and results
//! land by population index, so the classification table and every
//! shrunk fault list are identical at any `FSMC_THREADS` value.

use crate::config::SystemConfig;
use crate::engine::{Engine, ExperimentJob};
use crate::error::FsmcError;
use crate::faults::{FaultKind, FaultPlan, TimingField};
use crate::runner::RunResult;
use fsmc_core::domain::PartitionPolicy;
use fsmc_core::sched::{ReconfigEvent, SchedulerKind};
use fsmc_dram::DeviceGeneration;
use fsmc_workload::{BenchProfile, TraceCache, WorkloadMix};
use std::fmt;

/// SplitMix64: a tiny, high-quality, dependency-free PRNG. One seed,
/// one stream; used for everything the campaign randomises.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n = 0 is treated as 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// How a faulted run ended, relative to the fault-free reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    Clean,
    GracefulDegrade,
    Violation,
    Stall,
    Diverged,
    Reconfigured,
    ReconfigLeak,
    /// The online leakage estimator measured information flow between
    /// domains on a configuration that claims to be secure (`fsmc leak
    /// --campaign`; the classic cause is [`crate::FaultKind::SharedArbiter`]).
    LeakDetected,
}

impl Outcome {
    pub const ALL: [Outcome; 8] = [
        Outcome::Clean,
        Outcome::GracefulDegrade,
        Outcome::Violation,
        Outcome::Stall,
        Outcome::Diverged,
        Outcome::Reconfigured,
        Outcome::ReconfigLeak,
        Outcome::LeakDetected,
    ];

    /// Failures worth shrinking and reproducing; graceful degradation
    /// and a clean reconfiguration are *designed* responses to a fault,
    /// not failures.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            Outcome::Violation
                | Outcome::Stall
                | Outcome::Diverged
                | Outcome::ReconfigLeak
                | Outcome::LeakDetected
        )
    }

    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Clean => "clean",
            Outcome::GracefulDegrade => "graceful-degrade",
            Outcome::Violation => "violation",
            Outcome::Stall => "stall",
            Outcome::Diverged => "diverged",
            Outcome::Reconfigured => "reconfigured",
            Outcome::ReconfigLeak => "reconfig-leak",
            Outcome::LeakDetected => "leak-detected",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Campaign parameters. The defaults are sized for a CI smoke run;
/// soak runs raise `population` and `cycles`.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: generates the whole fault-plan population.
    pub seed: u64,
    /// Number of fault plans to generate and run.
    pub population: usize,
    /// DRAM cycles per run.
    pub cycles: u64,
    /// Workload seed (trace synthesis), shared by every run.
    pub run_seed: u64,
    pub mix: WorkloadMix,
    pub scheduler: SchedulerKind,
    /// Device generation every campaign run simulates.
    pub device: DeviceGeneration,
    /// Faults per generated plan: 1..=max_faults, chosen per plan.
    pub max_faults: usize,
    /// Include persistent-fault and domain-churn event kinds (stuck
    /// bank, dead rank, thermal refresh, leave, join) in the generated
    /// population. Off by default so legacy campaign seeds keep their
    /// exact populations and classification tables.
    pub churn: bool,
    /// Shrink failing plans to a 1-minimal fault set.
    pub shrink: bool,
    /// Collect per-domain observability metrics on every run; the
    /// fault-free reference's report lands in
    /// [`CampaignReport::reference_metrics`] and each successful faulted
    /// run's in [`CaseReport::metrics`].
    pub metrics: bool,
}

impl CampaignConfig {
    pub fn new(seed: u64) -> Self {
        CampaignConfig {
            seed,
            population: 16,
            cycles: 8_000,
            run_seed: 42,
            mix: WorkloadMix::rate(BenchProfile::mcf(), 4),
            scheduler: SchedulerKind::FsRankPartitioned,
            device: DeviceGeneration::Ddr3_1600,
            max_faults: 4,
            churn: false,
            shrink: true,
            metrics: false,
        }
    }

    /// The system configuration every campaign run uses: the derived
    /// per-mix config with the online invariant monitor armed.
    fn system_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::for_device(self.device, self.scheduler, self.mix.cores() as u8);
        cfg.monitor = true;
        cfg
    }

    /// The job for one fault plan.
    fn job(&self, plan: FaultPlan) -> ExperimentJob {
        let job = ExperimentJob::new(self.mix.clone(), self.scheduler, self.cycles, self.run_seed)
            .with_config(self.system_config())
            .with_faults(plan);
        if self.metrics {
            job.with_metrics()
        } else {
            job
        }
    }
}

/// One random fault, drawn from ranges wide enough to cover silent
/// drift (small delays), lost work (drops), retention hazards
/// (stretched refresh), mis-certified silicon (perturbed timing) and
/// bad input (corrupt traces). With `churn` on, the persistent-fault
/// and domain-churn kinds join the pool, their fire cycles drawn from
/// the middle of the run so the reconfiguration actually adopts.
fn random_fault(rng: &mut SplitMix64, cores: u64, cycles: u64, churn: bool) -> FaultKind {
    const FIELDS: [TimingField; 7] = [
        TimingField::TRc,
        TimingField::TRcd,
        TimingField::TRas,
        TimingField::TFaw,
        TimingField::TRtrs,
        TimingField::TRfc,
        TimingField::TWtr,
    ];
    let at = |rng: &mut SplitMix64| 200 + rng.below(cycles.saturating_sub(1_200).max(1));
    match rng.below(if churn { 10 } else { 5 }) {
        0 => FaultKind::DelayCommand {
            period: 20 + rng.below(180),
            delay: 1 + rng.below(8),
            max: 1 + rng.below(3),
        },
        1 => FaultKind::DropCommand { period: 40 + rng.below(360), max: 1 + rng.below(3) },
        2 => FaultKind::StretchRefresh { factor: (2 + rng.below(30)) as u32 },
        3 => FaultKind::PerturbTiming {
            field: FIELDS[rng.below(FIELDS.len() as u64) as usize],
            delta: rng.below(8) as i32 - 2,
        },
        4 => FaultKind::CorruptTrace {
            core: rng.below(cores) as usize,
            period: (2 + rng.below(8)) as usize,
        },
        5 => {
            FaultKind::StuckBank { rank: rng.below(8) as u8, bank: rng.below(8) as u8, at: at(rng) }
        }
        6 => FaultKind::DeadRank { rank: rng.below(8) as u8, at: at(rng) },
        7 => FaultKind::ThermalRefresh { factor: (2 + rng.below(3)) as u8, at: at(rng) },
        8 => FaultKind::DomainLeave { domain: rng.below(cores) as u8, at: at(rng) },
        _ => FaultKind::DomainJoin { domain: rng.below(cores) as u8, at: at(rng) },
    }
}

/// The deterministic plan population for a campaign seed.
pub fn generate_population(cfg: &CampaignConfig) -> Vec<FaultPlan> {
    let mut rng = SplitMix64::new(cfg.seed);
    let cores = cfg.mix.cores() as u64;
    (0..cfg.population)
        .map(|i| {
            let mut plan = FaultPlan::new(cfg.seed.wrapping_add(i as u64));
            let count = 1 + rng.below(cfg.max_faults.max(1) as u64);
            for _ in 0..count {
                plan = plan.with(random_fault(&mut rng, cores, cfg.cycles, cfg.churn));
            }
            plan
        })
        .collect()
}

/// Survivor non-interference check for a run whose plan scheduled
/// reconfiguration events: every domain *not* touched by the events
/// must end the run with core statistics and per-domain scheduling
/// statistics bit-identical to the fault-free reference — the paper's
/// isolation property carried across the epoch boundary.
fn survivors_intact(
    cfg: &CampaignConfig,
    r: &RunResult,
    reference: &RunResult,
    events: &[(u64, ReconfigEvent)],
) -> bool {
    let cores = cfg.mix.cores() as u8;
    let ranks = cfg.system_config().geometry.ranks_per_channel();
    let policy = cfg.scheduler.partition_policy();
    let mut touched = vec![false; cores as usize];
    for (_, ev) in events {
        match ev {
            // A thermal alarm retimes refresh for *everyone* — identical
            // across domains, but not identical to the no-event baseline,
            // so no domain is held to bit-identity.
            ReconfigEvent::ThermalRefresh { .. } => return true,
            // A spatial fault under bank-striped or unpartitioned mapping
            // touches every domain's address space: there is no survivor
            // to hold to bit-identity.
            ReconfigEvent::StuckBank { .. } | ReconfigEvent::DeadRank { .. }
                if !matches!(policy, PartitionPolicy::Rank) =>
            {
                return true;
            }
            _ => {}
        }
        if let Some(d) = ev.touched_domain(cores, ranks) {
            if (d as usize) < touched.len() {
                touched[d as usize] = true;
            }
        }
    }
    (0..cores as usize).filter(|&i| !touched[i]).all(|i| {
        r.stats.cores[i] == reference.stats.cores[i]
            && r.stats.mc.domains().get(i) == reference.stats.mc.domains().get(i)
    })
}

/// Classifies one faulted result against the fault-free reference.
/// `plan` is the fault plan the run executed — reconfiguration outcomes
/// depend on which domains its events touched.
pub fn classify(
    cfg: &CampaignConfig,
    result: &Result<RunResult, FsmcError>,
    reference: &RunResult,
    plan: &FaultPlan,
) -> Outcome {
    match result {
        Err(FsmcError::Watchdog(_)) => Outcome::Stall,
        Err(FsmcError::Timing(_)) | Err(FsmcError::Invariant(_)) => Outcome::Violation,
        // Construction-time rejection (bad trace, infeasible perturbed
        // timing, bad config) is the structured-error path working as
        // designed; a service poisoning already exhausted its retries,
        // so it counts the same way.
        Err(FsmcError::Trace(_))
        | Err(FsmcError::Solve(_))
        | Err(FsmcError::Config(_))
        | Err(FsmcError::Service(_)) => Outcome::GracefulDegrade,
        Ok(r) => {
            let fired: Vec<_> =
                plan.reconfig_events().into_iter().filter(|&(at, _)| at < cfg.cycles).collect();
            if r.stats.mc.degraded {
                Outcome::GracefulDegrade
            } else if !fired.is_empty() {
                // Schedulers without a reconfiguration protocol (the
                // FR-FCFS baseline, TP) still see the churn at the
                // system level; their survivors legitimately diverge
                // and the plan classifies as a reconfig leak.
                if survivors_intact(cfg, r, reference, &fired) {
                    Outcome::Reconfigured
                } else {
                    Outcome::ReconfigLeak
                }
            } else if r.ipcs == reference.ipcs
                && r.stats.reads_completed == reference.stats.reads_completed
            {
                Outcome::Clean
            } else {
                Outcome::Diverged
            }
        }
    }
}

/// One campaign case: the plan, its classification, the failure text
/// (if any), and the shrunk minimal plan (for shrunk failures).
#[derive(Debug, Clone)]
pub struct CaseReport {
    pub index: usize,
    pub plan: FaultPlan,
    pub outcome: Outcome,
    /// Rendered error for failed runs (includes the provenance line).
    pub error: Option<String>,
    /// 1-minimal plan preserving the classification, when shrinking ran.
    pub shrunk: Option<FaultPlan>,
    /// Observability metrics of the faulted run, when the campaign ran
    /// with [`CampaignConfig::metrics`] and the run completed.
    pub metrics: Option<fsmc_obs::MetricsReport>,
}

impl CaseReport {
    /// The plan to reproduce this case with: the shrunk plan if one was
    /// computed, otherwise the original.
    pub fn minimal_plan(&self) -> &FaultPlan {
        self.shrunk.as_ref().unwrap_or(&self.plan)
    }
}

/// The campaign's full outcome table.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    pub scheduler: SchedulerKind,
    pub mix_name: &'static str,
    pub cycles: u64,
    pub run_seed: u64,
    pub seed: u64,
    pub cases: Vec<CaseReport>,
    /// Metrics of the fault-free reference run, when the campaign ran
    /// with [`CampaignConfig::metrics`].
    pub reference_metrics: Option<fsmc_obs::MetricsReport>,
}

impl CampaignReport {
    pub fn count(&self, outcome: Outcome) -> usize {
        self.cases.iter().filter(|c| c.outcome == outcome).count()
    }

    pub fn failures(&self) -> impl Iterator<Item = &CaseReport> {
        self.cases.iter().filter(|c| c.outcome.is_failure())
    }

    /// The standalone command reproducing one case.
    pub fn repro_line(&self, case: &CaseReport) -> String {
        let plan = case.minimal_plan();
        format!(
            "fsmc chaos --scheduler {} --workload {} --cycles {} --run-seed {} \
             --fault-seed {} --faults '{}'",
            self.scheduler.cli_name(),
            self.mix_name,
            self.cycles,
            self.run_seed,
            plan.seed,
            plan.spec()
        )
    }

    /// Human-readable classification table plus a repro line per failure.
    pub fn render(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos campaign: {} on {} x{} runs of {} cycles (seed {})",
            self.scheduler,
            self.mix_name,
            self.cases.len(),
            self.cycles,
            self.seed
        );
        for outcome in Outcome::ALL {
            let _ = writeln!(out, "  {:<18} {}", format!("{outcome}"), self.count(outcome));
        }
        for case in self.cases.iter() {
            if !case.outcome.is_failure() {
                continue;
            }
            let _ = writeln!(out, "case {:>3}  {:<18} {}", case.index, case.outcome, {
                let p = case.minimal_plan();
                format!("seed {} faults {}", p.seed, p.spec())
            });
            if let Some(e) = &case.error {
                let _ = writeln!(out, "          {e}");
            }
            let _ = writeln!(out, "          {}", self.repro_line(case));
        }
        if let Some(m) = &self.reference_metrics {
            let _ = writeln!(out, "reference-run metrics (fault-free):");
            for line in m.render().lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        out
    }
}

/// Greedy delta reduction to a 1-minimal fault set: repeatedly tries
/// removing each fault; a removal sticks iff the reduced plan still
/// classifies the same way. Terminates at a fixpoint where removing any
/// single remaining fault changes the outcome.
fn shrink_plan(
    cfg: &CampaignConfig,
    plan: &FaultPlan,
    outcome: Outcome,
    reference: &RunResult,
    cache: &TraceCache,
) -> FaultPlan {
    let mut current = plan.clone();
    let mut changed = true;
    while changed && current.faults.len() > 1 {
        changed = false;
        let mut i = 0;
        while i < current.faults.len() && current.faults.len() > 1 {
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            let result = cfg.job(candidate.clone()).run_with(cache);
            if classify(cfg, &result, reference, &candidate) == outcome {
                current = candidate;
                changed = true;
                // Same index now names the next fault; don't advance.
            } else {
                i += 1;
            }
        }
    }
    current
}

/// Runs a full campaign on `engine`.
///
/// # Errors
///
/// Only a failing *reference* run (the fault-free baseline every
/// classification compares against) aborts the campaign; faulted runs
/// always land as classified cases.
pub fn run_campaign(engine: &Engine, cfg: &CampaignConfig) -> Result<CampaignReport, FsmcError> {
    let cache = TraceCache::new();
    let reference = cfg.job(FaultPlan::default()).run_with(&cache)?;
    let population = generate_population(cfg);
    let cases = engine.map(&population, |index, plan| {
        let result = cfg.job(plan.clone()).run_with(&cache);
        let outcome = classify(cfg, &result, &reference, plan);
        let error = result.as_ref().err().map(|e| e.to_string());
        let shrunk = (cfg.shrink && outcome.is_failure() && plan.faults.len() > 1)
            .then(|| shrink_plan(cfg, plan, outcome, &reference, &cache));
        let metrics = result.ok().and_then(|r| r.metrics);
        CaseReport { index, plan: plan.clone(), outcome, error, shrunk, metrics }
    });
    Ok(CampaignReport {
        scheduler: cfg.scheduler,
        mix_name: cfg.mix.name,
        cycles: cfg.cycles,
        run_seed: cfg.run_seed,
        seed: cfg.seed,
        cases,
        reference_metrics: reference.metrics,
    })
}

/// Classifies a single explicit plan (the `fsmc chaos` repro mode).
///
/// # Errors
///
/// As for [`run_campaign`]: only the reference run can abort.
pub fn run_single(cfg: &CampaignConfig, plan: FaultPlan) -> Result<CaseReport, FsmcError> {
    let cache = TraceCache::new();
    let reference = cfg.job(FaultPlan::default()).run_with(&cache)?;
    let result = cfg.job(plan.clone()).run_with(&cache);
    let outcome = classify(cfg, &result, &reference, &plan);
    let error = result.as_ref().err().map(|e| e.to_string());
    let shrunk = (cfg.shrink && outcome.is_failure() && plan.faults.len() > 1)
        .then(|| shrink_plan(cfg, &plan, outcome, &reference, &cache));
    let metrics = result.ok().and_then(|r| r.metrics);
    Ok(CaseReport { index: 0, plan, outcome, error, shrunk, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_seed_deterministic_and_bounded() {
        let cfg = CampaignConfig::new(7);
        let a = generate_population(&cfg);
        let b = generate_population(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.population);
        assert!(a.iter().all(|p| !p.faults.is_empty() && p.faults.len() <= cfg.max_faults));
        // Different seeds generate different populations.
        let c = generate_population(&CampaignConfig::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut counts = [0usize; 5];
        for _ in 0..1000 {
            counts[a.below(5) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 120), "roughly uniform: {counts:?}");
    }

    #[test]
    fn shrinker_reduces_to_the_single_culprit() {
        // A plan of one lethal fault (drop every 3rd transaction's
        // commands, unbounded enough to starve) plus two harmless
        // passengers must shrink to just the lethal fault.
        let mut cfg = CampaignConfig::new(1);
        cfg.population = 0;
        cfg.cycles = 6_000;
        let lethal = FaultKind::DropCommand { period: 3, max: 3 };
        let plan = FaultPlan::new(9)
            .with(FaultKind::DelayCommand { period: 1_000_000, delay: 1, max: 1 })
            .with(lethal)
            .with(FaultKind::StretchRefresh { factor: 1 });
        let case = run_single(&cfg, plan).expect("reference run is clean");
        assert!(case.outcome.is_failure(), "outcome {}", case.outcome);
        let min = case.minimal_plan();
        assert_eq!(min.faults, vec![lethal], "shrunk to {}", min.spec());
    }

    #[test]
    fn churn_population_is_deterministic_and_adds_reconfig_kinds() {
        let mut cfg = CampaignConfig::new(7);
        cfg.churn = true;
        let a = generate_population(&cfg);
        let b = generate_population(&cfg);
        assert_eq!(a, b);
        // The widened draw space must actually surface reconfiguration
        // events somewhere in a 16-plan population.
        assert!(
            a.iter().any(|p| !p.reconfig_events().is_empty()),
            "no churn kinds drawn across {} plans",
            a.len()
        );
        // The legacy (churn-off) population is untouched by the flag's
        // existence: same seed, same plans as before.
        let legacy = generate_population(&CampaignConfig::new(7));
        assert!(legacy.iter().all(|p| p.reconfig_events().is_empty()));
    }

    #[test]
    fn pure_reconfig_churn_classifies_as_reconfigured_under_fs() {
        let mut cfg = CampaignConfig::new(3);
        cfg.population = 0;
        cfg.cycles = 6_000;
        let plan = FaultPlan::new(5).with(FaultKind::DomainLeave { domain: 1, at: 2_000 });
        let case = run_single(&cfg, plan).expect("reference run is clean");
        assert_eq!(case.outcome, Outcome::Reconfigured, "error: {:?}", case.error);
    }

    #[test]
    fn clean_runs_match_reference_bit_for_bit() {
        let mut cfg = CampaignConfig::new(2);
        cfg.cycles = 4_000;
        // A delay that never fires (period beyond the run) is a no-op.
        let plan =
            FaultPlan::new(3).with(FaultKind::DelayCommand { period: u64::MAX, delay: 5, max: 1 });
        let case = run_single(&cfg, plan).expect("reference run is clean");
        assert_eq!(case.outcome, Outcome::Clean);
        assert!(case.error.is_none());
    }
}
