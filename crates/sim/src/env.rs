//! Environment knobs, parsed in one place.
//!
//! Every `FSMC_*` variable the workspace honours goes through this
//! module, so malformed values produce one uniform warning (never a
//! silent fallback, never a panic) and the set of knobs is documented by
//! the accessor list below:
//!
//! * [`cycles`] — `FSMC_CYCLES`, cycle budget for figure binaries.
//! * [`seed`] — `FSMC_SEED`, workload seed for figure binaries.
//! * [`threads`] — `FSMC_THREADS`, worker-pool width (results are
//!   byte-identical at any value; only wall-clock time changes).
//! * [`batch`] — `FSMC_BATCH`, engine batch width: jobs sharing a
//!   `(mix, seed, cycles)` tuple replay one decoded tape through up to
//!   K interleaved systems per work item (results are byte-identical
//!   at any value; only wall-clock time changes).
//! * [`no_fastpath`] — `FSMC_NO_FASTPATH`, force per-cycle stepping.
//! * [`results_dir`] — `FSMC_RESULTS_DIR`, where experiment binaries
//!   write their CSV/JSON outputs.
//! * [`device`] — `FSMC_DEVICE`, the device generation to simulate
//!   (`ddr3-1600`, `ddr4-2400`, `lpddr4-3200`, `hbm2`).
//! * [`serve_socket`] — `FSMC_SERVE`, path of the experiment-service
//!   socket; when set, suite/figure runs submit through the daemon.
//! * [`serve_workers`] — `FSMC_SERVE_WORKERS`, worker-process pool size
//!   for `fsmc serve`.
//! * [`job_timeout_ms`] — `FSMC_JOB_TIMEOUT`, per-job deadline in
//!   milliseconds enforced by the service watchdog.
//! * [`cache_dir`] — `FSMC_CACHE_DIR`, root of the content-addressed
//!   result cache.

use fsmc_dram::DeviceGeneration;
use std::path::PathBuf;

/// Reads an integer environment knob, warning (rather than silently
/// defaulting) when the variable is set but malformed.
pub fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(v)) => {
            eprintln!("warning: {name}={v:?} is not valid unicode; using default {default}");
            default
        }
        Ok(s) => match s.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: {name}={s:?} is not a valid integer; using default {default}");
                default
            }
        },
    }
}

/// Reads a boolean environment knob (`1`/`true`/`yes`/`on` vs
/// `0`/`false`/`no`/`off`), warning (rather than silently defaulting)
/// when the variable is set but malformed.
pub fn env_flag(name: &str, default: bool) -> bool {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(v)) => {
            eprintln!("warning: {name}={v:?} is not valid unicode; using default {default}");
            default
        }
        Ok(s) => match s.trim().to_ascii_lowercase().as_str() {
            "" => default,
            "1" | "true" | "yes" | "on" => true,
            "0" | "false" | "no" | "off" => false,
            other => {
                eprintln!(
                    "warning: {name}={other:?} is not a boolean flag; using default {default}"
                );
                default
            }
        },
    }
}

/// `FSMC_CYCLES`: DRAM-cycle budget for experiment binaries.
pub fn cycles(default: u64) -> u64 {
    env_u64("FSMC_CYCLES", default)
}

/// `FSMC_SEED`: workload seed for experiment binaries.
pub fn seed(default: u64) -> u64 {
    env_u64("FSMC_SEED", default)
}

/// `FSMC_THREADS`: worker-pool width for the experiment engine,
/// defaulting to the machine's available parallelism. Zero (like any
/// malformed value) is reported and replaced by the default.
pub fn threads() -> usize {
    let default = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = env_u64("FSMC_THREADS", default as u64);
    if threads == 0 {
        eprintln!("warning: FSMC_THREADS=0 is not a valid thread count; using {default}");
        return default;
    }
    threads as usize
}

/// `FSMC_NO_FASTPATH`: force per-cycle stepping (results are
/// bit-identical either way; only wall-clock time changes).
pub fn no_fastpath() -> bool {
    env_flag("FSMC_NO_FASTPATH", false)
}

/// `FSMC_BATCH`: engine batch width — the maximum number of jobs
/// sharing a `(mix, seed, cycles)` tuple that one worker replays as a
/// single interleaved pass over the shared trace tape. `1` (the
/// default) runs every job independently; results are byte-identical
/// at any width. Zero (like any malformed value) is reported and
/// replaced by the default.
pub fn batch() -> usize {
    let width = env_u64("FSMC_BATCH", 1);
    if width == 0 {
        eprintln!("warning: FSMC_BATCH=0 is not a valid batch width; using 1");
        return 1;
    }
    width as usize
}

/// `FSMC_DEVICE`: the device generation experiment binaries simulate.
/// Accepts any [`DeviceGeneration::parse`] spelling (case-insensitive,
/// `_` or `-`); a malformed value is reported and replaced by the
/// default.
pub fn device(default: DeviceGeneration) -> DeviceGeneration {
    match std::env::var("FSMC_DEVICE") {
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(v)) => {
            eprintln!("warning: FSMC_DEVICE={v:?} is not valid unicode; using default {default}");
            default
        }
        Ok(s) => match DeviceGeneration::parse(s.trim()) {
            Some(d) => d,
            None => {
                eprintln!(
                    "warning: FSMC_DEVICE={s:?} is not a known device generation \
                     (expected one of ddr3-1600, ddr4-2400, lpddr4-3200, hbm2); \
                     using default {default}"
                );
                default
            }
        },
    }
}

/// `FSMC_RESULTS_DIR`: where experiment binaries write their outputs.
/// `None` when unset; an empty value is reported and treated as unset.
pub fn results_dir() -> Option<PathBuf> {
    let v = std::env::var_os("FSMC_RESULTS_DIR")?;
    if v.is_empty() {
        eprintln!("warning: FSMC_RESULTS_DIR is set but empty; ignoring it");
        return None;
    }
    Some(PathBuf::from(v))
}

/// `FSMC_SERVE`: path of the experiment-service Unix socket. `None`
/// when unset; an empty value is reported and treated as unset. When
/// this returns `Some`, suite and figure runs submit their jobs through
/// the daemon instead of simulating in-process.
pub fn serve_socket() -> Option<PathBuf> {
    let v = std::env::var_os("FSMC_SERVE")?;
    if v.is_empty() {
        eprintln!("warning: FSMC_SERVE is set but empty; ignoring it");
        return None;
    }
    Some(PathBuf::from(v))
}

/// `FSMC_SERVE_WORKERS`: worker-process pool size for `fsmc serve`,
/// defaulting to the machine's available parallelism. Zero (like any
/// malformed value) is reported and replaced by the default.
pub fn serve_workers() -> usize {
    let default = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = env_u64("FSMC_SERVE_WORKERS", default as u64);
    if workers == 0 {
        eprintln!("warning: FSMC_SERVE_WORKERS=0 is not a valid pool size; using {default}");
        return default;
    }
    workers as usize
}

/// `FSMC_JOB_TIMEOUT`: per-job deadline in milliseconds enforced by the
/// experiment-service watchdog; a worker past its deadline is killed and
/// its job retried. Zero (like any malformed value) is reported and
/// replaced by the default (120 s).
pub fn job_timeout_ms() -> u64 {
    const DEFAULT: u64 = 120_000;
    let ms = env_u64("FSMC_JOB_TIMEOUT", DEFAULT);
    if ms == 0 {
        eprintln!("warning: FSMC_JOB_TIMEOUT=0 is not a valid deadline; using {DEFAULT} ms");
        return DEFAULT;
    }
    ms
}

/// `FSMC_CACHE_DIR`: root of the content-addressed result cache,
/// defaulting to `results/cache`. An empty value is reported and
/// replaced by the default.
pub fn cache_dir() -> PathBuf {
    const DEFAULT: &str = "results/cache";
    match std::env::var_os("FSMC_CACHE_DIR") {
        None => PathBuf::from(DEFAULT),
        Some(v) if v.is_empty() => {
            eprintln!("warning: FSMC_CACHE_DIR is set but empty; using default {DEFAULT}");
            PathBuf::from(DEFAULT)
        }
        Some(v) => PathBuf::from(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns its real variable name. Concurrent tests in this
    // binary may observe the temporary values, but every knob here is
    // results-neutral by design (thread count, fast path) or unread by
    // the test suite (cycles, seed, results dir), so cross-test races
    // cannot change any assertion.

    #[test]
    fn fsmc_cycles_parses_and_rejects_garbage() {
        std::env::set_var("FSMC_CYCLES", "120000");
        assert_eq!(cycles(7), 120_000);
        std::env::set_var("FSMC_CYCLES", "a-lot");
        assert_eq!(cycles(7), 7);
        std::env::remove_var("FSMC_CYCLES");
        assert_eq!(cycles(7), 7);
    }

    #[test]
    fn fsmc_seed_parses_with_whitespace() {
        std::env::set_var("FSMC_SEED", " 99 ");
        assert_eq!(seed(42), 99);
        std::env::set_var("FSMC_SEED", "");
        assert_eq!(seed(42), 42);
        std::env::remove_var("FSMC_SEED");
        assert_eq!(seed(42), 42);
    }

    #[test]
    fn fsmc_threads_rejects_zero_and_garbage() {
        let fallback = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        std::env::set_var("FSMC_THREADS", "3");
        assert_eq!(threads(), 3);
        std::env::set_var("FSMC_THREADS", "0");
        assert_eq!(threads(), fallback);
        std::env::set_var("FSMC_THREADS", "many");
        assert_eq!(threads(), fallback);
        std::env::remove_var("FSMC_THREADS");
        assert_eq!(threads(), fallback);
    }

    #[test]
    fn fsmc_no_fastpath_accepts_boolean_spellings() {
        for (v, expect) in [("1", true), ("yes", true), ("ON", true), ("0", false), ("no", false)] {
            std::env::set_var("FSMC_NO_FASTPATH", v);
            assert_eq!(no_fastpath(), expect, "FSMC_NO_FASTPATH={v}");
        }
        std::env::set_var("FSMC_NO_FASTPATH", "maybe");
        assert!(!no_fastpath(), "malformed value falls back to the default");
        std::env::remove_var("FSMC_NO_FASTPATH");
        assert!(!no_fastpath());
    }

    #[test]
    fn fsmc_device_parses_and_rejects_garbage() {
        std::env::set_var("FSMC_DEVICE", "lpddr4-3200");
        assert_eq!(device(DeviceGeneration::Ddr3_1600), DeviceGeneration::Lpddr4_3200);
        std::env::set_var("FSMC_DEVICE", " HBM2 ");
        assert_eq!(device(DeviceGeneration::Ddr3_1600), DeviceGeneration::Hbm2);
        std::env::set_var("FSMC_DEVICE", "ddr5-9999");
        assert_eq!(device(DeviceGeneration::Ddr4_2400), DeviceGeneration::Ddr4_2400);
        std::env::remove_var("FSMC_DEVICE");
        assert_eq!(device(DeviceGeneration::Ddr3_1600), DeviceGeneration::Ddr3_1600);
    }

    #[test]
    fn fsmc_serve_ignores_empty() {
        std::env::set_var("FSMC_SERVE", "/tmp/fsmc.sock");
        assert_eq!(serve_socket(), Some(PathBuf::from("/tmp/fsmc.sock")));
        std::env::set_var("FSMC_SERVE", "");
        assert_eq!(serve_socket(), None);
        std::env::remove_var("FSMC_SERVE");
        assert_eq!(serve_socket(), None);
    }

    #[test]
    fn fsmc_serve_workers_rejects_zero_and_garbage() {
        let fallback = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        std::env::set_var("FSMC_SERVE_WORKERS", "5");
        assert_eq!(serve_workers(), 5);
        std::env::set_var("FSMC_SERVE_WORKERS", "0");
        assert_eq!(serve_workers(), fallback);
        std::env::set_var("FSMC_SERVE_WORKERS", "a-few");
        assert_eq!(serve_workers(), fallback);
        std::env::remove_var("FSMC_SERVE_WORKERS");
        assert_eq!(serve_workers(), fallback);
    }

    #[test]
    fn fsmc_job_timeout_rejects_zero_and_garbage() {
        std::env::set_var("FSMC_JOB_TIMEOUT", "2500");
        assert_eq!(job_timeout_ms(), 2500);
        std::env::set_var("FSMC_JOB_TIMEOUT", "0");
        assert_eq!(job_timeout_ms(), 120_000);
        std::env::set_var("FSMC_JOB_TIMEOUT", "soon");
        assert_eq!(job_timeout_ms(), 120_000);
        std::env::remove_var("FSMC_JOB_TIMEOUT");
        assert_eq!(job_timeout_ms(), 120_000);
    }

    #[test]
    fn fsmc_cache_dir_defaults_and_ignores_empty() {
        std::env::set_var("FSMC_CACHE_DIR", "/tmp/fsmc-cache");
        assert_eq!(cache_dir(), PathBuf::from("/tmp/fsmc-cache"));
        std::env::set_var("FSMC_CACHE_DIR", "");
        assert_eq!(cache_dir(), PathBuf::from("results/cache"));
        std::env::remove_var("FSMC_CACHE_DIR");
        assert_eq!(cache_dir(), PathBuf::from("results/cache"));
    }

    #[test]
    fn fsmc_results_dir_ignores_empty() {
        std::env::set_var("FSMC_RESULTS_DIR", "/tmp/fsmc-results");
        assert_eq!(results_dir(), Some(PathBuf::from("/tmp/fsmc-results")));
        std::env::set_var("FSMC_RESULTS_DIR", "");
        assert_eq!(results_dir(), None);
        std::env::remove_var("FSMC_RESULTS_DIR");
        assert_eq!(results_dir(), None);
    }
}
