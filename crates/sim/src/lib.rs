//! # fsmc-sim — the full-system simulator
//!
//! Wires the substrates together: out-of-order cores ([`fsmc_cpu`])
//! driven by synthetic traces ([`fsmc_workload`]) issue memory requests
//! through per-core MSHRs into a memory controller ([`fsmc_core`]) that
//! drives a cycle-accurate DDR3 channel ([`fsmc_dram`]); activity
//! counters feed the energy model ([`fsmc_energy`]).
//!
//! The CPU runs four cycles per DRAM bus cycle (3.2 GHz vs 800 MHz,
//! Table 1).
//!
//! * [`config`] — [`config::SystemConfig`], defaulting to the paper's
//!   Table 1 system.
//! * [`system`] — [`system::System`], the cycle loop.
//! * [`stats`] — run statistics and weighted-IPC helpers.
//! * [`runner`] — experiment orchestration: run a workload mix under the
//!   baseline to obtain normalisation IPCs, then under each policy.
//! * [`engine`] — the deterministic parallel experiment engine:
//!   declare a grid of independent jobs as an [`engine::ExperimentPlan`],
//!   execute them on an `FSMC_THREADS`-sized worker pool with memoized
//!   trace synthesis, and read byte-identical per-slot results at any
//!   thread count.
//! * [`error`] — the typed failure hierarchy ([`error::FsmcError`]):
//!   solver infeasibility, bad configuration, runtime timing poisoning,
//!   trace corruption, watchdog-detected starvation and online invariant
//!   breaches — failing runs carry fault-plan provenance for one-line
//!   repro.
//! * [`faults`] — deterministic, seedable fault injection
//!   ([`faults::FaultPlan`]) for robustness experiments.
//! * [`monitor`] — the online invariant monitor
//!   ([`monitor::InvariantMonitor`]): Table-1 stream legality, FS slot
//!   cadence, refresh deadlines and queue bounds, checked as commands
//!   issue.
//! * [`campaign`] — the chaos campaign: seeded fault-plan populations,
//!   outcome classification against a fault-free reference, and greedy
//!   shrinking of failing plans to 1-minimal fault sets.
//! * [`spec`] — serializable job specs for the experiment service
//!   ([`spec::JobSpec`]): canonical text encoding, a stable SHA-256
//!   cache key, and bit-exact result/failure payloads for transport
//!   between worker processes and the result cache.
//! * [`mod@env`] — every `FSMC_*` environment knob, parsed in one place
//!   with uniform malformed-value warnings.
//!
//! Observability ([`fsmc_obs`]) hooks into [`system::System`] via
//! [`system::System::enable_tracing`] /
//! [`system::System::enable_metrics`]: both are `Option`-gated, so a
//! system with neither armed runs the exact pre-observability hot path.

pub mod campaign;
pub mod config;
pub mod engine;
pub mod env;
pub mod error;
pub mod faults;
pub mod monitor;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod system;

pub use campaign::{
    classify, generate_population, run_campaign, run_single, CampaignConfig, CampaignReport,
    CaseReport, Outcome, SplitMix64,
};
pub use config::SystemConfig;
pub use engine::{ControllerFactory, Engine, ExperimentJob, ExperimentPlan};
pub use error::{
    FaultProvenance, FsmcError, InvariantBreach, MonitorFinding, ServiceFailure, TimingFault,
    WatchdogReport,
};
pub use faults::{FaultKind, FaultPlan, TimingField};
pub use monitor::InvariantMonitor;
pub use runner::{
    run_mix, run_mix_faulted, run_mix_suite, run_mix_suite_faulted, RunResult, SuiteResult,
};
pub use spec::JobSpec;
pub use stats::SystemStats;
pub use system::System;
