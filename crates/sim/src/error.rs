//! The simulation-level error hierarchy.
//!
//! Everything that can go wrong across a run funnels into [`FsmcError`]:
//! solver infeasibility and bad configuration bubble up from
//! [`fsmc_core`], trace problems from [`fsmc_cpu`], runtime timing
//! violations from the degradation machinery, and starvation from the
//! simulation watchdog. One failing policy run therefore yields a
//! structured error value instead of killing a whole suite.

use fsmc_core::error::{ConfigError, CoreError};
use fsmc_core::sched::SchedulerKind;
use fsmc_core::solver::SolveError;
use fsmc_core::txn::TxnId;
use fsmc_cpu::trace_file::TraceError;
use fsmc_dram::checker::Violation;
use std::fmt;

/// A runtime timing violation that survived the controller's single
/// repair attempt (the controller is poisoned).
#[derive(Debug, Clone, Copy)]
pub struct TimingFault {
    /// The policy that was running when the pipeline failed.
    pub scheduler: SchedulerKind,
    /// The command the device rejected.
    pub violation: Violation,
}

impl fmt::Display for TimingFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} poisoned by timing violation: {}", self.scheduler, self.violation)
    }
}

/// The watchdog's diagnosis of a starved or deadlocked simulation: which
/// domain is stuck, where its oldest outstanding read maps, and for how
/// long nothing has retired.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogReport {
    /// DRAM cycle at which the watchdog fired.
    pub cycle: u64,
    /// DRAM cycles since the last demand read completed.
    pub stalled_for: u64,
    /// Domain owning the oldest outstanding read.
    pub domain: u8,
    /// Rank / bank the oldest outstanding read maps to.
    pub rank: u8,
    pub bank: u8,
    /// The oldest outstanding demand read.
    pub oldest: TxnId,
    /// Total outstanding demand reads.
    pub outstanding: usize,
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "watchdog: no read retired for {} cycles (now {}); oldest txn {:?} of domain {} \
             (rank {}, bank {}), {} outstanding",
            self.stalled_for,
            self.cycle,
            self.oldest,
            self.domain,
            self.rank,
            self.bank,
            self.outstanding
        )
    }
}

/// Any failure a simulation run can surface.
#[derive(Debug)]
pub enum FsmcError {
    /// No feasible pipeline, not even the conservative fallback.
    Solve(SolveError),
    /// Invalid controller or system configuration.
    Config(ConfigError),
    /// A timing violation poisoned the controller at runtime.
    Timing(TimingFault),
    /// The input trace could not be loaded.
    Trace(TraceError),
    /// The simulation stopped making progress.
    Watchdog(WatchdogReport),
}

impl fmt::Display for FsmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmcError::Solve(e) => write!(f, "{e}"),
            FsmcError::Config(e) => write!(f, "{e}"),
            FsmcError::Timing(e) => write!(f, "{e}"),
            FsmcError::Trace(e) => write!(f, "{e}"),
            FsmcError::Watchdog(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FsmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsmcError::Solve(e) => Some(e),
            FsmcError::Config(e) => Some(e),
            FsmcError::Trace(e) => Some(e),
            FsmcError::Timing(_) | FsmcError::Watchdog(_) => None,
        }
    }
}

impl From<SolveError> for FsmcError {
    fn from(e: SolveError) -> Self {
        FsmcError::Solve(e)
    }
}

impl From<ConfigError> for FsmcError {
    fn from(e: ConfigError) -> Self {
        FsmcError::Config(e)
    }
}

impl From<CoreError> for FsmcError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Solve(e) => FsmcError::Solve(e),
            CoreError::Config(e) => FsmcError::Config(e),
        }
    }
}

impl From<TraceError> for FsmcError {
    fn from(e: TraceError) -> Self {
        FsmcError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_core::solver::{Anchor, PartitionLevel};

    #[test]
    fn displays_name_the_failing_layer() {
        let solve: FsmcError =
            SolveError { anchor: Anchor::FixedPeriodicRas, level: PartitionLevel::None }.into();
        assert!(solve.to_string().contains("no feasible slot pitch"));
        let cfg: FsmcError = ConfigError::new("zero domains").into();
        assert!(cfg.to_string().contains("zero domains"));
        let wd = FsmcError::Watchdog(WatchdogReport {
            cycle: 50_000,
            stalled_for: 20_001,
            domain: 3,
            rank: 3,
            bank: 0,
            oldest: TxnId(17),
            outstanding: 9,
        });
        let msg = wd.to_string();
        assert!(msg.contains("domain 3") && msg.contains("20001 cycles"), "{msg}");
    }

    #[test]
    fn core_errors_map_onto_sim_variants() {
        let e: FsmcError = CoreError::Config(ConfigError::new("bad")).into();
        assert!(matches!(e, FsmcError::Config(_)));
        let e: FsmcError = CoreError::Solve(SolveError {
            anchor: Anchor::FixedPeriodicData,
            level: PartitionLevel::Rank,
        })
        .into();
        assert!(matches!(e, FsmcError::Solve(_)));
    }
}
