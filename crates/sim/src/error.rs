//! The simulation-level error hierarchy.
//!
//! Everything that can go wrong across a run funnels into [`FsmcError`]:
//! solver infeasibility and bad configuration bubble up from
//! [`fsmc_core`], trace problems from [`fsmc_cpu`], runtime timing
//! violations from the degradation machinery, and starvation from the
//! simulation watchdog. One failing policy run therefore yields a
//! structured error value instead of killing a whole suite.

use crate::faults::FaultPlan;
use fsmc_core::error::{ConfigError, CoreError};
use fsmc_core::sched::SchedulerKind;
use fsmc_core::solver::SolveError;
use fsmc_core::txn::TxnId;
use fsmc_cpu::trace_file::TraceError;
use fsmc_dram::checker::Violation;
use std::fmt;

/// The fault plan that was active when a run failed: seed plus the plan's
/// spec string, enough to rebuild the exact plan from the error text alone
/// (`fsmc chaos --fault-seed <seed> --faults '<spec>'`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultProvenance {
    pub seed: u64,
    /// [`FaultPlan::spec`] rendering of the active fault list.
    pub spec: String,
}

impl FaultProvenance {
    pub fn of(plan: &FaultPlan) -> Self {
        FaultProvenance { seed: plan.seed, spec: plan.spec() }
    }
}

impl fmt::Display for FaultProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "repro: --fault-seed {} --faults '{}'", self.seed, self.spec)
    }
}

/// A runtime timing violation that survived the controller's single
/// repair attempt (the controller is poisoned).
#[derive(Debug, Clone)]
pub struct TimingFault {
    /// The policy that was running when the pipeline failed.
    pub scheduler: SchedulerKind,
    /// The command the device rejected.
    pub violation: Violation,
    /// The fault plan active during the run, when one was injected.
    pub provenance: Option<FaultProvenance>,
}

impl fmt::Display for TimingFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} poisoned by timing violation: {}", self.scheduler, self.violation)?;
        if let Some(p) = &self.provenance {
            write!(f, "; {p}")?;
        }
        Ok(())
    }
}

/// The watchdog's diagnosis of a starved or deadlocked simulation: which
/// domain is stuck, where its oldest outstanding read maps, and for how
/// long nothing has retired.
#[derive(Debug, Clone)]
pub struct WatchdogReport {
    /// DRAM cycle at which the watchdog fired.
    pub cycle: u64,
    /// DRAM cycles since the last demand read completed.
    pub stalled_for: u64,
    /// Domain owning the oldest outstanding read.
    pub domain: u8,
    /// Rank / bank the oldest outstanding read maps to.
    pub rank: u8,
    pub bank: u8,
    /// The oldest outstanding demand read.
    pub oldest: TxnId,
    /// Total outstanding demand reads.
    pub outstanding: usize,
    /// The controller's reconfiguration epoch when the watchdog fired
    /// (0 if the topology never changed).
    pub epoch: u64,
    /// When a reconfiguration was quiescing toward its boundary, the
    /// adoption cycle it was waiting for — a hang *during quiesce* is
    /// thereby distinguishable from an ordinary scheduler stall.
    pub reconfig_pending_at: Option<u64>,
    /// The fault plan active during the run, when one was injected.
    pub provenance: Option<FaultProvenance>,
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "watchdog: no read retired for {} cycles (now {}); oldest txn {:?} of domain {} \
             (rank {}, bank {}), {} outstanding; epoch {}",
            self.stalled_for,
            self.cycle,
            self.oldest,
            self.domain,
            self.rank,
            self.bank,
            self.outstanding,
            self.epoch
        )?;
        match self.reconfig_pending_at {
            Some(at) => write!(f, ", reconfiguration quiescing toward cycle {at}")?,
            None => write!(f, ", no reconfiguration pending")?,
        }
        if let Some(p) = &self.provenance {
            write!(f, "; {p}")?;
        }
        Ok(())
    }
}

/// What the online invariant monitor flagged: either a Table-1 timing rule
/// broken by a specific command, or an FS-level invariant (slot cadence,
/// refresh deadline, queue bound) with a rendered detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorFinding {
    /// A per-command DDR3 rule violation from the stream monitor.
    Command(Violation),
    /// A schedule-integrity invariant, with context.
    Invariant { invariant: &'static str, detail: String },
}

impl fmt::Display for MonitorFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorFinding::Command(v) => write!(f, "{v}"),
            MonitorFinding::Invariant { invariant, detail } => write!(f, "{invariant}: {detail}"),
        }
    }
}

/// An invariant violation caught *online* by the monitor — the command (or
/// missed deadline) was flagged on the cycle it happened, not in a post-hoc
/// replay. Unlike [`TimingFault`], the controller itself may believe the
/// run is healthy: the monitor exists precisely to catch drift the issue
/// path does not notice (e.g. a delayed command that is device-legal but
/// off its solved slot phase).
#[derive(Debug, Clone)]
pub struct InvariantBreach {
    /// The policy that was running.
    pub scheduler: SchedulerKind,
    /// DRAM cycle at which the monitor flagged the breach.
    pub cycle: u64,
    pub finding: MonitorFinding,
    /// The fault plan active during the run, when one was injected.
    pub provenance: Option<FaultProvenance>,
}

impl fmt::Display for InvariantBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant monitor: {} breached at cycle {}: {}",
            self.scheduler, self.cycle, self.finding
        )?;
        if let Some(p) = &self.provenance {
            write!(f, "; {p}")?;
        }
        Ok(())
    }
}

/// A job the experiment service gave up on: the canonical spec of the
/// experiment, how many attempts were made, and why the last one died.
/// Whatever fault provenance the worker's typed error carried is inside
/// `error` verbatim — the record is enough to re-run the job by hand
/// (`fsmc submit --spec '<spec>'`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceFailure {
    /// The job's canonical spec line.
    pub spec: String,
    /// Attempts the service made before poisoning the job.
    pub attempts: u32,
    /// `timeout`, `crash`, or `error` (a typed simulation error).
    pub reason: String,
    /// The last attempt's rendered error.
    pub error: String,
}

impl fmt::Display for ServiceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "experiment service poisoned job after {} attempt{} ({}): {}; spec: {}",
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.reason,
            self.error,
            self.spec
        )
    }
}

/// Any failure a simulation run can surface.
#[derive(Debug)]
pub enum FsmcError {
    /// No feasible pipeline, not even the conservative fallback.
    Solve(SolveError),
    /// Invalid controller or system configuration.
    Config(ConfigError),
    /// A timing violation poisoned the controller at runtime.
    Timing(TimingFault),
    /// The input trace could not be loaded.
    Trace(TraceError),
    /// The simulation stopped making progress.
    Watchdog(WatchdogReport),
    /// The online invariant monitor flagged a breach.
    Invariant(InvariantBreach),
    /// The experiment service poisoned the job after exhausting retries.
    Service(ServiceFailure),
}

impl FsmcError {
    /// Attaches fault-plan provenance to the variants that describe a
    /// runtime failure, so the repro line appears in the error text. A
    /// plan without faults attaches nothing.
    #[must_use]
    pub fn with_provenance(mut self, plan: &FaultPlan) -> Self {
        if plan.faults.is_empty() {
            return self;
        }
        let p = FaultProvenance::of(plan);
        match &mut self {
            FsmcError::Timing(t) => t.provenance = Some(p),
            FsmcError::Watchdog(w) => w.provenance = Some(p),
            FsmcError::Invariant(b) => b.provenance = Some(p),
            // Construction-time failures (solve/config/trace) already name
            // the bad input; the plan is visible to whoever built it. A
            // service failure carries the worker's rendered error, which
            // already embeds any provenance the run attached.
            FsmcError::Solve(_)
            | FsmcError::Config(_)
            | FsmcError::Trace(_)
            | FsmcError::Service(_) => {}
        }
        self
    }

    /// The attached fault-plan provenance, if any.
    pub fn provenance(&self) -> Option<&FaultProvenance> {
        match self {
            FsmcError::Timing(t) => t.provenance.as_ref(),
            FsmcError::Watchdog(w) => w.provenance.as_ref(),
            FsmcError::Invariant(b) => b.provenance.as_ref(),
            _ => None,
        }
    }
}

impl fmt::Display for FsmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmcError::Solve(e) => write!(f, "{e}"),
            FsmcError::Config(e) => write!(f, "{e}"),
            FsmcError::Timing(e) => write!(f, "{e}"),
            FsmcError::Trace(e) => write!(f, "{e}"),
            FsmcError::Watchdog(e) => write!(f, "{e}"),
            FsmcError::Invariant(e) => write!(f, "{e}"),
            FsmcError::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FsmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsmcError::Solve(e) => Some(e),
            FsmcError::Config(e) => Some(e),
            FsmcError::Trace(e) => Some(e),
            FsmcError::Timing(_)
            | FsmcError::Watchdog(_)
            | FsmcError::Invariant(_)
            | FsmcError::Service(_) => None,
        }
    }
}

impl From<SolveError> for FsmcError {
    fn from(e: SolveError) -> Self {
        FsmcError::Solve(e)
    }
}

impl From<ConfigError> for FsmcError {
    fn from(e: ConfigError) -> Self {
        FsmcError::Config(e)
    }
}

impl From<CoreError> for FsmcError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Solve(e) => FsmcError::Solve(e),
            CoreError::Config(e) => FsmcError::Config(e),
        }
    }
}

impl From<TraceError> for FsmcError {
    fn from(e: TraceError) -> Self {
        FsmcError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_core::solver::{Anchor, PartitionLevel};

    #[test]
    fn displays_name_the_failing_layer() {
        let solve: FsmcError =
            SolveError { anchor: Anchor::FixedPeriodicRas, level: PartitionLevel::None }.into();
        assert!(solve.to_string().contains("no feasible slot pitch"));
        let cfg: FsmcError = ConfigError::new("zero domains").into();
        assert!(cfg.to_string().contains("zero domains"));
        let wd = FsmcError::Watchdog(WatchdogReport {
            cycle: 50_000,
            stalled_for: 20_001,
            domain: 3,
            rank: 3,
            bank: 0,
            oldest: TxnId(17),
            outstanding: 9,
            epoch: 0,
            reconfig_pending_at: None,
            provenance: None,
        });
        let msg = wd.to_string();
        assert!(msg.contains("domain 3") && msg.contains("20001 cycles"), "{msg}");
        assert!(msg.contains("epoch 0") && msg.contains("no reconfiguration pending"), "{msg}");
        // A hang during quiesce names the boundary it was waiting for.
        let quiesce = FsmcError::Watchdog(WatchdogReport {
            cycle: 50_000,
            stalled_for: 20_001,
            domain: 3,
            rank: 3,
            bank: 0,
            oldest: TxnId(17),
            outstanding: 9,
            epoch: 2,
            reconfig_pending_at: Some(50_400),
            provenance: None,
        })
        .to_string();
        assert!(
            quiesce.contains("epoch 2")
                && quiesce.contains("reconfiguration quiescing toward cycle 50400"),
            "{quiesce}"
        );
    }

    #[test]
    fn provenance_renders_a_standalone_repro_line() {
        use crate::faults::FaultKind;
        let plan = FaultPlan::new(77).with(FaultKind::DropCommand { period: 3, max: 1 });
        let wd = FsmcError::Watchdog(WatchdogReport {
            cycle: 1,
            stalled_for: 2,
            domain: 0,
            rank: 0,
            bank: 0,
            oldest: TxnId(0),
            outstanding: 1,
            epoch: 0,
            reconfig_pending_at: None,
            provenance: None,
        })
        .with_provenance(&plan);
        let msg = wd.to_string();
        assert!(msg.contains("repro: --fault-seed 77 --faults 'drop(3,1)'"), "{msg}");
        // Rebuilding the plan from the error text reproduces it exactly.
        let p = wd.provenance().unwrap();
        assert_eq!(FaultPlan::parse_spec(p.seed, &p.spec).unwrap(), plan);
        // An empty plan attaches nothing.
        let clean = FsmcError::Watchdog(WatchdogReport {
            cycle: 1,
            stalled_for: 2,
            domain: 0,
            rank: 0,
            bank: 0,
            oldest: TxnId(0),
            outstanding: 1,
            epoch: 0,
            reconfig_pending_at: None,
            provenance: None,
        })
        .with_provenance(&FaultPlan::new(5));
        assert!(clean.provenance().is_none());
    }

    #[test]
    fn service_failures_render_spec_and_attempts() {
        let e = FsmcError::Service(ServiceFailure {
            spec: "cores=8 cycles=1000 device=ddr3-1600 mix=mix1 scheduler=fs-rp seed=1".into(),
            attempts: 3,
            reason: "timeout".into(),
            error: "worker exceeded 50ms deadline".into(),
        });
        let msg = e.to_string();
        assert!(msg.contains("after 3 attempts (timeout)"), "{msg}");
        assert!(msg.contains("mix=mix1"), "{msg}");
        assert!(e.provenance().is_none());
    }

    #[test]
    fn core_errors_map_onto_sim_variants() {
        let e: FsmcError = CoreError::Config(ConfigError::new("bad")).into();
        assert!(matches!(e, FsmcError::Config(_)));
        let e: FsmcError = CoreError::Solve(SolveError {
            anchor: Anchor::FixedPeriodicData,
            level: PartitionLevel::Rank,
        })
        .into();
        assert!(matches!(e, FsmcError::Solve(_)));
    }
}
