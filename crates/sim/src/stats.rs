//! Run statistics.

use fsmc_core::sched::McStats;
use fsmc_cpu::CoreStats;
use fsmc_energy::EnergyBreakdown;

/// Everything a finished simulation reports.
#[derive(Debug, Clone, Default)]
pub struct SystemStats {
    pub cores: Vec<CoreStats>,
    pub mc: McStats,
    pub energy: EnergyBreakdown,
    /// Elapsed DRAM bus cycles.
    pub dram_cycles: u64,
    /// Data-bus utilization over the run, in [0, 1].
    pub bus_utilization: f64,
    /// Demand reads completed (the paper terminates runs on this).
    pub reads_completed: u64,
    /// Prefetch-buffer hits (useful prefetches).
    pub useful_prefetches: u64,
    /// Reads served by store-to-load forwarding (never reached DRAM).
    pub forwarded_reads: u64,
}

impl SystemStats {
    /// Per-core IPCs.
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(|c| c.ipc()).collect()
    }

    /// Raw sum of IPCs (not normalised).
    pub fn ipc_sum(&self) -> f64 {
        self.ipcs().iter().sum()
    }

    /// Sum of per-core IPCs normalised against reference IPCs (the
    /// paper's "sum of weighted IPCs"; the reference is the same mix on
    /// the non-secure baseline, so the baseline scores `cores`).
    pub fn weighted_ipc_vs(&self, reference: &[f64]) -> f64 {
        assert_eq!(reference.len(), self.cores.len(), "reference IPC count mismatch");
        self.ipcs()
            .iter()
            .zip(reference)
            .map(|(ipc, base)| if *base > 0.0 { ipc / base } else { 0.0 })
            .sum()
    }

    /// Raw IPC sum — exposed under the paper's metric name for
    /// convenience when no reference is involved.
    pub fn weighted_ipc_sum(&self) -> f64 {
        self.ipc_sum()
    }

    /// Average demand-read latency in DRAM cycles.
    pub fn avg_read_latency(&self) -> f64 {
        self.mc.avg_read_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_ipc_normalises() {
        let s = SystemStats {
            cores: vec![
                CoreStats { instructions_retired: 200, cpu_cycles: 100, ..Default::default() },
                CoreStats { instructions_retired: 50, cpu_cycles: 100, ..Default::default() },
            ],
            ..Default::default()
        };
        // IPCs: 2.0 and 0.5; reference 2.0 and 1.0 -> 1.0 + 0.5.
        let w = s.weighted_ipc_vs(&[2.0, 1.0]);
        assert!((w - 1.5).abs() < 1e-12);
        assert!((s.ipc_sum() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn weighted_ipc_checks_length() {
        let s = SystemStats { cores: vec![CoreStats::default()], ..Default::default() };
        s.weighted_ipc_vs(&[1.0, 1.0]);
    }

    #[test]
    fn zero_reference_contributes_zero() {
        let s = SystemStats {
            cores: vec![CoreStats {
                instructions_retired: 10,
                cpu_cycles: 10,
                ..Default::default()
            }],
            ..Default::default()
        };
        assert_eq!(s.weighted_ipc_vs(&[0.0]), 0.0);
    }
}
