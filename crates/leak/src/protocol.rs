//! The covert-channel protocol families: who the sender is and what the
//! modulated observable carries.
//!
//! Every protocol pairs a [`TraceSource`] sender (domain 1) with the
//! [`Modulator`] ground truth a synchronised receiver decodes against.
//! The three encodings probe three distinct microarchitectural levers:
//!
//! * [`Protocol::Intensity`] — on-off keying of memory *pressure*: a 1
//!   floods, a 0 computes. The bluntest channel and the one real-world
//!   attacks (Wu et al., Hunger et al.) demonstrate at 100+ Kbps.
//! * [`Protocol::BankConflict`] — constant pressure, modulated *spread*:
//!   a 1 sweeps rows across every bank (colliding with the receiver's
//!   banks at other rows), a 0 stays inside one row of one bank.
//! * [`Protocol::RowBuffer`] — constant pressure in a single bank,
//!   modulated *row-buffer state*: a 1 ping-pongs two rows, a 0 streams
//!   one row. The subtlest encoding.

use fsmc_core::sched::SchedulerKind;
use fsmc_cpu::trace::TraceSource;
use fsmc_security::channel::{run_covert_protocol, ChannelParams, CovertChannelReport};
use fsmc_security::leakage::LeakageError;
use fsmc_workload::{BankConflictTrace, ModulatedTrace, Modulator, RowBufferTrace};

/// A covert-channel encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    Intensity,
    BankConflict,
    RowBuffer,
}

impl Protocol {
    /// Every protocol, in presentation order.
    pub fn all() -> [Protocol; 3] {
        [Protocol::Intensity, Protocol::BankConflict, Protocol::RowBuffer]
    }

    /// The CLI/CSV spelling.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Intensity => "intensity",
            Protocol::BankConflict => "bank-conflict",
            Protocol::RowBuffer => "row-buffer",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<Protocol> {
        Protocol::all().into_iter().find(|p| p.name() == s.trim().to_ascii_lowercase())
    }

    /// Builds the sender trace transmitting `bits` plus the modulation
    /// schedule the receiver decodes against.
    pub fn build(self, bits: &[bool]) -> (Box<dyn TraceSource>, Modulator) {
        match self {
            Protocol::Intensity => {
                // Asymmetric budgets: memory-bound one-bits retire far
                // fewer instructions per cycle than compute-bound zeros.
                let t = ModulatedTrace::with_periods(bits.to_vec(), 4_000, 160_000);
                let m = t.modulator().clone();
                (Box::new(t), m)
            }
            Protocol::BankConflict => {
                // Both phases are memory-bound at the same rate; the
                // budget sets the symbol length and must span several
                // receiver windows or every window straddles a symbol
                // boundary and is discarded.
                let t = BankConflictTrace::new(bits.to_vec(), 24_000);
                let m = t.modulator().clone();
                (Box::new(t), m)
            }
            Protocol::RowBuffer => {
                let t = RowBufferTrace::new(bits.to_vec(), 24_000);
                let m = t.modulator().clone();
                (Box::new(t), m)
            }
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The 8-bit default secret used when a caller does not supply one.
pub fn default_secret() -> Vec<bool> {
    vec![true, false, true, true, false, false, true, false]
}

/// Runs one protocol under `scheduler` with the stock probe receiver.
///
/// # Errors
///
/// [`LeakageError`] if the mutual-information estimate over the decoded
/// windows is ill-posed.
pub fn run_protocol(
    protocol: Protocol,
    scheduler: SchedulerKind,
    bits: &[bool],
    params: ChannelParams,
) -> Result<CovertChannelReport, LeakageError> {
    let (sender, modulator) = protocol.build(bits);
    run_covert_protocol(scheduler, sender, &modulator, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Protocol::all() {
            assert_eq!(Protocol::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(Protocol::parse("smoke-signals"), None);
    }

    #[test]
    fn every_protocol_builds_a_sender() {
        for p in Protocol::all() {
            let (mut sender, modulator) = p.build(&default_secret());
            assert_eq!(modulator.bits().len(), 8);
            // The sender produces ops without panicking.
            for _ in 0..100 {
                let _ = sender.next_op();
            }
        }
    }
}
