//! Online leakage estimation from streaming drain-time observations.
//!
//! The offline capacity estimator replays a whole experiment and bins
//! latencies over their observed range; a *monitor* cannot do that — it
//! sees one latency at a time and must answer "is this run leaking?"
//! at any point. [`OnlineLeakEstimator`] keeps one
//! [`fsmc_obs::LatencyHistogram`] (64 fixed log2 buckets, integer-exact)
//! per symbol class and computes the mutual information of the joint
//! (bucket, symbol) distribution on demand. Fixed bucket edges make the
//! estimate order-independent: any interleaving of the same samples
//! yields the same MI, which is what lets threaded campaign replicas
//! agree byte-for-byte.

use fsmc_obs::metrics::LatencyHistogram;

/// Streaming estimator of the information a latency series carries about
/// a binary symbol.
#[derive(Debug, Clone, Default)]
pub struct OnlineLeakEstimator {
    class: [LatencyHistogram; 2],
}

impl OnlineLeakEstimator {
    pub fn new() -> Self {
        OnlineLeakEstimator::default()
    }

    /// Feeds one observation: the sender's current `symbol` and the
    /// receiver's measured drain `latency` (cycles).
    pub fn record(&mut self, symbol: bool, latency: u64) {
        self.class[symbol as usize].record(latency);
    }

    /// Total observations across both classes.
    pub fn samples(&self) -> u64 {
        self.class[0].count() + self.class[1].count()
    }

    /// Mutual information (bits) between the latency bucket and the
    /// symbol, from the joint histogram. Zero when either class is empty
    /// or the distributions coincide.
    pub fn mi_bits(&self) -> f64 {
        let n = self.samples();
        if n == 0 {
            return 0.0;
        }
        let n = n as f64;
        let a = self.class[0].bucket_counts();
        let b = self.class[1].bucket_counts();
        let p_s = [self.class[0].count() as f64 / n, self.class[1].count() as f64 / n];
        let mut mi = 0.0;
        for (&c0, &c1) in a.iter().zip(b) {
            let p_x = (c0 + c1) as f64 / n;
            if p_x == 0.0 {
                continue;
            }
            for (count, p_s) in [(c0, p_s[0]), (c1, p_s[1])] {
                let p_xs = count as f64 / n;
                if p_xs > 0.0 && p_s > 0.0 {
                    mi += p_xs * (p_xs / (p_x * p_s)).log2();
                }
            }
        }
        mi.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimator_reports_zero() {
        assert_eq!(OnlineLeakEstimator::new().mi_bits(), 0.0);
    }

    #[test]
    fn separable_classes_approach_one_bit() {
        let mut est = OnlineLeakEstimator::new();
        for i in 0..500 {
            est.record(false, 20 + (i % 3)); // bucket ~5
            est.record(true, 700 + (i % 50)); // bucket ~10
        }
        assert_eq!(est.samples(), 1000);
        assert!(est.mi_bits() > 0.99, "mi = {}", est.mi_bits());
    }

    #[test]
    fn identical_distributions_carry_nothing() {
        let mut est = OnlineLeakEstimator::new();
        for i in 0..500u64 {
            est.record(false, 40 + (i % 7));
            est.record(true, 40 + (i % 7));
        }
        assert!(est.mi_bits() < 1e-12, "mi = {}", est.mi_bits());
    }

    #[test]
    fn estimate_is_order_independent() {
        let samples: Vec<(bool, u64)> =
            (0..400u64).map(|i| (i % 3 == 0, 10 + (i * i) % 900)).collect();
        let mut fwd = OnlineLeakEstimator::new();
        let mut rev = OnlineLeakEstimator::new();
        for &(s, l) in &samples {
            fwd.record(s, l);
        }
        for &(s, l) in samples.iter().rev() {
            rev.record(s, l);
        }
        assert_eq!(fwd.mi_bits().to_bits(), rev.mi_bits().to_bits());
    }

    #[test]
    fn single_class_is_zero() {
        let mut est = OnlineLeakEstimator::new();
        for i in 0..100 {
            est.record(true, 10 + i);
        }
        assert_eq!(est.mi_bits(), 0.0);
    }
}
