//! Leak-hunting chaos campaigns: inject faults (including the
//! shared-arbiter misconfiguration), watch the *online* estimator, and
//! shrink any leak to a 1-minimal repro.
//!
//! The classic chaos campaign asks "does the machine still satisfy its
//! functional invariants under faults?". This campaign asks the security
//! question instead: "does the machine still *not leak*?" — a property a
//! functional checker cannot see, because a run with the wrong arbiter
//! wired in is perfectly healthy by every functional measure. Each case
//! runs the covert-channel experiment against the configured (secure)
//! scheduler with a fault plan applied exactly as `fsmc chaos` would
//! apply it, feeds every receiver latency to the
//! [`OnlineLeakEstimator`], and classifies
//! [`Outcome::LeakDetected`] when the estimator measures information
//! flow a secure policy should have destroyed.

use crate::online::OnlineLeakEstimator;
use crate::protocol::{default_secret, Protocol};
use fsmc_core::sched::SchedulerKind;
use fsmc_cpu::trace::TraceSource;
use fsmc_dram::DeviceGeneration;
use fsmc_sim::{Engine, FaultKind, FaultPlan, Outcome, SplitMix64, System, SystemConfig};
use fsmc_workload::{IdleTrace, ProbeTrace};

/// Geometry of one leak campaign.
#[derive(Debug, Clone)]
pub struct LeakCampaignConfig {
    /// Master seed for the fault population.
    pub seed: u64,
    /// How many fault plans to draw.
    pub population: usize,
    pub device: DeviceGeneration,
    /// The scheduler the configuration *asks for* (a fault may silently
    /// replace it).
    pub scheduler: SchedulerKind,
    pub protocol: Protocol,
    pub window_cycles: u64,
    pub windows: usize,
    /// Online-MI level (bits) above which a secure scheduler counts as
    /// leaking. The clean floor is ~1e-3 bits; a live channel measures
    /// an order of magnitude above this threshold.
    pub mi_threshold: f64,
}

impl LeakCampaignConfig {
    pub fn new(seed: u64) -> Self {
        LeakCampaignConfig {
            seed,
            population: 12,
            device: DeviceGeneration::Ddr3_1600,
            scheduler: SchedulerKind::FsRankPartitioned,
            protocol: Protocol::Intensity,
            window_cycles: 2_500,
            windows: 60,
            mi_threshold: 0.08,
        }
    }
}

/// One case's verdict.
#[derive(Debug, Clone)]
pub struct LeakCaseReport {
    pub plan: FaultPlan,
    pub outcome: Outcome,
    /// Online mutual information the estimator measured (bits).
    pub mi_bits: f64,
    /// Receiver observations the estimator consumed.
    pub samples: u64,
    /// For leaks: the 1-minimal plan that still reproduces, plus the
    /// CLI line that replays it.
    pub shrunk: Option<FaultPlan>,
    pub repro: Option<String>,
}

/// A whole campaign's results.
#[derive(Debug, Clone)]
pub struct LeakCampaignReport {
    pub config: LeakCampaignConfig,
    pub cases: Vec<LeakCaseReport>,
}

impl LeakCampaignReport {
    pub fn failures(&self) -> usize {
        self.cases.iter().filter(|c| c.outcome.is_failure()).count()
    }

    /// Human-readable summary, stable across thread counts.
    pub fn render(&self) -> String {
        let mut out = format!(
            "leak campaign: device={} scheduler={} protocol={} population={} seed={}\n",
            self.config.device.cli_name(),
            self.config.scheduler.label(),
            self.config.protocol,
            self.config.population,
            self.config.seed,
        );
        for o in Outcome::ALL {
            let n = self.cases.iter().filter(|c| c.outcome == o).count();
            if n > 0 {
                out.push_str(&format!("  {:>16}: {}\n", o.name(), n));
            }
        }
        for case in &self.cases {
            if !case.outcome.is_failure() {
                continue;
            }
            out.push_str(&format!(
                "  {}: faults='{}' mi={:.4} samples={}\n",
                case.outcome.name(),
                case.plan.spec(),
                case.mi_bits,
                case.samples,
            ));
            if let Some(shrunk) = &case.shrunk {
                out.push_str(&format!("    shrunk: '{}'\n", shrunk.spec()));
            }
            if let Some(repro) = &case.repro {
                out.push_str(&format!("    repro: {repro}\n"));
            }
        }
        out
    }
}

/// Draws the leak campaign's fault population. The pool mixes the leaky
/// misconfiguration with faults that perturb timing without breaking
/// isolation, so the campaign has both true positives and true
/// negatives to classify. Deliberately separate from the functional
/// campaign's population (whose byte-exact legacy draws must not
/// change).
pub fn generate_leak_population(cfg: &LeakCampaignConfig) -> Vec<FaultPlan> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut plans = Vec::with_capacity(cfg.population);
    for _ in 0..cfg.population {
        let mut plan = FaultPlan::new(rng.next_u64());
        let nfaults = 1 + rng.below(2) as usize;
        for _ in 0..nfaults {
            let fault = match rng.below(4) {
                0 => FaultKind::SharedArbiter,
                1 => FaultKind::StretchRefresh { factor: 2 + rng.below(3) as u32 },
                2 => FaultKind::DelayCommand {
                    period: 64 + rng.below(64),
                    delay: 1 + rng.below(4),
                    max: 16,
                },
                _ => FaultKind::PerturbTiming {
                    field: fsmc_sim::TimingField::TWtr,
                    delta: 1 + rng.below(2) as i32,
                },
            };
            if !plan.faults.contains(&fault) {
                plan.faults.push(fault);
            }
        }
        plans.push(plan);
    }
    plans
}

/// Runs one fault plan through the covert experiment and classifies it.
pub fn run_leak_case(cfg: &LeakCampaignConfig, plan: &FaultPlan) -> (Outcome, f64, u64) {
    let mut sys_cfg = SystemConfig::for_device(cfg.device, cfg.scheduler, 8);
    if plan.has_shared_arbiter() {
        // Mirror the engine's misconfiguration hook: the job asked for a
        // secure policy but the machine wires the shared arbiter.
        sys_cfg.scheduler = SchedulerKind::Baseline;
    }
    plan.perturb_timing(&mut sys_cfg.timing);

    let (sender, modulator) = cfg.protocol.build(&default_secret());
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(sys_cfg.cores as usize);
    traces.push(Box::new(ProbeTrace::new(20)));
    traces.push(sender);
    for _ in 2..sys_cfg.cores {
        traces.push(Box::new(IdleTrace));
    }
    let mut sys = match System::try_new(&sys_cfg, traces) {
        Ok(sys) => sys,
        // An infeasible perturbed configuration refuses to construct:
        // the machine degraded gracefully rather than running insecure.
        Err(_) => return (Outcome::GracefulDegrade, 0.0, 0),
    };
    for (at, ev) in plan.reconfig_events() {
        sys.schedule_reconfig(at, ev);
    }
    if let Some(spec) = plan.cmd_fault_spec() {
        sys.controller_mut().inject_command_faults(spec);
    }
    if let Some(t) = plan.device_timing(&sys_cfg.timing) {
        sys.controller_mut().set_device_timing(t);
    }
    sys.observe(0);

    let mut est = OnlineLeakEstimator::new();
    for _ in 0..cfg.windows {
        sys.take_observations(); // clear
        let slot_before = modulator.slot_at(sys.core_stats(1).instructions_retired);
        for _ in 0..cfg.window_cycles {
            sys.step();
        }
        let obs = sys.take_observations();
        let instrs = sys.core_stats(1).instructions_retired;
        if modulator.slot_at(instrs) != slot_before {
            continue; // straddles a symbol boundary
        }
        let symbol = modulator.bit_at(instrs);
        for (_, latency) in obs {
            est.record(symbol, latency);
        }
    }

    let mi = est.mi_bits();
    let samples = est.samples();
    let outcome = if samples == 0 {
        Outcome::Stall
    } else if mi > cfg.mi_threshold && cfg.scheduler.is_secure() {
        Outcome::LeakDetected
    } else {
        Outcome::Clean
    };
    (outcome, mi, samples)
}

/// Greedy delta-debugging: drops faults one at a time while the leak
/// still reproduces. The result is 1-minimal — removing any remaining
/// fault loses the detection.
pub fn shrink_leak(cfg: &LeakCampaignConfig, plan: &FaultPlan) -> FaultPlan {
    let mut current = plan.clone();
    'outer: loop {
        if current.faults.len() <= 1 {
            return current;
        }
        for i in 0..current.faults.len() {
            let mut candidate = current.clone();
            candidate.faults.remove(i);
            if run_leak_case(cfg, &candidate).0 == Outcome::LeakDetected {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

/// The CLI line that replays one (shrunk) leak.
pub fn repro_line(cfg: &LeakCampaignConfig, plan: &FaultPlan) -> String {
    format!(
        "fsmc leak --device {} --scheduler {} --protocol {} --fault-seed {} --faults '{}'",
        cfg.device.cli_name(),
        cfg.scheduler.cli_name(),
        cfg.protocol,
        plan.seed,
        plan.spec(),
    )
}

/// Runs the whole campaign on `engine`. Case execution parallelises;
/// shrinking runs only on the (rare) failures afterwards. Output is
/// byte-identical at any thread count.
pub fn run_leak_campaign(engine: &Engine, cfg: &LeakCampaignConfig) -> LeakCampaignReport {
    let plans = generate_leak_population(cfg);
    let verdicts = engine.map(&plans, |_, plan| run_leak_case(cfg, plan));
    let cases = plans
        .into_iter()
        .zip(verdicts)
        .map(|(plan, (outcome, mi_bits, samples))| {
            let (shrunk, repro) = if outcome == Outcome::LeakDetected {
                let minimal = shrink_leak(cfg, &plan);
                let repro = repro_line(cfg, &minimal);
                (Some(minimal), Some(repro))
            } else {
                (None, None)
            };
            LeakCaseReport { plan, outcome, mi_bits, samples, shrunk, repro }
        })
        .collect();
    LeakCampaignReport { config: cfg.clone(), cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(seed: u64) -> LeakCampaignConfig {
        let mut cfg = LeakCampaignConfig::new(seed);
        cfg.windows = 40;
        cfg
    }

    #[test]
    fn population_is_seed_deterministic_and_mixes_leaky_plans() {
        let cfg = quick_cfg(7);
        let a = generate_leak_population(&cfg);
        let b = generate_leak_population(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.population);
        assert!(a.iter().any(|p| p.has_shared_arbiter()), "pool never drew the leaky fault");
        assert!(a.iter().any(|p| !p.has_shared_arbiter()), "pool drew only leaky faults");
    }

    #[test]
    fn shared_arbiter_under_fs_is_detected_and_shrinks_to_one_fault() {
        let cfg = quick_cfg(1);
        // A deliberately noisy plan: the misconfiguration plus two
        // benign faults the shrinker must strip away.
        let plan = FaultPlan::new(99)
            .with(FaultKind::StretchRefresh { factor: 2 })
            .with(FaultKind::SharedArbiter)
            .with(FaultKind::PerturbTiming { field: fsmc_sim::TimingField::TWtr, delta: 1 });
        let (outcome, mi, samples) = run_leak_case(&cfg, &plan);
        assert_eq!(outcome, Outcome::LeakDetected, "mi={mi} samples={samples}");
        assert!(mi > cfg.mi_threshold);
        let minimal = shrink_leak(&cfg, &plan);
        assert_eq!(minimal.faults, vec![FaultKind::SharedArbiter]);
        let repro = repro_line(&cfg, &minimal);
        assert!(repro.contains("--faults 'shared-arbiter()'"), "{repro}");
        // The repro's spec round-trips through the chaos parser.
        let reparsed = FaultPlan::parse_spec(minimal.seed, &minimal.spec()).unwrap();
        assert_eq!(reparsed, minimal);
    }

    #[test]
    fn faultless_fs_run_is_clean() {
        let cfg = quick_cfg(2);
        let (outcome, mi, samples) = run_leak_case(&cfg, &FaultPlan::new(0));
        assert_eq!(outcome, Outcome::Clean, "mi={mi}");
        assert!(samples > 0);
        assert!(mi < cfg.mi_threshold, "clean FS run measured {mi} bits");
    }

    #[test]
    fn baseline_scheduler_is_not_reported_as_a_leak() {
        // An insecure scheduler carrying information is not a *fault* —
        // the campaign only flags schedulers that promised isolation.
        let mut cfg = quick_cfg(3);
        cfg.scheduler = SchedulerKind::Baseline;
        let (outcome, mi, _) = run_leak_case(&cfg, &FaultPlan::new(0));
        assert_eq!(outcome, Outcome::Clean);
        assert!(mi > cfg.mi_threshold, "baseline should measurably leak (mi={mi})");
    }
}
