//! Channel-capacity measurement across the protocol × scheduler ×
//! device cross-product, plus the adaptive (online-calibrating)
//! receiver.
//!
//! The headline artifact is [`capacity_matrix`]: every cell runs one
//! covert-channel experiment and reports BER, mutual information and a
//! *statistically gated* bits/sec capacity. The gate matters: a folded
//! (best-polarity) BER over a finite window count sits strictly below
//! 0.5 even at chance, so naively converting it through `1 − H2(ber)`
//! credits every secure scheduler with a small phantom capacity. A cell
//! only reports non-zero bits/sec when its BER clears the chance band by
//! three standard errors.

use crate::protocol::{run_protocol, Protocol};
use fsmc_core::sched::SchedulerKind;
use fsmc_dram::DeviceGeneration;
use fsmc_security::channel::ChannelParams;
use fsmc_security::leakage::{binary_channel_capacity, LeakageError};
use fsmc_sim::Engine;

/// A receiver that calibrates its decision threshold online instead of
/// seeing the whole latency series up front — the *active adversary* of
/// the threat model. An exponentially weighted running mean tracks the
/// latency level; each window decodes against the threshold as it stood
/// *before* that window updates it.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveDecoder {
    threshold: f64,
    alpha: f64,
    primed: bool,
}

impl AdaptiveDecoder {
    /// `alpha` is the EWMA gain in (0, 1]; higher adapts faster.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA gain must be in (0, 1]");
        AdaptiveDecoder { threshold: 0.0, alpha, primed: false }
    }

    /// Decodes one window-mean latency and then folds it into the
    /// threshold. The first observation only calibrates.
    pub fn decode(&mut self, latency: f64) -> bool {
        if !self.primed {
            self.threshold = latency;
            self.primed = true;
            return false;
        }
        let bit = latency > self.threshold;
        self.threshold += self.alpha * (latency - self.threshold);
        bit
    }

    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// Bit-error rate of an [`AdaptiveDecoder`] over `(bit, latency)`
/// windows, folded to the better polarity. Chance (0.5) when fewer than
/// two windows exist.
pub fn adaptive_ber(windows: &[(bool, f64)], alpha: f64) -> f64 {
    if windows.len() < 2 {
        return 0.5;
    }
    let mut dec = AdaptiveDecoder::new(alpha);
    let mut errors = 0usize;
    // The priming window carries no decision; score the rest.
    let mut scored = 0usize;
    for (i, &(bit, lat)) in windows.iter().enumerate() {
        let guess = dec.decode(lat);
        if i == 0 {
            continue;
        }
        scored += 1;
        if guess != bit {
            errors += 1;
        }
    }
    let ber = errors as f64 / scored as f64;
    ber.min(1.0 - ber)
}

/// Half-width of the chance band for a folded BER over `n` windows:
/// three standard errors of a fair-coin estimate. A decoder whose folded
/// BER is not below `0.5 - chance_band(n)` is indistinguishable from
/// guessing.
pub fn chance_band(n: usize) -> f64 {
    if n == 0 {
        return 0.5;
    }
    3.0 * 0.5 / (n as f64).sqrt()
}

/// True when a folded BER over `n` windows is statistically better than
/// a fair coin.
pub fn decodes_above_chance(ber: f64, n: usize) -> bool {
    n > 0 && ber < 0.5 - chance_band(n)
}

/// Histogram bins the channel harness uses for its MI estimate (must
/// match `fsmc_security::channel`).
const MI_BINS: usize = 16;

/// The MI level below which a histogram estimate over `n` windows is
/// indistinguishable from finite-sample bias: three times the
/// Miller–Madow first-order bias `(bins-1)/(2·n·ln 2)` of a
/// `bins × 2` joint histogram. Secure schedulers measure under this
/// floor (~0.1–0.3 bits at typical window counts); real channels
/// measure several times above it.
pub fn mi_floor(n: usize) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    3.0 * (MI_BINS - 1) as f64 / (2.0 * n as f64 * std::f64::consts::LN_2)
}

/// One cell of the capacity matrix.
#[derive(Debug, Clone)]
pub struct CapacityCell {
    pub device: DeviceGeneration,
    pub scheduler: SchedulerKind,
    pub protocol: Protocol,
    /// Windows that survived the symbol-straddle filter.
    pub windows_used: usize,
    /// Folded BER of the omniscient median-threshold decoder.
    pub ber: f64,
    /// Folded BER of the online-calibrating adaptive decoder.
    pub adaptive_ber: f64,
    /// Histogram MI between window latency and bit (bits/window).
    pub mi_bits: f64,
    /// Gated capacity: zero unless the decoder beats chance by three
    /// standard errors.
    pub capacity_bps: f64,
}

/// Measures one (device, scheduler, protocol) cell.
///
/// # Errors
///
/// [`LeakageError`] if the underlying MI estimate is ill-posed.
pub fn measure_cell(
    device: DeviceGeneration,
    scheduler: SchedulerKind,
    protocol: Protocol,
    bits: &[bool],
    window_cycles: u64,
    windows: usize,
    no_fastpath: bool,
) -> Result<CapacityCell, LeakageError> {
    let params = ChannelParams { device, window_cycles, windows, no_fastpath };
    let report = run_protocol(protocol, scheduler, bits, params)?;
    let n = report.windows.len();
    let window_seconds = window_cycles as f64 * device.seconds_per_cycle();
    // Three independent checks before any capacity is credited:
    // both symbol classes must appear (a BER over single-class windows
    // is vacuous — a constant decoder scores "perfectly" without
    // transmitting anything), the decoder must beat chance by three
    // standard errors, and the measured MI must clear the finite-sample
    // bias floor (an unbalanced class prior can pull a blind decoder's
    // folded BER under the chance band while the windows carry nothing).
    let ones = report.windows.iter().filter(|&&(bit, _)| bit).count();
    let both_classes = ones > 0 && ones < n;
    let capacity_bps = if both_classes
        && decodes_above_chance(report.ber, n)
        && report.mutual_information_bits > mi_floor(n)
    {
        binary_channel_capacity(report.ber) / window_seconds
    } else {
        0.0
    };
    Ok(CapacityCell {
        device,
        scheduler,
        protocol,
        windows_used: n,
        ber: report.ber,
        adaptive_ber: adaptive_ber(&report.windows, 0.2),
        mi_bits: report.mutual_information_bits,
        capacity_bps,
    })
}

/// Runs the full cross-product on `engine` (slot-indexed, so the result
/// order — and therefore the CSV — is identical at any thread count).
/// Cells whose MI estimate is ill-posed are reported with the error.
pub fn capacity_matrix(
    engine: &Engine,
    devices: &[DeviceGeneration],
    schedulers: &[SchedulerKind],
    protocols: &[Protocol],
    bits: &[bool],
    window_cycles: u64,
    windows: usize,
) -> Vec<Result<CapacityCell, LeakageError>> {
    let mut jobs = Vec::with_capacity(devices.len() * schedulers.len() * protocols.len());
    for &device in devices {
        for &scheduler in schedulers {
            for &protocol in protocols {
                jobs.push((device, scheduler, protocol));
            }
        }
    }
    engine.map(&jobs, |_, &(device, scheduler, protocol)| {
        measure_cell(device, scheduler, protocol, bits, window_cycles, windows, false)
    })
}

/// The capacity-matrix CSV header.
pub fn csv_header() -> &'static str {
    "device,scheduler,protocol,windows,ber,adaptive_ber,mi_bits,capacity_bps"
}

/// One cell as a CSV row (matching [`csv_header`]).
pub fn csv_row(cell: &CapacityCell) -> String {
    format!(
        "{},{},{},{},{:.4},{:.4},{:.4},{:.1}",
        cell.device.cli_name(),
        cell.scheduler.label(),
        cell.protocol.name(),
        cell.windows_used,
        cell.ber,
        cell.adaptive_ber,
        cell.mi_bits,
        cell.capacity_bps,
    )
}

/// Renders a whole matrix as CSV, skipping errored cells (callers that
/// care report them separately).
pub fn render_csv(cells: &[Result<CapacityCell, LeakageError>]) -> String {
    let mut out = String::from(csv_header());
    out.push('\n');
    for cell in cells.iter().flatten() {
        out.push_str(&csv_row(cell));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::default_secret;

    #[test]
    fn adaptive_decoder_tracks_a_clean_channel() {
        // Alternating well-separated levels decode near-perfectly once
        // the threshold settles between them.
        let windows: Vec<(bool, f64)> =
            (0..60).map(|i| (i % 2 == 0, if i % 2 == 0 { 400.0 } else { 100.0 })).collect();
        let ber = adaptive_ber(&windows, 0.2);
        assert!(ber < 0.1, "adaptive BER {ber}");
    }

    #[test]
    fn adaptive_decoder_is_at_chance_on_constant_latency() {
        let windows: Vec<(bool, f64)> = (0..60).map(|i| (i % 3 == 0, 250.0)).collect();
        let ber = adaptive_ber(&windows, 0.2);
        // Constant input: never above threshold, decoder outputs all
        // zeros; folded BER equals min(p1, 1-p1) — at or worse than the
        // class prior, never suspiciously good.
        assert!(ber >= 0.3, "adaptive BER {ber}");
    }

    #[test]
    fn chance_band_gates_finite_sample_noise() {
        // 100 windows: band is 0.15, so BER 0.40 is *not* evidence of a
        // channel, while 0.10 is.
        assert!(!decodes_above_chance(0.40, 100));
        assert!(decodes_above_chance(0.10, 100));
        assert!(!decodes_above_chance(0.0, 0));
    }

    #[test]
    fn baseline_cell_reports_positive_capacity_and_fs_reports_zero() {
        let secret = default_secret();
        let hot = measure_cell(
            DeviceGeneration::Ddr3_1600,
            SchedulerKind::Baseline,
            Protocol::Intensity,
            &secret,
            2_500,
            80,
            false,
        )
        .unwrap();
        assert!(hot.capacity_bps > 1e4, "baseline intensity {:?}", hot);
        let cold = measure_cell(
            DeviceGeneration::Ddr3_1600,
            SchedulerKind::FsRankPartitioned,
            Protocol::Intensity,
            &secret,
            2_500,
            80,
            false,
        )
        .unwrap();
        assert_eq!(cold.capacity_bps, 0.0, "FS leaked {:?}", cold);
    }

    #[test]
    fn csv_shape_matches_header() {
        let cell = CapacityCell {
            device: DeviceGeneration::Ddr3_1600,
            scheduler: SchedulerKind::Baseline,
            protocol: Protocol::Intensity,
            windows_used: 42,
            ber: 0.05,
            adaptive_ber: 0.08,
            mi_bits: 0.7,
            capacity_bps: 123.4,
        };
        let row = csv_row(&cell);
        assert_eq!(row.split(',').count(), csv_header().split(',').count());
        assert!(row.starts_with("ddr3-1600,Baseline,intensity,42,"));
    }
}
