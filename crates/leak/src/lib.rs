//! # fsmc-leak — the active-adversary covert-channel harness
//!
//! The rest of the workspace *builds* memory controllers that promise
//! isolation; this crate *attacks* them and measures what gets through.
//! Three layers:
//!
//! 1. **Protocols** ([`Protocol`]): sender traces that modulate memory
//!    behaviour with a secret bit string — intensity (on-off keying),
//!    bank-conflict spread, and row-buffer state — paired with the
//!    ground-truth [`fsmc_workload::Modulator`] a synchronised receiver
//!    decodes against.
//! 2. **Capacity estimation** ([`capacity_matrix`]): empirical BER,
//!    mutual information and statistically gated bits/sec for every
//!    protocol × scheduler × device-generation cell, byte-identical at
//!    any thread count. [`AdaptiveDecoder`] is the online-calibrating
//!    receiver of the active-adversary model.
//! 3. **Online detection** ([`OnlineLeakEstimator`], [`run_leak_campaign`]):
//!    a streaming MI estimator over fixed log2 latency buckets feeds
//!    leak-hunting chaos campaigns that classify
//!    [`fsmc_sim::Outcome::LeakDetected`] and shrink each leak to a
//!    1-minimal fault repro.
//!
//! The headline result reproduces the paper's motivation table: FR-FCFS
//! carries tens of kilobits per second, temporal partitioning leaves at
//! most a residual trickle, and every Fixed Service variant measures
//! zero on every device generation.

pub mod campaign;
pub mod estimator;
pub mod online;
pub mod protocol;

pub use campaign::{
    generate_leak_population, repro_line, run_leak_campaign, run_leak_case, shrink_leak,
    LeakCampaignConfig, LeakCampaignReport, LeakCaseReport,
};
pub use estimator::{
    adaptive_ber, capacity_matrix, chance_band, csv_header, csv_row, decodes_above_chance,
    measure_cell, mi_floor, render_csv, AdaptiveDecoder, CapacityCell,
};
pub use online::OnlineLeakEstimator;
pub use protocol::{default_secret, run_protocol, Protocol};
