//! Energy evaluation over activity counters.

use crate::params::PowerParams;
use fsmc_dram::ActivityCounters;

/// Memory energy decomposed by source, in nanojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    pub act_pre_nj: f64,
    pub read_nj: f64,
    pub write_nj: f64,
    pub refresh_nj: f64,
    pub background_nj: f64,
    /// Energy saved by row-hit boosting (already excluded from
    /// `act_pre_nj`; reported for visibility).
    pub boost_saved_nj: f64,
    /// Background energy saved by power-down (already reflected in
    /// `background_nj`).
    pub powerdown_saved_nj: f64,
}

impl EnergyBreakdown {
    /// Total memory energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.read_nj + self.write_nj + self.refresh_nj + self.background_nj
    }

    /// Total in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj() * 1e-6
    }
}

/// Evaluates energy from [`ActivityCounters`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyModel {
    params: PowerParams,
}

impl EnergyModel {
    pub fn new(params: PowerParams) -> Self {
        EnergyModel { params }
    }

    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Computes the breakdown. `boosted_row_hits` is the scheduler's count
    /// of accesses whose ACT/PRE energy was avoided (FS energy
    /// optimisation 2); suppressed dummies are already excluded because
    /// the device counts them separately.
    pub fn evaluate(&self, counters: &ActivityCounters, boosted_row_hits: u64) -> EnergyBreakdown {
        let p = &self.params;
        let acts = counters.total_activates();
        let effective_acts = acts.saturating_sub(boosted_row_hits);
        let act_pre_nj = effective_acts as f64 * p.e_act_pre_nj;
        let boost_saved_nj = boosted_row_hits.min(acts) as f64 * p.e_act_pre_nj;
        let read_nj = counters.total_reads() as f64 * p.e_read_nj;
        let write_nj = counters.total_writes() as f64 * p.e_write_nj;
        let refresh_nj = counters.total_refreshes() as f64 * p.e_refresh_nj;

        let mut background_nj = 0.0;
        let mut powerdown_saved_nj = 0.0;
        for rc in counters.ranks() {
            let pd = rc.powered_down_cycles.min(counters.elapsed_cycles) as f64;
            let up = counters.elapsed_cycles as f64 - pd;
            // mW * ns = pJ; divide by 1000 for nJ.
            background_nj += (up * p.p_standby_mw + pd * p.p_powerdown_mw) * p.cycle_ns / 1000.0;
            powerdown_saved_nj += pd * (p.p_standby_mw - p.p_powerdown_mw) * p.cycle_ns / 1000.0;
        }
        EnergyBreakdown {
            act_pre_nj,
            read_nj,
            write_nj,
            refresh_nj,
            background_nj,
            boost_saved_nj,
            powerdown_saved_nj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(ranks: usize) -> ActivityCounters {
        ActivityCounters::new(ranks)
    }

    #[test]
    fn event_energy_scales_with_counts() {
        let m = EnergyModel::new(PowerParams::ddr3_4gb());
        let mut c = counters(1);
        c.rank_mut(0).activates = 10;
        c.rank_mut(0).reads = 10;
        let e1 = m.evaluate(&c, 0);
        c.rank_mut(0).activates = 20;
        c.rank_mut(0).reads = 20;
        let e2 = m.evaluate(&c, 0);
        assert!((e2.act_pre_nj - 2.0 * e1.act_pre_nj).abs() < 1e-9);
        assert!((e2.read_nj - 2.0 * e1.read_nj).abs() < 1e-9);
    }

    #[test]
    fn background_dominates_long_idle_runs() {
        let m = EnergyModel::new(PowerParams::ddr3_4gb());
        let mut c = counters(8);
        c.rank_mut(0).activates = 5;
        c.elapsed_cycles = 10_000_000;
        let e = m.evaluate(&c, 0);
        assert!(e.background_nj > 100.0 * e.act_pre_nj);
    }

    #[test]
    fn boosted_hits_reduce_act_energy() {
        let m = EnergyModel::new(PowerParams::ddr3_4gb());
        let mut c = counters(1);
        c.rank_mut(0).activates = 100;
        let plain = m.evaluate(&c, 0);
        let boosted = m.evaluate(&c, 40);
        assert!(boosted.act_pre_nj < plain.act_pre_nj);
        assert!((boosted.act_pre_nj + boosted.boost_saved_nj - plain.act_pre_nj).abs() < 1e-9);
    }

    #[test]
    fn powerdown_reduces_background() {
        let m = EnergyModel::new(PowerParams::ddr3_4gb());
        let mut c = counters(1);
        c.elapsed_cycles = 1_000_000;
        let up = m.evaluate(&c, 0);
        c.rank_mut(0).powered_down_cycles = 500_000;
        let down = m.evaluate(&c, 0);
        assert!(down.background_nj < up.background_nj);
        assert!(down.powerdown_saved_nj > 0.0);
        assert!((up.background_nj - down.background_nj - down.powerdown_saved_nj).abs() < 1e-6);
    }

    #[test]
    fn totals_sum_components() {
        let m = EnergyModel::new(PowerParams::ddr3_4gb());
        let mut c = counters(2);
        c.rank_mut(0).activates = 3;
        c.rank_mut(1).writes = 4;
        c.rank_mut(0).refreshes = 2;
        c.elapsed_cycles = 1000;
        let e = m.evaluate(&c, 0);
        let sum = e.act_pre_nj + e.read_nj + e.write_nj + e.refresh_nj + e.background_nj;
        assert!((e.total_nj() - sum).abs() < 1e-9);
        assert!((e.total_mj() - sum * 1e-6).abs() < 1e-15);
    }
}
