//! # fsmc-energy — Micron-style DDR3 power and energy model
//!
//! Computes memory energy from the activity counters collected by
//! [`fsmc_dram::DramDevice`], following the methodology of the Micron
//! DDR3 power calculator (TN-41-01): per-event energies for
//! activate/precharge pairs, read/write bursts and refreshes, plus
//! time-proportional background power with a reduced power-down rate.
//!
//! Absolute joules are calibrated to a 4 Gb x8 DDR3-1600 rank; the
//! paper's energy figures (Figures 8 and 9) are *normalised*, so what
//! matters for reproduction is the ratio structure: background power is
//! proportional to execution time (this is why FS beats TP despite
//! issuing ~37% more accesses), dummy suppression removes array energy,
//! row-hit boosting removes ACT/PRE energy, and power-down cuts
//! background power on idle ranks.
//!
//! ```
//! use fsmc_energy::{EnergyModel, PowerParams};
//! use fsmc_dram::ActivityCounters;
//!
//! let mut counters = ActivityCounters::new(1);
//! counters.rank_mut(0).activates = 1000;
//! counters.rank_mut(0).reads = 1000;
//! counters.elapsed_cycles = 100_000;
//! let model = EnergyModel::new(PowerParams::ddr3_4gb());
//! let breakdown = model.evaluate(&counters, 0);
//! assert!(breakdown.total_nj() > 0.0);
//! ```

pub mod model;
pub mod params;

pub use model::{EnergyBreakdown, EnergyModel};
pub use params::PowerParams;
