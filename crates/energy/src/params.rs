//! Power-model parameters for a DDR3 rank.

/// Per-rank energy/power constants, in the style of the Micron DDR3
/// power calculator. A "rank" here is the set of chips serving one
/// 64-byte line (eight x8 4 Gb devices for the paper's system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Energy of one Activate + Precharge pair (nJ per rank).
    pub e_act_pre_nj: f64,
    /// Energy of one 64-byte read burst, array + I/O (nJ).
    pub e_read_nj: f64,
    /// Energy of one 64-byte write burst, array + ODT (nJ).
    pub e_write_nj: f64,
    /// Energy of one REF command (nJ per rank).
    pub e_refresh_nj: f64,
    /// Background (standby) power of an idle, powered-up rank (mW).
    pub p_standby_mw: f64,
    /// Background power in light power-down (mW).
    pub p_powerdown_mw: f64,
    /// DRAM bus cycle time (ns); 1.25 ns for DDR3-1600.
    pub cycle_ns: f64,
}

impl PowerParams {
    /// Constants for a rank of eight 4 Gb x8 DDR3-1600 devices, derived
    /// from Micron datasheet IDD values at 1.5 V:
    ///
    /// * ACT+PRE: ~(IDD0 - IDD3N) charge over tRC, ~2.8 nJ/device.
    /// * Read: (IDD4R - IDD3N) over the burst plus I/O, ~1.5 nJ/device.
    /// * Write: slightly higher than read due to ODT.
    /// * Refresh: (IDD5 - IDD3N) over tRFC, ~30 nJ/device.
    /// * Standby: IDD3N/IDD2N blend, ~45 mW/device.
    /// * Power-down: IDD2P (fast exit), ~12 mW/device.
    pub fn ddr3_4gb() -> Self {
        PowerParams {
            e_act_pre_nj: 22.4,
            e_read_nj: 12.0,
            e_write_nj: 13.2,
            e_refresh_nj: 240.0,
            p_standby_mw: 360.0,
            p_powerdown_mw: 96.0,
            cycle_ns: 1.25,
        }
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams::ddr3_4gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_ddr3() {
        let p = PowerParams::default();
        assert_eq!(p, PowerParams::ddr3_4gb());
        assert!(p.p_powerdown_mw < p.p_standby_mw);
        assert!(p.e_act_pre_nj > p.e_read_nj);
    }
}
