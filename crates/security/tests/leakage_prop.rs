//! Property tests for the leakage estimators: the strict and the
//! saturating mutual-information variants must agree on well-formed
//! input, and every edge case (constant observations, single-bin
//! histograms, mismatched lengths, empty series) must be handled
//! without panics, NaNs, or impossible values.

use fsmc_security::leakage::{
    binary_channel_capacity, mutual_information, try_mutual_information, LeakageError,
};
use proptest::prelude::*;

fn paired_series() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    prop::collection::vec((0.0f64..1e6, any::<bool>()), 0..200)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    /// MI is a well-defined quantity: finite, non-negative, and at most
    /// one bit for a binary secret — for any observations and bin count.
    #[test]
    fn mi_is_finite_nonnegative_and_at_most_one_bit(
        (obs, secret) in paired_series(),
        bins in 1usize..64,
    ) {
        let mi = try_mutual_information(&obs, &secret, bins).unwrap();
        prop_assert!(mi.is_finite());
        prop_assert!(mi >= 0.0);
        // Histogram MI against a binary secret cannot exceed H(S) <= 1,
        // modulo float rounding.
        prop_assert!(mi <= 1.0 + 1e-9, "mi = {mi}");
    }

    /// On well-formed input the strict and saturating estimators are the
    /// same function.
    #[test]
    fn strict_and_saturating_agree_on_valid_input(
        (obs, secret) in paired_series(),
        bins in 1usize..64,
    ) {
        let strict = try_mutual_information(&obs, &secret, bins).unwrap();
        let loose = mutual_information(&obs, &secret, bins);
        prop_assert_eq!(strict, loose);
    }

    /// Constant observations carry no information, whatever the secret
    /// or bin count.
    #[test]
    fn constant_observations_have_zero_mi(
        value in -1e9f64..1e9,
        secret in prop::collection::vec(any::<bool>(), 1..100),
        bins in 1usize..64,
    ) {
        let obs = vec![value; secret.len()];
        prop_assert_eq!(try_mutual_information(&obs, &secret, bins).unwrap(), 0.0);
    }

    /// A single bin makes every observation indistinguishable: zero MI.
    #[test]
    fn single_bin_histograms_have_zero_mi((obs, secret) in paired_series()) {
        prop_assert_eq!(try_mutual_information(&obs, &secret, 1).unwrap(), 0.0);
    }

    /// Mismatched lengths: the strict variant reports exactly the
    /// offending lengths; the saturating variant equals the strict
    /// estimate on the truncated prefix.
    #[test]
    fn mismatched_lengths_error_strictly_and_truncate_loosely(
        (obs, secret) in paired_series(),
        extra in 1usize..10,
        bins in 1usize..64,
    ) {
        let mut padded = obs.clone();
        padded.extend(std::iter::repeat_n(0.0, extra));
        prop_assert_eq!(
            try_mutual_information(&padded, &secret, bins),
            Err(LeakageError::MismatchedLengths {
                observations: obs.len() + extra,
                secrets: secret.len(),
            })
        );
        let loose = mutual_information(&padded, &secret, bins);
        let strict = try_mutual_information(&padded[..obs.len()], &secret, bins).unwrap();
        prop_assert_eq!(loose, strict);
    }

    /// Zero bins is a typed error, never a panic or a division by zero.
    #[test]
    fn zero_bins_is_a_typed_error((obs, secret) in paired_series()) {
        prop_assert_eq!(
            try_mutual_information(&obs, &secret, 0),
            Err(LeakageError::ZeroBins)
        );
    }

    /// BSC capacity stays in [0, 1] and is symmetric around BER 0.5
    /// (an inverted decoder is as good as a correct one).
    #[test]
    fn bsc_capacity_is_bounded_and_symmetric(ber in 0.0f64..=1.0) {
        let c = binary_channel_capacity(ber);
        prop_assert!((0.0..=1.0).contains(&c));
        let mirrored = binary_channel_capacity(1.0 - ber);
        prop_assert!((c - mirrored).abs() < 1e-9);
    }
}
