//! The non-interference harness: does a thread's timing depend on its
//! co-runners?

use crate::profile::ExecutionProfile;
use fsmc_core::sched::SchedulerKind;
use fsmc_cpu::trace::TraceSource;
use fsmc_sim::{System, SystemConfig};
use fsmc_workload::{BenchProfile, FloodTrace, IdleTrace, SyntheticTrace};

/// What the attacker thread ran against (Figure 4's two environments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoRunners {
    /// "Synthetic threads that make no memory accesses."
    Idle,
    /// "Highly memory-intensive" synthetic threads.
    MemoryIntensive,
}

/// Outcome of a non-interference check.
#[derive(Debug, Clone)]
pub struct NonInterferenceReport {
    pub scheduler: SchedulerKind,
    pub idle_profile: ExecutionProfile,
    pub intensive_profile: ExecutionProfile,
}

impl NonInterferenceReport {
    /// Zero leakage: the two profiles are bit-identical.
    pub fn is_non_interfering(&self) -> bool {
        self.idle_profile.identical(&self.intensive_profile)
    }

    /// Worst-case timing divergence between environments, in CPU cycles.
    pub fn max_divergence(&self) -> u64 {
        self.idle_profile.max_divergence(&self.intensive_profile)
    }
}

/// Measures the execution profile of an mcf-like attacker on core 0 under
/// `scheduler`, co-scheduled with seven `co` threads.
pub fn execution_profile(
    scheduler: SchedulerKind,
    co: CoRunners,
    bucket_instrs: u64,
    buckets: usize,
) -> ExecutionProfile {
    let cfg = SystemConfig::paper_default(scheduler);
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(cfg.cores as usize);
    // The attacker (the paper uses mcf) always uses the same seed, so its
    // own instruction stream is identical across environments.
    traces.push(Box::new(SyntheticTrace::new(BenchProfile::mcf(), 0xA77AC)));
    for _ in 1..cfg.cores {
        match co {
            CoRunners::Idle => traces.push(Box::new(IdleTrace)),
            CoRunners::MemoryIntensive => traces.push(Box::new(FloodTrace::new())),
        }
    }
    let mut sys = System::new(&cfg, traces);
    ExecutionProfile::new(sys.run_profile(0, bucket_instrs, buckets), bucket_instrs)
}

/// Runs the attacker under both environments and reports.
///
/// ```no_run
/// use fsmc_core::sched::SchedulerKind;
/// use fsmc_security::check_noninterference;
///
/// let report = check_noninterference(SchedulerKind::FsRankPartitioned, 10_000, 20);
/// assert!(report.is_non_interfering()); // divergence is exactly zero
/// ```
pub fn check_noninterference(
    scheduler: SchedulerKind,
    bucket_instrs: u64,
    buckets: usize,
) -> NonInterferenceReport {
    NonInterferenceReport {
        scheduler,
        idle_profile: execution_profile(scheduler, CoRunners::Idle, bucket_instrs, buckets),
        intensive_profile: execution_profile(
            scheduler,
            CoRunners::MemoryIntensive,
            bucket_instrs,
            buckets,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_rank_partitioned_is_non_interfering() {
        let r = check_noninterference(SchedulerKind::FsRankPartitioned, 2000, 10);
        assert!(r.is_non_interfering(), "FS leaked: divergence {} cycles", r.max_divergence());
    }

    #[test]
    fn fs_triple_alternation_is_non_interfering() {
        let r = check_noninterference(SchedulerKind::FsTripleAlternation, 1000, 5);
        assert!(r.is_non_interfering(), "divergence {}", r.max_divergence());
    }

    #[test]
    fn baseline_leaks_co_runner_intensity() {
        let r = check_noninterference(SchedulerKind::Baseline, 2000, 10);
        assert!(!r.is_non_interfering(), "baseline unexpectedly non-interfering");
        // The divergence is large: flooding co-runners slow the attacker
        // substantially (the visible gap of Figure 4).
        assert!(r.max_divergence() > 1000, "divergence only {}", r.max_divergence());
        assert!(r.idle_profile.final_slowdown(&r.intensive_profile) > 1.2);
    }
}
