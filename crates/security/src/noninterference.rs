//! The non-interference harness: does a thread's timing depend on its
//! co-runners?

use crate::profile::ExecutionProfile;
use fsmc_core::sched::SchedulerKind;
use fsmc_cpu::trace::TraceSource;
use fsmc_dram::DeviceGeneration;
use fsmc_sim::{FaultKind, FaultPlan, FsmcError, System, SystemConfig};
use fsmc_workload::{BenchProfile, FloodTrace, IdleTrace, SyntheticTrace};

/// What the attacker thread ran against (Figure 4's two environments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoRunners {
    /// "Synthetic threads that make no memory accesses."
    Idle,
    /// "Highly memory-intensive" synthetic threads.
    MemoryIntensive,
}

/// Outcome of a non-interference check.
#[derive(Debug, Clone)]
pub struct NonInterferenceReport {
    pub scheduler: SchedulerKind,
    pub idle_profile: ExecutionProfile,
    pub intensive_profile: ExecutionProfile,
}

impl NonInterferenceReport {
    /// Zero leakage: the two profiles are bit-identical.
    pub fn is_non_interfering(&self) -> bool {
        self.idle_profile.identical(&self.intensive_profile)
    }

    /// Worst-case timing divergence between environments, in CPU cycles.
    pub fn max_divergence(&self) -> u64 {
        self.idle_profile.max_divergence(&self.intensive_profile)
    }
}

/// Measures the execution profile of an mcf-like attacker on core 0 under
/// `scheduler`, co-scheduled with seven `co` threads.
pub fn execution_profile(
    scheduler: SchedulerKind,
    co: CoRunners,
    bucket_instrs: u64,
    buckets: usize,
) -> ExecutionProfile {
    execution_profile_on(DeviceGeneration::Ddr3_1600, scheduler, co, bucket_instrs, buckets)
}

/// [`execution_profile`] on a specific device generation: the FS
/// guarantee is a property of the scheduling discipline, not of one
/// part's datasheet, so the harness must be able to probe every profile.
pub fn execution_profile_on(
    device: DeviceGeneration,
    scheduler: SchedulerKind,
    co: CoRunners,
    bucket_instrs: u64,
    buckets: usize,
) -> ExecutionProfile {
    let cfg = SystemConfig::for_device(device, scheduler, 8);
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(cfg.cores as usize);
    // The attacker (the paper uses mcf) always uses the same seed, so its
    // own instruction stream is identical across environments.
    traces.push(Box::new(SyntheticTrace::new(BenchProfile::mcf(), 0xA77AC)));
    for _ in 1..cfg.cores {
        match co {
            CoRunners::Idle => traces.push(Box::new(IdleTrace)),
            CoRunners::MemoryIntensive => traces.push(Box::new(FloodTrace::new())),
        }
    }
    let mut sys = System::new(&cfg, traces);
    ExecutionProfile::new(sys.run_profile(0, bucket_instrs, buckets), bucket_instrs)
}

/// [`execution_profile`] under an injected [`FaultPlan`], with the
/// online invariant monitor armed: the attacker's profile is taken while
/// the controller absorbs (or fails under) the plan's faults, and any
/// stall, poisoning or invariant breach surfaces as a structured error
/// carrying the plan's repro provenance.
///
/// Timing perturbations, command faults and device faults all apply;
/// trace-corruption faults do not (the harness owns its traces — the
/// attacker's instruction stream must stay identical across
/// environments for profiles to be comparable at all).
///
/// # Errors
///
/// As for [`fsmc_sim::System::try_run_cycles`], plus construction
/// failures for infeasible perturbed timing.
pub fn execution_profile_faulted(
    scheduler: SchedulerKind,
    co: CoRunners,
    bucket_instrs: u64,
    buckets: usize,
    plan: &FaultPlan,
) -> Result<ExecutionProfile, FsmcError> {
    let mut cfg = SystemConfig::paper_default(scheduler);
    cfg.monitor = true;
    plan.perturb_timing(&mut cfg.timing);
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(cfg.cores as usize);
    traces.push(Box::new(SyntheticTrace::new(BenchProfile::mcf(), 0xA77AC)));
    for _ in 1..cfg.cores {
        match co {
            CoRunners::Idle => traces.push(Box::new(IdleTrace)),
            CoRunners::MemoryIntensive => traces.push(Box::new(FloodTrace::new())),
        }
    }
    let mut sys = System::try_new(&cfg, traces)?;
    if let Some(spec) = plan.cmd_fault_spec() {
        sys.controller_mut().inject_command_faults(spec);
    }
    if let Some(t) = plan.device_timing(&cfg.timing) {
        sys.controller_mut().set_device_timing(t);
    }
    let boundaries =
        sys.try_run_profile(0, bucket_instrs, buckets).map_err(|e| e.with_provenance(plan))?;
    Ok(ExecutionProfile::new(boundaries, bucket_instrs))
}

/// What churns around the observer mid-run (the reconfiguration probe).
///
/// The observer is always domain 0; each environment differs only in a
/// reconfiguration event pinned to the same absolute DRAM cycle, so any
/// difference in the observer's profile is attributable to the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEnv {
    /// Nothing churns: the reference environment.
    Static,
    /// Co-domain 1 leaves mid-run (its slots decay to dummies).
    CoLeave,
    /// Co-domain 1 is absent from the start and joins mid-run.
    CoJoin,
    /// A persistent stuck-bank fault lands in domain 7's rank, forcing
    /// a re-solved, re-certified schedule adoption the observer is not
    /// party to.
    ForeignBankFault,
}

impl ChurnEnv {
    pub const ALL: [ChurnEnv; 4] =
        [ChurnEnv::Static, ChurnEnv::CoLeave, ChurnEnv::CoJoin, ChurnEnv::ForeignBankFault];

    pub fn name(self) -> &'static str {
        match self {
            ChurnEnv::Static => "static",
            ChurnEnv::CoLeave => "co-leave",
            ChurnEnv::CoJoin => "co-join",
            ChurnEnv::ForeignBankFault => "foreign-bank-fault",
        }
    }

    /// The fault plan realising this environment, churning at `at`.
    fn plan(self, at: u64) -> FaultPlan {
        let plan = FaultPlan::new(0);
        match self {
            ChurnEnv::Static => plan,
            ChurnEnv::CoLeave => plan.with(FaultKind::DomainLeave { domain: 1, at }),
            ChurnEnv::CoJoin => plan.with(FaultKind::DomainJoin { domain: 1, at }),
            ChurnEnv::ForeignBankFault => plan.with(FaultKind::StuckBank { rank: 7, bank: 0, at }),
        }
    }
}

/// [`execution_profile`] with a reconfiguration event scheduled at DRAM
/// cycle `churn_at` and the invariant monitor armed across the epoch
/// boundary. The observer on core 0 keeps its usual trace; `env` decides
/// what churns around it.
///
/// # Errors
///
/// As for [`fsmc_sim::System::try_run_profile`]: a stall, timing
/// poisoning, cadence breach on either side of the transition, or a
/// failed re-certification all surface as structured errors with the
/// plan's repro provenance attached.
pub fn execution_profile_churned(
    scheduler: SchedulerKind,
    co: CoRunners,
    env: ChurnEnv,
    churn_at: u64,
    bucket_instrs: u64,
    buckets: usize,
) -> Result<ExecutionProfile, FsmcError> {
    execution_profile_churned_on(
        DeviceGeneration::Ddr3_1600,
        scheduler,
        co,
        env,
        churn_at,
        bucket_instrs,
        buckets,
    )
}

/// [`execution_profile_churned`] on a specific device generation.
#[allow(clippy::too_many_arguments)]
pub fn execution_profile_churned_on(
    device: DeviceGeneration,
    scheduler: SchedulerKind,
    co: CoRunners,
    env: ChurnEnv,
    churn_at: u64,
    bucket_instrs: u64,
    buckets: usize,
) -> Result<ExecutionProfile, FsmcError> {
    let plan = env.plan(churn_at);
    let mut cfg = SystemConfig::for_device(device, scheduler, 8);
    cfg.monitor = true;
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(cfg.cores as usize);
    traces.push(Box::new(SyntheticTrace::new(BenchProfile::mcf(), 0xA77AC)));
    for _ in 1..cfg.cores {
        match co {
            CoRunners::Idle => traces.push(Box::new(IdleTrace)),
            CoRunners::MemoryIntensive => traces.push(Box::new(FloodTrace::new())),
        }
    }
    let mut sys = System::try_new(&cfg, traces)?;
    for (at, ev) in plan.reconfig_events() {
        sys.schedule_reconfig(at, ev);
    }
    let boundaries =
        sys.try_run_profile(0, bucket_instrs, buckets).map_err(|e| e.with_provenance(&plan))?;
    Ok(ExecutionProfile::new(boundaries, bucket_instrs))
}

/// Outcome of a churn non-interference check: the observer's profile in
/// every [`ChurnEnv`], first entry the [`ChurnEnv::Static`] reference.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    pub scheduler: SchedulerKind,
    pub profiles: Vec<(ChurnEnv, ExecutionProfile)>,
}

impl ChurnReport {
    /// Zero leakage: the survivor's profile is bit-identical whether or
    /// not anything churned.
    pub fn is_non_interfering(&self) -> bool {
        self.divergent_envs().is_empty()
    }

    /// Environments whose profile differs from the static reference.
    pub fn divergent_envs(&self) -> Vec<ChurnEnv> {
        let reference = &self.profiles[0].1;
        self.profiles
            .iter()
            .skip(1)
            .filter(|(_, p)| !reference.identical(p))
            .map(|&(env, _)| env)
            .collect()
    }

    /// Worst-case divergence from the static reference, in CPU cycles.
    pub fn max_divergence(&self) -> u64 {
        let reference = &self.profiles[0].1;
        self.profiles.iter().skip(1).map(|(_, p)| reference.max_divergence(p)).max().unwrap_or(0)
    }
}

/// Runs the observer through every [`ChurnEnv`] (memory-intensive
/// co-runners throughout) and reports whether its execution profile is
/// independent of domain churn and foreign persistent faults.
///
/// # Errors
///
/// Whichever environment's run fails first, with provenance attached.
pub fn check_churn_noninterference(
    scheduler: SchedulerKind,
    churn_at: u64,
    bucket_instrs: u64,
    buckets: usize,
) -> Result<ChurnReport, FsmcError> {
    check_churn_noninterference_on(
        DeviceGeneration::Ddr3_1600,
        scheduler,
        churn_at,
        bucket_instrs,
        buckets,
    )
}

/// [`check_churn_noninterference`] on a specific device generation.
pub fn check_churn_noninterference_on(
    device: DeviceGeneration,
    scheduler: SchedulerKind,
    churn_at: u64,
    bucket_instrs: u64,
    buckets: usize,
) -> Result<ChurnReport, FsmcError> {
    let mut profiles = Vec::with_capacity(ChurnEnv::ALL.len());
    for env in ChurnEnv::ALL {
        profiles.push((
            env,
            execution_profile_churned_on(
                device,
                scheduler,
                CoRunners::MemoryIntensive,
                env,
                churn_at,
                bucket_instrs,
                buckets,
            )?,
        ));
    }
    Ok(ChurnReport { scheduler, profiles })
}

/// Runs the attacker under both environments and reports.
///
/// ```no_run
/// use fsmc_core::sched::SchedulerKind;
/// use fsmc_security::check_noninterference;
///
/// let report = check_noninterference(SchedulerKind::FsRankPartitioned, 10_000, 20);
/// assert!(report.is_non_interfering()); // divergence is exactly zero
/// ```
pub fn check_noninterference(
    scheduler: SchedulerKind,
    bucket_instrs: u64,
    buckets: usize,
) -> NonInterferenceReport {
    check_noninterference_on(DeviceGeneration::Ddr3_1600, scheduler, bucket_instrs, buckets)
}

/// [`check_noninterference`] on a specific device generation: the same
/// idle-vs-flooding probe with the geometry and timing of `device`.
pub fn check_noninterference_on(
    device: DeviceGeneration,
    scheduler: SchedulerKind,
    bucket_instrs: u64,
    buckets: usize,
) -> NonInterferenceReport {
    NonInterferenceReport {
        scheduler,
        idle_profile: execution_profile_on(
            device,
            scheduler,
            CoRunners::Idle,
            bucket_instrs,
            buckets,
        ),
        intensive_profile: execution_profile_on(
            device,
            scheduler,
            CoRunners::MemoryIntensive,
            bucket_instrs,
            buckets,
        ),
    }
}

/// Security under fault: runs the attacker under both environments with
/// the same fault plan injected in each, and checks whether the profiles
/// stay bit-identical. The FS guarantee must survive graceful
/// degradation — a fault that demotes the controller to the conservative
/// pipeline demotes it *identically* regardless of co-runner behaviour,
/// so even a degraded FS system leaks nothing.
///
/// # Errors
///
/// Whichever environment's run fails first (stall, poisoning, invariant
/// breach, infeasible perturbed timing), with provenance attached.
pub fn check_noninterference_faulted(
    scheduler: SchedulerKind,
    bucket_instrs: u64,
    buckets: usize,
    plan: &FaultPlan,
) -> Result<NonInterferenceReport, FsmcError> {
    Ok(NonInterferenceReport {
        scheduler,
        idle_profile: execution_profile_faulted(
            scheduler,
            CoRunners::Idle,
            bucket_instrs,
            buckets,
            plan,
        )?,
        intensive_profile: execution_profile_faulted(
            scheduler,
            CoRunners::MemoryIntensive,
            bucket_instrs,
            buckets,
            plan,
        )?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_rank_partitioned_is_non_interfering() {
        let r = check_noninterference(SchedulerKind::FsRankPartitioned, 2000, 10);
        assert!(r.is_non_interfering(), "FS leaked: divergence {} cycles", r.max_divergence());
    }

    #[test]
    fn fs_triple_alternation_is_non_interfering() {
        let r = check_noninterference(SchedulerKind::FsTripleAlternation, 1000, 5);
        assert!(r.is_non_interfering(), "divergence {}", r.max_divergence());
    }

    #[test]
    fn fs_is_non_interfering_on_every_device_generation() {
        // The FS guarantee must not be an artifact of DDR3-1600's
        // parameters: the bit-identity holds on grouped DDR4, slow-core
        // LPDDR4 and wide HBM2 alike.
        for device in DeviceGeneration::all() {
            let r = check_noninterference_on(device, SchedulerKind::FsRankPartitioned, 1000, 5);
            assert!(
                r.is_non_interfering(),
                "FS leaked on {device}: divergence {} cycles",
                r.max_divergence()
            );
        }
    }

    #[test]
    fn baseline_leaks_on_ddr4_too() {
        // Negative control off-DDR3: bank-grouped FR-FCFS still leaks
        // co-runner intensity, so the per-device FS assertion above is
        // not vacuous.
        let r = check_noninterference_on(
            DeviceGeneration::Ddr4_2400,
            SchedulerKind::Baseline,
            2000,
            10,
        );
        assert!(!r.is_non_interfering(), "ddr4 baseline unexpectedly non-interfering");
    }

    #[test]
    fn fs_survivor_profile_is_churn_independent_on_ddr4() {
        // The PR-6 reconfiguration story must survive the device swap:
        // joins, leaves and foreign persistent faults on a bank-grouped
        // part reconfigure without perturbing the observer.
        let r = check_churn_noninterference_on(
            DeviceGeneration::Ddr4_2400,
            SchedulerKind::FsRankPartitioned,
            800,
            1000,
            5,
        )
        .expect("churn must reconfigure cleanly under FS on ddr4");
        assert!(
            r.is_non_interfering(),
            "FS survivor diverged on ddr4 under {:?}: {} cycles",
            r.divergent_envs(),
            r.max_divergence()
        );
    }

    #[test]
    fn monitored_profile_matches_unmonitored_on_clean_runs() {
        // Arming the monitor (via an empty fault plan) observes without
        // perturbing: the attacker's profile is unchanged and no breach
        // fires on a healthy FS run.
        let plain = execution_profile(SchedulerKind::FsRankPartitioned, CoRunners::Idle, 1000, 5);
        let armed = execution_profile_faulted(
            SchedulerKind::FsRankPartitioned,
            CoRunners::Idle,
            1000,
            5,
            &FaultPlan::new(0),
        )
        .expect("clean run must not breach the monitor");
        assert!(plain.identical(&armed), "monitoring changed the profile");
    }

    #[test]
    fn fs_stays_bit_identical_under_graceful_degradation() {
        use fsmc_sim::FaultKind;
        // A 3x-stretched refresh forces the controller onto the
        // conservative pipeline mid-run. Degradation is triggered by the
        // wall-clock refresh cadence, so it happens identically in both
        // environments — and the degraded pipeline is still FS: the
        // profiles must remain bit-identical even while degraded.
        let plan = FaultPlan::new(11).with(FaultKind::StretchRefresh { factor: 3 });
        let r = check_noninterference_faulted(SchedulerKind::FsRankPartitioned, 1000, 5, &plan)
            .expect("stretch-refresh must degrade gracefully, not fail");
        assert!(
            r.is_non_interfering(),
            "degraded FS leaked: divergence {} cycles",
            r.max_divergence()
        );
    }

    #[test]
    fn fs_survivor_profile_is_churn_independent() {
        let r = check_churn_noninterference(SchedulerKind::FsRankPartitioned, 800, 1000, 5)
            .expect("churn must reconfigure cleanly under FS");
        assert!(
            r.is_non_interfering(),
            "FS survivor diverged under {:?}: {} cycles",
            r.divergent_envs(),
            r.max_divergence()
        );
    }

    #[test]
    fn baseline_survivor_profile_leaks_churn() {
        // The negative control that keeps the FS test honest: under
        // FR-FCFS the same probe sees co-domain churn, because a flooder
        // leaving (or being absent until it joins) frees real bandwidth.
        let r = check_churn_noninterference(SchedulerKind::Baseline, 800, 2000, 10)
            .expect("baseline churn runs must complete");
        assert!(!r.is_non_interfering(), "baseline unexpectedly churn-independent");
    }

    #[test]
    fn baseline_leaks_co_runner_intensity() {
        let r = check_noninterference(SchedulerKind::Baseline, 2000, 10);
        assert!(!r.is_non_interfering(), "baseline unexpectedly non-interfering");
        // The divergence is large: flooding co-runners slow the attacker
        // substantially (the visible gap of Figure 4).
        assert!(r.max_divergence() > 1000, "divergence only {}", r.max_divergence());
        assert!(r.idle_profile.final_slowdown(&r.intensive_profile) > 1.2);
    }
}
