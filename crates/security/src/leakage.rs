//! Information-theoretic leakage estimators.

use std::fmt;

/// Invalid input to a leakage estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeakageError {
    /// Observation and secret slices must pair up one-to-one.
    MismatchedLengths { observations: usize, secrets: usize },
    /// A histogram needs at least one bin.
    ZeroBins,
}

impl fmt::Display for LeakageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeakageError::MismatchedLengths { observations, secrets } => write!(
                f,
                "paired samples required: {observations} observations vs {secrets} secrets"
            ),
            LeakageError::ZeroBins => f.write_str("histogram bins must be non-zero"),
        }
    }
}

impl std::error::Error for LeakageError {}

/// Binary entropy in bits.
fn h2(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
    }
}

/// Capacity of a binary symmetric channel with error probability `ber`,
/// in bits per symbol: `1 - H2(ber)`.
pub fn binary_channel_capacity(ber: f64) -> f64 {
    1.0 - h2(ber.clamp(0.0, 1.0))
}

/// Histogram estimate of the mutual information (bits) between a
/// continuous observation and a binary secret.
///
/// Observations are bucketed into `bins` equal-width bins over their
/// range; MI is computed from the joint histogram. Returns 0 for
/// degenerate inputs (empty, constant observations, or single-class
/// secrets).
///
/// Infallible version of [`try_mutual_information`]: mismatched slice
/// lengths are truncated to the shorter one and `bins = 0` is treated as
/// 1, so a degenerate measurement (e.g. from a run cut short by an
/// injected fault) saturates to a harmless estimate instead of aborting
/// the suite.
pub fn mutual_information(observations: &[f64], secret: &[bool], bins: usize) -> f64 {
    let n = observations.len().min(secret.len());
    mi_impl(&observations[..n], &secret[..n], bins.max(1))
}

/// [`mutual_information`] with strict input validation.
///
/// # Errors
///
/// [`LeakageError::MismatchedLengths`] when the slices do not pair up,
/// [`LeakageError::ZeroBins`] when `bins` is zero.
pub fn try_mutual_information(
    observations: &[f64],
    secret: &[bool],
    bins: usize,
) -> Result<f64, LeakageError> {
    if observations.len() != secret.len() {
        return Err(LeakageError::MismatchedLengths {
            observations: observations.len(),
            secrets: secret.len(),
        });
    }
    if bins == 0 {
        return Err(LeakageError::ZeroBins);
    }
    Ok(mi_impl(observations, secret, bins))
}

fn mi_impl(observations: &[f64], secret: &[bool], bins: usize) -> f64 {
    let n = observations.len();
    if n == 0 {
        return 0.0;
    }
    let lo = observations.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = observations.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi <= lo {
        return 0.0; // constant observations carry no information
    }
    let width = (hi - lo) / bins as f64;
    // joint[bin][secret]
    let mut joint = vec![[0usize; 2]; bins];
    for (&x, &s) in observations.iter().zip(secret) {
        let b = (((x - lo) / width) as usize).min(bins - 1);
        joint[b][s as usize] += 1;
    }
    // Both marginals from counts (not `1.0 - p`), so a degenerate joint
    // (e.g. a single occupied bin) yields an *exact* zero rather than a
    // rounding-residue positive.
    let ones = secret.iter().filter(|&&s| s).count();
    let p_s = [(n - ones) as f64 / n as f64, ones as f64 / n as f64];
    let mut mi = 0.0;
    for row in &joint {
        let p_x = (row[0] + row[1]) as f64 / n as f64;
        if p_x == 0.0 {
            continue;
        }
        for s in 0..2 {
            let p_xs = row[s] as f64 / n as f64;
            if p_xs > 0.0 && p_s[s] > 0.0 {
                mi += p_xs * (p_xs / (p_x * p_s[s])).log2();
            }
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_endpoints() {
        assert!((binary_channel_capacity(0.0) - 1.0).abs() < 1e-12);
        assert!(binary_channel_capacity(0.5) < 1e-12);
        assert!((binary_channel_capacity(1.0) - 1.0).abs() < 1e-12); // inverted but perfect
    }

    #[test]
    fn perfectly_correlated_observation_has_one_bit() {
        let obs: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 10.0 } else { 20.0 }).collect();
        let secret: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        let mi = mutual_information(&obs, &secret, 16);
        assert!(mi > 0.99, "mi = {mi}");
    }

    #[test]
    fn independent_observation_has_near_zero_mi() {
        // Observation alternates with period 2; secret with period 4 but
        // balanced across observation values.
        let obs: Vec<f64> = (0..1000).map(|i| (i % 2) as f64).collect();
        let secret: Vec<bool> = (0..1000).map(|i| (i / 2) % 2 == 0).collect();
        let mi = mutual_information(&obs, &secret, 8);
        assert!(mi < 0.02, "mi = {mi}");
    }

    #[test]
    fn constant_observation_is_zero() {
        let obs = vec![5.0; 100];
        let secret: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        assert_eq!(mutual_information(&obs, &secret, 8), 0.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mutual_information(&[], &[], 8), 0.0);
    }

    #[test]
    fn mismatched_lengths_saturate_instead_of_panicking() {
        // Truncated to the empty prefix: zero information, no abort.
        assert_eq!(mutual_information(&[1.0], &[], 8), 0.0);
        let obs = [10.0, 20.0, 10.0, 20.0, 30.0];
        let secret = [true, false, true, false];
        let loose = mutual_information(&obs, &secret, 8);
        let strict = mutual_information(&obs[..4], &secret, 8);
        assert_eq!(loose, strict, "extra observations are dropped");
        // Zero bins saturates to one bin (a constant histogram).
        assert_eq!(mutual_information(&obs, &[true; 5], 0), 0.0);
    }

    #[test]
    fn try_variant_rejects_bad_inputs_with_typed_errors() {
        assert_eq!(
            try_mutual_information(&[1.0], &[], 8),
            Err(LeakageError::MismatchedLengths { observations: 1, secrets: 0 })
        );
        let err = try_mutual_information(&[1.0], &[true], 0).unwrap_err();
        assert_eq!(err, LeakageError::ZeroBins);
        assert!(err.to_string().contains("non-zero"));
        let ok = try_mutual_information(&[1.0, 2.0], &[true, false], 4).unwrap();
        assert!(ok >= 0.0);
    }
}
