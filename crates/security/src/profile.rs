//! Execution profiles: the Figure 4 measurement primitive.

/// The CPU cycles at which a thread completed each successive block of
/// instructions ("every point on the X-axis represents 10K instructions
/// and the Y-axis represents the time taken to complete that many
/// instructions").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionProfile {
    /// Cycle of each bucket boundary, monotonically non-decreasing.
    pub boundaries: Vec<u64>,
    /// Instructions per bucket.
    pub bucket_instrs: u64,
}

impl ExecutionProfile {
    pub fn new(boundaries: Vec<u64>, bucket_instrs: u64) -> Self {
        debug_assert!(boundaries.windows(2).all(|w| w[0] <= w[1]), "profile must be monotone");
        ExecutionProfile { boundaries, bucket_instrs }
    }

    pub fn len(&self) -> usize {
        self.boundaries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.boundaries.is_empty()
    }

    /// True if the two profiles are exactly the same measurement — the
    /// zero-leakage condition.
    pub fn identical(&self, other: &ExecutionProfile) -> bool {
        self == other
    }

    /// Largest absolute difference in completion time at any shared
    /// bucket boundary, in cycles.
    pub fn max_divergence(&self, other: &ExecutionProfile) -> u64 {
        self.boundaries
            .iter()
            .zip(&other.boundaries)
            .map(|(a, b)| a.abs_diff(*b))
            .max()
            .unwrap_or(0)
    }

    /// Relative slowdown of `other` vs `self` at the final shared bucket.
    pub fn final_slowdown(&self, other: &ExecutionProfile) -> f64 {
        match (self.boundaries.last(), other.boundaries.last()) {
            (Some(&a), Some(&b)) if a > 0 => b as f64 / a as f64,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_detects_equality() {
        let a = ExecutionProfile::new(vec![10, 20, 30], 100);
        let b = ExecutionProfile::new(vec![10, 20, 30], 100);
        let c = ExecutionProfile::new(vec![10, 21, 30], 100);
        assert!(a.identical(&b));
        assert!(!a.identical(&c));
    }

    #[test]
    fn divergence_measures_worst_bucket() {
        let a = ExecutionProfile::new(vec![10, 20, 30], 100);
        let c = ExecutionProfile::new(vec![10, 25, 31], 100);
        assert_eq!(a.max_divergence(&c), 5);
        assert_eq!(a.max_divergence(&a), 0);
    }

    #[test]
    fn slowdown_uses_final_boundary() {
        let a = ExecutionProfile::new(vec![10, 100], 100);
        let b = ExecutionProfile::new(vec![12, 150], 100);
        assert!((a.final_slowdown(&b) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_profiles_are_benign() {
        let a = ExecutionProfile::new(vec![], 100);
        assert!(a.is_empty());
        assert_eq!(a.max_divergence(&a), 0);
        assert_eq!(a.final_slowdown(&a), 1.0);
    }
}
