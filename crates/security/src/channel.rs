//! An end-to-end memory covert channel (Section 2.2's threat: ~100 Kbps
//! demonstrated on real hardware by synchronised sender/receiver pairs).
//!
//! Domain 1 (the *sender*) modulates its memory intensity with a secret
//! bit string; domain 0 (the *receiver*) issues a steady probe stream
//! and watches its own read latencies. On a contention-revealing
//! scheduler the receiver decodes the bits; under FS its latencies are
//! constant and the channel capacity collapses to zero.

use crate::leakage::{binary_channel_capacity, mutual_information};
use fsmc_core::sched::SchedulerKind;
use fsmc_cpu::trace::TraceSource;
use fsmc_sim::{System, SystemConfig};
use fsmc_workload::{IdleTrace, ModulatedTrace, ProbeTrace};

/// Result of one covert-channel experiment.
#[derive(Debug, Clone)]
pub struct CovertChannelReport {
    pub scheduler: SchedulerKind,
    /// Ground-truth bit per window and the receiver's mean latency there.
    pub windows: Vec<(bool, f64)>,
    /// Bit-error rate of a median-threshold decoder.
    pub ber: f64,
    /// Estimated mutual information between window latency and bit.
    pub mutual_information_bits: f64,
    /// Channel capacity estimate in bits/second (BSC capacity times the
    /// signalling rate).
    pub capacity_bps: f64,
}

/// Runs the covert channel under `scheduler`.
///
/// `bits` is the secret the sender transmits (repeated as needed);
/// `window_cycles` is the receiver's integration window in DRAM cycles;
/// `windows` is how many windows to observe.
pub fn run_covert_channel(
    scheduler: SchedulerKind,
    bits: &[bool],
    window_cycles: u64,
    windows: usize,
) -> CovertChannelReport {
    let cfg = SystemConfig::paper_default(scheduler);
    // Budgets chosen so a one-bit (memory-bound) and a zero-bit
    // (compute-bound) occupy roughly comparable wall-clock time.
    let modulation = ModulatedTrace::with_periods(bits.to_vec(), 4_000, 160_000);
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(cfg.cores as usize);
    traces.push(Box::new(ProbeTrace::new(20)));
    traces.push(Box::new(modulation.clone()));
    for _ in 2..cfg.cores {
        traces.push(Box::new(IdleTrace));
    }
    let mut sys = System::new(&cfg, traces);
    sys.observe(0);

    let mut window_data: Vec<(bool, f64)> = Vec::with_capacity(windows);
    for _ in 0..windows {
        sys.take_observations(); // clear
        let slot_before = modulation.slot_at(sys.core_stats(1).instructions_retired);
        for _ in 0..window_cycles {
            sys.step();
        }
        let obs = sys.take_observations();
        // Ground truth: the sender's current bit, derived from its own
        // retired instruction count (what the sender *meant* to signal).
        // Windows straddling a bit transition carry mixed signal and are
        // discarded, as a synchronised real-world receiver would.
        let instrs = sys.core_stats(1).instructions_retired;
        let slot_after = modulation.slot_at(instrs);
        if slot_before != slot_after || obs.is_empty() {
            continue;
        }
        let bit = modulation.bit_at(instrs);
        let mean = obs.iter().map(|&(_, lat)| lat as f64).sum::<f64>() / obs.len() as f64;
        window_data.push((bit, mean));
    }

    // Median-threshold decoder.
    let mut lats: Vec<f64> = window_data.iter().map(|&(_, l)| l).collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let threshold = if lats.is_empty() { 0.0 } else { lats[lats.len() / 2] };
    let errors = window_data.iter().filter(|&&(bit, lat)| (lat > threshold) != bit).count();
    let ber = if window_data.is_empty() {
        0.5
    } else {
        (errors as f64 / window_data.len() as f64).min(1.0)
    };
    // A decoder may be inverted; take the better polarity.
    let ber = ber.min(1.0 - ber);

    let observations: Vec<f64> = window_data.iter().map(|&(_, l)| l).collect();
    let secrets: Vec<bool> = window_data.iter().map(|&(b, _)| b).collect();
    let mi = mutual_information(&observations, &secrets, 16);

    // Signalling rate: one window per `window_cycles` DRAM cycles at
    // 1.25 ns per cycle.
    let window_seconds = window_cycles as f64 * 1.25e-9;
    let capacity_bps = binary_channel_capacity(ber) / window_seconds;

    CovertChannelReport {
        scheduler,
        windows: window_data,
        ber,
        mutual_information_bits: mi,
        capacity_bps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret() -> Vec<bool> {
        vec![true, false, true, true, false, false, true, false]
    }

    #[test]
    fn baseline_channel_carries_information() {
        let r = run_covert_channel(SchedulerKind::Baseline, &secret(), 2500, 100);
        assert!(r.ber < 0.25, "baseline BER {} too high to be a usable channel", r.ber);
        assert!(r.mutual_information_bits > 0.2, "MI {}", r.mutual_information_bits);
        assert!(r.capacity_bps > 1e4);
    }

    #[test]
    fn fs_channel_is_destroyed() {
        let r = run_covert_channel(SchedulerKind::FsRankPartitioned, &secret(), 2500, 100);
        // Receiver latencies are constant under FS: MI collapses.
        assert!(
            r.mutual_information_bits < 0.05,
            "FS leaked {} bits/window",
            r.mutual_information_bits
        );
        assert!(r.ber > 0.3, "FS BER {} suspiciously decodable", r.ber);
    }
}
