//! An end-to-end memory covert channel (Section 2.2's threat: ~100 Kbps
//! demonstrated on real hardware by synchronised sender/receiver pairs).
//!
//! Domain 1 (the *sender*) modulates its memory behaviour with a secret
//! bit string; domain 0 (the *receiver*) issues a steady probe stream
//! and watches its own read latencies. On a contention-revealing
//! scheduler the receiver decodes the bits; under FS its latencies are
//! constant and the channel capacity collapses to zero.
//!
//! [`run_covert_protocol`] is the protocol-agnostic harness: any
//! [`TraceSource`] sender paired with its [`Modulator`] ground truth
//! (intensity keying, bank-conflict keying, row-buffer keying — see
//! `fsmc-workload::attacker` and the `fsmc-leak` crate). The
//! intensity-keyed wrappers keep the original entry points.

use crate::leakage::{binary_channel_capacity, try_mutual_information, LeakageError};
use fsmc_core::sched::SchedulerKind;
use fsmc_cpu::trace::TraceSource;
use fsmc_dram::DeviceGeneration;
use fsmc_sim::{System, SystemConfig};
use fsmc_workload::{IdleTrace, ModulatedTrace, Modulator, ProbeTrace};

/// Result of one covert-channel experiment.
#[derive(Debug, Clone)]
pub struct CovertChannelReport {
    pub scheduler: SchedulerKind,
    pub device: DeviceGeneration,
    /// Ground-truth bit per window and the receiver's mean latency there.
    pub windows: Vec<(bool, f64)>,
    /// Bit-error rate of a median-threshold decoder.
    pub ber: f64,
    /// Estimated mutual information between window latency and bit.
    pub mutual_information_bits: f64,
    /// Channel capacity estimate in bits/second (BSC capacity times the
    /// signalling rate, at this device generation's clock).
    pub capacity_bps: f64,
}

/// Experiment geometry shared by every protocol run.
#[derive(Debug, Clone, Copy)]
pub struct ChannelParams {
    pub device: DeviceGeneration,
    /// The receiver's integration window in DRAM cycles.
    pub window_cycles: u64,
    /// How many windows to observe.
    pub windows: usize,
    /// Force per-cycle stepping (the decoder must see identical
    /// latencies on both simulation paths; tests compare the two).
    pub no_fastpath: bool,
}

impl ChannelParams {
    pub fn new(device: DeviceGeneration, window_cycles: u64, windows: usize) -> Self {
        ChannelParams { device, window_cycles, windows, no_fastpath: false }
    }
}

impl Default for ChannelParams {
    fn default() -> Self {
        ChannelParams::new(DeviceGeneration::Ddr3_1600, 2_500, 100)
    }
}

/// Runs one covert-channel protocol under `scheduler`: `sender` occupies
/// domain 1, a fixed-rate probe receiver occupies domain 0, and
/// `modulator` supplies the ground-truth symbol timeline (from the
/// sender's retired-instruction count).
///
/// # Errors
///
/// [`LeakageError`] if the mutual-information estimate over the decoded
/// windows is ill-posed (mismatched series lengths or zero bins).
pub fn run_covert_protocol(
    scheduler: SchedulerKind,
    sender: Box<dyn TraceSource>,
    modulator: &Modulator,
    params: ChannelParams,
) -> Result<CovertChannelReport, LeakageError> {
    let cfg = SystemConfig::for_device(params.device, scheduler, 8);
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(cfg.cores as usize);
    traces.push(Box::new(ProbeTrace::new(20)));
    traces.push(sender);
    for _ in 2..cfg.cores {
        traces.push(Box::new(IdleTrace));
    }
    let mut sys = System::new(&cfg, traces);
    if params.no_fastpath {
        sys.disable_fastpath();
    }
    sys.observe(0);

    let mut window_data: Vec<(bool, f64)> = Vec::with_capacity(params.windows);
    for _ in 0..params.windows {
        sys.take_observations(); // clear
        let slot_before = modulator.slot_at(sys.core_stats(1).instructions_retired);
        for _ in 0..params.window_cycles {
            sys.step();
        }
        let obs = sys.take_observations();
        // Ground truth: the sender's current bit, derived from its own
        // retired instruction count (what the sender *meant* to signal).
        // Windows straddling a bit transition carry mixed signal and are
        // discarded, as a synchronised real-world receiver would.
        let instrs = sys.core_stats(1).instructions_retired;
        let slot_after = modulator.slot_at(instrs);
        if slot_before != slot_after || obs.is_empty() {
            continue;
        }
        let bit = modulator.bit_at(instrs);
        let mean = obs.iter().map(|&(_, lat)| lat as f64).sum::<f64>() / obs.len() as f64;
        window_data.push((bit, mean));
    }

    // Median-threshold decoder.
    let mut lats: Vec<f64> = window_data.iter().map(|&(_, l)| l).collect();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let threshold = if lats.is_empty() { 0.0 } else { lats[lats.len() / 2] };
    let errors = window_data.iter().filter(|&&(bit, lat)| (lat > threshold) != bit).count();
    let ber = if window_data.is_empty() {
        0.5
    } else {
        (errors as f64 / window_data.len() as f64).min(1.0)
    };
    // A decoder may be inverted; take the better polarity.
    let ber = ber.min(1.0 - ber);

    let observations: Vec<f64> = window_data.iter().map(|&(_, l)| l).collect();
    let secrets: Vec<bool> = window_data.iter().map(|&(b, _)| b).collect();
    let mi = try_mutual_information(&observations, &secrets, 16)?;

    // Signalling rate: one window per `window_cycles` DRAM cycles at
    // this generation's clock.
    let window_seconds = params.window_cycles as f64 * params.device.seconds_per_cycle();
    let capacity_bps = binary_channel_capacity(ber) / window_seconds;

    Ok(CovertChannelReport {
        scheduler,
        device: params.device,
        windows: window_data,
        ber,
        mutual_information_bits: mi,
        capacity_bps,
    })
}

/// The intensity-keyed sender used by the original covert study, with
/// the budget ratio that makes one-bits and zero-bits occupy roughly
/// comparable wall-clock time (memory-bound one-bits progress far
/// slower per instruction than compute-bound zero-bits).
pub fn intensity_sender(bits: &[bool]) -> ModulatedTrace {
    ModulatedTrace::with_periods(bits.to_vec(), 4_000, 160_000)
}

/// Runs the intensity-keyed covert channel under `scheduler` on
/// `device`.
///
/// `bits` is the secret the sender transmits (repeated as needed);
/// `window_cycles` is the receiver's integration window in DRAM cycles;
/// `windows` is how many windows to observe.
///
/// # Errors
///
/// As for [`run_covert_protocol`].
pub fn run_covert_channel_on(
    device: DeviceGeneration,
    scheduler: SchedulerKind,
    bits: &[bool],
    window_cycles: u64,
    windows: usize,
) -> Result<CovertChannelReport, LeakageError> {
    let sender = intensity_sender(bits);
    let modulator = sender.modulator().clone();
    run_covert_protocol(
        scheduler,
        Box::new(sender),
        &modulator,
        ChannelParams::new(device, window_cycles, windows),
    )
}

/// [`run_covert_channel_on`] on the paper's DDR3-1600 system.
///
/// # Errors
///
/// As for [`run_covert_protocol`].
pub fn run_covert_channel(
    scheduler: SchedulerKind,
    bits: &[bool],
    window_cycles: u64,
    windows: usize,
) -> Result<CovertChannelReport, LeakageError> {
    run_covert_channel_on(DeviceGeneration::Ddr3_1600, scheduler, bits, window_cycles, windows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secret() -> Vec<bool> {
        vec![true, false, true, true, false, false, true, false]
    }

    #[test]
    fn baseline_channel_carries_information() {
        let r = run_covert_channel(SchedulerKind::Baseline, &secret(), 2500, 100).unwrap();
        assert!(r.ber < 0.25, "baseline BER {} too high to be a usable channel", r.ber);
        assert!(r.mutual_information_bits > 0.2, "MI {}", r.mutual_information_bits);
        assert!(r.capacity_bps > 1e4);
    }

    #[test]
    fn fs_channel_is_destroyed() {
        let r = run_covert_channel(SchedulerKind::FsRankPartitioned, &secret(), 2500, 100).unwrap();
        // Receiver latencies are constant under FS: MI collapses.
        assert!(
            r.mutual_information_bits < 0.05,
            "FS leaked {} bits/window",
            r.mutual_information_bits
        );
        assert!(r.ber > 0.3, "FS BER {} suspiciously decodable", r.ber);
    }

    #[test]
    fn capacity_scales_with_the_device_clock() {
        // The same BER at a faster clock is more bits per second: the
        // conversion must use the device's cycle length, not DDR3's.
        let d3 = run_covert_channel_on(
            DeviceGeneration::Ddr3_1600,
            SchedulerKind::Baseline,
            &secret(),
            2500,
            60,
        )
        .unwrap();
        let lp = run_covert_channel_on(
            DeviceGeneration::Lpddr4_3200,
            SchedulerKind::Baseline,
            &secret(),
            2500,
            60,
        )
        .unwrap();
        assert_eq!(d3.device, DeviceGeneration::Ddr3_1600);
        assert_eq!(lp.device, DeviceGeneration::Lpddr4_3200);
        // Both decode; per-window capacity converts at 2x the rate.
        let per_window_d3 = d3.capacity_bps * 2500.0 * d3.device.seconds_per_cycle();
        let per_window_lp = lp.capacity_bps * 2500.0 * lp.device.seconds_per_cycle();
        assert!(per_window_d3 > 0.0 && per_window_lp > 0.0);
        let ratio = DeviceGeneration::Lpddr4_3200.bus_mhz() as f64
            / DeviceGeneration::Ddr3_1600.bus_mhz() as f64;
        assert!((ratio - 2.0).abs() < 1e-9);
    }
}
