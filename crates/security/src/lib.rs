//! # fsmc-security — timing-channel measurement and verification
//!
//! The executable counterpart of the paper's security analysis:
//!
//! * [`profile`] — execution profiles (time to complete every N
//!   instructions, Figure 4) and divergence metrics between them.
//! * [`noninterference`] — the harness that runs an attacker thread
//!   against maximally different co-runner environments and checks
//!   whether its timing changes. Under FS the profiles must be
//!   **bit-identical**; under the non-secure baseline they diverge.
//! * [`leakage`] — a histogram mutual-information estimator between
//!   observed latencies and a secret, plus binary-channel capacity.
//! * [`channel`] — an end-to-end covert channel: a sender domain
//!   modulates its memory intensity with a secret bit string, a receiver
//!   domain probes memory and decodes. Reports bit-error rate and
//!   capacity; FS drives the channel to zero.

pub mod channel;
pub mod leakage;
pub mod noninterference;
pub mod profile;

pub use channel::{
    intensity_sender, run_covert_channel, run_covert_channel_on, run_covert_protocol,
    ChannelParams, CovertChannelReport,
};
pub use leakage::{
    binary_channel_capacity, mutual_information, try_mutual_information, LeakageError,
};
pub use noninterference::{
    check_churn_noninterference, check_churn_noninterference_on, check_noninterference,
    check_noninterference_faulted, check_noninterference_on, execution_profile,
    execution_profile_churned, execution_profile_churned_on, execution_profile_faulted,
    execution_profile_on, ChurnEnv, ChurnReport, NonInterferenceReport,
};
pub use profile::ExecutionProfile;
