//! # fsmc-workload — synthetic SPEC2k6/NPB-like workload generators
//!
//! The paper drives its evaluation with SPEC CPU2006 and NAS Parallel
//! Benchmark traces captured under Simics. Those traces are not
//! redistributable, so this crate provides *parameterised synthetic
//! generators* calibrated to the published post-LLC memory behaviour of
//! each benchmark: memory intensity (MPKI), read/write mix, row-buffer
//! locality, footprint and burstiness. The evaluation's relative results
//! are driven by exactly these knobs, so the figure *shapes* survive the
//! substitution (see DESIGN.md).
//!
//! * [`profile`] — per-benchmark parameter sets ([`BenchProfile::mcf`],
//!   [`BenchProfile::libquantum`], ...).
//! * [`generator`] — [`SyntheticTrace`], a deterministic seeded
//!   [`fsmc_cpu::TraceSource`] realising a profile.
//! * [`mix`] — the paper's 12-workload suite (rate-mode benchmarks plus
//!   mix1/mix2).
//! * [`attacker`] — idle / flooding / modulated traces for the security
//!   experiments (Figure 4 and the covert-channel study).
//! * [`cache`] — [`TraceCache`], memoized `Arc`-backed materialisation
//!   of the synthetic streams so the experiment engine synthesizes each
//!   `(profile, seed)` workload once across all policy runs.

pub mod attacker;
pub mod cache;
pub mod generator;
pub mod mix;
pub mod profile;

pub use attacker::{
    BankConflictTrace, FloodTrace, IdleTrace, ModulatedTrace, Modulator, ProbeTrace, RowBufferTrace,
};
pub use cache::TraceCache;
pub use generator::SyntheticTrace;
pub use mix::WorkloadMix;
pub use profile::{AccessPattern, BenchProfile};
