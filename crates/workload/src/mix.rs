//! The paper's multiprogrammed workload suite (Section 6).

use crate::profile::BenchProfile;

/// A named assignment of one profile per core.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    pub name: &'static str,
    pub profiles: Vec<BenchProfile>,
}

impl WorkloadMix {
    /// Rate mode: `cores` copies of one benchmark (the paper runs eight).
    pub fn rate(profile: BenchProfile, cores: usize) -> Self {
        WorkloadMix { name: profile.name, profiles: vec![profile; cores] }
    }

    /// Mix1: two copies each of xalancbmk, soplex, mcf and omnetpp.
    pub fn mix1() -> Self {
        let mut profiles = Vec::new();
        for p in [
            BenchProfile::xalancbmk(),
            BenchProfile::soplex(),
            BenchProfile::mcf(),
            BenchProfile::omnetpp(),
        ] {
            profiles.push(p);
            profiles.push(p);
        }
        WorkloadMix { name: "mix1", profiles }
    }

    /// Mix2: two copies each of milc, lbm, xalancbmk and zeusmp.
    pub fn mix2() -> Self {
        let mut profiles = Vec::new();
        for p in [
            BenchProfile::milc(),
            BenchProfile::lbm(),
            BenchProfile::xalancbmk(),
            BenchProfile::zeusmp(),
        ] {
            profiles.push(p);
            profiles.push(p);
        }
        WorkloadMix { name: "mix2", profiles }
    }

    /// The full 12-workload suite of Figures 6-9, in the paper's order:
    /// mix1, mix2, CG, SP, astar, lbm, libquantum, mcf, milc, zeusmp,
    /// GemsFDTD, xalancbmk.
    pub fn suite(cores: usize) -> Vec<WorkloadMix> {
        vec![
            WorkloadMix::mix1_for(cores),
            WorkloadMix::mix2_for(cores),
            WorkloadMix::rate(BenchProfile::cg(), cores),
            WorkloadMix::rate(BenchProfile::sp(), cores),
            WorkloadMix::rate(BenchProfile::astar(), cores),
            WorkloadMix::rate(BenchProfile::lbm(), cores),
            WorkloadMix::rate(BenchProfile::libquantum(), cores),
            WorkloadMix::rate(BenchProfile::mcf(), cores),
            WorkloadMix::rate(BenchProfile::milc(), cores),
            WorkloadMix::rate(BenchProfile::zeusmp(), cores),
            WorkloadMix::rate(BenchProfile::gems_fdtd(), cores),
            WorkloadMix::rate(BenchProfile::xalancbmk(), cores),
        ]
    }

    /// Mix1 truncated/extended to `cores` entries (for the scaling study).
    pub fn mix1_for(cores: usize) -> Self {
        let base = WorkloadMix::mix1();
        WorkloadMix {
            name: "mix1",
            profiles: base.profiles.iter().cycle().take(cores).copied().collect(),
        }
    }

    /// Mix2 truncated/extended to `cores` entries.
    pub fn mix2_for(cores: usize) -> Self {
        let base = WorkloadMix::mix2();
        WorkloadMix {
            name: "mix2",
            profiles: base.profiles.iter().cycle().take(cores).copied().collect(),
        }
    }

    pub fn cores(&self) -> usize {
        self.profiles.len()
    }

    /// Builds the mix a name denotes at a given core count: `mix1` /
    /// `mix2` resize the paper's blended mixes, any other name is a
    /// rate-mode mix of that [`BenchProfile`] (case-insensitive). This
    /// is the inverse of [`WorkloadMix::name`] for every mix the suite
    /// and the experiment service's job specs use.
    pub fn by_name(name: &str, cores: usize) -> Option<WorkloadMix> {
        match name {
            "mix1" => Some(WorkloadMix::mix1_for(cores)),
            "mix2" => Some(WorkloadMix::mix2_for(cores)),
            other => BenchProfile::by_name(other).map(|p| WorkloadMix::rate(p, cores)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_workloads_of_eight_cores() {
        let suite = WorkloadMix::suite(8);
        assert_eq!(suite.len(), 12);
        for w in &suite {
            assert_eq!(w.cores(), 8, "{}", w.name);
        }
        assert_eq!(suite[0].name, "mix1");
        assert_eq!(suite[11].name, "xalancbmk");
    }

    #[test]
    fn mixes_contain_two_copies_of_each_component() {
        let m = WorkloadMix::mix1();
        assert_eq!(m.cores(), 8);
        let mcf_count = m.profiles.iter().filter(|p| p.name == "mcf").count();
        assert_eq!(mcf_count, 2);
    }

    #[test]
    fn rate_mode_replicates_profile() {
        let r = WorkloadMix::rate(BenchProfile::mcf(), 4);
        assert_eq!(r.cores(), 4);
        assert!(r.profiles.iter().all(|p| p.name == "mcf"));
    }

    #[test]
    fn scaling_variants_resize() {
        assert_eq!(WorkloadMix::mix1_for(2).cores(), 2);
        assert_eq!(WorkloadMix::mix2_for(16).cores(), 16);
    }
}
