//! Per-benchmark memory-behaviour profiles.
//!
//! Parameters are calibrated to published SPEC CPU2006 / NPB
//! characterisations (post-LLC, 4 MB shared cache class of machines):
//! memory intensity in misses per kilo-instruction, write (writeback)
//! fraction, row-buffer locality of the miss stream, footprint, and the
//! burstiness that determines achievable memory-level parallelism.

/// The spatial structure of a profile's miss stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Sequential walks over large arrays (libquantum, lbm, SP).
    Streaming,
    /// Dependent pointer walks with poor locality (mcf, omnetpp, astar).
    PointerChase,
    /// A blend of structured and irregular accesses.
    Mixed,
}

/// A synthetic benchmark's memory personality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    pub name: &'static str,
    /// Demand read misses per 1000 instructions.
    pub read_mpki: f64,
    /// Writebacks per demand read (0.0-1.0ish).
    pub write_ratio: f64,
    /// Probability the next miss falls in the currently open row.
    pub row_locality: f64,
    /// Working-set size in cache lines (per core).
    pub footprint_lines: u64,
    /// Average number of misses arriving back-to-back (MLP burst size).
    pub burst: f64,
    pub pattern: AccessPattern,
}

impl BenchProfile {
    /// `libquantum`: extremely streaming, high intensity, high locality.
    pub fn libquantum() -> Self {
        BenchProfile {
            name: "libquantum",
            read_mpki: 27.0,
            write_ratio: 0.22,
            row_locality: 0.88,
            footprint_lines: 1 << 20,
            burst: 6.0,
            pattern: AccessPattern::Streaming,
        }
    }

    /// `mcf`: the paper's attacker stand-in — very memory-intensive
    /// pointer chasing with poor locality.
    pub fn mcf() -> Self {
        BenchProfile {
            name: "mcf",
            read_mpki: 55.0,
            write_ratio: 0.18,
            row_locality: 0.18,
            footprint_lines: 1 << 22,
            burst: 4.0,
            pattern: AccessPattern::PointerChase,
        }
    }

    /// `milc`: lattice QCD, moderately streaming.
    pub fn milc() -> Self {
        BenchProfile {
            name: "milc",
            read_mpki: 18.0,
            write_ratio: 0.30,
            row_locality: 0.55,
            footprint_lines: 1 << 21,
            burst: 3.0,
            pattern: AccessPattern::Mixed,
        }
    }

    /// `lbm`: fluid dynamics, streaming and write-heavy.
    pub fn lbm() -> Self {
        BenchProfile {
            name: "lbm",
            read_mpki: 28.0,
            write_ratio: 0.45,
            row_locality: 0.80,
            footprint_lines: 1 << 21,
            burst: 5.0,
            pattern: AccessPattern::Streaming,
        }
    }

    /// `GemsFDTD`: electromagnetics, moderate intensity.
    pub fn gems_fdtd() -> Self {
        BenchProfile {
            name: "GemsFDTD",
            read_mpki: 15.0,
            write_ratio: 0.32,
            row_locality: 0.65,
            footprint_lines: 1 << 21,
            burst: 3.5,
            pattern: AccessPattern::Mixed,
        }
    }

    /// `astar`: path-finding, low intensity, dependent accesses.
    pub fn astar() -> Self {
        BenchProfile {
            name: "astar",
            read_mpki: 2.5,
            write_ratio: 0.25,
            row_locality: 0.30,
            footprint_lines: 1 << 19,
            burst: 1.5,
            pattern: AccessPattern::PointerChase,
        }
    }

    /// `zeusmp`: CFD, light-moderate intensity.
    pub fn zeusmp() -> Self {
        BenchProfile {
            name: "zeusmp",
            read_mpki: 5.0,
            write_ratio: 0.30,
            row_locality: 0.60,
            footprint_lines: 1 << 20,
            burst: 2.0,
            pattern: AccessPattern::Mixed,
        }
    }

    /// `xalancbmk`: XML processing, cache-friendly (87% of its FS slots
    /// end up as dummies in the paper).
    pub fn xalancbmk() -> Self {
        BenchProfile {
            name: "xalancbmk",
            read_mpki: 0.8,
            write_ratio: 0.20,
            row_locality: 0.50,
            footprint_lines: 1 << 18,
            burst: 1.2,
            pattern: AccessPattern::Mixed,
        }
    }

    /// `soplex`: LP solver (used in mix1).
    pub fn soplex() -> Self {
        BenchProfile {
            name: "soplex",
            read_mpki: 25.0,
            write_ratio: 0.20,
            row_locality: 0.50,
            footprint_lines: 1 << 21,
            burst: 3.0,
            pattern: AccessPattern::Mixed,
        }
    }

    /// `omnetpp`: discrete-event simulation (used in mix1).
    pub fn omnetpp() -> Self {
        BenchProfile {
            name: "omnetpp",
            read_mpki: 20.0,
            write_ratio: 0.30,
            row_locality: 0.25,
            footprint_lines: 1 << 21,
            burst: 2.0,
            pattern: AccessPattern::PointerChase,
        }
    }

    /// NPB `CG`: conjugate gradient, irregular sparse accesses.
    pub fn cg() -> Self {
        BenchProfile {
            name: "CG",
            read_mpki: 14.0,
            write_ratio: 0.15,
            row_locality: 0.40,
            footprint_lines: 1 << 21,
            burst: 3.0,
            pattern: AccessPattern::PointerChase,
        }
    }

    /// NPB `SP`: scalar penta-diagonal solver, streaming.
    pub fn sp() -> Self {
        BenchProfile {
            name: "SP",
            read_mpki: 20.0,
            write_ratio: 0.40,
            row_locality: 0.70,
            footprint_lines: 1 << 21,
            burst: 4.0,
            pattern: AccessPattern::Streaming,
        }
    }

    /// Average instructions between demand read misses.
    pub fn instrs_per_read(&self) -> f64 {
        1000.0 / self.read_mpki
    }

    /// Every shipped profile, in the paper's presentation order.
    pub fn all() -> Vec<BenchProfile> {
        vec![
            BenchProfile::libquantum(),
            BenchProfile::mcf(),
            BenchProfile::milc(),
            BenchProfile::lbm(),
            BenchProfile::gems_fdtd(),
            BenchProfile::astar(),
            BenchProfile::zeusmp(),
            BenchProfile::xalancbmk(),
            BenchProfile::soplex(),
            BenchProfile::omnetpp(),
            BenchProfile::cg(),
            BenchProfile::sp(),
        ]
    }

    /// Looks a profile up by its canonical name, case-insensitively —
    /// the single name→profile mapping the CLI and the experiment
    /// service's job specs share, so a spec round-trips through its
    /// textual form without inventing a second spelling.
    pub fn by_name(name: &str) -> Option<BenchProfile> {
        BenchProfile::all().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> Vec<BenchProfile> {
        BenchProfile::all()
    }

    #[test]
    fn by_name_round_trips_every_profile() {
        for p in BenchProfile::all() {
            assert_eq!(BenchProfile::by_name(p.name), Some(p), "{}", p.name);
            assert_eq!(BenchProfile::by_name(&p.name.to_lowercase()), Some(p), "{}", p.name);
        }
        assert_eq!(BenchProfile::by_name("no-such-bench"), None);
    }

    #[test]
    fn profiles_are_sane() {
        for p in all() {
            assert!(p.read_mpki > 0.0, "{}", p.name);
            assert!((0.0..=1.0).contains(&p.write_ratio), "{}", p.name);
            assert!((0.0..=1.0).contains(&p.row_locality), "{}", p.name);
            assert!(p.footprint_lines > 0);
            assert!(p.burst >= 1.0);
            assert!(p.instrs_per_read() > 0.0);
        }
    }

    #[test]
    fn intensity_ordering_matches_literature() {
        // mcf is the most memory-intensive; xalancbmk the least.
        assert!(BenchProfile::mcf().read_mpki > BenchProfile::libquantum().read_mpki);
        assert!(BenchProfile::xalancbmk().read_mpki < BenchProfile::astar().read_mpki);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }
}
