//! Memoized synthetic-trace materialisation.
//!
//! Every policy run over the same `(profile, seed)` pair replays the
//! identical instruction stream — that is what makes the paper's policy
//! comparisons apples-to-apples. The experiment engine therefore
//! synthesizes each stream once into a shared [`SharedTape`] and hands
//! every run its own [`TapeReader`] cursor, instead of re-running the
//! generator's RNG for each of the N policies that share a mix.

use crate::generator::SyntheticTrace;
use crate::profile::BenchProfile;
use fsmc_cpu::trace::{SharedTape, TapeReader};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A concurrent memo table of materialised synthetic traces, keyed by
/// `(profile name, seed)`.
///
/// Profiles are identified by name: every [`BenchProfile`] constructor
/// is a fixed parameter set, so the name fully determines the generator.
/// The cache is `Sync`; worker threads of one engine run share it.
#[derive(Debug, Default)]
pub struct TraceCache {
    tapes: Mutex<HashMap<(&'static str, u64), Arc<SharedTape>>>,
}

impl TraceCache {
    pub fn new() -> Self {
        TraceCache::default()
    }

    /// The shared tape for `(profile, seed)`, recording it on first use.
    pub fn tape(&self, profile: BenchProfile, seed: u64) -> Arc<SharedTape> {
        self.tapes
            .lock()
            .expect("trace cache poisoned")
            .entry((profile.name, seed))
            .or_insert_with(|| SharedTape::record(SyntheticTrace::new(profile, seed)))
            .clone()
    }

    /// A fresh replay cursor over the memoized `(profile, seed)` stream —
    /// op-for-op identical to `SyntheticTrace::new(profile, seed)`.
    pub fn source(&self, profile: BenchProfile, seed: u64) -> TapeReader {
        self.tape(profile, seed).reader()
    }

    /// Distinct `(profile, seed)` streams materialised so far.
    pub fn len(&self) -> usize {
        self.tapes.lock().expect("trace cache poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_cpu::trace::TraceSource;

    #[test]
    fn memoized_stream_matches_fresh_synthesis() {
        let cache = TraceCache::new();
        let mut fresh = SyntheticTrace::new(BenchProfile::mcf(), 42);
        let mut replay = cache.source(BenchProfile::mcf(), 42);
        for i in 0..5000 {
            assert_eq!(replay.next_op(), fresh.next_op(), "op {i} diverged");
        }
    }

    #[test]
    fn same_key_shares_one_tape() {
        let cache = TraceCache::new();
        let a = cache.tape(BenchProfile::milc(), 7);
        let b = cache.tape(BenchProfile::milc(), 7);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        let _ = cache.tape(BenchProfile::milc(), 8);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn interleaved_readers_see_identical_records() {
        let cache = TraceCache::new();
        let mut a = cache.source(BenchProfile::lbm(), 3);
        let mut b = cache.source(BenchProfile::lbm(), 3);
        for _ in 0..3000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
