//! Attacker/victim traces for the security experiments.
//!
//! Figure 4 co-schedules the attacker (mcf) with "synthetic threads that
//! make no memory accesses" or "highly memory-intensive" ones; the
//! covert-channel study needs a sender that modulates its intensity with
//! a secret bit string and a receiver that probes at a fixed rate.

use fsmc_cpu::trace::{MemOp, TraceOp, TraceSource};

/// A purely compute-bound thread: zero memory accesses.
#[derive(Debug, Clone, Default)]
pub struct IdleTrace;

impl TraceSource for IdleTrace {
    fn next_op(&mut self) -> TraceOp {
        TraceOp::compute(64)
    }
}

/// A maximally memory-intensive thread: back-to-back row-missing reads.
#[derive(Debug, Clone)]
pub struct FloodTrace {
    pos: u64,
    footprint: u64,
    stride_rows: u64,
}

impl Default for FloodTrace {
    fn default() -> Self {
        FloodTrace::new()
    }
}

impl FloodTrace {
    pub fn new() -> Self {
        // Stride by whole rows (128 lines) so every access is a row miss.
        FloodTrace { pos: 0, footprint: 1 << 22, stride_rows: 1 }
    }
}

impl TraceSource for FloodTrace {
    fn next_op(&mut self) -> TraceOp {
        self.pos = (self.pos + self.stride_rows * 128) % self.footprint;
        TraceOp::with_mem(0, MemOp::read(self.pos))
    }
}

/// A covert-channel *sender*: memory-intensive while transmitting a 1,
/// idle while transmitting a 0.
///
/// One-bits and zero-bits get separate instruction budgets so both
/// phases occupy comparable wall-clock time (memory-bound one-bits
/// progress far slower per instruction than compute-bound zero-bits).
#[derive(Debug, Clone)]
pub struct ModulatedTrace {
    bits: Vec<bool>,
    one_instrs: u64,
    zero_instrs: u64,
    instrs_done: u64,
    pos: u64,
}

impl ModulatedTrace {
    /// Equal instruction budgets for both bit values.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or `bit_instrs` is zero.
    pub fn new(bits: Vec<bool>, bit_instrs: u64) -> Self {
        ModulatedTrace::with_periods(bits, bit_instrs, bit_instrs)
    }

    /// Separate instruction budgets for one-bits and zero-bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or either budget is zero.
    pub fn with_periods(bits: Vec<bool>, one_instrs: u64, zero_instrs: u64) -> Self {
        assert!(!bits.is_empty(), "need at least one bit");
        assert!(one_instrs > 0 && zero_instrs > 0, "bit periods must be non-zero");
        ModulatedTrace { bits, one_instrs, zero_instrs, instrs_done: 0, pos: 0 }
    }

    /// The index into the bit string that instruction `instrs` falls in —
    /// the ground truth a synchronised receiver decodes against.
    pub fn bit_index_at(&self, instrs: u64) -> usize {
        let mut remaining = instrs;
        let mut idx = 0usize;
        loop {
            let len =
                if self.bits[idx % self.bits.len()] { self.one_instrs } else { self.zero_instrs };
            if remaining < len {
                return idx % self.bits.len();
            }
            remaining -= len;
            idx += 1;
        }
    }

    /// The bit value at instruction `instrs`.
    pub fn bit_at(&self, instrs: u64) -> bool {
        self.bits[self.bit_index_at(instrs)]
    }

    /// A monotone "which transmission slot" counter at instruction
    /// `instrs` (unlike [`ModulatedTrace::bit_index_at`], this does not
    /// wrap, so callers can detect bit transitions).
    pub fn slot_at(&self, instrs: u64) -> u64 {
        let mut remaining = instrs;
        let mut idx = 0u64;
        loop {
            let len = if self.bits[(idx as usize) % self.bits.len()] {
                self.one_instrs
            } else {
                self.zero_instrs
            };
            if remaining < len {
                return idx;
            }
            remaining -= len;
            idx += 1;
        }
    }

    fn current_bit(&self) -> bool {
        self.bit_at(self.instrs_done)
    }
}

impl TraceSource for ModulatedTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = if self.current_bit() {
            self.pos = self.pos.wrapping_add(128) % (1 << 22);
            TraceOp::with_mem(1, MemOp::read(self.pos))
        } else {
            TraceOp::compute(16)
        };
        self.instrs_done += op.instructions();
        op
    }
}

/// A covert-channel *receiver* / timing probe: a steady, fixed rate of
/// dependent reads whose completion times reveal memory contention.
#[derive(Debug, Clone)]
pub struct ProbeTrace {
    gap: u32,
    pos: u64,
    footprint: u64,
}

impl ProbeTrace {
    /// One probing read per `gap + 1` instructions.
    pub fn new(gap: u32) -> Self {
        ProbeTrace { gap, pos: 0, footprint: 1 << 20 }
    }
}

impl TraceSource for ProbeTrace {
    fn next_op(&mut self) -> TraceOp {
        self.pos = (self.pos + 128) % self.footprint;
        TraceOp::with_mem(self.gap, MemOp::read(self.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_trace_never_touches_memory() {
        let mut t = IdleTrace;
        for _ in 0..100 {
            assert!(t.next_op().mem.is_none());
        }
    }

    #[test]
    fn flood_trace_is_all_row_misses() {
        let mut t = FloodTrace::new();
        let mut last_row = u64::MAX;
        for _ in 0..100 {
            let m = t.next_op().mem.unwrap();
            let row = m.addr.0 / 128;
            assert_ne!(row, last_row, "flood must not reuse a row consecutively");
            last_row = row;
        }
    }

    #[test]
    fn modulated_trace_follows_bits() {
        let mut t = ModulatedTrace::new(vec![true, false], 100);
        let mut first_phase_mem = 0;
        let mut instrs = 0;
        while instrs < 100 {
            let op = t.next_op();
            instrs += op.instructions();
            if op.mem.is_some() {
                first_phase_mem += 1;
            }
        }
        assert!(first_phase_mem > 10, "bit=1 phase should be memory-heavy");
        let mut second_phase_mem = 0;
        let start = instrs;
        while instrs < start + 100 {
            let op = t.next_op();
            instrs += op.instructions();
            if op.mem.is_some() {
                second_phase_mem += 1;
            }
        }
        assert_eq!(second_phase_mem, 0, "bit=0 phase must be silent");
    }

    #[test]
    fn probe_trace_has_fixed_rate() {
        let mut t = ProbeTrace::new(9);
        for _ in 0..50 {
            let op = t.next_op();
            assert_eq!(op.nonmem, 9);
            assert!(op.mem.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn modulated_rejects_empty_bits() {
        ModulatedTrace::new(vec![], 10);
    }
}
