//! Attacker/victim traces for the security experiments.
//!
//! Figure 4 co-schedules the attacker (mcf) with "synthetic threads that
//! make no memory accesses" or "highly memory-intensive" ones; the
//! covert-channel study needs a sender that modulates its intensity with
//! a secret bit string and a receiver that probes at a fixed rate.

use fsmc_cpu::trace::{MemOp, TraceOp, TraceSource};

/// A purely compute-bound thread: zero memory accesses.
#[derive(Debug, Clone, Default)]
pub struct IdleTrace;

impl TraceSource for IdleTrace {
    fn next_op(&mut self) -> TraceOp {
        TraceOp::compute(64)
    }
}

/// A maximally memory-intensive thread: back-to-back row-missing reads.
#[derive(Debug, Clone)]
pub struct FloodTrace {
    pos: u64,
    footprint: u64,
    stride_rows: u64,
}

impl Default for FloodTrace {
    fn default() -> Self {
        FloodTrace::new()
    }
}

impl FloodTrace {
    pub fn new() -> Self {
        // Stride by whole rows (128 lines) so every access is a row miss.
        FloodTrace { pos: 0, footprint: 1 << 22, stride_rows: 1 }
    }
}

impl TraceSource for FloodTrace {
    fn next_op(&mut self) -> TraceOp {
        self.pos = (self.pos + self.stride_rows * 128) % self.footprint;
        TraceOp::with_mem(0, MemOp::read(self.pos))
    }
}

/// The secret bitstring plus the per-bit instruction schedule every
/// covert-channel sender keys off — and the ground truth a synchronised
/// receiver decodes against.
///
/// One-bits and zero-bits get separate instruction budgets so both
/// phases can occupy comparable wall-clock time when their per-
/// instruction progress rates differ (memory-bound vs compute-bound).
#[derive(Debug, Clone)]
pub struct Modulator {
    bits: Vec<bool>,
    one_instrs: u64,
    zero_instrs: u64,
}

impl Modulator {
    /// # Panics
    ///
    /// Panics if `bits` is empty or either budget is zero.
    pub fn new(bits: Vec<bool>, one_instrs: u64, zero_instrs: u64) -> Self {
        assert!(!bits.is_empty(), "need at least one bit");
        assert!(one_instrs > 0 && zero_instrs > 0, "bit periods must be non-zero");
        Modulator { bits, one_instrs, zero_instrs }
    }

    /// The secret bitstring.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The index into the bit string that instruction `instrs` falls in.
    pub fn bit_index_at(&self, instrs: u64) -> usize {
        (self.slot_at(instrs) as usize) % self.bits.len()
    }

    /// The bit value at instruction `instrs`.
    pub fn bit_at(&self, instrs: u64) -> bool {
        self.bits[self.bit_index_at(instrs)]
    }

    /// A monotone "which transmission slot" counter at instruction
    /// `instrs` (unlike [`Modulator::bit_index_at`], this does not wrap,
    /// so callers can detect bit transitions).
    pub fn slot_at(&self, instrs: u64) -> u64 {
        let mut remaining = instrs;
        let mut idx = 0u64;
        loop {
            let len = if self.bits[(idx as usize) % self.bits.len()] {
                self.one_instrs
            } else {
                self.zero_instrs
            };
            if remaining < len {
                return idx;
            }
            remaining -= len;
            idx += 1;
        }
    }
}

/// A covert-channel *sender* (intensity / on-off keying): memory-
/// intensive while transmitting a 1, idle while transmitting a 0.
#[derive(Debug, Clone)]
pub struct ModulatedTrace {
    modulator: Modulator,
    instrs_done: u64,
    pos: u64,
}

impl ModulatedTrace {
    /// Equal instruction budgets for both bit values.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or `bit_instrs` is zero.
    pub fn new(bits: Vec<bool>, bit_instrs: u64) -> Self {
        ModulatedTrace::with_periods(bits, bit_instrs, bit_instrs)
    }

    /// Separate instruction budgets for one-bits and zero-bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or either budget is zero.
    pub fn with_periods(bits: Vec<bool>, one_instrs: u64, zero_instrs: u64) -> Self {
        ModulatedTrace {
            modulator: Modulator::new(bits, one_instrs, zero_instrs),
            instrs_done: 0,
            pos: 0,
        }
    }

    /// The sender's modulation schedule (receiver-side ground truth).
    pub fn modulator(&self) -> &Modulator {
        &self.modulator
    }

    /// The index into the bit string that instruction `instrs` falls in —
    /// the ground truth a synchronised receiver decodes against.
    pub fn bit_index_at(&self, instrs: u64) -> usize {
        self.modulator.bit_index_at(instrs)
    }

    /// The bit value at instruction `instrs`.
    pub fn bit_at(&self, instrs: u64) -> bool {
        self.modulator.bit_at(instrs)
    }

    /// A monotone "which transmission slot" counter at instruction
    /// `instrs` (unlike [`ModulatedTrace::bit_index_at`], this does not
    /// wrap, so callers can detect bit transitions).
    pub fn slot_at(&self, instrs: u64) -> u64 {
        self.modulator.slot_at(instrs)
    }

    fn current_bit(&self) -> bool {
        self.modulator.bit_at(self.instrs_done)
    }
}

impl TraceSource for ModulatedTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = if self.current_bit() {
            self.pos = self.pos.wrapping_add(128) % (1 << 22);
            TraceOp::with_mem(1, MemOp::read(self.pos))
        } else {
            TraceOp::compute(16)
        };
        self.instrs_done += op.instructions();
        op
    }
}

/// A covert-channel *sender* (bank-conflict keying): while transmitting
/// a 1 it strides whole rows across every bank — colliding with the
/// receiver's banks at *different* rows, forcing its probes into
/// precharge/activate conflicts — and while transmitting a 0 it streams
/// inside one row of one bank (row hits, minimal occupancy). Both
/// phases issue memory operations at the same instruction rate, so the
/// symbol only modulates *where* the pressure lands, not how much work
/// the sender core retires.
#[derive(Debug, Clone)]
pub struct BankConflictTrace {
    modulator: Modulator,
    instrs_done: u64,
    pos: u64,
}

impl BankConflictTrace {
    /// # Panics
    ///
    /// Panics if `bits` is empty or `bit_instrs` is zero.
    pub fn new(bits: Vec<bool>, bit_instrs: u64) -> Self {
        BankConflictTrace {
            modulator: Modulator::new(bits, bit_instrs, bit_instrs),
            instrs_done: 0,
            pos: 0,
        }
    }

    /// The sender's modulation schedule (receiver-side ground truth).
    pub fn modulator(&self) -> &Modulator {
        &self.modulator
    }
}

impl TraceSource for BankConflictTrace {
    fn next_op(&mut self) -> TraceOp {
        let addr = if self.modulator.bit_at(self.instrs_done) {
            // Row-stride sweep: a fresh (rank, bank, row) every access.
            self.pos = (self.pos + 128) % (1 << 20);
            self.pos
        } else {
            // Confined to the 128 lines of a single row of one bank.
            self.pos = (self.pos + 1) % 128;
            self.pos
        };
        let op = TraceOp::with_mem(3, MemOp::read(addr));
        self.instrs_done += op.instructions();
        op
    }
}

/// A covert-channel *sender* (row-buffer keying): every access lands in
/// one bank; a 1 alternates between two rows (pure row-miss churn that
/// evicts whatever row the receiver had open there), a 0 streams within
/// a single row (hits). The sender's bus occupancy is nearly identical
/// in both phases — the symbol lives in the *row-buffer state* it
/// leaves behind, the subtlest of the three encodings.
#[derive(Debug, Clone)]
pub struct RowBufferTrace {
    modulator: Modulator,
    instrs_done: u64,
    ops: u64,
}

/// Lines per (rank, bank, row) tuple stride under the unpartitioned
/// mapping: 128 columns × 8 banks × 8 ranks.
const ROW_GROUP: u64 = 128 * 64;

impl RowBufferTrace {
    /// # Panics
    ///
    /// Panics if `bits` is empty or `bit_instrs` is zero.
    pub fn new(bits: Vec<bool>, bit_instrs: u64) -> Self {
        RowBufferTrace {
            modulator: Modulator::new(bits, bit_instrs, bit_instrs),
            instrs_done: 0,
            ops: 0,
        }
    }

    /// The sender's modulation schedule (receiver-side ground truth).
    pub fn modulator(&self) -> &Modulator {
        &self.modulator
    }
}

impl TraceSource for RowBufferTrace {
    fn next_op(&mut self) -> TraceOp {
        self.ops += 1;
        let col = self.ops % 128;
        let addr = if self.modulator.bit_at(self.instrs_done) {
            // Ping-pong rows 0 and 1 of bank 0: every access is a miss.
            (self.ops % 2) * ROW_GROUP + col
        } else {
            // Stream row 0 of bank 0: every access is a hit.
            col
        };
        let op = TraceOp::with_mem(3, MemOp::read(addr));
        self.instrs_done += op.instructions();
        op
    }
}

/// A covert-channel *receiver* / timing probe: a steady, fixed rate of
/// dependent reads whose completion times reveal memory contention.
#[derive(Debug, Clone)]
pub struct ProbeTrace {
    gap: u32,
    pos: u64,
    footprint: u64,
}

impl ProbeTrace {
    /// One probing read per `gap + 1` instructions.
    pub fn new(gap: u32) -> Self {
        ProbeTrace { gap, pos: 0, footprint: 1 << 20 }
    }
}

impl TraceSource for ProbeTrace {
    fn next_op(&mut self) -> TraceOp {
        self.pos = (self.pos + 128) % self.footprint;
        TraceOp::with_mem(self.gap, MemOp::read(self.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_trace_never_touches_memory() {
        let mut t = IdleTrace;
        for _ in 0..100 {
            assert!(t.next_op().mem.is_none());
        }
    }

    #[test]
    fn flood_trace_is_all_row_misses() {
        let mut t = FloodTrace::new();
        let mut last_row = u64::MAX;
        for _ in 0..100 {
            let m = t.next_op().mem.unwrap();
            let row = m.addr.0 / 128;
            assert_ne!(row, last_row, "flood must not reuse a row consecutively");
            last_row = row;
        }
    }

    #[test]
    fn modulated_trace_follows_bits() {
        let mut t = ModulatedTrace::new(vec![true, false], 100);
        let mut first_phase_mem = 0;
        let mut instrs = 0;
        while instrs < 100 {
            let op = t.next_op();
            instrs += op.instructions();
            if op.mem.is_some() {
                first_phase_mem += 1;
            }
        }
        assert!(first_phase_mem > 10, "bit=1 phase should be memory-heavy");
        let mut second_phase_mem = 0;
        let start = instrs;
        while instrs < start + 100 {
            let op = t.next_op();
            instrs += op.instructions();
            if op.mem.is_some() {
                second_phase_mem += 1;
            }
        }
        assert_eq!(second_phase_mem, 0, "bit=0 phase must be silent");
    }

    #[test]
    fn probe_trace_has_fixed_rate() {
        let mut t = ProbeTrace::new(9);
        for _ in 0..50 {
            let op = t.next_op();
            assert_eq!(op.nonmem, 9);
            assert!(op.mem.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn modulated_rejects_empty_bits() {
        ModulatedTrace::new(vec![], 10);
    }

    /// Drives `t` for `instrs` instructions, returning the line
    /// addresses touched.
    fn addrs_for(t: &mut dyn TraceSource, instrs: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut done = 0;
        while done < instrs {
            let op = t.next_op();
            done += op.instructions();
            if let Some(m) = op.mem {
                out.push(m.addr.0);
            }
        }
        out
    }

    #[test]
    fn bank_conflict_trace_modulates_spread_not_rate() {
        let mut t = BankConflictTrace::new(vec![true, false], 400);
        let ones = addrs_for(&mut t, 400);
        let zeros = addrs_for(&mut t, 400);
        // Same access rate in both phases...
        assert_eq!(ones.len(), zeros.len());
        // ...but a 1 sweeps many (rank, bank) pairs while a 0 stays home.
        let banks = |a: &[u64]| {
            a.iter().map(|x| (x / 128) % 64).collect::<std::collections::HashSet<_>>().len()
        };
        assert!(banks(&ones) > 16, "one-phase hits {} banks", banks(&ones));
        assert_eq!(banks(&zeros), 1, "zero-phase must stay in one bank");
    }

    #[test]
    fn row_buffer_trace_churns_rows_only_on_ones() {
        let mut t = RowBufferTrace::new(vec![true, false], 400);
        let rows = |a: &[u64]| {
            a.iter().map(|x| x / ROW_GROUP).collect::<std::collections::HashSet<_>>().len()
        };
        let banks = |a: &[u64]| {
            a.iter().map(|x| (x / 128) % 64).collect::<std::collections::HashSet<_>>().len()
        };
        let ones = addrs_for(&mut t, 400);
        let zeros = addrs_for(&mut t, 400);
        assert_eq!(ones.len(), zeros.len());
        // Both phases live in a single bank; only the 1 alternates rows.
        assert_eq!(banks(&ones), 1);
        assert_eq!(banks(&zeros), 1);
        assert_eq!(rows(&ones), 2, "one-phase must ping-pong two rows");
        assert_eq!(rows(&zeros), 1, "zero-phase must stay in one row");
    }

    #[test]
    fn modulator_slots_are_monotone_and_consistent() {
        let m = Modulator::new(vec![true, false, true], 100, 50);
        assert_eq!(m.slot_at(0), 0);
        assert_eq!(m.slot_at(99), 0);
        assert_eq!(m.slot_at(100), 1);
        assert_eq!(m.slot_at(149), 1);
        assert_eq!(m.slot_at(150), 2);
        // Wraps the bitstring but not the slot counter.
        assert_eq!(m.bit_index_at(250), 0);
        assert_eq!(m.slot_at(250), 3);
        assert!(m.bit_at(0) && !m.bit_at(100) && m.bit_at(150));
    }
}
