//! Deterministic synthetic trace generation from a benchmark profile.

use crate::profile::{AccessPattern, BenchProfile};
use fsmc_cpu::trace::{MemOp, TraceOp, TraceSource};
use fsmc_dram::geometry::LineAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lines per DRAM row in the reference geometry (128 x 64 B = 8 KB row).
const LINES_PER_ROW: u64 = 128;

/// A seeded, deterministic trace realising a [`BenchProfile`].
///
/// ```
/// use fsmc_cpu::trace::TraceSource;
/// use fsmc_workload::{BenchProfile, SyntheticTrace};
///
/// let mut trace = SyntheticTrace::new(BenchProfile::mcf(), 42);
/// let op = trace.next_op();
/// assert!(op.instructions() > 0);
/// ```
///
/// Structure: memory accesses arrive in bursts of geometric size (mean
/// `profile.burst`) separated by compute gaps sized so the long-run read
/// rate matches `read_mpki`. Within a burst, each access stays in the
/// current row with probability `row_locality` (walking consecutive
/// lines) or jumps to a new row chosen by the profile's access pattern.
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    profile: BenchProfile,
    rng: StdRng,
    /// Current row base (line address of the row's first line).
    row_base: u64,
    /// Next line offset within the row.
    row_pos: u64,
    /// Memory ops remaining in the current burst.
    burst_left: u32,
}

impl SyntheticTrace {
    pub fn new(profile: BenchProfile, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_f00d);
        let rows = (profile.footprint_lines / LINES_PER_ROW).max(1);
        let row_base = (rng.gen_range(0..rows)) * LINES_PER_ROW;
        SyntheticTrace { profile, rng, row_base, row_pos: 0, burst_left: 0 }
    }

    pub fn profile(&self) -> &BenchProfile {
        &self.profile
    }

    fn next_addr(&mut self) -> LineAddr {
        let p = &self.profile;
        let rows = (p.footprint_lines / LINES_PER_ROW).max(1);
        let stay =
            self.rng.gen_bool(p.row_locality.clamp(0.0, 1.0)) && self.row_pos < LINES_PER_ROW;
        if !stay {
            let current_row = self.row_base / LINES_PER_ROW;
            let new_row = match p.pattern {
                AccessPattern::Streaming => (current_row + 1) % rows,
                AccessPattern::PointerChase => self.rng.gen_range(0..rows),
                AccessPattern::Mixed => {
                    if self.rng.gen_bool(0.5) {
                        (current_row + 1) % rows
                    } else {
                        self.rng.gen_range(0..rows)
                    }
                }
            };
            self.row_base = new_row * LINES_PER_ROW;
            self.row_pos = 0;
        }
        let addr = self.row_base + self.row_pos;
        self.row_pos += 1;
        LineAddr(addr % p.footprint_lines.max(1))
    }
}

impl TraceSource for SyntheticTrace {
    fn next_op(&mut self) -> TraceOp {
        let p = self.profile;
        if self.burst_left == 0 {
            // Start a new burst. Gap before it restores the target MPKI:
            // average instructions per read times burst size, spent here.
            let burst = 1 + self.rng.gen_range(0.0..2.0 * (p.burst - 1.0).max(0.0)).round() as u32;
            self.burst_left = burst;
            let gap = (p.instrs_per_read() * burst as f64).round() as u32;
            // The burst's ops each carry ~1 leading instruction, so shave
            // that off the gap (floor at 0 for very intense profiles).
            let gap = gap.saturating_sub(burst);
            self.burst_left -= 1;
            let addr = self.next_addr();
            let is_write =
                self.rng.gen_bool((p.write_ratio / (1.0 + p.write_ratio)).clamp(0.0, 1.0));
            return TraceOp::with_mem(gap, MemOp { addr, is_write });
        }
        self.burst_left -= 1;
        let addr = self.next_addr();
        let is_write = self.rng.gen_bool((p.write_ratio / (1.0 + p.write_ratio)).clamp(0.0, 1.0));
        TraceOp::with_mem(1, MemOp { addr, is_write })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::BenchProfile;

    fn measure(profile: BenchProfile, ops: usize) -> (f64, f64, f64) {
        let mut t = SyntheticTrace::new(profile, 7);
        let mut instrs = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut same_row = 0u64;
        let mut mem_ops = 0u64;
        let mut last_row = u64::MAX;
        for _ in 0..ops {
            let op = t.next_op();
            instrs += op.instructions();
            if let Some(m) = op.mem {
                mem_ops += 1;
                if m.is_write {
                    writes += 1;
                } else {
                    reads += 1;
                }
                let row = m.addr.0 / LINES_PER_ROW;
                if row == last_row {
                    same_row += 1;
                }
                last_row = row;
            }
        }
        let mpki = reads as f64 * 1000.0 / instrs as f64;
        let wr = writes as f64 / reads.max(1) as f64;
        let loc = same_row as f64 / mem_ops.max(1) as f64;
        (mpki, wr, loc)
    }

    #[test]
    fn mpki_calibration_holds() {
        for (p, tol) in [
            (BenchProfile::mcf(), 0.35),
            (BenchProfile::libquantum(), 0.35),
            (BenchProfile::xalancbmk(), 0.35),
        ] {
            let (mpki, _, _) = measure(p, 60_000);
            let target = p.read_mpki;
            assert!(
                (mpki - target).abs() / target < tol,
                "{}: measured {mpki:.1} vs target {target}",
                p.name
            );
        }
    }

    #[test]
    fn write_ratio_approximately_respected() {
        let (_, wr, _) = measure(BenchProfile::lbm(), 50_000);
        assert!((wr - 0.45).abs() < 0.15, "write ratio {wr}");
    }

    #[test]
    fn streaming_profile_has_more_locality_than_pointer_chase() {
        let (_, _, loc_stream) = measure(BenchProfile::libquantum(), 50_000);
        let (_, _, loc_chase) = measure(BenchProfile::mcf(), 50_000);
        assert!(loc_stream > loc_chase + 0.2, "streaming {loc_stream} vs chase {loc_chase}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = SyntheticTrace::new(BenchProfile::milc(), 42);
        let mut b = SyntheticTrace::new(BenchProfile::milc(), 42);
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        let mut c = SyntheticTrace::new(BenchProfile::milc(), 43);
        let differs = (0..1000).any(|_| a.next_op() != c.next_op());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let p = BenchProfile::xalancbmk();
        let mut t = SyntheticTrace::new(p, 1);
        for _ in 0..10_000 {
            if let Some(m) = t.next_op().mem {
                assert!(m.addr.0 < p.footprint_lines);
            }
        }
    }
}
