//! Replay-style timing-legality checker.
//!
//! [`TimingChecker`] re-derives every JEDEC constraint *pairwise* from a
//! recorded command stream, independently of the incremental bookkeeping in
//! [`crate::device::DramDevice`]. It is the executable witness for the
//! paper's central claim: an FS pipeline issues commands with **zero
//! resource conflicts** — no command-bus collisions, no data-bus overlap,
//! and no timing-parameter violations — for *any* read/write mix.

use crate::command::{Command, CommandKind, TimedCommand};
use crate::geometry::{BankId, Geometry, RankId, RowId};
use crate::timing::TimingParams;
use crate::Cycle;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A single timing or state violation detected in a command stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The offending command.
    pub cmd: Command,
    /// The cycle at which it was issued.
    pub cycle: Cycle,
    /// The first cycle at which it would have been legal, when the
    /// violation is a too-early issue (state violations have `None`).
    pub earliest: Option<Cycle>,
    /// Human-readable name of the violated constraint.
    pub constraint: &'static str,
}

impl Violation {
    /// A command issued before its earliest legal cycle.
    pub fn too_early(
        cmd: Command,
        cycle: Cycle,
        earliest: Cycle,
        constraint: &'static str,
    ) -> Self {
        Violation { cmd, cycle, earliest: Some(earliest), constraint }
    }

    /// A command illegal in the current bank/rank state (wrong row, closed
    /// bank, powered-down rank, ...).
    pub fn state(cmd: Command, cycle: Cycle, constraint: &'static str) -> Self {
        Violation { cmd, cycle, earliest: None, constraint }
    }

    /// `Ok(())` if `cycle >= earliest`, otherwise a `too_early` violation.
    pub fn check_earliest(
        cmd: Command,
        cycle: Cycle,
        earliest: Cycle,
        constraint: &'static str,
    ) -> Result<(), Violation> {
        if cycle >= earliest {
            Ok(())
        } else {
            Err(Violation::too_early(cmd, cycle, earliest, constraint))
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.earliest {
            Some(e) => write!(
                f,
                "{} at cycle {} violates {} (earliest legal cycle {})",
                self.cmd, self.cycle, self.constraint, e
            ),
            None => write!(f, "{} at cycle {}: {}", self.cmd, self.cycle, self.constraint),
        }
    }
}

impl Error for Violation {}

#[derive(Debug, Clone, Copy, Default)]
struct BankTrack {
    open_row: Option<RowId>,
    act_at: Option<Cycle>,
    last_read: Option<Cycle>,
    last_write: Option<Cycle>,
    pre_start: Option<Cycle>,
}

/// Validates recorded command streams against the full DDR3 rule set.
///
/// The checker is stateless between calls to [`TimingChecker::check`]; it
/// models a single channel, like [`crate::device::DramDevice`].
///
/// ```
/// use fsmc_dram::command::{Command, TimedCommand};
/// use fsmc_dram::geometry::{BankId, ColId, RankId, RowId};
/// use fsmc_dram::{Geometry, TimingChecker, TimingParams};
///
/// let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
/// let stream = [
///     TimedCommand::new(Command::activate(RankId(0), BankId(0), RowId(7)), 0),
///     TimedCommand::new(Command::read_ap(RankId(0), BankId(0), RowId(7), ColId(0)), 11),
/// ];
/// assert!(checker.verify(&stream).is_ok());
/// // One cycle too early and the violation names the constraint:
/// let early = [stream[0], TimedCommand::new(stream[1].cmd, 10)];
/// assert_eq!(checker.verify(&early).unwrap_err().constraint, "tRCD");
/// ```
#[derive(Debug, Clone)]
pub struct TimingChecker {
    geom: Geometry,
    t: TimingParams,
}

impl TimingChecker {
    pub fn new(geom: Geometry, t: TimingParams) -> Self {
        TimingChecker { geom, t }
    }

    /// Checks a command stream, returning every violation found (empty
    /// means the stream is fully legal).
    ///
    /// Commands are sorted by cycle internally, so callers may log
    /// transaction-by-transaction.
    pub fn check(&self, commands: &[TimedCommand]) -> Vec<Violation> {
        let mut cmds: Vec<TimedCommand> = commands.to_vec();
        cmds.sort_by_key(|c| c.cycle);
        let mut out = Vec::new();
        self.check_command_bus(&cmds, &mut out);
        self.check_data_bus(&cmds, &mut out);
        self.check_bank_state(&cmds, &mut out);
        self.check_rank_activates(&cmds, &mut out);
        self.check_cas_turnarounds(&cmds, &mut out);
        self.check_rank_level(&cmds, &mut out);
        out
    }

    /// Like [`TimingChecker::check`] but returns the first violation as an
    /// error, for use in tests.
    pub fn verify(&self, commands: &[TimedCommand]) -> Result<(), Violation> {
        match self.check(commands).first() {
            None => Ok(()),
            Some(v) => Err(*v),
        }
    }

    /// Rule: the command bus carries at most one command per cycle.
    fn check_command_bus(&self, cmds: &[TimedCommand], out: &mut Vec<Violation>) {
        for w in cmds.windows(2) {
            if w[0].cycle == w[1].cycle {
                out.push(Violation::state(w[1].cmd, w[1].cycle, "command-bus collision"));
            }
        }
    }

    /// Rule: data-bus bursts never overlap, and bursts from different ranks
    /// are separated by at least tRTRS.
    fn check_data_bus(&self, cmds: &[TimedCommand], out: &mut Vec<Violation>) {
        // (start, end, rank, originating command+cycle)
        let mut transfers: Vec<(Cycle, Cycle, RankId, TimedCommand)> = cmds
            .iter()
            .filter(|tc| tc.cmd.kind.is_cas())
            .map(|tc| {
                let lat = if tc.cmd.kind.is_read() { self.t.t_cas } else { self.t.t_cwd };
                let start = tc.cycle + lat as Cycle;
                (start, start + self.t.t_burst as Cycle, tc.cmd.rank, *tc)
            })
            .collect();
        transfers.sort_by_key(|t| t.0);
        for w in transfers.windows(2) {
            let (_, end_a, rank_a, _) = w[0];
            let (start_b, _, rank_b, tc_b) = w[1];
            if start_b < end_a {
                out.push(Violation::state(tc_b.cmd, tc_b.cycle, "data-bus overlap"));
            } else if rank_a != rank_b && start_b < end_a + self.t.t_rtrs as Cycle {
                out.push(Violation::too_early(
                    tc_b.cmd,
                    tc_b.cycle,
                    tc_b.cycle + (end_a + self.t.t_rtrs as Cycle - start_b),
                    "tRTRS rank-to-rank data gap",
                ));
            }
        }
    }

    /// Rules: bank-local row state, tRC, tRCD, tRAS, tRTP, write recovery,
    /// tRP (including the implicit precharge of RDA/WRA).
    fn check_bank_state(&self, cmds: &[TimedCommand], out: &mut Vec<Violation>) {
        let mut banks: HashMap<(RankId, BankId), BankTrack> = HashMap::new();
        for tc in cmds {
            let c = tc.cycle;
            let cmd = tc.cmd;
            match cmd.kind {
                CommandKind::Activate => {
                    let b = banks.entry((cmd.rank, cmd.bank)).or_default();
                    if b.open_row.is_some() {
                        out.push(Violation::state(cmd, c, "activate while a row is open"));
                    }
                    if let Some(p) = b.pre_start {
                        if c < p + self.t.t_rp as Cycle {
                            out.push(Violation::too_early(cmd, c, p + self.t.t_rp as Cycle, "tRP"));
                        }
                    }
                    if let Some(a) = b.act_at {
                        if c < a + self.t.t_rc as Cycle {
                            out.push(Violation::too_early(cmd, c, a + self.t.t_rc as Cycle, "tRC"));
                        }
                    }
                    b.open_row = Some(cmd.row);
                    b.act_at = Some(c);
                    b.last_read = None;
                    b.last_write = None;
                    b.pre_start = None;
                }
                k if k.is_cas() => {
                    let b = banks.entry((cmd.rank, cmd.bank)).or_default();
                    match b.open_row {
                        None => out.push(Violation::state(cmd, c, "CAS on a closed bank")),
                        Some(r) if r != cmd.row => {
                            out.push(Violation::state(cmd, c, "CAS to a row that is not open"))
                        }
                        Some(_) => {
                            let a = b.act_at.unwrap_or(0);
                            if c < a + self.t.t_rcd as Cycle {
                                out.push(Violation::too_early(
                                    cmd,
                                    c,
                                    a + self.t.t_rcd as Cycle,
                                    "tRCD",
                                ));
                            }
                        }
                    }
                    if k.is_read() {
                        b.last_read = Some(c);
                    } else {
                        b.last_write = Some(c);
                    }
                    if k.has_auto_precharge() {
                        let recovery = if k.is_read() {
                            c + self.t.t_rtp as Cycle
                        } else {
                            c + self.t.write_ap_pre_offset() as Cycle
                        };
                        let ras_done = b.act_at.unwrap_or(0) + self.t.t_ras as Cycle;
                        b.pre_start = Some(recovery.max(ras_done));
                        b.open_row = None;
                    }
                }
                CommandKind::Precharge | CommandKind::PrechargeAll => {
                    let bank_ids: Vec<BankId> = if cmd.kind == CommandKind::PrechargeAll {
                        (0..self.geom.banks_per_rank()).map(BankId).collect()
                    } else {
                        vec![cmd.bank]
                    };
                    for bank in bank_ids {
                        let b = banks.entry((cmd.rank, bank)).or_default();
                        if b.open_row.is_none() {
                            continue; // precharging a closed bank is a NOP
                        }
                        let a = b.act_at.unwrap_or(0);
                        if c < a + self.t.t_ras as Cycle {
                            out.push(Violation::too_early(
                                cmd,
                                c,
                                a + self.t.t_ras as Cycle,
                                "tRAS",
                            ));
                        }
                        if let Some(r) = b.last_read {
                            if c < r + self.t.t_rtp as Cycle {
                                out.push(Violation::too_early(
                                    cmd,
                                    c,
                                    r + self.t.t_rtp as Cycle,
                                    "tRTP",
                                ));
                            }
                        }
                        if let Some(w) = b.last_write {
                            let rec = w + self.t.write_ap_pre_offset() as Cycle;
                            if c < rec {
                                out.push(Violation::too_early(cmd, c, rec, "write recovery (tWR)"));
                            }
                        }
                        b.pre_start = Some(c);
                        b.open_row = None;
                    }
                }
                CommandKind::Refresh => {
                    for bank in 0..self.geom.banks_per_rank() {
                        let b = banks.entry((cmd.rank, BankId(bank))).or_default();
                        if b.open_row.is_some() {
                            out.push(Violation::state(cmd, c, "refresh with a row open"));
                        }
                        if let Some(p) = b.pre_start {
                            if c < p + self.t.t_rp as Cycle {
                                out.push(Violation::too_early(
                                    cmd,
                                    c,
                                    p + self.t.t_rp as Cycle,
                                    "tRP before REF",
                                ));
                            }
                        }
                        // The rank is unusable for tRFC; model as a pending
                        // precharge completing at REF + tRFC - tRP so that
                        // the existing tRP rule enforces it.
                        b.pre_start = Some(c + (self.t.t_rfc - self.t.t_rp) as Cycle);
                        b.act_at = None;
                    }
                }
                _ => {}
            }
        }
    }

    /// Rules: tRRD between activates to a rank, and the four-activate
    /// window tFAW.
    fn check_rank_activates(&self, cmds: &[TimedCommand], out: &mut Vec<Violation>) {
        let mut acts: HashMap<RankId, Vec<TimedCommand>> = HashMap::new();
        for tc in cmds.iter().filter(|tc| tc.cmd.kind == CommandKind::Activate) {
            acts.entry(tc.cmd.rank).or_default().push(*tc);
        }
        for list in acts.values() {
            for w in list.windows(2) {
                if w[1].cycle < w[0].cycle + self.t.t_rrd as Cycle {
                    out.push(Violation::too_early(
                        w[1].cmd,
                        w[1].cycle,
                        w[0].cycle + self.t.t_rrd as Cycle,
                        "tRRD",
                    ));
                }
            }
            for i in 4..list.len() {
                if list[i].cycle < list[i - 4].cycle + self.t.t_faw as Cycle {
                    out.push(Violation::too_early(
                        list[i].cmd,
                        list[i].cycle,
                        list[i - 4].cycle + self.t.t_faw as Cycle,
                        "tFAW",
                    ));
                }
            }
        }
    }

    /// Rules: same-rank CAS-to-CAS spacing — tCCD (tCCD_S) for same-type
    /// pairs, the read-to-write and write-to-read turnarounds otherwise,
    /// and — on bank-grouped parts — tCCD_L for same-type pairs landing
    /// in the same bank group. Cross-rank spacing is covered by the
    /// data-bus rule.
    fn check_cas_turnarounds(&self, cmds: &[TimedCommand], out: &mut Vec<Violation>) {
        let mut last_cas: HashMap<RankId, TimedCommand> = HashMap::new();
        // Last same-type CAS per (rank, bank group, direction); only
        // consulted on parts that actually have bank groups so flat
        // (DDR3/LPDDR4) streams keep identical violation lists.
        let mut last_group_cas: HashMap<(RankId, u8, bool), TimedCommand> = HashMap::new();
        let grouped = self.geom.bank_groups() > 1;
        for tc in cmds.iter().filter(|tc| tc.cmd.kind.is_cas()) {
            if let Some(prev) = last_cas.get(&tc.cmd.rank) {
                let (min_gap, name): (u32, &'static str) =
                    match (prev.cmd.kind.is_read(), tc.cmd.kind.is_read()) {
                        (true, true) | (false, false) => (self.t.t_ccd, "tCCD"),
                        (true, false) => (self.t.rd_to_wr_same_rank(), "read-to-write turnaround"),
                        (false, true) => (self.t.wr_to_rd_same_rank(), "tWTR write-to-read"),
                    };
                if tc.cycle < prev.cycle + min_gap as Cycle {
                    out.push(Violation::too_early(
                        tc.cmd,
                        tc.cycle,
                        prev.cycle + min_gap as Cycle,
                        name,
                    ));
                }
            }
            last_cas.insert(tc.cmd.rank, *tc);
            if grouped {
                let is_read = tc.cmd.kind.is_read();
                let key = (tc.cmd.rank, self.geom.bank_group_of(tc.cmd.bank), is_read);
                if let Some(prev) = last_group_cas.get(&key) {
                    if tc.cycle < prev.cycle + self.t.t_ccd_l as Cycle {
                        out.push(Violation::too_early(
                            tc.cmd,
                            tc.cycle,
                            prev.cycle + self.t.t_ccd_l as Cycle,
                            "tCCD_L same bank group",
                        ));
                    }
                }
                last_group_cas.insert(key, *tc);
            }
        }
    }

    /// Rules: no commands to a refreshing or powered-down rank; power-down
    /// exit latency tXP.
    fn check_rank_level(&self, cmds: &[TimedCommand], out: &mut Vec<Violation>) {
        #[derive(Default, Clone, Copy)]
        struct RankTrack {
            refresh_until: Cycle,
            powered_down: bool,
            wake_at: Cycle,
        }
        let mut ranks: HashMap<RankId, RankTrack> = HashMap::new();
        for tc in cmds {
            let r = ranks.entry(tc.cmd.rank).or_default();
            match tc.cmd.kind {
                CommandKind::Refresh => {
                    if tc.cycle < r.refresh_until {
                        out.push(Violation::too_early(tc.cmd, tc.cycle, r.refresh_until, "tRFC"));
                    }
                    r.refresh_until = tc.cycle + self.t.t_rfc as Cycle;
                }
                CommandKind::PowerDownEnter => {
                    if r.powered_down {
                        out.push(Violation::state(tc.cmd, tc.cycle, "already powered down"));
                    }
                    r.powered_down = true;
                }
                CommandKind::PowerDownExit => {
                    if !r.powered_down {
                        out.push(Violation::state(tc.cmd, tc.cycle, "power-up of an active rank"));
                    }
                    r.powered_down = false;
                    r.wake_at = tc.cycle + self.t.t_xp as Cycle;
                }
                _ => {
                    if tc.cycle < r.refresh_until {
                        out.push(Violation::too_early(
                            tc.cmd,
                            tc.cycle,
                            r.refresh_until,
                            "command during tRFC",
                        ));
                    }
                    if r.powered_down {
                        out.push(Violation::state(
                            tc.cmd,
                            tc.cycle,
                            "command to a powered-down rank",
                        ));
                    } else if tc.cycle < r.wake_at {
                        out.push(Violation::too_early(
                            tc.cmd,
                            tc.cycle,
                            r.wake_at,
                            "tXP power-down exit",
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{ColId, RankId};

    fn checker() -> TimingChecker {
        TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600())
    }

    fn tc(cmd: Command, cycle: Cycle) -> TimedCommand {
        TimedCommand::new(cmd, cycle)
    }

    #[test]
    fn legal_read_transaction_passes() {
        let cmds = [
            tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0),
            tc(Command::read_ap(RankId(0), BankId(0), RowId(5), ColId(0)), 11),
        ];
        assert!(checker().verify(&cmds).is_ok());
    }

    #[test]
    fn early_cas_flagged() {
        let cmds = [
            tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0),
            tc(Command::read_ap(RankId(0), BankId(0), RowId(5), ColId(0)), 10),
        ];
        let v = checker().verify(&cmds).unwrap_err();
        assert_eq!(v.constraint, "tRCD");
        assert_eq!(v.earliest, Some(11));
    }

    #[test]
    fn command_bus_collision_flagged() {
        let cmds = [
            tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0),
            tc(Command::activate(RankId(1), BankId(0), RowId(5)), 0),
        ];
        let vs = checker().check(&cmds);
        assert!(vs.iter().any(|v| v.constraint == "command-bus collision"));
    }

    #[test]
    fn rank_to_rank_data_gap_enforced() {
        // Two reads to different ranks with CAS 4 cycles apart: data bursts
        // are contiguous, violating tRTRS = 2.
        let cmds = [
            tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0),
            tc(Command::activate(RankId(1), BankId(0), RowId(5)), 1),
            tc(Command::read_ap(RankId(0), BankId(0), RowId(5), ColId(0)), 12),
            tc(Command::read_ap(RankId(1), BankId(0), RowId(5), ColId(0)), 16),
        ];
        let vs = checker().check(&cmds);
        assert!(vs.iter().any(|v| v.constraint.contains("tRTRS")), "{vs:?}");
        // With a 6-cycle CAS gap (tBURST + tRTRS) it is legal.
        let cmds_ok = [
            tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0),
            tc(Command::activate(RankId(1), BankId(0), RowId(5)), 1),
            tc(Command::read_ap(RankId(0), BankId(0), RowId(5), ColId(0)), 12),
            tc(Command::read_ap(RankId(1), BankId(0), RowId(5), ColId(0)), 18),
        ];
        assert!(checker().verify(&cmds_ok).is_ok());
    }

    #[test]
    fn trrd_and_tfaw_enforced() {
        let t = TimingParams::ddr3_1600();
        // 5 activates to one rank, 5 cycles apart: tRRD satisfied but the
        // fifth lands at cycle 20 < tFAW = 24.
        let cmds: Vec<TimedCommand> = (0..5)
            .map(|i| {
                tc(Command::activate(RankId(0), BankId(i), RowId(1)), i as Cycle * t.t_rrd as Cycle)
            })
            .collect();
        let vs = checker().check(&cmds);
        assert!(vs.iter().any(|v| v.constraint == "tFAW"));
        assert!(!vs.iter().any(|v| v.constraint == "tRRD"));
    }

    #[test]
    fn write_to_read_turnaround_enforced() {
        let cmds = [
            tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0),
            tc(Command::activate(RankId(0), BankId(1), RowId(5)), 5),
            tc(Command::write_ap(RankId(0), BankId(0), RowId(5), ColId(0)), 11),
            // Wr2Rd = 15, so a read CAS at 25 is one cycle early.
            tc(Command::read_ap(RankId(0), BankId(1), RowId(5), ColId(0)), 25),
        ];
        let vs = checker().check(&cmds);
        assert!(vs.iter().any(|v| v.constraint == "tWTR write-to-read"));
    }

    #[test]
    fn same_group_cas_pair_needs_ccd_l() {
        // DDR4 geometry: banks 0 and 4 share group 0; bank 1 is group 1.
        let ddr4 = TimingChecker::new(
            Geometry::with_bank_groups(1, 8, 16, 4, 32768, 128),
            TimingParams::ddr4_2400(),
        );
        let t = TimingParams::ddr4_2400();
        let base = [
            tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0),
            tc(Command::activate(RankId(0), BankId(4), RowId(5)), t.t_rrd as Cycle),
            tc(Command::activate(RankId(0), BankId(1), RowId(5)), 2 * t.t_rrd as Cycle),
        ];
        let rd0 = tc(Command::read_ap(RankId(0), BankId(0), RowId(5), ColId(0)), 60);
        // Same group at tCCD_S: flagged as a tCCD_L violation.
        let same =
            tc(Command::read_ap(RankId(0), BankId(4), RowId(5), ColId(0)), 60 + t.t_ccd as Cycle);
        let mut cmds: Vec<TimedCommand> = base.to_vec();
        cmds.push(rd0);
        cmds.push(same);
        let vs = ddr4.check(&cmds);
        assert!(vs.iter().any(|v| v.constraint == "tCCD_L same bank group"), "{vs:?}");
        // Different group at tCCD_S: legal.
        let other =
            tc(Command::read_ap(RankId(0), BankId(1), RowId(5), ColId(0)), 60 + t.t_ccd as Cycle);
        let mut cmds_ok: Vec<TimedCommand> = base.to_vec();
        cmds_ok.push(rd0);
        cmds_ok.push(other);
        assert!(ddr4.verify(&cmds_ok).is_ok(), "{:?}", ddr4.check(&cmds_ok));
        // Same group at tCCD_L: legal.
        let same_ok =
            tc(Command::read_ap(RankId(0), BankId(4), RowId(5), ColId(0)), 60 + t.t_ccd_l as Cycle);
        let mut cmds_ok2: Vec<TimedCommand> = base.to_vec();
        cmds_ok2.push(rd0);
        cmds_ok2.push(same_ok);
        assert!(ddr4.verify(&cmds_ok2).is_ok(), "{:?}", ddr4.check(&cmds_ok2));
    }

    #[test]
    fn powered_down_rank_rejects_commands() {
        let cmds = [
            tc(Command::power_down(RankId(0)), 0),
            tc(Command::activate(RankId(0), BankId(0), RowId(1)), 5),
        ];
        let vs = checker().check(&cmds);
        assert!(vs.iter().any(|v| v.constraint.contains("powered-down")));
    }

    #[test]
    fn power_up_requires_txp() {
        let cmds = [
            tc(Command::power_down(RankId(0)), 0),
            tc(Command::power_up(RankId(0)), 10),
            tc(Command::activate(RankId(0), BankId(0), RowId(1)), 15),
        ];
        let vs = checker().check(&cmds);
        assert!(vs.iter().any(|v| v.constraint.contains("tXP")), "{vs:?}");
    }

    #[test]
    fn refresh_blocks_rank_for_trfc() {
        let cmds = [
            tc(Command::refresh(RankId(0)), 0),
            tc(Command::activate(RankId(0), BankId(0), RowId(1)), 100),
        ];
        let vs = checker().check(&cmds);
        assert!(!vs.is_empty());
        let cmds_ok = [
            tc(Command::refresh(RankId(0)), 0),
            tc(Command::activate(RankId(0), BankId(0), RowId(1)), 208),
        ];
        assert!(checker().verify(&cmds_ok).is_ok());
    }
}
