//! The incremental single-channel DRAM device model that a memory
//! controller drives command by command.

use crate::channel::ChannelState;
use crate::checker::Violation;
use crate::command::{Command, CommandKind, TimedCommand};
use crate::counters::ActivityCounters;
use crate::geometry::{BankId, Geometry, RankId, RowId};
use crate::rank::{PowerState, RankState};
use crate::timing::TimingParams;
use crate::Cycle;

/// What issuing a command produced, in the time domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// For reads: the cycle at which the full line has arrived at the
    /// controller (`CAS + tCAS + tBURST`). For writes: the cycle at which
    /// the burst has been transmitted. `None` for non-CAS commands.
    pub data_done: Option<Cycle>,
}

/// An observability record of one applied command: the command, its
/// issue cycle, whether it was a suppressed dummy, and (for CAS) the
/// cycle its data burst completes. Richer than [`TimedCommand`] so the
/// tracing layer can size timeline slices without knowing device timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsCommand {
    pub cmd: Command,
    pub cycle: Cycle,
    pub suppressed: bool,
    pub data_done: Option<Cycle>,
}

/// Cycle-accurate model of one DDR3 channel and its ranks/banks.
///
/// Every command must be validated with [`DramDevice::can_issue`] (or
/// issued through [`DramDevice::issue`], which validates internally and
/// returns an error on illegal issue). Issued commands are optionally
/// recorded so a [`crate::checker::TimingChecker`] can re-validate the
/// whole stream independently, and — independently — optionally mirrored
/// into an observability side log ([`ObsCommand`]) that the tracing
/// layer drains. Both logs are `Option`-gated: disabled, the hooks are a
/// branch on `None` with no allocation.
#[derive(Debug, Clone)]
pub struct DramDevice {
    geom: Geometry,
    t: TimingParams,
    ranks: Vec<RankState>,
    channel: ChannelState,
    counters: ActivityCounters,
    log: Option<Vec<TimedCommand>>,
    obs_log: Option<Vec<ObsCommand>>,
    last_issue: Option<Cycle>,
}

impl DramDevice {
    /// A fresh device for one channel of `geom`.
    pub fn new(geom: Geometry, t: TimingParams) -> Self {
        let ranks = (0..geom.ranks_per_channel())
            .map(|_| RankState::with_bank_groups(geom.banks_per_rank(), geom.bank_groups()))
            .collect();
        DramDevice {
            geom,
            t,
            ranks,
            channel: ChannelState::for_timing(&t),
            counters: ActivityCounters::new(geom.ranks_per_channel() as usize),
            log: None,
            obs_log: None,
            last_issue: None,
        }
    }

    /// Enables command-stream recording for later replay through the
    /// checker.
    pub fn record_commands(&mut self) {
        if self.log.is_none() {
            self.log = Some(Vec::new());
        }
    }

    /// Whether command-stream recording is enabled.
    pub fn is_recording(&self) -> bool {
        self.log.is_some()
    }

    /// Takes the recorded command stream, leaving recording enabled.
    pub fn take_log(&mut self) -> Vec<TimedCommand> {
        match &mut self.log {
            Some(l) => std::mem::take(l),
            None => Vec::new(),
        }
    }

    /// Whether [`DramDevice::take_log`] would currently return anything.
    pub fn has_log(&self) -> bool {
        self.log.as_ref().is_some_and(|l| !l.is_empty())
    }

    /// Drains the recorded command stream into `out`, reusing the
    /// caller's buffer instead of allocating a fresh `Vec` per drain.
    pub fn take_log_into(&mut self, out: &mut Vec<TimedCommand>) {
        if let Some(l) = &mut self.log {
            out.append(l);
        }
    }

    /// Enables the observability side log ([`ObsCommand`] per applied
    /// command). Independent of [`DramDevice::record_commands`].
    pub fn record_obs(&mut self) {
        if self.obs_log.is_none() {
            self.obs_log = Some(Vec::new());
        }
    }

    /// Whether [`DramDevice::take_obs_into`] would return anything.
    pub fn has_obs(&self) -> bool {
        self.obs_log.as_ref().is_some_and(|l| !l.is_empty())
    }

    /// Drains the observability log into `out`, reusing the buffer.
    pub fn take_obs_into(&mut self, out: &mut Vec<ObsCommand>) {
        if let Some(l) = &mut self.obs_log {
            out.append(l);
        }
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    pub fn timing(&self) -> &TimingParams {
        &self.t
    }

    pub fn counters(&self) -> &ActivityCounters {
        &self.counters
    }

    /// Records the end-of-simulation cycle so utilization figures are
    /// meaningful, and folds in live power-down tallies.
    pub fn finish(&mut self, now: Cycle) {
        self.counters.elapsed_cycles = now;
        self.counters.data_bus_busy = self.channel.data_bus_busy_cycles();
        for (i, r) in self.ranks.iter().enumerate() {
            self.counters.rank_mut(i).powered_down_cycles = r.powered_down_cycles_at(now);
        }
    }

    /// The row currently open in `rank`/`bank`, if any.
    pub fn open_row(&self, rank: RankId, bank: BankId) -> Option<RowId> {
        self.ranks[rank.0 as usize].open_row(bank.0 as usize)
    }

    /// The struct-of-arrays bank state of `rank`, read-only. Queue-scan
    /// heavy schedulers classify pending transactions against the raw
    /// open-row and ready-cycle slices (one array load per entry) and
    /// use the ready cycles as sound *prefilters*: a bank whose own
    /// floor is still in the future cannot pass [`DramDevice::can_issue`]
    /// for that command class, so the full rank/channel validation can
    /// be skipped without changing any scheduling decision.
    pub fn banks_of(&self, rank: RankId) -> &crate::bank::BankArrays {
        self.ranks[rank.0 as usize].banks()
    }

    /// Rank-level legality floors `(precharge, activate, cas_read,
    /// cas_write)` for scheduler prefilters, each folding the rank's
    /// quiet floor (refresh recovery / power-up). All `Cycle::MAX`
    /// while the rank is powered down. Sound as *necessary* conditions
    /// only: a command whose floor is past `cycle` cannot pass
    /// [`DramDevice::can_issue`] there, but passing a floor does not
    /// imply legality (bank state, bank-group CCD, bus and same-cycle
    /// conflicts still apply).
    pub fn rank_floor_parts(&self, rank: RankId) -> (Cycle, Cycle, Cycle, Cycle) {
        match self.ranks[rank.0 as usize].event_bound_parts(&self.t) {
            Some((quiet, act, rd, wr)) => (quiet, quiet.max(act), quiet.max(rd), quiet.max(wr)),
            None => (Cycle::MAX, Cycle::MAX, Cycle::MAX, Cycle::MAX),
        }
    }

    /// True if the data bus admits a CAS of the given direction on
    /// `rank` issued at `cycle` — exact against [`DramDevice::can_issue`]'s
    /// burst-overlap and tRTRS rules (command-bus and rank/bank windows
    /// are *not* checked). The answer depends on the command only
    /// through its rank and direction, so schedulers can memoize one
    /// probe per (rank, direction) across a whole candidate scan.
    pub fn data_bus_admits(&self, is_read: bool, rank: RankId, cycle: Cycle) -> bool {
        self.channel.next_data_slot_for(is_read, rank, cycle, &self.t) == cycle
    }

    /// True if any bank on any rank holds an open row. Schedulers use
    /// this to decide whether a future refresh quiesce will have work
    /// (a precharge-all sweep) to do.
    pub fn any_open_row(&self) -> bool {
        self.ranks.iter().any(|rank| rank.banks().any_open())
    }

    /// Whether `rank` is currently powered down.
    pub fn is_powered_down(&self, rank: RankId) -> bool {
        matches!(self.ranks[rank.0 as usize].power_state(), PowerState::PoweredDown { .. })
    }

    /// True if every bank of `rank` is precharged and recovered at `cycle`.
    pub fn rank_idle(&self, rank: RankId, cycle: Cycle) -> bool {
        self.ranks[rank.0 as usize].all_banks_idle(cycle)
    }

    /// True if `rank`/`bank` could accept an `Activate` at `cycle`
    /// (bank idle, rank awake and not refreshing). Rank activation
    /// windows (tRRD/tFAW) and bus state are not checked — callers with
    /// precomputed schedules already guarantee those.
    pub fn rank_bank_ready(&self, rank: RankId, bank: BankId, cycle: Cycle) -> bool {
        self.ranks[rank.0 as usize].bank_ready(bank.0 as usize, cycle)
    }

    /// Earliest cycle at which `rank` accepts a column command of the
    /// given direction (tCCD / read-write turnaround windows). Schedulers
    /// use this to predict whether a transaction's CAS will issue on time.
    pub fn rank_next_cas_at(&self, rank: RankId, is_read: bool) -> Cycle {
        self.ranks[rank.0 as usize].next_cas_at(is_read)
    }

    /// Validates `cmd` at `cycle` against bank, rank and channel rules.
    pub fn can_issue(&self, cmd: &Command, cycle: Cycle) -> Result<(), Violation> {
        if cmd.rank.0 >= self.geom.ranks_per_channel() {
            return Err(Violation::state(*cmd, cycle, "rank out of range"));
        }
        if (cmd.kind.is_cas() || cmd.kind == CommandKind::Activate)
            && cmd.bank.0 >= self.geom.banks_per_rank()
        {
            return Err(Violation::state(*cmd, cycle, "bank out of range"));
        }
        if let Some(last) = self.last_issue {
            if cycle < last {
                return Err(Violation::state(*cmd, cycle, "commands issued out of order"));
            }
        }
        let rank = &self.ranks[cmd.rank.0 as usize];
        rank.can_issue(cmd, cycle, &self.t)?;
        if cmd.kind.is_cas() || matches!(cmd.kind, CommandKind::Activate | CommandKind::Precharge) {
            rank.banks().can_issue(cmd.bank.0 as usize, cmd, cycle, &self.t)?;
        } else if matches!(cmd.kind, CommandKind::PrechargeAll | CommandKind::Refresh) {
            for b in 0..rank.banks().len() {
                rank.banks().can_issue(b, cmd, cycle, &self.t)?;
            }
        }
        self.channel.can_issue(cmd, cycle, &self.t)
    }

    /// Issues `cmd` at `cycle`, validating first.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] if the command is illegal; the
    /// device state is unchanged in that case.
    pub fn issue(&mut self, cmd: &Command, cycle: Cycle) -> Result<IssueOutcome, Violation> {
        self.can_issue(cmd, cycle)?;
        self.apply_unchecked(cmd, cycle)
    }

    /// Applies a command *without* legality checks and *without* touching
    /// DRAM array activity counters beyond timing state.
    ///
    /// This implements FS energy optimisation 1 ("suppressed
    /// reads/writes"): the controller updates timing state *as if* the
    /// dummy command had issued, but the device does not spend array or
    /// bus energy. The command is still checked (a suppressed command
    /// must still be legal, or the pipeline math is wrong) and still
    /// recorded in the log, because the *schedule* is what security
    /// verification replays.
    pub fn issue_suppressed(
        &mut self,
        cmd: &Command,
        cycle: Cycle,
    ) -> Result<IssueOutcome, Violation> {
        self.can_issue(cmd, cycle)?;
        let rank_idx = cmd.rank.0 as usize;
        self.ranks[rank_idx].apply(cmd, cycle, &self.t);
        self.channel.apply(cmd, cycle, &self.t);
        self.last_issue = Some(cycle);
        if let Some(l) = &mut self.log {
            l.push(TimedCommand::new(*cmd, cycle));
        }
        if cmd.kind.is_cas() {
            self.counters.rank_mut(rank_idx).suppressed += 1;
        }
        let out = self.outcome(cmd, cycle);
        if let Some(l) = &mut self.obs_log {
            l.push(ObsCommand { cmd: *cmd, cycle, suppressed: true, data_done: out.data_done });
        }
        Ok(out)
    }

    fn apply_unchecked(&mut self, cmd: &Command, cycle: Cycle) -> Result<IssueOutcome, Violation> {
        let rank_idx = cmd.rank.0 as usize;
        self.ranks[rank_idx].apply(cmd, cycle, &self.t);
        self.channel.apply(cmd, cycle, &self.t);
        self.last_issue = Some(cycle);
        let rc = self.counters.rank_mut(rank_idx);
        match cmd.kind {
            CommandKind::Activate => rc.activates += 1,
            CommandKind::Read | CommandKind::ReadAp => rc.reads += 1,
            CommandKind::Write | CommandKind::WriteAp => rc.writes += 1,
            CommandKind::Precharge | CommandKind::PrechargeAll => rc.precharges += 1,
            CommandKind::Refresh => rc.refreshes += 1,
            _ => {}
        }
        if let Some(l) = &mut self.log {
            l.push(TimedCommand::new(*cmd, cycle));
        }
        let out = self.outcome(cmd, cycle);
        if let Some(l) = &mut self.obs_log {
            l.push(ObsCommand { cmd: *cmd, cycle, suppressed: false, data_done: out.data_done });
        }
        Ok(out)
    }

    fn outcome(&self, cmd: &Command, cycle: Cycle) -> IssueOutcome {
        let data_done = if cmd.kind.is_read() {
            Some(cycle + (self.t.t_cas + self.t.t_burst) as Cycle)
        } else if cmd.kind.is_write() {
            Some(cycle + (self.t.t_cwd + self.t.t_burst) as Cycle)
        } else {
            None
        };
        IssueOutcome { data_done }
    }

    /// Earliest cycle >= `from` at which `cmd` becomes legal, found by
    /// linear scan up to `limit` cycles ahead (schedulers use this for
    /// planning; FS never needs it because its schedule is precomputed).
    pub fn earliest_issue(&self, cmd: &Command, from: Cycle, limit: Cycle) -> Option<Cycle> {
        (from..from + limit).find(|&c| self.can_issue(cmd, c).is_ok())
    }

    /// The cycle of the most recent command on this channel, if any
    /// (simulators use this to detect no-op controller ticks).
    pub fn last_issue_at(&self) -> Option<Cycle> {
        self.last_issue
    }

    /// Constant-time *lower bound* on the first cycle `>= from` at which
    /// `cmd` could pass [`DramDevice::can_issue`], assuming no further
    /// commands issue in the meantime: the maximum of every bank- and
    /// rank-level window (tRC, tRCD, tRAS, tRRD, tFAW, CAS turnarounds,
    /// refresh recovery, power-down) and, for CAS commands, the first
    /// data-bus slot clearing the scheduled bursts and tRTRS gaps.
    /// `Cycle::MAX` when only another command could ever make `cmd`
    /// legal (wrong row open, rank powered down). Event-driven
    /// schedulers use this to advertise their next possible issue cycle
    /// without scanning.
    pub fn next_legal_at(&self, cmd: &Command, from: Cycle) -> Cycle {
        self.channel_legal_at(cmd, self.rank_level_next_legal_at(cmd, from))
    }

    /// The rank- and bank-level component of
    /// [`DramDevice::next_legal_at`]: the same lower bound *before*
    /// channel (data-bus, command-bus) constraints apply. Cheap — a
    /// handful of window comparisons, no data-bus scan.
    ///
    /// For a fixed rank and CAS direction, [`DramDevice::channel_legal_at`]
    /// is one shared monotone function of this value, so a scheduler
    /// minimising over many same-class candidates can take the minimum
    /// of this bound across them and pay for a single channel scan:
    /// the candidate with the smallest pre-channel bound also achieves
    /// the smallest full legality cycle.
    pub fn rank_level_next_legal_at(&self, cmd: &Command, from: Cycle) -> Cycle {
        self.ranks[cmd.rank.0 as usize].next_legal_at(cmd, &self.t).max(from)
    }

    /// Fused candidate scan for event-driven schedulers: a lower bound
    /// on the first cycle `>= from` at which *any* command in the given
    /// candidate classes could pass [`DramDevice::can_issue`], assuming
    /// no further commands issue in the meantime. Equivalent to taking
    /// the minimum of [`DramDevice::next_legal_at`] over one
    /// representative command per set bit, but with direct state access
    /// and a single data-bus scan per populated (rank, direction) —
    /// within a class the bank-level term is the only one that varies,
    /// and the channel completion is one shared monotone function per
    /// (rank, direction), so each minimum is achieved by the bank with
    /// the smallest pre-channel bound.
    ///
    /// Masks are rank-major per-bank bitmasks
    /// (`bit = rank * banks_per_rank + bank`; geometries wider than 128
    /// banks must fall back to per-command [`DramDevice::next_legal_at`])
    /// and each set bit's class must match the bank's row-buffer state:
    /// `read_cas`/`write_cas` bits require the target row to be open,
    /// `pre` bits an open bank, `act` bits a closed bank.
    pub fn next_event_bound(
        &self,
        from: Cycle,
        read_cas: u128,
        write_cas: u128,
        pre: u128,
        act: u128,
    ) -> Cycle {
        let bpr = self.geometry().banks_per_rank() as u32;
        let width = if bpr >= 128 { u128::MAX } else { (1u128 << bpr) - 1 };
        let bump = |at: Cycle| if self.last_issue == Some(at) { at + 1 } else { at };
        let min_over = |mask: u128, f: &dyn Fn(usize) -> Cycle| {
            let (mut best, mut m) = (Cycle::MAX, mask);
            while m != 0 {
                best = best.min(f(m.trailing_zeros() as usize));
                m &= m - 1;
            }
            best
        };
        let mut next = Cycle::MAX;
        for (r, rank) in self.ranks.iter().enumerate() {
            let shift = r as u32 * bpr;
            let rd = (read_cas >> shift) & width;
            let wr = (write_cas >> shift) & width;
            let pr = (pre >> shift) & width;
            let ac = (act >> shift) & width;
            if rd | wr | pr | ac == 0 {
                continue;
            }
            let Some((quiet, act_floor, next_read, next_write)) = rank.event_bound_parts(&self.t)
            else {
                continue; // powered down: no candidate class applies
            };
            let banks = rank.banks();
            for (mask, is_read) in [(rd, true), (wr, false)] {
                if mask == 0 {
                    continue;
                }
                // Per-bank CAS readiness must fold in the bank group's
                // tCCD_L floor, or grouped parts (DDR4/HBM) would report
                // a bound below the first legal cycle and the fast path
                // would diverge from per-cycle stepping. The readiness
                // array is contiguous (SoA), so this walk stays within
                // one or two cache lines per rank.
                let cas = banks.next_cas_slice();
                let best = min_over(mask, &|b| cas[b].max(rank.cas_group_floor(b, is_read)));
                let turn = if is_read { next_read } else { next_write };
                let at = quiet.max(turn).max(best).max(from);
                if at != Cycle::MAX {
                    let slot =
                        self.channel.next_data_slot_for(is_read, RankId(r as u8), at, &self.t);
                    next = next.min(bump(slot));
                }
            }
            if pr != 0 {
                let pre_ready = banks.next_precharge_slice();
                let best = min_over(pr, &|b| pre_ready[b]);
                next = next.min(bump(quiet.max(best).max(from)));
            }
            if ac != 0 {
                let act_ready = banks.next_activate_slice();
                let best = min_over(ac, &|b| act_ready[b]);
                next = next.min(bump(quiet.max(act_floor).max(best).max(from)));
            }
            if next <= from {
                return from;
            }
        }
        next
    }

    /// Channel-level completion of
    /// [`DramDevice::rank_level_next_legal_at`]: for every `cmd` and
    /// `from`, `next_legal_at(cmd, from)` equals
    /// `channel_legal_at(cmd, rank_level_next_legal_at(cmd, from))`.
    /// Monotone non-decreasing in `at`; depends on `cmd` only through
    /// its rank and CAS direction.
    pub fn channel_legal_at(&self, cmd: &Command, at: Cycle) -> Cycle {
        if at == Cycle::MAX {
            return at;
        }
        let at = self.channel.next_data_slot_at(cmd, at, &self.t);
        // Command bus: one command per cycle.
        if self.last_issue == Some(at) {
            at + 1
        } else {
            at
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::TimingChecker;
    use crate::geometry::ColId;

    fn dev() -> DramDevice {
        DramDevice::new(Geometry::paper_default(), TimingParams::ddr3_1600())
    }

    #[test]
    fn read_transaction_data_timing() {
        let mut d = dev();
        d.issue(&Command::activate(RankId(0), BankId(0), RowId(1)), 0).unwrap();
        let out = d.issue(&Command::read_ap(RankId(0), BankId(0), RowId(1), ColId(0)), 11).unwrap();
        assert_eq!(out.data_done, Some(11 + 11 + 4));
    }

    #[test]
    fn illegal_issue_leaves_state_unchanged() {
        let mut d = dev();
        d.issue(&Command::activate(RankId(0), BankId(0), RowId(1)), 0).unwrap();
        let early = Command::read_ap(RankId(0), BankId(0), RowId(1), ColId(0));
        assert!(d.issue(&early, 5).is_err());
        // Still legal at the proper time: the failed issue did not corrupt
        // bank state.
        assert!(d.issue(&early, 11).is_ok());
    }

    #[test]
    fn recorded_log_passes_checker() {
        let mut d = dev();
        d.record_commands();
        let mut c = 0;
        for i in 0..8u8 {
            let act = Command::activate(RankId(i), BankId(0), RowId(1));
            c = d.earliest_issue(&act, c, 1000).unwrap();
            d.issue(&act, c).unwrap();
            let rd = Command::read_ap(RankId(i), BankId(0), RowId(1), ColId(0));
            c = d.earliest_issue(&rd, c, 1000).unwrap();
            d.issue(&rd, c).unwrap();
        }
        let log = d.take_log();
        assert_eq!(log.len(), 16);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        assert!(checker.verify(&log).is_ok(), "{:?}", checker.check(&log));
    }

    #[test]
    fn counters_track_commands() {
        let mut d = dev();
        d.issue(&Command::activate(RankId(2), BankId(0), RowId(1)), 0).unwrap();
        d.issue(&Command::write_ap(RankId(2), BankId(0), RowId(1), ColId(0)), 11).unwrap();
        assert_eq!(d.counters().rank(2).activates, 1);
        assert_eq!(d.counters().rank(2).writes, 1);
        assert_eq!(d.counters().total_reads(), 0);
    }

    #[test]
    fn suppressed_issue_counts_separately_but_blocks_timing() {
        let mut d = dev();
        d.issue(&Command::activate(RankId(0), BankId(0), RowId(1)), 0).unwrap();
        d.issue_suppressed(&Command::read_ap(RankId(0), BankId(0), RowId(1), ColId(0)), 11)
            .unwrap();
        assert_eq!(d.counters().rank(0).reads, 0);
        assert_eq!(d.counters().rank(0).suppressed, 1);
        // Timing state advanced: the bank is auto-precharging, so an
        // activate at cycle 12 is illegal exactly as for a real read.
        assert!(d.can_issue(&Command::activate(RankId(0), BankId(0), RowId(2)), 12).is_err());
    }

    #[test]
    fn obs_log_mirrors_issues_with_outcomes() {
        let mut d = dev();
        assert!(!d.has_obs());
        d.record_obs();
        d.issue(&Command::activate(RankId(0), BankId(0), RowId(1)), 0).unwrap();
        d.issue(&Command::read_ap(RankId(0), BankId(0), RowId(1), ColId(0)), 11).unwrap();
        d.issue(&Command::activate(RankId(1), BankId(0), RowId(2)), 12).unwrap();
        d.issue_suppressed(&Command::read_ap(RankId(1), BankId(0), RowId(2), ColId(0)), 23)
            .unwrap();
        assert!(d.has_obs());
        let mut obs = Vec::new();
        d.take_obs_into(&mut obs);
        assert_eq!(obs.len(), 4);
        assert_eq!(obs[0].cycle, 0);
        assert_eq!(obs[0].data_done, None);
        assert_eq!(obs[1].data_done, Some(11 + 11 + 4));
        assert!(!obs[1].suppressed);
        assert!(obs[3].suppressed);
        assert_eq!(obs[3].data_done, Some(23 + 11 + 4));
        // Drained; recording stays on.
        assert!(!d.has_obs());
        d.issue(&Command::precharge(RankId(0), BankId(0)), 40).unwrap();
        assert!(d.has_obs());
        // The regular checker log is untouched by obs recording.
        assert!(!d.is_recording());
    }

    #[test]
    fn out_of_order_issue_rejected() {
        let mut d = dev();
        d.issue(&Command::activate(RankId(0), BankId(0), RowId(1)), 50).unwrap();
        let v = d.issue(&Command::activate(RankId(1), BankId(0), RowId(1)), 49).unwrap_err();
        assert!(v.to_string().contains("out of order"));
    }

    #[test]
    fn rank_out_of_range_rejected() {
        let d = dev();
        let cmd = Command::activate(RankId(8), BankId(0), RowId(0));
        assert!(d.can_issue(&cmd, 0).is_err());
    }

    #[test]
    fn earliest_issue_finds_trcd_boundary() {
        let mut d = dev();
        d.issue(&Command::activate(RankId(0), BankId(0), RowId(1)), 0).unwrap();
        let rd = Command::read_ap(RankId(0), BankId(0), RowId(1), ColId(0));
        assert_eq!(d.earliest_issue(&rd, 0, 100), Some(11));
    }
}
