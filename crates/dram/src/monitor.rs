//! Online (incremental) timing-legality monitor.
//!
//! [`StreamMonitor`] enforces the same DDR3 rule set as
//! [`crate::checker::TimingChecker`], but one command at a time, as the
//! stream is produced, instead of replaying a finished log. It is the
//! witness half of a continuously-enforced invariant: a controller wired
//! through the monitor cannot issue an illegal command *silently* — the
//! violation is flagged on the cycle it happens, with the offending command
//! attached.
//!
//! The monitor expects commands in non-decreasing cycle order (the order a
//! [`crate::device::DramDevice`] command log is appended in). State updates
//! are applied even for violating commands, mirroring the checker, so one
//! bad command does not cascade into spurious follow-on reports.
//!
//! Rule-for-rule agreement with the batch checker is pinned by differential
//! tests: on any stream, the monitor flags a violation if and only if the
//! checker does. (The two may attribute an illegal stream to different
//! constraint names when several rules are broken at once — e.g. an
//! out-of-order pair of transfers reads as an overlap online but as a
//! turnaround violation in the sorted replay — but legality itself always
//! agrees.)

use crate::checker::Violation;
use crate::command::{CommandKind, TimedCommand};
use crate::geometry::{BankId, Geometry, RankId, RowId};
use crate::timing::TimingParams;
use crate::Cycle;
use std::collections::HashMap;
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, Default)]
struct BankTrack {
    open_row: Option<RowId>,
    act_at: Option<Cycle>,
    last_read: Option<Cycle>,
    last_write: Option<Cycle>,
    pre_start: Option<Cycle>,
}

#[derive(Debug, Clone, Copy, Default)]
struct RankTrack {
    refresh_until: Cycle,
    powered_down: bool,
    wake_at: Cycle,
}

/// Incremental DDR3 rule checker over a live command stream.
#[derive(Debug, Clone)]
pub struct StreamMonitor {
    geom: Geometry,
    t: TimingParams,
    /// Cycle of the most recently observed command (command-bus rule).
    last_cmd_cycle: Option<Cycle>,
    /// Upcoming data-bus bursts within the interaction horizon:
    /// (start, end, rank). A list, not just the latest burst — data
    /// transfers are scheduled into the future at CAS time, and on parts
    /// with a deep read latency (LPDDR4, HBM2) a later write CAS can
    /// legally place its burst entirely *before* a pending read burst,
    /// which a latest-only model would misreport as an overlap.
    transfers: Vec<(Cycle, Cycle, RankId)>,
    banks: HashMap<(RankId, BankId), BankTrack>,
    /// Per-rank cycles of the last four activates (tRRD / tFAW window).
    acts: HashMap<RankId, VecDeque<Cycle>>,
    /// Per-rank last CAS: (cycle, is_read).
    last_cas: HashMap<RankId, (Cycle, bool)>,
    /// Last same-type CAS per (rank, bank group, is_read) for tCCD_L;
    /// only populated on bank-grouped geometries so flat parts keep
    /// identical violation streams.
    last_group_cas: HashMap<(RankId, u8, bool), Cycle>,
    ranks: HashMap<RankId, RankTrack>,
    /// Per-rank cycle of the last observed refresh (index = rank id).
    /// Cycle 0 counts as refreshed: a device starts from a clean array.
    last_refresh: Vec<Cycle>,
    /// Pruning floor `min(tCAS, tCWD)`, hoisted from the profile at
    /// construction (mirrors [`crate::channel::ChannelState`]).
    min_cas_lat: Cycle,
    observed: u64,
    flagged: u64,
}

impl StreamMonitor {
    pub fn new(geom: Geometry, t: TimingParams) -> Self {
        let ranks = geom.ranks_per_channel() as usize;
        StreamMonitor {
            geom,
            t,
            last_cmd_cycle: None,
            transfers: Vec::new(),
            banks: HashMap::new(),
            acts: HashMap::new(),
            last_cas: HashMap::new(),
            last_group_cas: HashMap::new(),
            ranks: HashMap::new(),
            last_refresh: vec![0; ranks],
            min_cas_lat: t.t_cas.min(t.t_cwd) as Cycle,
            observed: 0,
            flagged: 0,
        }
    }

    /// Commands observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Violations flagged so far.
    pub fn flagged(&self) -> u64 {
        self.flagged
    }

    /// The cycle at which `rank` was last refreshed (0 if never).
    ///
    /// Exposed so a higher layer can enforce refresh *deadlines* — a
    /// liveness property the per-command rules cannot see.
    pub fn last_refresh(&self, rank: RankId) -> Cycle {
        self.last_refresh.get(rank.0 as usize).copied().unwrap_or(0)
    }

    /// Feeds one command through every rule family, returning all
    /// violations it triggers (empty for a legal command).
    pub fn observe(&mut self, tc: &TimedCommand) -> Vec<Violation> {
        let mut out = Vec::new();
        self.observed += 1;
        let c = tc.cycle;
        let cmd = tc.cmd;

        // Rule: one command per cycle on the command bus.
        if self.last_cmd_cycle == Some(c) {
            out.push(Violation::state(cmd, c, "command-bus collision"));
        }
        if self.last_cmd_cycle.is_none_or(|prev| c >= prev) {
            self.last_cmd_cycle = Some(c);
        }

        // Rank-level rules: tRFC exclusion and power-down state.
        let r = self.ranks.entry(cmd.rank).or_default();
        match cmd.kind {
            CommandKind::Refresh => {
                if c < r.refresh_until {
                    out.push(Violation::too_early(cmd, c, r.refresh_until, "tRFC"));
                }
                r.refresh_until = c + self.t.t_rfc as Cycle;
                if let Some(slot) = self.last_refresh.get_mut(cmd.rank.0 as usize) {
                    *slot = c;
                }
            }
            CommandKind::PowerDownEnter => {
                if r.powered_down {
                    out.push(Violation::state(cmd, c, "already powered down"));
                }
                r.powered_down = true;
            }
            CommandKind::PowerDownExit => {
                if !r.powered_down {
                    out.push(Violation::state(cmd, c, "power-up of an active rank"));
                }
                r.powered_down = false;
                r.wake_at = c + self.t.t_xp as Cycle;
            }
            _ => {
                if c < r.refresh_until {
                    out.push(Violation::too_early(cmd, c, r.refresh_until, "command during tRFC"));
                }
                if r.powered_down {
                    out.push(Violation::state(cmd, c, "command to a powered-down rank"));
                } else if c < r.wake_at {
                    out.push(Violation::too_early(cmd, c, r.wake_at, "tXP power-down exit"));
                }
            }
        }

        // Bank-state rules: row state, tRC, tRCD, tRAS, tRTP, tWR, tRP.
        match cmd.kind {
            CommandKind::Activate => {
                let b = self.banks.entry((cmd.rank, cmd.bank)).or_default();
                if b.open_row.is_some() {
                    out.push(Violation::state(cmd, c, "activate while a row is open"));
                }
                if let Some(p) = b.pre_start {
                    if c < p + self.t.t_rp as Cycle {
                        out.push(Violation::too_early(cmd, c, p + self.t.t_rp as Cycle, "tRP"));
                    }
                }
                if let Some(a) = b.act_at {
                    if c < a + self.t.t_rc as Cycle {
                        out.push(Violation::too_early(cmd, c, a + self.t.t_rc as Cycle, "tRC"));
                    }
                }
                b.open_row = Some(cmd.row);
                b.act_at = Some(c);
                b.last_read = None;
                b.last_write = None;
                b.pre_start = None;

                // Rank-level activate spacing: tRRD and the tFAW window.
                let acts = self.acts.entry(cmd.rank).or_default();
                if let Some(&prev) = acts.back() {
                    if c < prev + self.t.t_rrd as Cycle {
                        out.push(Violation::too_early(
                            cmd,
                            c,
                            prev + self.t.t_rrd as Cycle,
                            "tRRD",
                        ));
                    }
                }
                if acts.len() == 4 {
                    let oldest = acts[0];
                    if c < oldest + self.t.t_faw as Cycle {
                        out.push(Violation::too_early(
                            cmd,
                            c,
                            oldest + self.t.t_faw as Cycle,
                            "tFAW",
                        ));
                    }
                    acts.pop_front();
                }
                acts.push_back(c);
            }
            k if k.is_cas() => {
                let b = self.banks.entry((cmd.rank, cmd.bank)).or_default();
                match b.open_row {
                    None => out.push(Violation::state(cmd, c, "CAS on a closed bank")),
                    Some(row) if row != cmd.row => {
                        out.push(Violation::state(cmd, c, "CAS to a row that is not open"))
                    }
                    Some(_) => {
                        let a = b.act_at.unwrap_or(0);
                        if c < a + self.t.t_rcd as Cycle {
                            out.push(Violation::too_early(
                                cmd,
                                c,
                                a + self.t.t_rcd as Cycle,
                                "tRCD",
                            ));
                        }
                    }
                }
                if k.is_read() {
                    b.last_read = Some(c);
                } else {
                    b.last_write = Some(c);
                }
                if k.has_auto_precharge() {
                    let recovery = if k.is_read() {
                        c + self.t.t_rtp as Cycle
                    } else {
                        c + self.t.write_ap_pre_offset() as Cycle
                    };
                    let ras_done = b.act_at.unwrap_or(0) + self.t.t_ras as Cycle;
                    b.pre_start = Some(recovery.max(ras_done));
                    b.open_row = None;
                }

                // Same-rank CAS-to-CAS spacing.
                if let Some(&(prev, prev_read)) = self.last_cas.get(&cmd.rank) {
                    let (min_gap, name): (u32, &'static str) = match (prev_read, k.is_read()) {
                        (true, true) | (false, false) => (self.t.t_ccd, "tCCD"),
                        (true, false) => (self.t.rd_to_wr_same_rank(), "read-to-write turnaround"),
                        (false, true) => (self.t.wr_to_rd_same_rank(), "tWTR write-to-read"),
                    };
                    if c < prev + min_gap as Cycle {
                        out.push(Violation::too_early(cmd, c, prev + min_gap as Cycle, name));
                    }
                }
                self.last_cas.insert(cmd.rank, (c, k.is_read()));

                // Same-bank-group same-type spacing (tCCD_L), only on
                // grouped parts — mirrors the batch checker exactly.
                if self.geom.bank_groups() > 1 {
                    let key = (cmd.rank, self.geom.bank_group_of(cmd.bank), k.is_read());
                    if let Some(&prev) = self.last_group_cas.get(&key) {
                        if c < prev + self.t.t_ccd_l as Cycle {
                            out.push(Violation::too_early(
                                cmd,
                                c,
                                prev + self.t.t_ccd_l as Cycle,
                                "tCCD_L same bank group",
                            ));
                        }
                    }
                    self.last_group_cas.insert(key, c);
                }

                // Data-bus occupancy: bursts never overlap, and cross-rank
                // bursts keep a tRTRS gap — against *every* burst still in
                // the interaction horizon, mirroring the channel model.
                let lat = if k.is_read() { self.t.t_cas } else { self.t.t_cwd };
                let start = c + lat as Cycle;
                let end = start + self.t.t_burst as Cycle;
                for &(tr_start, tr_end, tr_rank) in &self.transfers {
                    if start < tr_end && tr_start < end {
                        out.push(Violation::state(cmd, c, "data-bus overlap"));
                    } else if tr_rank != cmd.rank {
                        let gap = self.t.t_rtrs as Cycle;
                        if start < tr_end + gap && tr_start < end + gap {
                            out.push(Violation::state(cmd, c, "tRTRS rank-to-rank data gap"));
                        }
                    }
                }
                self.transfers.push((start, end, cmd.rank));
                // Any later CAS arrives at `c + 1` or after, so its burst
                // starts at `c + 1 + min(tCAS, tCWD)` at the earliest;
                // bursts whose tRTRS-widened window ends before that can
                // never conflict again (same pruning as `ChannelState`).
                let horizon = c + 1 + self.min_cas_lat;
                let gap = self.t.t_rtrs as Cycle;
                self.transfers.retain(|&(_, tr_end, _)| tr_end + gap >= horizon);
            }
            CommandKind::Precharge | CommandKind::PrechargeAll => {
                let bank_ids: Vec<BankId> = if cmd.kind == CommandKind::PrechargeAll {
                    (0..self.geom.banks_per_rank()).map(BankId).collect()
                } else {
                    vec![cmd.bank]
                };
                for bank in bank_ids {
                    let b = self.banks.entry((cmd.rank, bank)).or_default();
                    if b.open_row.is_none() {
                        continue; // precharging a closed bank is a NOP
                    }
                    let a = b.act_at.unwrap_or(0);
                    if c < a + self.t.t_ras as Cycle {
                        out.push(Violation::too_early(cmd, c, a + self.t.t_ras as Cycle, "tRAS"));
                    }
                    if let Some(rd) = b.last_read {
                        if c < rd + self.t.t_rtp as Cycle {
                            out.push(Violation::too_early(
                                cmd,
                                c,
                                rd + self.t.t_rtp as Cycle,
                                "tRTP",
                            ));
                        }
                    }
                    if let Some(w) = b.last_write {
                        let rec = w + self.t.write_ap_pre_offset() as Cycle;
                        if c < rec {
                            out.push(Violation::too_early(cmd, c, rec, "write recovery (tWR)"));
                        }
                    }
                    b.pre_start = Some(c);
                    b.open_row = None;
                }
            }
            CommandKind::Refresh => {
                for bank in 0..self.geom.banks_per_rank() {
                    let b = self.banks.entry((cmd.rank, BankId(bank))).or_default();
                    if b.open_row.is_some() {
                        out.push(Violation::state(cmd, c, "refresh with a row open"));
                    }
                    if let Some(p) = b.pre_start {
                        if c < p + self.t.t_rp as Cycle {
                            out.push(Violation::too_early(
                                cmd,
                                c,
                                p + self.t.t_rp as Cycle,
                                "tRP before REF",
                            ));
                        }
                    }
                    // The rank is unusable for tRFC; model as a pending
                    // precharge completing at REF + tRFC - tRP so that the
                    // tRP rule enforces it (same trick as the checker).
                    b.pre_start = Some(c + (self.t.t_rfc - self.t.t_rp) as Cycle);
                    b.act_at = None;
                }
            }
            _ => {}
        }

        self.flagged += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::TimingChecker;
    use crate::command::Command;
    use crate::geometry::ColId;

    fn monitor() -> StreamMonitor {
        StreamMonitor::new(Geometry::paper_default(), TimingParams::ddr3_1600())
    }

    fn checker() -> TimingChecker {
        TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600())
    }

    fn feed(mon: &mut StreamMonitor, cmds: &[TimedCommand]) -> Vec<Violation> {
        cmds.iter().flat_map(|tc| mon.observe(tc)).collect()
    }

    fn tc(cmd: Command, cycle: Cycle) -> TimedCommand {
        TimedCommand::new(cmd, cycle)
    }

    #[test]
    fn legal_read_stream_is_clean() {
        let cmds = [
            tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0),
            tc(Command::read_ap(RankId(0), BankId(0), RowId(5), ColId(0)), 11),
            tc(Command::activate(RankId(0), BankId(1), RowId(5)), 17),
            tc(Command::read_ap(RankId(0), BankId(1), RowId(5), ColId(0)), 28),
        ];
        let mut mon = monitor();
        assert!(feed(&mut mon, &cmds).is_empty());
        assert_eq!(mon.observed(), 4);
        assert_eq!(mon.flagged(), 0);
    }

    #[test]
    fn early_cas_flagged_online() {
        let mut mon = monitor();
        assert!(mon.observe(&tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0)).is_empty());
        let vs = mon.observe(&tc(Command::read_ap(RankId(0), BankId(0), RowId(5), ColId(0)), 10));
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].constraint, "tRCD");
        assert_eq!(vs[0].earliest, Some(11));
    }

    #[test]
    fn refresh_updates_last_refresh_and_blocks_rank() {
        let mut mon = monitor();
        assert!(mon.observe(&tc(Command::refresh(RankId(1)), 100)).is_empty());
        assert_eq!(mon.last_refresh(RankId(1)), 100);
        assert_eq!(mon.last_refresh(RankId(0)), 0);
        let vs = mon.observe(&tc(Command::activate(RankId(1), BankId(0), RowId(1)), 200));
        assert!(vs.iter().any(|v| v.constraint == "command during tRFC"), "{vs:?}");
    }

    #[test]
    fn state_updates_survive_violations() {
        // A too-early second activate still replaces the open row, so the
        // follow-up CAS to the *new* row is judged against the new state.
        let mut mon = monitor();
        mon.observe(&tc(Command::activate(RankId(0), BankId(0), RowId(1)), 0));
        let vs = mon.observe(&tc(Command::activate(RankId(0), BankId(0), RowId(2)), 5));
        assert!(vs.iter().any(|v| v.constraint == "activate while a row is open"));
        let vs = mon.observe(&tc(Command::read_ap(RankId(0), BankId(0), RowId(2), ColId(0)), 16));
        assert!(vs.is_empty(), "{vs:?}");
    }

    /// Tiny deterministic LCG so the differential test needs no RNG crate.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Rotating ACT/CAS transactions that are legal when undisturbed; half
    /// the streams get backward jitter and stray refreshes injected so the
    /// corpus exercises both sides of the legality predicate.
    fn random_stream(rng: &mut Lcg, txns: usize) -> Vec<TimedCommand> {
        let chaotic = rng.below(2) == 1;
        let mut out = Vec::new();
        let mut t: Cycle = 20;
        let mut last: Cycle = 0;
        let mut push = |cmd: Command, cycle: Cycle, last: &mut Cycle| {
            let c = cycle.max(*last);
            *last = c;
            out.push(tc(cmd, c));
        };
        for i in 0..txns {
            let rank = RankId((i % 2) as u8);
            let bank = BankId(((i / 2) % 4) as u8);
            let row = RowId((i % 3) as u32);
            if chaotic && rng.below(10) == 0 {
                push(Command::refresh(rank), t + rng.below(8), &mut last);
                t += 208 + rng.below(16);
            }
            let jitter =
                |rng: &mut Lcg| if chaotic && rng.below(4) == 0 { rng.below(6) } else { 0 };
            let act_c = t.saturating_sub(jitter(rng));
            push(Command::activate(rank, bank, row), act_c, &mut last);
            let cas_c = (t + 11).saturating_sub(jitter(rng));
            let cas = if rng.below(4) == 0 {
                Command::write_ap(rank, bank, row, ColId(0))
            } else {
                Command::read_ap(rank, bank, row, ColId(0))
            };
            push(cas, cas_c, &mut last);
            t += 17 + rng.below(4);
        }
        out
    }

    /// The online monitor and the batch checker agree on *legality* for
    /// arbitrary streams: one flags a violation iff the other does.
    #[test]
    fn differential_agreement_with_batch_checker() {
        let chk = checker();
        let mut rng = Lcg(0x5EED_CAFE);
        let mut illegal = 0usize;
        for case in 0..300 {
            let stream = random_stream(&mut rng, 24);
            let batch = chk.check(&stream);
            let mut mon = monitor();
            let online = feed(&mut mon, &stream);
            assert_eq!(
                batch.is_empty(),
                online.is_empty(),
                "case {case}: checker={batch:?} monitor={online:?} stream={stream:?}"
            );
            if !batch.is_empty() {
                illegal += 1;
            }
        }
        // The generator must actually exercise both sides of the predicate.
        assert!(illegal > 30, "only {illegal} illegal streams generated");
        assert!(illegal < 270, "only {} legal streams generated", 300 - illegal);
    }

    #[test]
    fn same_group_cas_flagged_online_on_ddr4() {
        let geom = Geometry::with_bank_groups(1, 8, 16, 4, 32768, 128);
        let t = TimingParams::ddr4_2400();
        let mut mon = StreamMonitor::new(geom, t);
        mon.observe(&tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0));
        mon.observe(&tc(Command::activate(RankId(0), BankId(4), RowId(5)), t.t_rrd as Cycle));
        mon.observe(&tc(Command::activate(RankId(0), BankId(1), RowId(5)), 2 * t.t_rrd as Cycle));
        assert_eq!(mon.flagged(), 0);
        // Cross-group read at tCCD_S after the bank-1 read is clean.
        let vs = mon.observe(&tc(Command::read_ap(RankId(0), BankId(1), RowId(5), ColId(0)), 56));
        assert!(vs.is_empty(), "{vs:?}");
        let vs = mon.observe(&tc(
            Command::read_ap(RankId(0), BankId(0), RowId(5), ColId(0)),
            56 + t.t_ccd as Cycle,
        ));
        assert!(vs.is_empty(), "{vs:?}");
        // Same-group read only tCCD_S after the bank-0 read: flagged.
        let vs = mon.observe(&tc(
            Command::read_ap(RankId(0), BankId(4), RowId(5), ColId(0)),
            56 + 2 * t.t_ccd as Cycle,
        ));
        assert!(vs.iter().any(|v| v.constraint == "tCCD_L same bank group"), "{vs:?}");
    }

    /// The monitor/checker legality agreement also holds on a
    /// bank-grouped (DDR4) geometry, where both enforce tCCD_L.
    #[test]
    fn differential_agreement_on_ddr4_geometry() {
        let geom = Geometry::with_bank_groups(1, 8, 16, 4, 32768, 128);
        let t = TimingParams::ddr4_2400();
        let chk = TimingChecker::new(geom, t);
        let mut rng = Lcg(0xDD44_2400);
        for case in 0..200 {
            let stream = random_stream(&mut rng, 24);
            let batch = chk.check(&stream);
            let mut mon = StreamMonitor::new(geom, t);
            let online = feed(&mut mon, &stream);
            assert_eq!(
                batch.is_empty(),
                online.is_empty(),
                "case {case}: checker={batch:?} monitor={online:?} stream={stream:?}"
            );
        }
    }

    /// On streams that are legal per the batch checker, the monitor agrees
    /// violation-for-violation (both empty), including across refreshes.
    #[test]
    fn legal_multi_rank_stream_with_refresh() {
        let cmds = [
            tc(Command::activate(RankId(0), BankId(0), RowId(5)), 0),
            tc(Command::activate(RankId(1), BankId(0), RowId(5)), 1),
            tc(Command::read_ap(RankId(0), BankId(0), RowId(5), ColId(0)), 12),
            tc(Command::read_ap(RankId(1), BankId(0), RowId(5), ColId(0)), 18),
            tc(Command::refresh(RankId(0)), 60),
            tc(Command::activate(RankId(0), BankId(0), RowId(6)), 268),
            tc(Command::read_ap(RankId(0), BankId(0), RowId(6), ColId(0)), 279),
        ];
        assert!(checker().verify(&cmds).is_ok());
        let mut mon = monitor();
        assert!(feed(&mut mon, &cmds).is_empty());
    }
}
