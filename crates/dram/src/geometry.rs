//! Device geometry: identifiers and the channel/rank/bank/row/column shape.

use std::fmt;

/// Identifies a memory channel (each channel has its own controller,
/// command bus and data bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelId(pub u8);

/// Identifies a rank within a channel. A rank is a set of DRAM chips that
/// operate in unison to serve one cache-line transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RankId(pub u8);

/// Identifies a bank within a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(pub u8);

/// Identifies a DRAM row within a bank (the unit cached by the row buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(pub u32);

/// Identifies a column (cache-line slot) within a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ColId(pub u16);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}
impl fmt::Display for RankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A cache-line-granularity physical address (byte address >> 6 for the
/// 64-byte lines used throughout the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Byte address of the start of this line (64-byte lines).
    pub fn byte_addr(self) -> u64 {
        self.0 << 6
    }

    /// Line address containing the given byte address.
    pub fn from_byte_addr(addr: u64) -> Self {
        LineAddr(addr >> 6)
    }
}

/// A fully decoded DRAM location for one cache-line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Location {
    pub channel: ChannelId,
    pub rank: RankId,
    pub bank: BankId,
    pub row: RowId,
    pub col: ColId,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/row{}/col{}",
            self.channel, self.rank, self.bank, self.row.0, self.col.0
        )
    }
}

/// The channel/rank/bank/row/column shape of the memory system.
///
/// All counts must be powers of two; [`Geometry::new`] validates this so the
/// bit-slicing address mappings in [`crate::mapping`] are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    channels: u8,
    ranks_per_channel: u8,
    banks_per_rank: u8,
    /// Bank groups per rank; 1 for generations without bank groups
    /// (DDR3, LPDDR4). Bank `b` belongs to group `b % bank_groups`, so
    /// consecutive bank ids interleave across groups — the arrangement
    /// DDR4 controllers exploit to stay on the short tCCD_S spacing.
    bank_groups: u8,
    rows_per_bank: u32,
    cols_per_row: u16,
}

impl Geometry {
    /// Creates a geometry without bank groups, validating that every
    /// dimension is a non-zero power of two.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or not a power of two.
    pub fn new(
        channels: u8,
        ranks_per_channel: u8,
        banks_per_rank: u8,
        rows_per_bank: u32,
        cols_per_row: u16,
    ) -> Self {
        Geometry::with_bank_groups(
            channels,
            ranks_per_channel,
            banks_per_rank,
            1,
            rows_per_bank,
            cols_per_row,
        )
    }

    /// Creates a geometry with `bank_groups` bank groups per rank
    /// (DDR4/HBM). `bank_groups` must be a power of two no larger than
    /// `banks_per_rank`; pass 1 for generations without bank groups.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, not a power of two, or
    /// `bank_groups > banks_per_rank`.
    pub fn with_bank_groups(
        channels: u8,
        ranks_per_channel: u8,
        banks_per_rank: u8,
        bank_groups: u8,
        rows_per_bank: u32,
        cols_per_row: u16,
    ) -> Self {
        fn check(v: u64, name: &str) {
            assert!(v > 0 && v.is_power_of_two(), "{name} must be a power of two, got {v}");
        }
        check(channels as u64, "channels");
        check(ranks_per_channel as u64, "ranks_per_channel");
        check(banks_per_rank as u64, "banks_per_rank");
        check(bank_groups as u64, "bank_groups");
        check(rows_per_bank as u64, "rows_per_bank");
        check(cols_per_row as u64, "cols_per_row");
        assert!(
            bank_groups <= banks_per_rank,
            "bank_groups ({bank_groups}) must not exceed banks_per_rank ({banks_per_rank})"
        );
        Geometry {
            channels,
            ranks_per_channel,
            banks_per_rank,
            bank_groups,
            rows_per_bank,
            cols_per_row,
        }
    }

    /// The single-channel configuration used for most experiments in the
    /// paper: 1 channel, 8 ranks/channel, 8 banks/rank, 4 Gb chips.
    ///
    /// With 64-byte lines, 32768 rows x 128 columns per bank gives an 8 KB
    /// row and 2 GB per rank (matching a rank of x8 4 Gb parts in spirit —
    /// capacity is not performance-relevant in this study, timing is).
    pub fn paper_default() -> Self {
        Geometry::new(1, 8, 8, 32768, 128)
    }

    /// The paper's full target system: 4 channels, 8 ranks each.
    pub fn paper_full_system() -> Self {
        Geometry::new(4, 8, 8, 32768, 128)
    }

    /// A tiny geometry for fast unit tests.
    pub fn tiny() -> Self {
        Geometry::new(1, 2, 4, 64, 16)
    }

    pub fn channels(&self) -> u8 {
        self.channels
    }
    pub fn ranks_per_channel(&self) -> u8 {
        self.ranks_per_channel
    }
    pub fn banks_per_rank(&self) -> u8 {
        self.banks_per_rank
    }
    /// Bank groups per rank (1 when the generation has none).
    pub fn bank_groups(&self) -> u8 {
        self.bank_groups
    }
    /// The bank group `bank` belongs to: `bank % bank_groups`, so
    /// consecutive bank ids land in different groups.
    pub fn bank_group_of(&self, bank: BankId) -> u8 {
        bank.0 % self.bank_groups
    }
    pub fn rows_per_bank(&self) -> u32 {
        self.rows_per_bank
    }
    pub fn cols_per_row(&self) -> u16 {
        self.cols_per_row
    }

    /// Total banks across the whole system.
    pub fn total_banks(&self) -> u32 {
        self.channels as u32 * self.ranks_per_channel as u32 * self.banks_per_rank as u32
    }

    /// Total cache lines addressable by this geometry.
    pub fn total_lines(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank as u64 * self.cols_per_row as u64
    }

    /// Total capacity in bytes (64-byte lines).
    pub fn capacity_bytes(&self) -> u64 {
        self.total_lines() * 64
    }

    /// Returns true if `loc` is within this geometry's bounds.
    pub fn contains(&self, loc: &Location) -> bool {
        loc.channel.0 < self.channels
            && loc.rank.0 < self.ranks_per_channel
            && loc.bank.0 < self.banks_per_rank
            && loc.row.0 < self.rows_per_bank
            && loc.col.0 < self.cols_per_row
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let g = Geometry::paper_default();
        assert_eq!(g.channels(), 1);
        assert_eq!(g.ranks_per_channel(), 8);
        assert_eq!(g.banks_per_rank(), 8);
        assert_eq!(g.total_banks(), 64);
    }

    #[test]
    fn capacity_is_positive_and_line_addressable() {
        let g = Geometry::paper_default();
        // 8 ranks x 8 banks x 32768 rows x 128 cols x 64 B = 16 GiB.
        assert_eq!(g.capacity_bytes(), 16 * 1024 * 1024 * 1024);
        assert_eq!(g.total_lines() * 64, g.capacity_bytes());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Geometry::new(3, 8, 8, 32768, 128);
    }

    #[test]
    fn contains_checks_all_fields() {
        let g = Geometry::tiny();
        let ok = Location {
            channel: ChannelId(0),
            rank: RankId(1),
            bank: BankId(3),
            row: RowId(63),
            col: ColId(15),
        };
        assert!(g.contains(&ok));
        let bad = Location { rank: RankId(2), ..ok };
        assert!(!g.contains(&bad));
    }

    #[test]
    fn line_addr_roundtrip() {
        let a = LineAddr::from_byte_addr(0x1234_5678);
        assert_eq!(a.byte_addr(), 0x1234_5640); // rounded down to 64B
        assert_eq!(LineAddr::from_byte_addr(a.byte_addr()), a);
    }
}
