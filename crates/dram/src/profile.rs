//! Device generations as first-class profiles.
//!
//! The paper solves and certifies its fixed-service pipelines against a
//! single DDR3-1600 Table-1 parameter set. A [`DeviceProfile`] bundles the
//! timing parameters and geometry of one device generation so every layer
//! — the device model, the pipeline solver, the certifier, the monitors,
//! the simulator and the benches — can be re-parameterized and re-verified
//! per generation instead of inheriting DDR3 implicitly.

use std::fmt;

use crate::geometry::Geometry;
use crate::timing::TimingParams;

/// The device generations shipped with the workspace.
///
/// Each maps to one (timing, geometry) pair via [`DeviceProfile::of`].
/// The CLI spelling (`cli_name`) is what `--device` / `FSMC_DEVICE`
/// accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceGeneration {
    /// The paper's Table-1 DDR3-1600 part: no bank groups, 8 banks/rank.
    Ddr3_1600,
    /// DDR4-2400: 16 banks in 4 bank groups, tCCD_S/tCCD_L split.
    Ddr4_2400,
    /// LPDDR4-3200: no bank groups, long tRFC/tWR at a fast I/O clock.
    Lpddr4_3200,
    /// HBM2: 8 narrow channels, 16 banks in 4 groups per rank.
    Hbm2,
}

impl DeviceGeneration {
    /// Every shipped generation, in presentation order.
    pub fn all() -> [DeviceGeneration; 4] {
        [
            DeviceGeneration::Ddr3_1600,
            DeviceGeneration::Ddr4_2400,
            DeviceGeneration::Lpddr4_3200,
            DeviceGeneration::Hbm2,
        ]
    }

    /// The CLI/env spelling of this generation.
    pub fn cli_name(self) -> &'static str {
        match self {
            DeviceGeneration::Ddr3_1600 => "ddr3-1600",
            DeviceGeneration::Ddr4_2400 => "ddr4-2400",
            DeviceGeneration::Lpddr4_3200 => "lpddr4-3200",
            DeviceGeneration::Hbm2 => "hbm2",
        }
    }

    /// Parses a CLI/env spelling (case-insensitive; `_` accepted for
    /// `-`). Returns `None` for anything that is not a shipped
    /// generation.
    pub fn parse(s: &str) -> Option<DeviceGeneration> {
        let norm = s.trim().to_ascii_lowercase().replace('_', "-");
        DeviceGeneration::all().into_iter().find(|g| g.cli_name() == norm)
    }

    /// The profile (timing + geometry) for this generation.
    pub fn profile(self) -> DeviceProfile {
        DeviceProfile::of(self)
    }

    /// The memory-clock frequency in MHz — the rate DRAM cycles tick at
    /// (half the MT/s of the double-data-rate parts; HBM2 runs 2 Gbps
    /// pins off a 1 GHz clock).
    pub fn bus_mhz(self) -> u32 {
        match self {
            DeviceGeneration::Ddr3_1600 => 800,
            DeviceGeneration::Ddr4_2400 => 1200,
            DeviceGeneration::Lpddr4_3200 => 1600,
            DeviceGeneration::Hbm2 => 1000,
        }
    }

    /// The wall-clock length of one DRAM cycle in seconds (e.g. 1.25 ns
    /// for DDR3-1600) — what converts measured per-cycle capacities into
    /// bits per second.
    pub fn seconds_per_cycle(self) -> f64 {
        1.0e-6 / self.bus_mhz() as f64
    }
}

impl fmt::Display for DeviceGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cli_name())
    }
}

/// One device generation's complete description: its JEDEC-style timing
/// parameters and its channel/rank/bank-group geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    pub generation: DeviceGeneration,
    pub timing: TimingParams,
    pub geometry: Geometry,
}

impl DeviceProfile {
    /// The profile for `generation`.
    ///
    /// Every geometry keeps 8 ranks per channel so the paper's 8-domain
    /// rank-partitioned pipelines stay constructible on all generations;
    /// what varies is bank count, bank groups, channel count and row
    /// width:
    ///
    /// * DDR3-1600 — the paper's system: 1 channel, 8 banks, no groups.
    /// * DDR4-2400 — 16 banks in 4 groups, 8 KB rows.
    /// * LPDDR4-3200 — 8 banks, no groups, 4 KB rows.
    /// * HBM2 — 8 narrow channels, 16 banks in 4 groups, 2 KB rows.
    pub fn of(generation: DeviceGeneration) -> DeviceProfile {
        let (timing, geometry) = match generation {
            DeviceGeneration::Ddr3_1600 => (TimingParams::ddr3_1600(), Geometry::paper_default()),
            DeviceGeneration::Ddr4_2400 => {
                (TimingParams::ddr4_2400(), Geometry::with_bank_groups(1, 8, 16, 4, 32768, 128))
            }
            DeviceGeneration::Lpddr4_3200 => {
                (TimingParams::lpddr4_3200(), Geometry::with_bank_groups(1, 8, 8, 1, 32768, 64))
            }
            DeviceGeneration::Hbm2 => {
                (TimingParams::hbm2(), Geometry::with_bank_groups(8, 8, 16, 4, 16384, 32))
            }
        };
        DeviceProfile { generation, timing, geometry }
    }

    /// The paper's DDR3-1600 profile (the default throughout the
    /// workspace when no device is selected).
    pub fn paper_default() -> DeviceProfile {
        DeviceProfile::of(DeviceGeneration::Ddr3_1600)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_every_generation() {
        for g in DeviceGeneration::all() {
            assert_eq!(DeviceGeneration::parse(g.cli_name()), Some(g));
            assert_eq!(DeviceGeneration::parse(&g.cli_name().to_uppercase()), Some(g));
            assert_eq!(DeviceGeneration::parse(&g.cli_name().replace('-', "_")), Some(g));
            assert_eq!(g.to_string(), g.cli_name());
        }
        assert_eq!(DeviceGeneration::parse("ddr5-4800"), None);
        assert_eq!(DeviceGeneration::parse(""), None);
    }

    #[test]
    fn profiles_are_internally_consistent() {
        for g in DeviceGeneration::all() {
            let p = g.profile();
            assert_eq!(p.generation, g);
            // Bank groups only exist where tCCD_S != tCCD_L and
            // vice versa: a flat part must not claim grouped geometry.
            let grouped = p.geometry.bank_groups() > 1;
            let split = p.timing.t_ccd_l > p.timing.t_ccd;
            assert_eq!(grouped, split, "{g}: bank-group geometry must match tCCD split");
            // 8 ranks everywhere keeps 8-domain rank partitioning viable.
            assert_eq!(p.geometry.ranks_per_channel(), 8, "{g}");
        }
    }

    #[test]
    fn cycle_lengths_match_the_clock() {
        assert_eq!(DeviceGeneration::Ddr3_1600.bus_mhz(), 800);
        let ns = DeviceGeneration::Ddr3_1600.seconds_per_cycle() * 1e9;
        assert!((ns - 1.25).abs() < 1e-12, "DDR3-1600 cycle should be 1.25 ns, got {ns}");
        for g in DeviceGeneration::all() {
            let s = g.seconds_per_cycle();
            assert!(s > 0.0 && s < 2e-9, "{g}: implausible cycle length {s}");
        }
    }

    #[test]
    fn ddr3_profile_matches_paper_defaults() {
        let p = DeviceProfile::paper_default();
        assert_eq!(p.timing, TimingParams::ddr3_1600());
        assert_eq!(p.geometry, Geometry::paper_default());
        assert_eq!(p.geometry.bank_groups(), 1);
    }

    #[test]
    fn hbm2_banks_fit_fast_path_masks() {
        // The fast path's per-rank bank masks are u128; every profile's
        // ranks*banks per channel must fit.
        for g in DeviceGeneration::all() {
            let p = g.profile();
            let bits = p.geometry.ranks_per_channel() as u32 * p.geometry.banks_per_rank() as u32;
            assert!(bits <= 128, "{g}: {bits} bank bits exceed the u128 fast-path mask");
        }
    }
}
