//! # fsmc-dram — cycle-accurate DDR3 DRAM substrate
//!
//! This crate models the DRAM side of the memory system used by the
//! Fixed-Service (FS) memory-controller study: device geometry
//! (channels / ranks / banks / rows / columns), physical-address mapping,
//! the full DDR3 timing-parameter set of the paper's Table 1, per-bank and
//! per-rank state machines, shared command/data-bus occupancy, refresh and
//! power-down states.
//!
//! Three independent implementations of the JEDEC timing rules are provided:
//!
//! * [`device::DramDevice`] — an *incremental* model that a memory
//!   controller drives cycle by cycle (`can_issue` / `issue`),
//! * [`checker::TimingChecker`] — a *replay* validator that re-derives every
//!   constraint pairwise from a recorded command stream, and
//! * [`monitor::StreamMonitor`] — an *online* validator that enforces the
//!   same rules one command at a time, as the stream is produced.
//!
//! They are deliberately written separately so that property tests can
//! cross-check them; the checker is also the executable witness for the
//! paper's claim that FS pipelines are free of resource conflicts, and the
//! monitor turns that one-shot audit into a continuously-enforced invariant.
//!
//! ## Example
//!
//! ```
//! use fsmc_dram::geometry::Geometry;
//! use fsmc_dram::timing::TimingParams;
//! use fsmc_dram::device::DramDevice;
//! use fsmc_dram::command::Command;
//! use fsmc_dram::geometry::{RankId, BankId, RowId, ColId};
//!
//! let geom = Geometry::paper_default();
//! let timing = TimingParams::ddr3_1600();
//! let mut dev = DramDevice::new(geom, timing);
//! let act = Command::activate(RankId(0), BankId(0), RowId(42));
//! assert!(dev.can_issue(&act, 10).is_ok());
//! dev.issue(&act, 10);
//! let rd = Command::read_ap(RankId(0), BankId(0), RowId(42), ColId(3));
//! // tRCD = 11 must elapse before the column read.
//! assert!(dev.can_issue(&rd, 20).is_err());
//! assert!(dev.can_issue(&rd, 21).is_ok());
//! ```

pub mod bank;
pub mod channel;
pub mod checker;
pub mod command;
pub mod counters;
pub mod device;
pub mod geometry;
pub mod mapping;
pub mod monitor;
pub mod profile;
pub mod rank;
pub mod timing;

pub use bank::{BankArrays, NO_ROW};
pub use checker::{TimingChecker, Violation};
pub use command::{Command, CommandKind};
pub use counters::ActivityCounters;
pub use device::{DramDevice, ObsCommand};
pub use geometry::{BankId, ChannelId, ColId, Geometry, LineAddr, Location, RankId, RowId};
pub use mapping::{AddressMapping, MappingScheme};
pub use monitor::StreamMonitor;
pub use profile::{DeviceGeneration, DeviceProfile};
pub use timing::TimingParams;

/// A simulation timestamp in DRAM bus cycles.
///
/// All timing parameters in this crate are expressed in this clock domain
/// (800 MHz for the DDR3-1600 part of the paper). The CPU clock of the
/// full-system simulator runs at a fixed 4:1 ratio to this clock.
pub type Cycle = u64;
