//! Per-rank DRAM state: activation windows, CAS turnarounds, refresh and
//! power-down, plus the rank's banks.

use crate::bank::BankArrays;
use crate::checker::Violation;
use crate::command::{Command, CommandKind};
use crate::timing::TimingParams;
use crate::Cycle;

/// Power state of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// Normal operation.
    Active,
    /// Light (fast-exit) power-down entered at the recorded cycle.
    PoweredDown { since: Cycle },
}

/// The state of one rank: its banks plus the rank-wide timing windows
/// (tRRD, tFAW, CAS-to-CAS turnarounds, refresh, power-down).
#[derive(Debug, Clone)]
pub struct RankState {
    banks: BankArrays,
    /// The last four activate cycles, oldest first, for tFAW (a fixed
    /// ring so the apply path never touches the allocator).
    act_window: [Cycle; 4],
    /// Valid entries in `act_window`.
    act_len: u8,
    /// Earliest next activate due to tRRD.
    next_activate: Cycle,
    /// Earliest next column read due to tCCD_S / write-to-read turnaround.
    next_read: Cycle,
    /// Earliest next column write due to tCCD_S / read-to-write turnaround.
    next_write: Cycle,
    /// Bank groups in this rank (1 for generations without bank groups;
    /// bank `b` is in group `b % bank_groups`).
    bank_groups: u8,
    /// Per-group earliest next read due to tCCD_L (same-group CAS pairs
    /// must keep the long spacing; different groups only owe tCCD_S).
    group_next_read: Vec<Cycle>,
    /// Per-group earliest next write due to tCCD_L.
    group_next_write: Vec<Cycle>,
    /// Rank unusable until this cycle (refresh in progress).
    refresh_until: Cycle,
    /// Earliest cycle a command is accepted after a power-down exit.
    wake_at: Cycle,
    power: PowerState,
    /// Total cycles spent powered down (for the energy model).
    powered_down_cycles: Cycle,
}

impl RankState {
    /// A fresh rank with `banks` closed banks and no bank groups.
    pub fn new(banks: u8) -> Self {
        RankState::with_bank_groups(banks, 1)
    }

    /// A fresh rank with `banks` closed banks split across `bank_groups`
    /// bank groups (bank `b` belongs to group `b % bank_groups`).
    pub fn with_bank_groups(banks: u8, bank_groups: u8) -> Self {
        assert!(bank_groups >= 1 && bank_groups <= banks, "bank_groups must be in 1..=banks");
        RankState {
            banks: BankArrays::new(banks as usize),
            act_window: [0; 4],
            act_len: 0,
            next_activate: 0,
            next_read: 0,
            next_write: 0,
            bank_groups,
            group_next_read: vec![0; bank_groups as usize],
            group_next_write: vec![0; bank_groups as usize],
            refresh_until: 0,
            wake_at: 0,
            power: PowerState::Active,
            powered_down_cycles: 0,
        }
    }

    /// The bank group of `bank` in this rank.
    fn group_of(&self, bank: usize) -> usize {
        bank % self.bank_groups as usize
    }

    /// The tCCD_L floor a CAS of the given direction to `bank` owes its
    /// own bank group (0 when nothing has been issued there yet). With a
    /// single group and a flat part (tCCD_L == tCCD_S) this coincides
    /// with the rank-global CAS floor.
    pub fn cas_group_floor(&self, bank: usize, is_read: bool) -> Cycle {
        let g = self.group_of(bank);
        if is_read {
            self.group_next_read[g]
        } else {
            self.group_next_write[g]
        }
    }

    /// The rank's banks in struct-of-arrays layout — flat ready-cycle
    /// and open-row arrays for the device's fused scans.
    #[inline]
    pub fn banks(&self) -> &BankArrays {
        &self.banks
    }

    /// The row open in `bank`, if any.
    #[inline]
    pub fn open_row(&self, bank: usize) -> Option<crate::geometry::RowId> {
        self.banks.open_row(bank)
    }

    pub fn power_state(&self) -> PowerState {
        self.power
    }

    /// Cumulative cycles this rank has spent in power-down (updated on
    /// power-up; call [`RankState::powered_down_cycles_at`] for a live
    /// figure that includes a still-open power-down interval).
    pub fn powered_down_cycles_at(&self, now: Cycle) -> Cycle {
        match self.power {
            PowerState::Active => self.powered_down_cycles,
            PowerState::PoweredDown { since } => {
                self.powered_down_cycles + now.saturating_sub(since)
            }
        }
    }

    /// True if every bank is precharged and past recovery at `cycle`.
    pub fn all_banks_idle(&self, cycle: Cycle) -> bool {
        self.banks.all_idle(cycle)
    }

    /// True if `bank` could accept an `Activate` at `cycle` as far as
    /// bank-local state, refresh, and power state are concerned (rank
    /// activation windows like tRRD/tFAW are *not* checked — precomputed
    /// schedules guarantee those).
    pub fn bank_ready(&self, bank: usize, cycle: Cycle) -> bool {
        matches!(self.power, PowerState::Active)
            && cycle >= self.wake_at
            && cycle >= self.refresh_until
            && self.banks.idle_at(bank, cycle)
    }

    /// Checks rank-level legality of `cmd` at `cycle` (bank-level checks
    /// are separate; see [`crate::device::DramDevice::can_issue`]).
    pub fn can_issue(
        &self,
        cmd: &Command,
        cycle: Cycle,
        t: &TimingParams,
    ) -> Result<(), Violation> {
        if let PowerState::PoweredDown { .. } = self.power {
            if cmd.kind != CommandKind::PowerDownExit {
                return Err(Violation::state(*cmd, cycle, "command to a powered-down rank"));
            }
            return Ok(());
        }
        Violation::check_earliest(*cmd, cycle, self.refresh_until, "tRFC refresh in progress")?;
        Violation::check_earliest(*cmd, cycle, self.wake_at, "tXP power-down exit")?;
        match cmd.kind {
            CommandKind::Activate => {
                Violation::check_earliest(*cmd, cycle, self.next_activate, "tRRD")?;
                if self.act_len == 4 {
                    let faw_end = self.act_window[0] + t.t_faw as Cycle;
                    Violation::check_earliest(*cmd, cycle, faw_end, "tFAW")?;
                }
                Ok(())
            }
            k if k.is_read() => {
                Violation::check_earliest(*cmd, cycle, self.next_read, "CAS gap (read)")?;
                Violation::check_earliest(
                    *cmd,
                    cycle,
                    self.cas_group_floor(cmd.bank.0 as usize, true),
                    "tCCD_L bank-group CAS gap (read)",
                )
            }
            k if k.is_write() => {
                Violation::check_earliest(*cmd, cycle, self.next_write, "CAS gap (write)")?;
                Violation::check_earliest(
                    *cmd,
                    cycle,
                    self.cas_group_floor(cmd.bank.0 as usize, false),
                    "tCCD_L bank-group CAS gap (write)",
                )
            }
            CommandKind::Refresh => {
                if !self.all_banks_idle(cycle) {
                    return Err(Violation::state(*cmd, cycle, "refresh with banks busy"));
                }
                Ok(())
            }
            CommandKind::PowerDownEnter => {
                if !self.all_banks_idle(cycle) {
                    return Err(Violation::state(*cmd, cycle, "power-down with banks busy"));
                }
                Ok(())
            }
            CommandKind::PowerDownExit => {
                Err(Violation::state(*cmd, cycle, "power-up of an active rank"))
            }
            _ => Ok(()),
        }
    }

    /// Applies `cmd` at `cycle` to the rank-level windows and the addressed
    /// bank. Caller must have validated legality first.
    pub fn apply(&mut self, cmd: &Command, cycle: Cycle, t: &TimingParams) {
        match cmd.kind {
            CommandKind::Activate => {
                self.next_activate = cycle + t.t_rrd as Cycle;
                if self.act_len == 4 {
                    self.act_window.copy_within(1..4, 0);
                    self.act_window[3] = cycle;
                } else {
                    self.act_window[self.act_len as usize] = cycle;
                    self.act_len += 1;
                }
                self.banks.apply(cmd.bank.0 as usize, cmd, cycle, t);
            }
            k if k.is_read() => {
                self.next_read = self.next_read.max(cycle + t.t_ccd as Cycle);
                self.next_write = self.next_write.max(cycle + t.rd_to_wr_same_rank() as Cycle);
                let g = self.group_of(cmd.bank.0 as usize);
                self.group_next_read[g] = self.group_next_read[g].max(cycle + t.t_ccd_l as Cycle);
                self.banks.apply(cmd.bank.0 as usize, cmd, cycle, t);
            }
            k if k.is_write() => {
                self.next_write = self.next_write.max(cycle + t.t_ccd as Cycle);
                self.next_read = self.next_read.max(cycle + t.wr_to_rd_same_rank() as Cycle);
                let g = self.group_of(cmd.bank.0 as usize);
                self.group_next_write[g] = self.group_next_write[g].max(cycle + t.t_ccd_l as Cycle);
                self.banks.apply(cmd.bank.0 as usize, cmd, cycle, t);
            }
            CommandKind::Precharge => {
                self.banks.apply(cmd.bank.0 as usize, cmd, cycle, t);
            }
            CommandKind::PrechargeAll => {
                for b in 0..self.banks.len() {
                    self.banks.apply(b, cmd, cycle, t);
                }
            }
            CommandKind::Refresh => {
                self.refresh_until = cycle + t.t_rfc as Cycle;
                for b in 0..self.banks.len() {
                    self.banks.apply(b, cmd, cycle, t);
                }
            }
            CommandKind::PowerDownEnter => {
                self.power = PowerState::PoweredDown { since: cycle };
            }
            CommandKind::PowerDownExit => {
                if let PowerState::PoweredDown { since } = self.power {
                    self.powered_down_cycles += cycle.saturating_sub(since);
                }
                self.power = PowerState::Active;
                self.wake_at = cycle + t.t_xp as Cycle;
            }
            _ => {}
        }
    }

    /// Earliest cycle at which `cmd` could pass both [`RankState::can_issue`]
    /// and the addressed bank's rules, assuming no further commands reach
    /// this rank in the meantime. `Cycle::MAX` when only another command
    /// could ever make it legal (wrong row open, rank powered down).
    pub fn next_legal_at(&self, cmd: &Command, t: &TimingParams) -> Cycle {
        if let PowerState::PoweredDown { .. } = self.power {
            return if cmd.kind == CommandKind::PowerDownExit { 0 } else { Cycle::MAX };
        }
        let mut at = self.refresh_until.max(self.wake_at);
        match cmd.kind {
            CommandKind::Activate => {
                at = at.max(self.next_activate);
                if self.act_len == 4 {
                    at = at.max(self.act_window[0] + t.t_faw as Cycle);
                }
                at = at.max(self.banks.next_legal_at(cmd.bank.0 as usize, cmd));
            }
            k if k.is_read() => {
                at = at
                    .max(self.next_read)
                    .max(self.cas_group_floor(cmd.bank.0 as usize, true))
                    .max(self.banks.next_legal_at(cmd.bank.0 as usize, cmd));
            }
            k if k.is_write() => {
                at = at
                    .max(self.next_write)
                    .max(self.cas_group_floor(cmd.bank.0 as usize, false))
                    .max(self.banks.next_legal_at(cmd.bank.0 as usize, cmd));
            }
            CommandKind::Precharge => {
                at = at.max(self.banks.next_legal_at(cmd.bank.0 as usize, cmd));
            }
            CommandKind::PrechargeAll | CommandKind::Refresh | CommandKind::PowerDownEnter => {
                for b in 0..self.banks.len() {
                    // Refresh and power-down need every bank idle; an open
                    // row makes the bank report `Cycle::MAX` as required.
                    if cmd.kind != CommandKind::PrechargeAll && self.banks.open_row(b).is_some() {
                        return Cycle::MAX;
                    }
                    at = at.max(self.banks.next_legal_at(b, cmd));
                }
            }
            CommandKind::PowerDownExit => return Cycle::MAX,
            _ => {}
        }
        at
    }

    /// Rank-common pieces of the fused event-bound scan (see
    /// [`crate::DramDevice::next_event_bound`]): `(quiet, act_floor,
    /// next_read, next_write)`, where `quiet` is the refresh/power-wake
    /// floor every command shares and `act_floor` additionally folds in
    /// tRRD and the tFAW rolling window. `None` while powered down —
    /// only a `PowerDownExit` could change that, and it is never an
    /// event-scan candidate.
    pub fn event_bound_parts(&self, t: &TimingParams) -> Option<(Cycle, Cycle, Cycle, Cycle)> {
        if let PowerState::PoweredDown { .. } = self.power {
            return None;
        }
        let quiet = self.refresh_until.max(self.wake_at);
        let mut act_floor = self.next_activate;
        if self.act_len == 4 {
            act_floor = act_floor.max(self.act_window[0] + t.t_faw as Cycle);
        }
        Some((quiet, act_floor, self.next_read, self.next_write))
    }

    /// Earliest cycle at which *some* CAS of the given direction is legal
    /// at rank level (used by schedulers for planning).
    pub fn next_cas_at(&self, is_read: bool) -> Cycle {
        if is_read {
            self.next_read
        } else {
            self.next_write
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BankId, ColId, RankId, RowId};

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    fn act(bank: u8) -> Command {
        Command::activate(RankId(0), BankId(bank), RowId(1))
    }

    #[test]
    fn trrd_between_activates() {
        let timing = t();
        let mut r = RankState::new(8);
        r.apply(&act(0), 0, &timing);
        assert!(r.can_issue(&act(1), 4, &timing).is_err());
        assert!(r.can_issue(&act(1), 5, &timing).is_ok());
    }

    #[test]
    fn tfaw_limits_fifth_activate() {
        let timing = t();
        let mut r = RankState::new(8);
        for i in 0..4u8 {
            let c = i as Cycle * timing.t_rrd as Cycle;
            assert!(r.can_issue(&act(i), c, &timing).is_ok());
            r.apply(&act(i), c, &timing);
        }
        // Fifth activate: tRRD would allow cycle 20, tFAW requires 24.
        assert!(r.can_issue(&act(4), 20, &timing).is_err());
        assert!(r.can_issue(&act(4), 24, &timing).is_ok());
    }

    #[test]
    fn write_to_read_rank_turnaround() {
        let timing = t();
        let mut r = RankState::new(8);
        r.apply(&act(0), 0, &timing);
        r.apply(&act(1), 5, &timing);
        let wr = Command::write_ap(RankId(0), BankId(0), RowId(1), ColId(0));
        r.apply(&wr, 16, &timing);
        let rd = Command::read_ap(RankId(0), BankId(1), RowId(1), ColId(0));
        // Wr2Rd = 15 cycles after the write CAS.
        assert!(r.can_issue(&rd, 30, &timing).is_err());
        assert!(r.can_issue(&rd, 31, &timing).is_ok());
    }

    #[test]
    fn bank_group_ccd_l_spacing() {
        let timing = TimingParams::ddr4_2400();
        // 16 banks in 4 groups: banks 0 and 4 share group 0, bank 1 is
        // in group 1.
        let mut r = RankState::with_bank_groups(16, 4);
        r.apply(&act(0), 0, &timing);
        r.apply(&act(4), timing.t_rrd as Cycle, &timing);
        r.apply(&act(1), 2 * timing.t_rrd as Cycle, &timing);
        let rd0 = Command::read_ap(RankId(0), BankId(0), RowId(1), ColId(0));
        r.apply(&rd0, 50, &timing);
        // Different group: legal after tCCD_S.
        let rd_other = Command::read_ap(RankId(0), BankId(1), RowId(1), ColId(0));
        assert!(r.can_issue(&rd_other, 50 + timing.t_ccd as Cycle, &timing).is_ok());
        // Same group: tCCD_S is not enough, tCCD_L is required.
        let rd_same = Command::read_ap(RankId(0), BankId(4), RowId(1), ColId(0));
        let v = r.can_issue(&rd_same, 50 + timing.t_ccd as Cycle, &timing).unwrap_err();
        assert!(v.to_string().contains("tCCD_L"), "{v}");
        assert!(r.can_issue(&rd_same, 50 + timing.t_ccd_l as Cycle, &timing).is_ok());
        // next_legal_at agrees with can_issue on both banks.
        assert_eq!(r.next_legal_at(&rd_same, &timing), 50 + timing.t_ccd_l as Cycle);
        assert_eq!(r.next_legal_at(&rd_other, &timing), 50 + timing.t_ccd as Cycle);
    }

    #[test]
    fn single_group_floor_matches_rank_floor_on_flat_parts() {
        // DDR3 (one group, tCCD_L == tCCD_S): the group floor must
        // coincide with the rank-global CAS floor so grouped code paths
        // reduce bit-identically to the original behaviour.
        let timing = t();
        let mut r = RankState::new(8);
        r.apply(&act(0), 0, &timing);
        let rd = Command::read_ap(RankId(0), BankId(0), RowId(1), ColId(0));
        r.apply(&rd, 20, &timing);
        assert_eq!(r.cas_group_floor(3, true), r.next_cas_at(true));
        assert_eq!(r.cas_group_floor(5, false), 0);
    }

    #[test]
    fn power_down_round_trip_tracks_cycles() {
        let timing = t();
        let mut r = RankState::new(8);
        let pde = Command::power_down(RankId(0));
        let pdx = Command::power_up(RankId(0));
        assert!(r.can_issue(&pde, 10, &timing).is_ok());
        r.apply(&pde, 10, &timing);
        // No commands accepted while down.
        assert!(r.can_issue(&act(0), 20, &timing).is_err());
        assert!(r.can_issue(&pdx, 50, &timing).is_ok());
        r.apply(&pdx, 50, &timing);
        assert_eq!(r.powered_down_cycles_at(50), 40);
        // tXP gates the first command after wake-up.
        assert!(r.can_issue(&act(0), 59, &timing).is_err());
        assert!(r.can_issue(&act(0), 60, &timing).is_ok());
    }

    #[test]
    fn refresh_blocks_everything_for_trfc() {
        let timing = t();
        let mut r = RankState::new(8);
        let refr = Command::refresh(RankId(0));
        assert!(r.can_issue(&refr, 0, &timing).is_ok());
        r.apply(&refr, 0, &timing);
        assert!(r.can_issue(&act(0), 207, &timing).is_err());
        assert!(r.can_issue(&act(0), 208, &timing).is_ok());
    }

    #[test]
    fn refresh_rejected_with_open_bank() {
        let timing = t();
        let mut r = RankState::new(8);
        r.apply(&act(0), 0, &timing);
        let refr = Command::refresh(RankId(0));
        assert!(r.can_issue(&refr, 100, &timing).is_err());
    }
}
