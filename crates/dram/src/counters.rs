//! Activity counters consumed by the energy model and the statistics
//! reports.

use crate::Cycle;

/// Per-rank activity tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankCounters {
    pub activates: u64,
    pub reads: u64,
    pub writes: u64,
    pub precharges: u64,
    pub refreshes: u64,
    /// Reads/writes whose DRAM activity was suppressed (FS energy
    /// optimisation 1) — they appear in no other counter.
    pub suppressed: u64,
    /// Cycles spent in light power-down.
    pub powered_down_cycles: Cycle,
}

/// Whole-channel activity counters, aggregated from command issue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    ranks: Vec<RankCounters>,
    /// Data-bus busy cycles across the channel.
    pub data_bus_busy: Cycle,
    /// Total elapsed cycles (set by the owner at end of simulation).
    pub elapsed_cycles: Cycle,
}

impl ActivityCounters {
    pub fn new(ranks: usize) -> Self {
        ActivityCounters { ranks: vec![RankCounters::default(); ranks], ..Default::default() }
    }

    pub fn rank(&self, rank: usize) -> &RankCounters {
        &self.ranks[rank]
    }

    pub fn rank_mut(&mut self, rank: usize) -> &mut RankCounters {
        &mut self.ranks[rank]
    }

    pub fn ranks(&self) -> &[RankCounters] {
        &self.ranks
    }

    /// Sum of activates across ranks.
    pub fn total_activates(&self) -> u64 {
        self.ranks.iter().map(|r| r.activates).sum()
    }

    /// Sum of column reads across ranks.
    pub fn total_reads(&self) -> u64 {
        self.ranks.iter().map(|r| r.reads).sum()
    }

    /// Sum of column writes across ranks.
    pub fn total_writes(&self) -> u64 {
        self.ranks.iter().map(|r| r.writes).sum()
    }

    /// Sum of refresh commands across ranks.
    pub fn total_refreshes(&self) -> u64 {
        self.ranks.iter().map(|r| r.refreshes).sum()
    }

    /// Merges another channel's counters into this one: rank tallies are
    /// appended, bus-busy cycles summed, elapsed cycles taken as the max
    /// (channels run in lockstep). Used by multi-channel systems.
    pub fn merge(&mut self, other: &ActivityCounters) {
        self.ranks.extend(other.ranks.iter().copied());
        self.data_bus_busy += other.data_bus_busy;
        self.elapsed_cycles = self.elapsed_cycles.max(other.elapsed_cycles);
    }

    /// Fraction of elapsed cycles the data bus was busy, in [0, 1] for a
    /// single channel (an aggregate over N merged channels can reach N).
    ///
    /// Returns 0 when no cycles have elapsed.
    pub fn data_bus_utilization(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.data_bus_busy as f64 / self.elapsed_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation() {
        let mut c = ActivityCounters::new(2);
        c.rank_mut(0).activates = 3;
        c.rank_mut(1).activates = 4;
        c.rank_mut(0).reads = 2;
        c.rank_mut(1).writes = 5;
        assert_eq!(c.total_activates(), 7);
        assert_eq!(c.total_reads(), 2);
        assert_eq!(c.total_writes(), 5);
    }

    #[test]
    fn utilization_handles_zero_cycles() {
        let mut c = ActivityCounters::new(1);
        assert_eq!(c.data_bus_utilization(), 0.0);
        c.data_bus_busy = 32;
        c.elapsed_cycles = 56;
        assert!((c.data_bus_utilization() - 32.0 / 56.0).abs() < 1e-12);
    }
}
