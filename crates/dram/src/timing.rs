//! Device timing parameters (the paper's Table 1 plus later generations)
//! and derived delays.
//!
//! All values are in DRAM bus cycles of the part's own command clock
//! (800 MHz for DDR3-1600, 1200 MHz for DDR4-2400, 1600 MHz for
//! LPDDR4-3200, 1 GHz for HBM2). The derived read/write turnaround
//! helpers reproduce the exact constants the paper plugs into its
//! pipeline equations for DDR3-1600:
//!
//! * `Rd2Wr delay = tCAS + tBURST - tCWD = 10` (CAS-to-CAS, same rank)
//! * `Wr2Rd delay = tCWD + tBURST + tWTR = 15` (CAS-to-CAS, same rank)
//!
//! Generations with bank groups (DDR4, HBM2) carry a *pair* of same-type
//! CAS-to-CAS spacings: [`TimingParams::t_ccd`] (tCCD_S, different bank
//! groups) and [`TimingParams::t_ccd_l`] (tCCD_L, same bank group). For
//! parts without bank groups the two are equal, which reduces every
//! group-aware rule in this crate to the flat DDR3 behaviour.

/// The full timing-parameter set used by the device model, the
/// constraint solver and the legality checker.
///
/// Field names follow the JEDEC convention with a `t_` prefix.
/// Construct one via the per-generation constructors (or a
/// [`crate::profile::DeviceProfile`]) — there is deliberately no
/// `Default`, so no layer can silently assume DDR3-1600.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// ACT-to-ACT, same bank (row cycle time).
    pub t_rc: u32,
    /// ACT-to-CAS, same bank (RAS-to-CAS delay).
    pub t_rcd: u32,
    /// ACT-to-PRE, same bank (row active time).
    pub t_ras: u32,
    /// Four-activate window per rank.
    pub t_faw: u32,
    /// Write recovery: end of write data to PRE, same bank.
    pub t_wr: u32,
    /// PRE-to-ACT, same bank (row precharge time).
    pub t_rp: u32,
    /// Rank-to-rank data-bus switching delay.
    pub t_rtrs: u32,
    /// CAS read latency (column read to first data beat).
    pub t_cas: u32,
    /// CAS write latency (column write to first data beat).
    pub t_cwd: u32,
    /// Read-to-PRE, same bank.
    pub t_rtp: u32,
    /// Data burst length on the bus (cycles for one 64 B line).
    pub t_burst: u32,
    /// CAS-to-CAS, same rank, *different* bank groups (tCCD_S; the only
    /// spacing on parts without bank groups).
    pub t_ccd: u32,
    /// CAS-to-CAS, same rank, *same* bank group (tCCD_L). Equals
    /// [`TimingParams::t_ccd`] on parts without bank groups; never
    /// smaller than it.
    pub t_ccd_l: u32,
    /// Write-to-read turnaround: end of write data to column read, same rank.
    pub t_wtr: u32,
    /// ACT-to-ACT, different banks of the same rank.
    pub t_rrd: u32,
    /// Average refresh interval.
    pub t_refi: u32,
    /// Refresh cycle time (rank busy after REF).
    pub t_rfc: u32,
    /// Power-down exit latency (light / fast-exit mode; paper cites ~10
    /// memory cycles for the lighter modes).
    pub t_xp: u32,
    /// CPU core cycles per DRAM bus cycle (3.2 GHz / 800 MHz = 4).
    pub cpu_ratio: u32,
}

impl TimingParams {
    /// The DDR3-1600 parameters of the paper's Table 1.
    ///
    /// tREFI = 7.8 us and tRFC = 260 ns converted at 800 MHz.
    pub fn ddr3_1600() -> Self {
        TimingParams {
            t_rc: 39,
            t_rcd: 11,
            t_ras: 28,
            t_faw: 24,
            t_wr: 12,
            t_rp: 11,
            t_rtrs: 2,
            t_cas: 11,
            t_cwd: 5,
            t_rtp: 6,
            t_burst: 4,
            t_ccd: 4,
            t_ccd_l: 4,
            t_wtr: 6,
            t_rrd: 5,
            t_refi: 6240,
            t_rfc: 208,
            t_xp: 10,
            cpu_ratio: 4,
        }
    }

    /// A DDR4-2400 parameter set (JESD79-4, the standard the paper's
    /// Table 1 cites), in 1200 MHz bus cycles: tRCD/tCAS/tRP = 16,
    /// tRAS = 39, tRC = 55, tCWD = 12, tRRD_L = 6, tFAW = 26, tWTR_L = 9,
    /// tWR = 18, tRTP = 9, tCCD_S = 4 / tCCD_L = 6 (the bank-group pair),
    /// tREFI = 7.8 us, tRFC = 350 ns. The CPU ratio stays at 4 (a
    /// ~4.8 GHz core clock) so cross-part comparisons keep the same core.
    pub fn ddr4_2400() -> Self {
        TimingParams {
            t_rc: 55,
            t_rcd: 16,
            t_ras: 39,
            t_faw: 26,
            t_wr: 18,
            t_rp: 16,
            t_rtrs: 3,
            t_cas: 16,
            t_cwd: 12,
            t_rtp: 9,
            t_burst: 4,
            t_ccd: 4,
            t_ccd_l: 6,
            t_wtr: 9,
            t_rrd: 6,
            t_refi: 9360,
            t_rfc: 420,
            t_xp: 8,
            cpu_ratio: 4,
        }
    }

    /// An LPDDR4-3200 parameter set (JESD209-4) in 1600 MHz command-clock
    /// cycles. The mobile part's signature costs are the long core
    /// timings — tRCD = 18 ns, tRP = 21 ns, tWR = 18 ns — and the long
    /// all-bank refresh (tRFCab = 280 ns for an 8 Gb die); burst length
    /// 16 makes one 64 B line an 8-cycle burst. LPDDR4 has no bank
    /// groups, so tCCD_L = tCCD = BL/2 = 8. CPU ratio 2 keeps the
    /// paper's 3.2 GHz core against the 1600 MHz command clock.
    pub fn lpddr4_3200() -> Self {
        TimingParams {
            t_rc: 102,
            t_rcd: 29,
            t_ras: 68,
            t_faw: 64,
            t_wr: 29,
            t_rp: 34,
            t_rtrs: 2,
            t_cas: 28,
            t_cwd: 14,
            t_rtp: 12,
            t_burst: 8,
            t_ccd: 8,
            t_ccd_l: 8,
            t_wtr: 16,
            t_rrd: 16,
            t_refi: 6240,
            t_rfc: 448,
            t_xp: 12,
            cpu_ratio: 2,
        }
    }

    /// An HBM2-style parameter set (JESD235) in 1 GHz command-clock
    /// cycles, modelling one legacy-mode 128-bit channel: a 64 B line is
    /// a BL4 burst (2 cycles), core timings are short (tRCD/tRP = 14,
    /// tRC = 47), and the bank-group pair is tCCD_S = 2 / tCCD_L = 4.
    /// The geometry side of the HBM profile carries the generation's
    /// real parallelism: many narrow channels (see
    /// [`crate::profile::DeviceProfile`]). CPU ratio 3 models a
    /// 3 GHz core against the 1 GHz command clock.
    pub fn hbm2() -> Self {
        TimingParams {
            t_rc: 47,
            t_rcd: 14,
            t_ras: 33,
            t_faw: 16,
            t_wr: 16,
            t_rp: 14,
            t_rtrs: 1,
            t_cas: 14,
            t_cwd: 7,
            t_rtp: 3,
            t_burst: 2,
            t_ccd: 2,
            t_ccd_l: 4,
            t_wtr: 6,
            t_rrd: 4,
            t_refi: 3900,
            t_rfc: 260,
            t_xp: 8,
            cpu_ratio: 3,
        }
    }

    /// The same-type CAS-to-CAS minimum for a given bank-group relation:
    /// tCCD_L when the two CAS share a bank group, tCCD_S otherwise.
    pub fn ccd(&self, same_bank_group: bool) -> u32 {
        if same_bank_group {
            self.t_ccd_l
        } else {
            self.t_ccd
        }
    }

    /// CAS-to-CAS delay for a read followed by a write to the *same rank*.
    ///
    /// The write burst must not collide with the read burst on the data
    /// bus: `tCAS + tBURST - tCWD`.
    pub fn rd_to_wr_same_rank(&self) -> u32 {
        self.t_cas + self.t_burst - self.t_cwd
    }

    /// CAS-to-CAS delay for a read followed by a write to a *different
    /// rank* on the same channel (adds the bus-switch gap).
    pub fn rd_to_wr_diff_rank(&self) -> u32 {
        self.rd_to_wr_same_rank() + self.t_rtrs
    }

    /// CAS-to-CAS delay for a write followed by a read to the *same rank*:
    /// `tCWD + tBURST + tWTR`.
    pub fn wr_to_rd_same_rank(&self) -> u32 {
        self.t_cwd + self.t_burst + self.t_wtr
    }

    /// CAS-to-CAS delay for a write followed by a read to a *different
    /// rank*: only the shared data bus constrains this,
    /// `tCWD + tBURST + tRTRS - tCAS` (clamped at zero).
    pub fn wr_to_rd_diff_rank(&self) -> u32 {
        (self.t_cwd + self.t_burst + self.t_rtrs).saturating_sub(self.t_cas)
    }

    /// Cycle at which the precharge implied by a `ReadAp` begins, relative
    /// to the column-read command (bounded below by tRAS via the device).
    pub fn read_ap_pre_offset(&self) -> u32 {
        self.t_rtp
    }

    /// Cycle at which the precharge implied by a `WriteAp` begins, relative
    /// to the column-write command.
    pub fn write_ap_pre_offset(&self) -> u32 {
        self.t_cwd + self.t_burst + self.t_wr
    }

    /// Worst-case gap between two transactions to *different rows of the
    /// same bank* when the first is a write: ACT-to-ACT spacing
    /// `tRCD + write_ap_pre_offset + tRP`.
    ///
    /// For Table-1 parameters this is the paper's `l = 43`.
    pub fn same_bank_wr_turnaround(&self) -> u32 {
        self.t_rcd + self.write_ap_pre_offset() + self.t_rp
    }

    /// Converts a CPU-cycle count to DRAM bus cycles (rounding up).
    pub fn cpu_to_dram(&self, cpu_cycles: u64) -> u64 {
        cpu_cycles.div_ceil(self.cpu_ratio as u64)
    }

    /// Converts DRAM bus cycles to CPU cycles.
    pub fn dram_to_cpu(&self, dram_cycles: u64) -> u64 {
        dram_cycles * self.cpu_ratio as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_turnaround_constants() {
        let t = TimingParams::ddr3_1600();
        // Constants quoted verbatim in Section 4.2 of the paper.
        assert_eq!(t.rd_to_wr_same_rank(), 10);
        assert_eq!(t.wr_to_rd_same_rank(), 15);
    }

    #[test]
    fn same_bank_write_turnaround_is_43() {
        let t = TimingParams::ddr3_1600();
        // Section 4.3: "the largest gap ... a write followed by a read to
        // different rows in the same bank ... l = 43 cycles".
        assert_eq!(t.same_bank_wr_turnaround(), 43);
    }

    #[test]
    fn write_ap_offset() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.write_ap_pre_offset(), 5 + 4 + 12);
    }

    #[test]
    fn ddr4_parameters_are_self_consistent() {
        let t = TimingParams::ddr4_2400();
        assert!(t.t_rc >= t.t_ras + t.t_rp);
        assert!(t.t_cas > t.t_cwd - 8);
        assert!(t.wr_to_rd_same_rank() > t.rd_to_wr_same_rank());
        assert!(t.same_bank_wr_turnaround() > t.t_rc);
        // The DDR4 signature: a strict tCCD_S < tCCD_L bank-group pair.
        assert!(t.t_ccd < t.t_ccd_l);
        assert_eq!(t.ccd(false), 4);
        assert_eq!(t.ccd(true), 6);
    }

    #[test]
    fn every_generation_is_self_consistent() {
        for (name, t) in [
            ("ddr3-1600", TimingParams::ddr3_1600()),
            ("ddr4-2400", TimingParams::ddr4_2400()),
            ("lpddr4-3200", TimingParams::lpddr4_3200()),
            ("hbm2", TimingParams::hbm2()),
        ] {
            assert!(t.t_rc >= t.t_ras + t.t_rp, "{name}: tRC < tRAS + tRP");
            assert!(t.t_ccd_l >= t.t_ccd, "{name}: tCCD_L < tCCD_S");
            assert!(t.t_cas + t.t_burst > t.t_cwd, "{name}: Rd2Wr underflows");
            assert!(t.t_ras >= t.t_rcd, "{name}: tRAS < tRCD");
            assert!(t.t_faw >= t.t_rrd, "{name}: tFAW < tRRD");
            assert!(t.t_refi > t.t_rfc, "{name}: refresh cannot keep up");
            assert!(t.cpu_ratio > 0, "{name}: zero CPU ratio");
        }
    }

    #[test]
    fn flat_parts_have_equal_ccd_pair() {
        for t in [TimingParams::ddr3_1600(), TimingParams::lpddr4_3200()] {
            assert_eq!(t.t_ccd, t.t_ccd_l);
            assert_eq!(t.ccd(true), t.ccd(false));
        }
    }

    #[test]
    fn clock_ratio_conversions() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.dram_to_cpu(56), 224); // the paper's Q for 8 threads
        assert_eq!(t.cpu_to_dram(224), 56);
        assert_eq!(t.cpu_to_dram(225), 57);
    }
}
