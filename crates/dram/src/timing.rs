//! DDR3 timing parameters (the paper's Table 1) and derived delays.
//!
//! All values are in DRAM bus cycles (800 MHz bus for DDR3-1600). The
//! derived read/write turnaround helpers reproduce the exact constants the
//! paper plugs into its pipeline equations:
//!
//! * `Rd2Wr delay = tCAS + tBURST - tCWD = 10` (CAS-to-CAS, same rank)
//! * `Wr2Rd delay = tCWD + tBURST + tWTR = 15` (CAS-to-CAS, same rank)

/// The full DDR3 timing-parameter set used by the device model, the
/// constraint solver and the legality checker.
///
/// Field names follow the JEDEC convention with a `t_` prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// ACT-to-ACT, same bank (row cycle time).
    pub t_rc: u32,
    /// ACT-to-CAS, same bank (RAS-to-CAS delay).
    pub t_rcd: u32,
    /// ACT-to-PRE, same bank (row active time).
    pub t_ras: u32,
    /// Four-activate window per rank.
    pub t_faw: u32,
    /// Write recovery: end of write data to PRE, same bank.
    pub t_wr: u32,
    /// PRE-to-ACT, same bank (row precharge time).
    pub t_rp: u32,
    /// Rank-to-rank data-bus switching delay.
    pub t_rtrs: u32,
    /// CAS read latency (column read to first data beat).
    pub t_cas: u32,
    /// CAS write latency (column write to first data beat).
    pub t_cwd: u32,
    /// Read-to-PRE, same bank.
    pub t_rtp: u32,
    /// Data burst length on the bus (cycles for one 64 B line).
    pub t_burst: u32,
    /// CAS-to-CAS, same rank.
    pub t_ccd: u32,
    /// Write-to-read turnaround: end of write data to column read, same rank.
    pub t_wtr: u32,
    /// ACT-to-ACT, different banks of the same rank.
    pub t_rrd: u32,
    /// Average refresh interval.
    pub t_refi: u32,
    /// Refresh cycle time (rank busy after REF).
    pub t_rfc: u32,
    /// Power-down exit latency (light / fast-exit mode; paper cites ~10
    /// memory cycles for the lighter modes).
    pub t_xp: u32,
    /// CPU core cycles per DRAM bus cycle (3.2 GHz / 800 MHz = 4).
    pub cpu_ratio: u32,
}

impl TimingParams {
    /// The DDR3-1600 parameters of the paper's Table 1.
    ///
    /// tREFI = 7.8 us and tRFC = 260 ns converted at 800 MHz.
    pub fn ddr3_1600() -> Self {
        TimingParams {
            t_rc: 39,
            t_rcd: 11,
            t_ras: 28,
            t_faw: 24,
            t_wr: 12,
            t_rp: 11,
            t_rtrs: 2,
            t_cas: 11,
            t_cwd: 5,
            t_rtp: 6,
            t_burst: 4,
            t_ccd: 4,
            t_wtr: 6,
            t_rrd: 5,
            t_refi: 6240,
            t_rfc: 208,
            t_xp: 10,
            cpu_ratio: 4,
        }
    }

    /// A DDR4-2400 parameter set (JESD79-4, the standard the paper's
    /// Table 1 cites), in 1200 MHz bus cycles: tRCD/tCAS/tRP = 16,
    /// tRAS = 39, tRC = 55, tCWD = 12, tRRD_L = 6, tFAW = 26, tWTR_L = 9,
    /// tWR = 18, tRTP = 9, tCCD_L = 6, tREFI = 7.8 us, tRFC = 350 ns.
    /// The CPU ratio stays at 4 (a ~4.8 GHz core clock) so cross-part
    /// comparisons keep the same core.
    pub fn ddr4_2400() -> Self {
        TimingParams {
            t_rc: 55,
            t_rcd: 16,
            t_ras: 39,
            t_faw: 26,
            t_wr: 18,
            t_rp: 16,
            t_rtrs: 3,
            t_cas: 16,
            t_cwd: 12,
            t_rtp: 9,
            t_burst: 4,
            t_ccd: 6,
            t_wtr: 9,
            t_rrd: 6,
            t_refi: 9360,
            t_rfc: 420,
            t_xp: 8,
            cpu_ratio: 4,
        }
    }

    /// CAS-to-CAS delay for a read followed by a write to the *same rank*.
    ///
    /// The write burst must not collide with the read burst on the data
    /// bus: `tCAS + tBURST - tCWD`.
    pub fn rd_to_wr_same_rank(&self) -> u32 {
        self.t_cas + self.t_burst - self.t_cwd
    }

    /// CAS-to-CAS delay for a read followed by a write to a *different
    /// rank* on the same channel (adds the bus-switch gap).
    pub fn rd_to_wr_diff_rank(&self) -> u32 {
        self.rd_to_wr_same_rank() + self.t_rtrs
    }

    /// CAS-to-CAS delay for a write followed by a read to the *same rank*:
    /// `tCWD + tBURST + tWTR`.
    pub fn wr_to_rd_same_rank(&self) -> u32 {
        self.t_cwd + self.t_burst + self.t_wtr
    }

    /// CAS-to-CAS delay for a write followed by a read to a *different
    /// rank*: only the shared data bus constrains this,
    /// `tCWD + tBURST + tRTRS - tCAS` (clamped at zero).
    pub fn wr_to_rd_diff_rank(&self) -> u32 {
        (self.t_cwd + self.t_burst + self.t_rtrs).saturating_sub(self.t_cas)
    }

    /// Cycle at which the precharge implied by a `ReadAp` begins, relative
    /// to the column-read command (bounded below by tRAS via the device).
    pub fn read_ap_pre_offset(&self) -> u32 {
        self.t_rtp
    }

    /// Cycle at which the precharge implied by a `WriteAp` begins, relative
    /// to the column-write command.
    pub fn write_ap_pre_offset(&self) -> u32 {
        self.t_cwd + self.t_burst + self.t_wr
    }

    /// Worst-case gap between two transactions to *different rows of the
    /// same bank* when the first is a write: ACT-to-ACT spacing
    /// `tRCD + write_ap_pre_offset + tRP`.
    ///
    /// For Table-1 parameters this is the paper's `l = 43`.
    pub fn same_bank_wr_turnaround(&self) -> u32 {
        self.t_rcd + self.write_ap_pre_offset() + self.t_rp
    }

    /// Converts a CPU-cycle count to DRAM bus cycles (rounding up).
    pub fn cpu_to_dram(&self, cpu_cycles: u64) -> u64 {
        cpu_cycles.div_ceil(self.cpu_ratio as u64)
    }

    /// Converts DRAM bus cycles to CPU cycles.
    pub fn dram_to_cpu(&self, dram_cycles: u64) -> u64 {
        dram_cycles * self.cpu_ratio as u64
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_turnaround_constants() {
        let t = TimingParams::ddr3_1600();
        // Constants quoted verbatim in Section 4.2 of the paper.
        assert_eq!(t.rd_to_wr_same_rank(), 10);
        assert_eq!(t.wr_to_rd_same_rank(), 15);
    }

    #[test]
    fn same_bank_write_turnaround_is_43() {
        let t = TimingParams::ddr3_1600();
        // Section 4.3: "the largest gap ... a write followed by a read to
        // different rows in the same bank ... l = 43 cycles".
        assert_eq!(t.same_bank_wr_turnaround(), 43);
    }

    #[test]
    fn write_ap_offset() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.write_ap_pre_offset(), 5 + 4 + 12);
    }

    #[test]
    fn ddr4_parameters_are_self_consistent() {
        let t = TimingParams::ddr4_2400();
        assert!(t.t_rc >= t.t_ras + t.t_rp);
        assert!(t.t_cas > t.t_cwd - 8);
        assert!(t.wr_to_rd_same_rank() > t.rd_to_wr_same_rank());
        assert!(t.same_bank_wr_turnaround() > t.t_rc);
    }

    #[test]
    fn clock_ratio_conversions() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.dram_to_cpu(56), 224); // the paper's Q for 8 threads
        assert_eq!(t.cpu_to_dram(224), 56);
        assert_eq!(t.cpu_to_dram(225), 57);
    }
}
