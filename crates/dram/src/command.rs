//! DRAM commands: the vocabulary the memory controller speaks to a channel.

use crate::geometry::{BankId, ColId, RankId, RowId};
use crate::Cycle;
use std::fmt;

/// The kind of a DRAM command.
///
/// `ReadAp`/`WriteAp` carry an automatic precharge that closes the row once
/// the column access completes — the FS policies issue *only* these CAS
/// variants so that every transaction has an identical footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Open a row into the bank's row buffer.
    Activate,
    /// Column read from the open row (row stays open).
    Read,
    /// Column read with auto-precharge.
    ReadAp,
    /// Column write into the open row (row stays open).
    Write,
    /// Column write with auto-precharge.
    WriteAp,
    /// Close the open row of one bank.
    Precharge,
    /// Close all open rows of a rank.
    PrechargeAll,
    /// Refresh a rank (all banks must be precharged).
    Refresh,
    /// Enter a light power-down state on a rank.
    PowerDownEnter,
    /// Exit power-down; the rank accepts commands `t_xp` later.
    PowerDownExit,
}

impl CommandKind {
    /// True for `Read` and `ReadAp`.
    pub fn is_read(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::ReadAp)
    }

    /// True for `Write` and `WriteAp`.
    pub fn is_write(self) -> bool {
        matches!(self, CommandKind::Write | CommandKind::WriteAp)
    }

    /// True for any column access (read or write, with or without AP).
    pub fn is_cas(self) -> bool {
        self.is_read() || self.is_write()
    }

    /// True if this CAS carries an auto-precharge.
    pub fn has_auto_precharge(self) -> bool {
        matches!(self, CommandKind::ReadAp | CommandKind::WriteAp)
    }

    /// True if this command occupies a slot on the command bus.
    ///
    /// Everything the controller transmits does; this exists so that the
    /// checker can treat internally-generated events uniformly.
    pub fn uses_command_bus(self) -> bool {
        true
    }
}

impl fmt::Display for CommandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommandKind::Activate => "ACT",
            CommandKind::Read => "RD",
            CommandKind::ReadAp => "RDA",
            CommandKind::Write => "WR",
            CommandKind::WriteAp => "WRA",
            CommandKind::Precharge => "PRE",
            CommandKind::PrechargeAll => "PREA",
            CommandKind::Refresh => "REF",
            CommandKind::PowerDownEnter => "PDE",
            CommandKind::PowerDownExit => "PDX",
        };
        f.write_str(s)
    }
}

/// One DRAM command addressed to a rank (and possibly bank/row/column).
///
/// Channel selection is implicit: a [`crate::device::DramDevice`] models a
/// single channel, mirroring the per-channel controllers of real parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Command {
    pub kind: CommandKind,
    pub rank: RankId,
    /// Bank within the rank; ignored for rank-level commands
    /// (`PrechargeAll`, `Refresh`, power-down).
    pub bank: BankId,
    /// Row being activated; only meaningful for `Activate`.
    pub row: RowId,
    /// Column being accessed; only meaningful for CAS commands.
    pub col: ColId,
}

impl Command {
    /// An `Activate` opening `row` in `rank`/`bank`.
    pub fn activate(rank: RankId, bank: BankId, row: RowId) -> Self {
        Command { kind: CommandKind::Activate, rank, bank, row, col: ColId(0) }
    }

    /// A plain column read (row remains open).
    pub fn read(rank: RankId, bank: BankId, row: RowId, col: ColId) -> Self {
        Command { kind: CommandKind::Read, rank, bank, row, col }
    }

    /// A column read with auto-precharge.
    pub fn read_ap(rank: RankId, bank: BankId, row: RowId, col: ColId) -> Self {
        Command { kind: CommandKind::ReadAp, rank, bank, row, col }
    }

    /// A plain column write (row remains open).
    pub fn write(rank: RankId, bank: BankId, row: RowId, col: ColId) -> Self {
        Command { kind: CommandKind::Write, rank, bank, row, col }
    }

    /// A column write with auto-precharge.
    pub fn write_ap(rank: RankId, bank: BankId, row: RowId, col: ColId) -> Self {
        Command { kind: CommandKind::WriteAp, rank, bank, row, col }
    }

    /// A precharge closing `rank`/`bank`.
    pub fn precharge(rank: RankId, bank: BankId) -> Self {
        Command { kind: CommandKind::Precharge, rank, bank, row: RowId(0), col: ColId(0) }
    }

    /// A precharge-all for `rank`.
    pub fn precharge_all(rank: RankId) -> Self {
        Command {
            kind: CommandKind::PrechargeAll,
            rank,
            bank: BankId(0),
            row: RowId(0),
            col: ColId(0),
        }
    }

    /// A refresh for `rank`.
    pub fn refresh(rank: RankId) -> Self {
        Command { kind: CommandKind::Refresh, rank, bank: BankId(0), row: RowId(0), col: ColId(0) }
    }

    /// Enter light power-down on `rank`.
    pub fn power_down(rank: RankId) -> Self {
        Command {
            kind: CommandKind::PowerDownEnter,
            rank,
            bank: BankId(0),
            row: RowId(0),
            col: ColId(0),
        }
    }

    /// Exit power-down on `rank`.
    pub fn power_up(rank: RankId) -> Self {
        Command {
            kind: CommandKind::PowerDownExit,
            rank,
            bank: BankId(0),
            row: RowId(0),
            col: ColId(0),
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            CommandKind::Activate => {
                write!(f, "ACT {} {} row{}", self.rank, self.bank, self.row.0)
            }
            k if k.is_cas() => {
                write!(f, "{} {} {} col{}", k, self.rank, self.bank, self.col.0)
            }
            CommandKind::Precharge => write!(f, "PRE {} {}", self.rank, self.bank),
            k => write!(f, "{} {}", k, self.rank),
        }
    }
}

/// A command together with the cycle it was placed on the command bus.
///
/// This is the record type consumed by [`crate::checker::TimingChecker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimedCommand {
    pub cmd: Command,
    pub cycle: Cycle,
}

impl TimedCommand {
    pub fn new(cmd: Command, cycle: Cycle) -> Self {
        TimedCommand { cmd, cycle }
    }
}

impl fmt::Display for TimedCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}", self.cycle, self.cmd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(CommandKind::ReadAp.is_read());
        assert!(CommandKind::ReadAp.is_cas());
        assert!(CommandKind::ReadAp.has_auto_precharge());
        assert!(CommandKind::WriteAp.is_write());
        assert!(!CommandKind::Read.has_auto_precharge());
        assert!(!CommandKind::Activate.is_cas());
        assert!(!CommandKind::Precharge.is_read());
    }

    #[test]
    fn display_is_nonempty_and_informative() {
        let c = Command::read_ap(RankId(3), BankId(5), RowId(7), ColId(9));
        let s = format!("{c}");
        assert!(s.contains("RDA") && s.contains("r3") && s.contains("b5"));
        let t = TimedCommand::new(c, 120);
        assert!(format!("{t}").starts_with("@120"));
    }
}
