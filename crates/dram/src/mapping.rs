//! Physical-address-to-DRAM-location mapping policies.
//!
//! The paper notes that "various page mapping policies can impact the
//! throughput of our secure memory system": the baseline open-page
//! controller wants consecutive lines to land in the same row (row-buffer
//! hits), FS with rank partitioning wants a security domain's pages pinned
//! to its own rank, and close-page interleaving wants consecutive lines
//! spread across banks. All three are implemented here as pure bijections
//! between [`LineAddr`] and [`Location`].

use crate::geometry::{BankId, ChannelId, ColId, Geometry, LineAddr, Location, RankId, RowId};

/// The available address-mapping schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingScheme {
    /// Open-page locality mapping: `row : rank : bank : col` (column bits
    /// lowest), so a streaming access pattern stays in one row.
    OpenPageLocality,
    /// Close-page interleave: `row : col : rank : bank` (bank bits lowest),
    /// so consecutive lines rotate across banks and ranks.
    ClosePageInterleave,
    /// Rank-partitioned: the *top* bits select the rank so each rank is one
    /// contiguous region that the OS can hand to a single security domain;
    /// within a rank the layout is open-page (`rank : row : bank : col`).
    RankPartitioned,
    /// Bank-partitioned: top bits select (rank, bank) so each bank is one
    /// contiguous region (`rank : bank : row : col`).
    BankPartitioned,
}

/// A concrete mapping: a scheme bound to a geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    geom: Geometry,
    scheme: MappingScheme,
}

impl AddressMapping {
    pub fn new(geom: Geometry, scheme: MappingScheme) -> Self {
        AddressMapping { geom, scheme }
    }

    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Decodes a line address into a DRAM location.
    ///
    /// Addresses beyond the geometry's capacity wrap (the top bits are
    /// masked), which lets synthetic workloads draw from a full 64-bit
    /// space.
    pub fn decode(&self, addr: LineAddr) -> Location {
        let g = &self.geom;
        let cols = g.cols_per_row() as u64;
        let banks = g.banks_per_rank() as u64;
        let ranks = g.ranks_per_channel() as u64;
        let chans = g.channels() as u64;
        let rows = g.rows_per_bank() as u64;
        let mut a = addr.0 % g.total_lines();
        let mut take = |n: u64| {
            let v = a % n;
            a /= n;
            v
        };
        match self.scheme {
            MappingScheme::OpenPageLocality => {
                let col = take(cols);
                let chan = take(chans);
                let bank = take(banks);
                let rank = take(ranks);
                let row = take(rows);
                self.loc(chan, rank, bank, row, col)
            }
            MappingScheme::ClosePageInterleave => {
                let chan = take(chans);
                let bank = take(banks);
                let rank = take(ranks);
                let col = take(cols);
                let row = take(rows);
                self.loc(chan, rank, bank, row, col)
            }
            MappingScheme::RankPartitioned => {
                let col = take(cols);
                let bank = take(banks);
                let row = take(rows);
                let chan = take(chans);
                let rank = take(ranks);
                self.loc(chan, rank, bank, row, col)
            }
            MappingScheme::BankPartitioned => {
                let col = take(cols);
                let row = take(rows);
                let chan = take(chans);
                let bank = take(banks);
                let rank = take(ranks);
                self.loc(chan, rank, bank, row, col)
            }
        }
    }

    /// Encodes a DRAM location back into its line address (the inverse of
    /// [`AddressMapping::decode`]). Used to synthesise dummy-request
    /// addresses inside a given partition.
    pub fn encode(&self, loc: &Location) -> LineAddr {
        let g = &self.geom;
        let cols = g.cols_per_row() as u64;
        let banks = g.banks_per_rank() as u64;
        let ranks = g.ranks_per_channel() as u64;
        let chans = g.channels() as u64;
        let rows = g.rows_per_bank() as u64;
        let fields: [(u64, u64); 5] = match self.scheme {
            MappingScheme::OpenPageLocality => [
                (loc.col.0 as u64, cols),
                (loc.channel.0 as u64, chans),
                (loc.bank.0 as u64, banks),
                (loc.rank.0 as u64, ranks),
                (loc.row.0 as u64, rows),
            ],
            MappingScheme::ClosePageInterleave => [
                (loc.channel.0 as u64, chans),
                (loc.bank.0 as u64, banks),
                (loc.rank.0 as u64, ranks),
                (loc.col.0 as u64, cols),
                (loc.row.0 as u64, rows),
            ],
            MappingScheme::RankPartitioned => [
                (loc.col.0 as u64, cols),
                (loc.bank.0 as u64, banks),
                (loc.row.0 as u64, rows),
                (loc.channel.0 as u64, chans),
                (loc.rank.0 as u64, ranks),
            ],
            MappingScheme::BankPartitioned => [
                (loc.col.0 as u64, cols),
                (loc.row.0 as u64, rows),
                (loc.channel.0 as u64, chans),
                (loc.bank.0 as u64, banks),
                (loc.rank.0 as u64, ranks),
            ],
        };
        let mut addr = 0u64;
        for &(v, n) in fields.iter().rev() {
            addr = addr * n + v;
        }
        LineAddr(addr)
    }

    fn loc(&self, chan: u64, rank: u64, bank: u64, row: u64, col: u64) -> Location {
        Location {
            channel: ChannelId(chan as u8),
            rank: RankId(rank as u8),
            bank: BankId(bank as u8),
            row: RowId(row as u32),
            col: ColId(col as u16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_schemes() -> [MappingScheme; 4] {
        [
            MappingScheme::OpenPageLocality,
            MappingScheme::ClosePageInterleave,
            MappingScheme::RankPartitioned,
            MappingScheme::BankPartitioned,
        ]
    }

    #[test]
    fn decode_encode_roundtrip() {
        let g = Geometry::tiny();
        for scheme in all_schemes() {
            let m = AddressMapping::new(g, scheme);
            for a in 0..g.total_lines() {
                let loc = m.decode(LineAddr(a));
                assert!(g.contains(&loc), "{scheme:?} produced out-of-range {loc}");
                assert_eq!(m.encode(&loc), LineAddr(a), "{scheme:?} not a bijection at {a}");
            }
        }
    }

    #[test]
    fn open_page_keeps_consecutive_lines_in_one_row() {
        let m = AddressMapping::new(Geometry::paper_default(), MappingScheme::OpenPageLocality);
        let a = m.decode(LineAddr(0));
        let b = m.decode(LineAddr(1));
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.rank, b.rank);
        assert_eq!(b.col.0, a.col.0 + 1);
    }

    #[test]
    fn close_page_rotates_banks_first() {
        let m = AddressMapping::new(Geometry::paper_default(), MappingScheme::ClosePageInterleave);
        let a = m.decode(LineAddr(0));
        let b = m.decode(LineAddr(1));
        assert_ne!(a.bank, b.bank);
    }

    #[test]
    fn rank_partitioned_pins_contiguous_regions_to_ranks() {
        let g = Geometry::paper_default();
        let m = AddressMapping::new(g, MappingScheme::RankPartitioned);
        let lines_per_rank = g.total_lines() / g.ranks_per_channel() as u64;
        // Every address inside the first rank-sized region decodes to rank 0.
        for probe in [0, 1, lines_per_rank / 2, lines_per_rank - 1] {
            assert_eq!(m.decode(LineAddr(probe)).rank, RankId(0));
        }
        assert_eq!(m.decode(LineAddr(lines_per_rank)).rank, RankId(1));
    }

    #[test]
    fn bank_partitioned_pins_contiguous_regions_to_banks() {
        let g = Geometry::paper_default();
        let m = AddressMapping::new(g, MappingScheme::BankPartitioned);
        let lines_per_bank = g.total_lines() / g.total_banks() as u64;
        let a = m.decode(LineAddr(0));
        let b = m.decode(LineAddr(lines_per_bank - 1));
        assert_eq!((a.rank, a.bank), (b.rank, b.bank));
        let c = m.decode(LineAddr(lines_per_bank));
        assert_ne!((a.rank, a.bank), (c.rank, c.bank));
    }

    #[test]
    fn addresses_beyond_capacity_wrap() {
        let g = Geometry::tiny();
        let m = AddressMapping::new(g, MappingScheme::OpenPageLocality);
        assert_eq!(m.decode(LineAddr(g.total_lines() + 5)), m.decode(LineAddr(5)));
    }
}
