//! Per-bank DRAM state machine: row-buffer state and bank-local timing.

use crate::checker::Violation;
use crate::command::{Command, CommandKind};
use crate::geometry::RowId;
use crate::timing::TimingParams;
use crate::Cycle;

/// The state of one DRAM bank: which row (if any) its row buffer holds and
/// the earliest cycles at which each command class may next be issued.
///
/// The bank does not know about rank-level constraints (tRRD, tFAW, CAS
/// turnarounds) — those live in [`crate::rank::RankState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankState {
    open_row: Option<RowId>,
    /// Earliest legal `Activate`.
    next_activate: Cycle,
    /// Earliest legal CAS to the open row (tRCD-gated).
    next_cas: Cycle,
    /// Earliest legal `Precharge` (tRAS / tRTP / write-recovery gated).
    next_precharge: Cycle,
    /// Cycle of the most recent `Activate`, for tRC accounting.
    last_activate: Cycle,
}

impl Default for BankState {
    fn default() -> Self {
        BankState::new()
    }
}

impl BankState {
    /// A closed, immediately-usable bank.
    pub fn new() -> Self {
        BankState {
            open_row: None,
            next_activate: 0,
            next_cas: 0,
            next_precharge: 0,
            last_activate: 0,
        }
    }

    /// The row currently held in the row buffer, if any.
    pub fn open_row(&self) -> Option<RowId> {
        self.open_row
    }

    /// Earliest cycle at which an `Activate` is legal.
    pub fn next_activate_at(&self) -> Cycle {
        self.next_activate
    }

    /// Earliest cycle at which a CAS to the open row is legal.
    pub fn next_cas_at(&self) -> Cycle {
        self.next_cas
    }

    /// Earliest cycle at which a `Precharge` is legal.
    pub fn next_precharge_at(&self) -> Cycle {
        self.next_precharge
    }

    /// True if the bank is precharged and past its recovery window, i.e. a
    /// refresh or activate could start at `cycle`.
    pub fn idle_at(&self, cycle: Cycle) -> bool {
        self.open_row.is_none() && cycle >= self.next_activate
    }

    /// Checks bank-local legality of `cmd` at `cycle`.
    pub fn can_issue(
        &self,
        cmd: &Command,
        cycle: Cycle,
        _t: &TimingParams,
    ) -> Result<(), Violation> {
        match cmd.kind {
            CommandKind::Activate => {
                if self.open_row.is_some() {
                    return Err(Violation::state(*cmd, cycle, "activate while a row is open"));
                }
                Violation::check_earliest(*cmd, cycle, self.next_activate, "tRC/tRP")
            }
            k if k.is_cas() => {
                match self.open_row {
                    None => return Err(Violation::state(*cmd, cycle, "CAS on a closed bank")),
                    Some(r) if r != cmd.row => {
                        return Err(Violation::state(*cmd, cycle, "CAS to a row that is not open"))
                    }
                    Some(_) => {}
                }
                Violation::check_earliest(*cmd, cycle, self.next_cas, "tRCD")
            }
            CommandKind::Precharge | CommandKind::PrechargeAll => {
                if self.open_row.is_none() {
                    // Precharging an already-precharged bank is a legal NOP.
                    return Ok(());
                }
                Violation::check_earliest(*cmd, cycle, self.next_precharge, "tRAS/tRTP/tWR")
            }
            CommandKind::Refresh => {
                if self.open_row.is_some() {
                    return Err(Violation::state(*cmd, cycle, "refresh with a row open"));
                }
                Violation::check_earliest(*cmd, cycle, self.next_activate, "tRP before REF")
            }
            // Power-down legality is rank-level.
            _ => Ok(()),
        }
    }

    /// Applies `cmd` at `cycle`, updating row state and earliest-issue
    /// times. Caller must have validated with [`BankState::can_issue`].
    pub fn apply(&mut self, cmd: &Command, cycle: Cycle, t: &TimingParams) {
        match cmd.kind {
            CommandKind::Activate => {
                self.open_row = Some(cmd.row);
                self.last_activate = cycle;
                self.next_cas = cycle + t.t_rcd as Cycle;
                self.next_precharge = cycle + t.t_ras as Cycle;
                self.next_activate = cycle + t.t_rc as Cycle;
            }
            CommandKind::Read | CommandKind::ReadAp => {
                self.next_precharge = self.next_precharge.max(cycle + t.t_rtp as Cycle);
                if cmd.kind == CommandKind::ReadAp {
                    self.auto_precharge(t);
                }
            }
            CommandKind::Write | CommandKind::WriteAp => {
                self.next_precharge =
                    self.next_precharge.max(cycle + t.write_ap_pre_offset() as Cycle);
                if cmd.kind == CommandKind::WriteAp {
                    self.auto_precharge(t);
                }
            }
            CommandKind::Precharge | CommandKind::PrechargeAll => {
                if self.open_row.is_some() {
                    let pre_start = cycle.max(self.next_precharge);
                    self.close(pre_start, t);
                }
            }
            CommandKind::Refresh => {
                self.next_activate = self.next_activate.max(cycle + t.t_rfc as Cycle);
            }
            CommandKind::PowerDownEnter | CommandKind::PowerDownExit => {}
        }
    }

    /// Earliest cycle at which `cmd` could pass [`BankState::can_issue`],
    /// assuming no further commands touch this bank in the meantime.
    /// `Cycle::MAX` when the row-buffer state rules the command out
    /// entirely (CAS on a closed bank or the wrong row, ACT/REF with a
    /// row open) — only another command can change that.
    pub fn next_legal_at(&self, cmd: &Command) -> Cycle {
        match cmd.kind {
            CommandKind::Activate | CommandKind::Refresh | CommandKind::PowerDownEnter => {
                if self.open_row.is_some() {
                    return Cycle::MAX;
                }
                self.next_activate
            }
            k if k.is_cas() => match self.open_row {
                Some(r) if r == cmd.row => self.next_cas,
                _ => Cycle::MAX,
            },
            CommandKind::Precharge | CommandKind::PrechargeAll => {
                if self.open_row.is_none() {
                    0 // legal NOP at any cycle
                } else {
                    self.next_precharge
                }
            }
            _ => 0,
        }
    }

    /// Internal precharge triggered by a `ReadAp`/`WriteAp`: the DRAM closes
    /// the row as soon as tRAS and the CAS recovery window both allow.
    fn auto_precharge(&mut self, t: &TimingParams) {
        let pre_start = self.next_precharge;
        self.close(pre_start, t);
    }

    fn close(&mut self, pre_start: Cycle, t: &TimingParams) {
        self.open_row = None;
        self.next_activate = self.next_activate.max(pre_start + t.t_rp as Cycle);
        // No CAS is legal until the next activate re-opens a row.
        self.next_cas = Cycle::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BankId, ColId, RankId};

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    fn act(row: u32) -> Command {
        Command::activate(RankId(0), BankId(0), RowId(row))
    }
    fn rda(row: u32) -> Command {
        Command::read_ap(RankId(0), BankId(0), RowId(row), ColId(0))
    }
    fn wra(row: u32) -> Command {
        Command::write_ap(RankId(0), BankId(0), RowId(row), ColId(0))
    }

    #[test]
    fn fresh_bank_accepts_activate() {
        let b = BankState::new();
        assert!(b.can_issue(&act(1), 0, &t()).is_ok());
        assert!(b.idle_at(0));
    }

    #[test]
    fn cas_requires_trcd() {
        let timing = t();
        let mut b = BankState::new();
        b.apply(&act(1), 100, &timing);
        assert!(b.can_issue(&rda(1), 110, &timing).is_err());
        assert!(b.can_issue(&rda(1), 111, &timing).is_ok());
    }

    #[test]
    fn cas_to_wrong_row_rejected() {
        let timing = t();
        let mut b = BankState::new();
        b.apply(&act(1), 0, &timing);
        let err = b.can_issue(&rda(2), 50, &timing).unwrap_err();
        assert!(err.to_string().contains("not open"));
    }

    #[test]
    fn read_ap_closes_row_and_respects_trp() {
        let timing = t();
        let mut b = BankState::new();
        b.apply(&act(1), 0, &timing);
        b.apply(&rda(1), 11, &timing);
        assert_eq!(b.open_row(), None);
        // pre starts at max(tRAS=28, 11+tRTP=17) = 28; +tRP=11 => 39 = tRC.
        assert_eq!(b.next_activate_at(), 39);
        assert!(b.can_issue(&act(2), 38, &timing).is_err());
        assert!(b.can_issue(&act(2), 39, &timing).is_ok());
    }

    #[test]
    fn write_ap_turnaround_is_43_from_activate() {
        let timing = t();
        let mut b = BankState::new();
        b.apply(&act(1), 0, &timing);
        b.apply(&wra(1), 11, &timing);
        // pre at 11 + (tCWD+tBURST+tWR)=21 => 32; +tRP => 43. The paper's
        // same-bank write turnaround.
        assert_eq!(b.next_activate_at(), 43);
    }

    #[test]
    fn explicit_precharge_then_activate() {
        let timing = t();
        let mut b = BankState::new();
        b.apply(&act(1), 0, &timing);
        let pre = Command::precharge(RankId(0), BankId(0));
        // tRAS = 28 gates the precharge.
        assert!(b.can_issue(&pre, 27, &timing).is_err());
        assert!(b.can_issue(&pre, 28, &timing).is_ok());
        b.apply(&pre, 28, &timing);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.next_activate_at(), 39); // max(tRC, 28 + tRP)
    }

    #[test]
    fn activate_while_open_rejected() {
        let timing = t();
        let mut b = BankState::new();
        b.apply(&act(1), 0, &timing);
        assert!(b.can_issue(&act(2), 100, &timing).is_err());
    }

    #[test]
    fn cas_on_closed_bank_rejected() {
        let b = BankState::new();
        assert!(b.can_issue(&rda(1), 0, &t()).is_err());
    }

    #[test]
    fn precharge_on_closed_bank_is_nop() {
        let timing = t();
        let mut b = BankState::new();
        let pre = Command::precharge(RankId(0), BankId(0));
        assert!(b.can_issue(&pre, 5, &timing).is_ok());
        b.apply(&pre, 5, &timing);
        assert!(b.can_issue(&act(1), 5, &timing).is_ok());
    }

    #[test]
    fn refresh_needs_all_closed_and_blocks_activate() {
        let timing = t();
        let mut b = BankState::new();
        let refr = Command::refresh(RankId(0));
        assert!(b.can_issue(&refr, 0, &timing).is_ok());
        b.apply(&refr, 0, &timing);
        assert!(b.can_issue(&act(1), timing.t_rfc as u64 - 1, &timing).is_err());
        assert!(b.can_issue(&act(1), timing.t_rfc as u64, &timing).is_ok());
    }
}
