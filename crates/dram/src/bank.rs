//! Per-bank DRAM state machine: row-buffer state and bank-local timing.
//!
//! The hot state is laid out struct-of-arrays: one [`BankArrays`] holds
//! every bank of a rank as flat, cache-line-friendly vectors of ready
//! cycles and open-row registers, so the fused event-bound scan, the
//! issue loop, and `TimingChecker`-style probes walk contiguous memory
//! instead of chasing per-bank structs.

use crate::checker::Violation;
use crate::command::{Command, CommandKind};
use crate::geometry::RowId;
use crate::timing::TimingParams;
use crate::Cycle;

/// Sentinel in the open-row register meaning "no row open". Row ids are
/// physical row indices (far below `u32::MAX` on every modelled part).
pub const NO_ROW: u32 = u32::MAX;

/// The banks of one rank in struct-of-arrays layout: which row (if any)
/// each row buffer holds and the earliest cycles at which each command
/// class may next be issued, one flat array per field.
///
/// Banks do not know about rank-level constraints (tRRD, tFAW, CAS
/// turnarounds) — those live in [`crate::rank::RankState`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankArrays {
    /// Open-row register per bank ([`NO_ROW`] when precharged).
    open_row: Vec<u32>,
    /// Earliest legal `Activate` per bank.
    next_activate: Vec<Cycle>,
    /// Earliest legal CAS to the open row (tRCD-gated) per bank.
    next_cas: Vec<Cycle>,
    /// Earliest legal `Precharge` (tRAS / tRTP / write-recovery gated).
    next_precharge: Vec<Cycle>,
    /// Cycle of the most recent `Activate`, for tRC accounting.
    last_activate: Vec<Cycle>,
}

impl BankArrays {
    /// `banks` closed, immediately-usable banks.
    pub fn new(banks: usize) -> Self {
        BankArrays {
            open_row: vec![NO_ROW; banks],
            next_activate: vec![0; banks],
            next_cas: vec![0; banks],
            next_precharge: vec![0; banks],
            last_activate: vec![0; banks],
        }
    }

    /// Number of banks held.
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// True when holding no banks (never the case for a real rank).
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// The row currently held in `bank`'s row buffer, if any.
    #[inline]
    pub fn open_row(&self, bank: usize) -> Option<RowId> {
        let r = self.open_row[bank];
        (r != NO_ROW).then_some(RowId(r))
    }

    /// True if any bank holds an open row.
    #[inline]
    pub fn any_open(&self) -> bool {
        self.open_row.iter().any(|&r| r != NO_ROW)
    }

    /// Earliest cycle at which an `Activate` to `bank` is legal.
    #[inline]
    pub fn next_activate_at(&self, bank: usize) -> Cycle {
        self.next_activate[bank]
    }

    /// Earliest cycle at which a CAS to `bank`'s open row is legal.
    #[inline]
    pub fn next_cas_at(&self, bank: usize) -> Cycle {
        self.next_cas[bank]
    }

    /// Earliest cycle at which a `Precharge` of `bank` is legal.
    #[inline]
    pub fn next_precharge_at(&self, bank: usize) -> Cycle {
        self.next_precharge[bank]
    }

    /// Flat per-bank CAS readiness — the event-bound scan's inner array.
    #[inline]
    /// The raw open-row registers ([`NO_ROW`] = precharged), for
    /// schedulers that classify whole queues against row state with
    /// plain array loads instead of per-entry accessor calls.
    pub fn open_rows_slice(&self) -> &[u32] {
        &self.open_row
    }

    pub fn next_cas_slice(&self) -> &[Cycle] {
        &self.next_cas
    }

    /// Flat per-bank precharge readiness.
    #[inline]
    pub fn next_precharge_slice(&self) -> &[Cycle] {
        &self.next_precharge
    }

    /// Flat per-bank activate readiness.
    #[inline]
    pub fn next_activate_slice(&self) -> &[Cycle] {
        &self.next_activate
    }

    /// True if `bank` is precharged and past its recovery window, i.e. a
    /// refresh or activate could start at `cycle`.
    #[inline]
    pub fn idle_at(&self, bank: usize, cycle: Cycle) -> bool {
        self.open_row[bank] == NO_ROW && cycle >= self.next_activate[bank]
    }

    /// True if every bank is precharged and past recovery at `cycle`.
    pub fn all_idle(&self, cycle: Cycle) -> bool {
        (0..self.len()).all(|b| self.idle_at(b, cycle))
    }

    /// Checks bank-local legality of `cmd` at `cycle` against `bank`.
    pub fn can_issue(
        &self,
        bank: usize,
        cmd: &Command,
        cycle: Cycle,
        _t: &TimingParams,
    ) -> Result<(), Violation> {
        match cmd.kind {
            CommandKind::Activate => {
                if self.open_row[bank] != NO_ROW {
                    return Err(Violation::state(*cmd, cycle, "activate while a row is open"));
                }
                Violation::check_earliest(*cmd, cycle, self.next_activate[bank], "tRC/tRP")
            }
            k if k.is_cas() => {
                match self.open_row[bank] {
                    NO_ROW => return Err(Violation::state(*cmd, cycle, "CAS on a closed bank")),
                    r if r != cmd.row.0 => {
                        return Err(Violation::state(*cmd, cycle, "CAS to a row that is not open"))
                    }
                    _ => {}
                }
                Violation::check_earliest(*cmd, cycle, self.next_cas[bank], "tRCD")
            }
            CommandKind::Precharge | CommandKind::PrechargeAll => {
                if self.open_row[bank] == NO_ROW {
                    // Precharging an already-precharged bank is a legal NOP.
                    return Ok(());
                }
                Violation::check_earliest(*cmd, cycle, self.next_precharge[bank], "tRAS/tRTP/tWR")
            }
            CommandKind::Refresh => {
                if self.open_row[bank] != NO_ROW {
                    return Err(Violation::state(*cmd, cycle, "refresh with a row open"));
                }
                Violation::check_earliest(*cmd, cycle, self.next_activate[bank], "tRP before REF")
            }
            // Power-down legality is rank-level.
            _ => Ok(()),
        }
    }

    /// Applies `cmd` at `cycle` to `bank`, updating row state and
    /// earliest-issue times. Caller must have validated with
    /// [`BankArrays::can_issue`].
    pub fn apply(&mut self, bank: usize, cmd: &Command, cycle: Cycle, t: &TimingParams) {
        match cmd.kind {
            CommandKind::Activate => {
                self.open_row[bank] = cmd.row.0;
                self.last_activate[bank] = cycle;
                self.next_cas[bank] = cycle + t.t_rcd as Cycle;
                self.next_precharge[bank] = cycle + t.t_ras as Cycle;
                self.next_activate[bank] = cycle + t.t_rc as Cycle;
            }
            CommandKind::Read | CommandKind::ReadAp => {
                self.next_precharge[bank] = self.next_precharge[bank].max(cycle + t.t_rtp as Cycle);
                if cmd.kind == CommandKind::ReadAp {
                    self.auto_precharge(bank, t);
                }
            }
            CommandKind::Write | CommandKind::WriteAp => {
                self.next_precharge[bank] =
                    self.next_precharge[bank].max(cycle + t.write_ap_pre_offset() as Cycle);
                if cmd.kind == CommandKind::WriteAp {
                    self.auto_precharge(bank, t);
                }
            }
            CommandKind::Precharge | CommandKind::PrechargeAll => {
                if self.open_row[bank] != NO_ROW {
                    let pre_start = cycle.max(self.next_precharge[bank]);
                    self.close(bank, pre_start, t);
                }
            }
            CommandKind::Refresh => {
                self.next_activate[bank] = self.next_activate[bank].max(cycle + t.t_rfc as Cycle);
            }
            CommandKind::PowerDownEnter | CommandKind::PowerDownExit => {}
        }
    }

    /// Earliest cycle at which `cmd` could pass [`BankArrays::can_issue`]
    /// against `bank`, assuming no further commands touch the bank in the
    /// meantime. `Cycle::MAX` when the row-buffer state rules the command
    /// out entirely (CAS on a closed bank or the wrong row, ACT/REF with
    /// a row open) — only another command can change that.
    pub fn next_legal_at(&self, bank: usize, cmd: &Command) -> Cycle {
        match cmd.kind {
            CommandKind::Activate | CommandKind::Refresh | CommandKind::PowerDownEnter => {
                if self.open_row[bank] != NO_ROW {
                    return Cycle::MAX;
                }
                self.next_activate[bank]
            }
            k if k.is_cas() => {
                if self.open_row[bank] == cmd.row.0 {
                    self.next_cas[bank]
                } else {
                    Cycle::MAX
                }
            }
            CommandKind::Precharge | CommandKind::PrechargeAll => {
                if self.open_row[bank] == NO_ROW {
                    0 // legal NOP at any cycle
                } else {
                    self.next_precharge[bank]
                }
            }
            _ => 0,
        }
    }

    /// Internal precharge triggered by a `ReadAp`/`WriteAp`: the DRAM
    /// closes the row as soon as tRAS and the CAS recovery window allow.
    fn auto_precharge(&mut self, bank: usize, t: &TimingParams) {
        let pre_start = self.next_precharge[bank];
        self.close(bank, pre_start, t);
    }

    fn close(&mut self, bank: usize, pre_start: Cycle, t: &TimingParams) {
        self.open_row[bank] = NO_ROW;
        self.next_activate[bank] = self.next_activate[bank].max(pre_start + t.t_rp as Cycle);
        // No CAS is legal until the next activate re-opens a row.
        self.next_cas[bank] = Cycle::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BankId, ColId, RankId};

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    fn mk() -> BankArrays {
        BankArrays::new(1)
    }

    fn act(row: u32) -> Command {
        Command::activate(RankId(0), BankId(0), RowId(row))
    }
    fn rda(row: u32) -> Command {
        Command::read_ap(RankId(0), BankId(0), RowId(row), ColId(0))
    }
    fn wra(row: u32) -> Command {
        Command::write_ap(RankId(0), BankId(0), RowId(row), ColId(0))
    }

    #[test]
    fn fresh_bank_accepts_activate() {
        let b = mk();
        assert!(b.can_issue(0, &act(1), 0, &t()).is_ok());
        assert!(b.idle_at(0, 0));
    }

    #[test]
    fn cas_requires_trcd() {
        let timing = t();
        let mut b = mk();
        b.apply(0, &act(1), 100, &timing);
        assert!(b.can_issue(0, &rda(1), 110, &timing).is_err());
        assert!(b.can_issue(0, &rda(1), 111, &timing).is_ok());
    }

    #[test]
    fn cas_to_wrong_row_rejected() {
        let timing = t();
        let mut b = mk();
        b.apply(0, &act(1), 0, &timing);
        let err = b.can_issue(0, &rda(2), 50, &timing).unwrap_err();
        assert!(err.to_string().contains("not open"));
    }

    #[test]
    fn read_ap_closes_row_and_respects_trp() {
        let timing = t();
        let mut b = mk();
        b.apply(0, &act(1), 0, &timing);
        b.apply(0, &rda(1), 11, &timing);
        assert_eq!(b.open_row(0), None);
        // pre starts at max(tRAS=28, 11+tRTP=17) = 28; +tRP=11 => 39 = tRC.
        assert_eq!(b.next_activate_at(0), 39);
        assert!(b.can_issue(0, &act(2), 38, &timing).is_err());
        assert!(b.can_issue(0, &act(2), 39, &timing).is_ok());
    }

    #[test]
    fn write_ap_turnaround_is_43_from_activate() {
        let timing = t();
        let mut b = mk();
        b.apply(0, &act(1), 0, &timing);
        b.apply(0, &wra(1), 11, &timing);
        // pre at 11 + (tCWD+tBURST+tWR)=21 => 32; +tRP => 43. The paper's
        // same-bank write turnaround.
        assert_eq!(b.next_activate_at(0), 43);
    }

    #[test]
    fn explicit_precharge_then_activate() {
        let timing = t();
        let mut b = mk();
        b.apply(0, &act(1), 0, &timing);
        let pre = Command::precharge(RankId(0), BankId(0));
        // tRAS = 28 gates the precharge.
        assert!(b.can_issue(0, &pre, 27, &timing).is_err());
        assert!(b.can_issue(0, &pre, 28, &timing).is_ok());
        b.apply(0, &pre, 28, &timing);
        assert_eq!(b.open_row(0), None);
        assert_eq!(b.next_activate_at(0), 39); // max(tRC, 28 + tRP)
    }

    #[test]
    fn activate_while_open_rejected() {
        let timing = t();
        let mut b = mk();
        b.apply(0, &act(1), 0, &timing);
        assert!(b.can_issue(0, &act(2), 100, &timing).is_err());
    }

    #[test]
    fn cas_on_closed_bank_rejected() {
        let b = mk();
        assert!(b.can_issue(0, &rda(1), 0, &t()).is_err());
    }

    #[test]
    fn precharge_on_closed_bank_is_nop() {
        let timing = t();
        let mut b = mk();
        let pre = Command::precharge(RankId(0), BankId(0));
        assert!(b.can_issue(0, &pre, 5, &timing).is_ok());
        b.apply(0, &pre, 5, &timing);
        assert!(b.can_issue(0, &act(1), 5, &timing).is_ok());
    }

    #[test]
    fn refresh_needs_all_closed_and_blocks_activate() {
        let timing = t();
        let mut b = mk();
        let refr = Command::refresh(RankId(0));
        assert!(b.can_issue(0, &refr, 0, &timing).is_ok());
        b.apply(0, &refr, 0, &timing);
        assert!(b.can_issue(0, &act(1), timing.t_rfc as u64 - 1, &timing).is_err());
        assert!(b.can_issue(0, &act(1), timing.t_rfc as u64, &timing).is_ok());
    }

    #[test]
    fn soa_slices_mirror_accessors() {
        let timing = t();
        let mut b = BankArrays::new(4);
        b.apply(1, &Command::activate(RankId(0), BankId(1), RowId(7)), 0, &timing);
        b.apply(3, &Command::activate(RankId(0), BankId(3), RowId(9)), 5, &timing);
        for bank in 0..4 {
            assert_eq!(b.next_cas_slice()[bank], b.next_cas_at(bank));
            assert_eq!(b.next_precharge_slice()[bank], b.next_precharge_at(bank));
            assert_eq!(b.next_activate_slice()[bank], b.next_activate_at(bank));
        }
        assert_eq!(b.open_row(1), Some(RowId(7)));
        assert_eq!(b.open_row(0), None);
        assert!(b.any_open());
    }
}
