//! Shared per-channel resources: the command bus (one command per cycle)
//! and the data bus (burst occupancy plus the rank-to-rank switch gap).

use crate::checker::Violation;
use crate::command::Command;
use crate::geometry::RankId;
use crate::timing::TimingParams;
use crate::Cycle;

/// One scheduled data-bus burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Transfer {
    start: Cycle,
    end: Cycle,
    rank: RankId,
}

/// Occupancy state of one channel's command and data buses.
///
/// Data transfers are *scheduled into the future* at CAS-issue time (a read
/// CAS at cycle `c` occupies the bus at `[c + tCAS, c + tCAS + tBURST)`),
/// so the bus model keeps a short horizon of upcoming transfers and checks
/// each new CAS against all of them, not just the latest — a later-issued
/// write burst can start *before* an earlier-issued read burst.
#[derive(Debug, Clone, Default)]
pub struct ChannelState {
    last_cmd_cycle: Option<Cycle>,
    transfers: Vec<Transfer>,
    busy_cycles: Cycle,
    /// Pruning floor `min(tCAS, tCWD)`, hoisted from the device profile
    /// at construction instead of being recomputed on every CAS apply.
    /// `Default` leaves it 0, which only shrinks the pruning horizon —
    /// a superset of transfers is retained and every legality answer is
    /// unchanged — so timing-less construction stays safe.
    min_cas_lat: Cycle,
}

impl ChannelState {
    pub fn new() -> Self {
        ChannelState::default()
    }

    /// Channel state bound to one device profile, with the transfer
    /// pruning horizon fixed up front.
    pub fn for_timing(t: &TimingParams) -> Self {
        ChannelState { min_cas_lat: t.t_cas.min(t.t_cwd) as Cycle, ..ChannelState::default() }
    }

    /// Total data-bus busy cycles so far (for utilization statistics).
    pub fn data_bus_busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Checks that the command bus is free at `cycle` and, for CAS
    /// commands, that the implied data burst fits on the data bus.
    pub fn can_issue(
        &self,
        cmd: &Command,
        cycle: Cycle,
        t: &TimingParams,
    ) -> Result<(), Violation> {
        if self.last_cmd_cycle == Some(cycle) {
            return Err(Violation::state(*cmd, cycle, "command-bus collision"));
        }
        if let Some(prev) = self.last_cmd_cycle {
            if cycle < prev {
                return Err(Violation::state(*cmd, cycle, "commands issued out of order"));
            }
        }
        if cmd.kind.is_cas() {
            let (start, end) = self.burst_window(cmd, cycle, t);
            for tr in &self.transfers {
                if start < tr.end && tr.start < end {
                    return Err(Violation::state(*cmd, cycle, "data-bus overlap"));
                }
                if tr.rank != cmd.rank {
                    // Enforce the tRTRS gap on both sides of the new burst.
                    let gap = t.t_rtrs as Cycle;
                    if start < tr.end + gap && tr.start < end + gap {
                        return Err(Violation::state(*cmd, cycle, "tRTRS rank-to-rank data gap"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Earliest cycle `>= from` at which `cmd`'s implied data burst fits
    /// the data bus, given the currently scheduled transfers (exact
    /// against [`ChannelState::can_issue`]'s overlap and tRTRS rules).
    /// Non-CAS commands carry no data and return `from` unchanged.
    pub fn next_data_slot_at(&self, cmd: &Command, from: Cycle, t: &TimingParams) -> Cycle {
        if !cmd.kind.is_cas() {
            return from;
        }
        self.next_data_slot_for(cmd.kind.is_read(), cmd.rank, from, t)
    }

    /// [`ChannelState::next_data_slot_at`] for a CAS identified only by
    /// its direction and rank — burst timing depends on nothing else.
    pub fn next_data_slot_for(
        &self,
        is_read: bool,
        rank: RankId,
        from: Cycle,
        t: &TimingParams,
    ) -> Cycle {
        let lat = if is_read { t.t_cas } else { t.t_cwd } as Cycle;
        let burst = t.t_burst as Cycle;
        let mut at = from;
        // Each bump slides the burst past one conflicting transfer; the
        // list is short (pruned to the active horizon) and every bump
        // strictly increases `at`, so this settles in a few rounds.
        loop {
            let (start, end) = (at + lat, at + lat + burst);
            let mut next_at = at;
            for tr in &self.transfers {
                let gap = if tr.rank == rank { 0 } else { t.t_rtrs as Cycle };
                if start < tr.end + gap && tr.start < end + gap {
                    next_at = next_at.max((tr.end + gap).saturating_sub(lat)).max(at + 1);
                }
            }
            if next_at == at {
                return at;
            }
            at = next_at;
        }
    }

    /// Records `cmd` at `cycle`. Caller must have validated legality.
    pub fn apply(&mut self, cmd: &Command, cycle: Cycle, t: &TimingParams) {
        self.last_cmd_cycle = Some(cycle);
        if cmd.kind.is_cas() {
            let (start, end) = self.burst_window(cmd, cycle, t);
            self.transfers.push(Transfer { start, end, rank: cmd.rank });
            self.busy_cycles += end - start;
            // Prune bursts that can no longer interact with new CAS
            // commands. Any later query is for a command at `cycle + 1`
            // or after (the command bus admits one command per cycle and
            // rejects out-of-order issues before reaching the data-bus
            // check), so its burst starts at `cycle + 1 + min(tCAS,
            // tCWD)` at the earliest; a transfer whose window — widened
            // by the cross-rank tRTRS gap — ends before that can never
            // conflict again.
            let horizon = cycle + 1 + self.min_cas_lat;
            self.transfers.retain(|tr| tr.end + t.t_rtrs as Cycle >= horizon);
        }
    }

    fn burst_window(&self, cmd: &Command, cycle: Cycle, t: &TimingParams) -> (Cycle, Cycle) {
        let lat = if cmd.kind.is_read() { t.t_cas } else { t.t_cwd };
        let start = cycle + lat as Cycle;
        (start, start + t.t_burst as Cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BankId, ColId, RowId};

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    fn rd(rank: u8) -> Command {
        Command::read_ap(RankId(rank), BankId(0), RowId(0), ColId(0))
    }
    fn wr(rank: u8) -> Command {
        Command::write_ap(RankId(rank), BankId(0), RowId(0), ColId(0))
    }

    #[test]
    fn command_bus_one_per_cycle() {
        let timing = t();
        let mut ch = ChannelState::new();
        ch.apply(&rd(0), 10, &timing);
        assert!(ch.can_issue(&rd(1), 10, &timing).is_err());
        // Only the bus constraint applies here: 11 is fine for the command
        // bus even though data would conflict (checked separately below).
        assert!(ch
            .can_issue(&Command::activate(RankId(1), BankId(0), RowId(0)), 11, &timing)
            .is_ok());
    }

    #[test]
    fn same_rank_bursts_may_be_contiguous() {
        let timing = t();
        let mut ch = ChannelState::new();
        ch.apply(&rd(0), 0, &timing); // data [11,15)
        assert!(ch.can_issue(&rd(0), 4, &timing).is_ok()); // data [15,19)
    }

    #[test]
    fn cross_rank_bursts_need_trtrs() {
        let timing = t();
        let mut ch = ChannelState::new();
        ch.apply(&rd(0), 0, &timing); // data [11,15)
        assert!(ch.can_issue(&rd(1), 4, &timing).is_err()); // [15,19): gap 0
        assert!(ch.can_issue(&rd(1), 5, &timing).is_err()); // [16,20): gap 1
        assert!(ch.can_issue(&rd(1), 6, &timing).is_ok()); // [17,21): gap 2
    }

    #[test]
    fn later_write_burst_before_earlier_read_burst_detected() {
        let timing = t();
        let mut ch = ChannelState::new();
        ch.apply(&rd(0), 0, &timing); // read data [11,15)
                                      // A write CAS at cycle 4 puts data at [9,13): overlaps the read.
        assert!(ch.can_issue(&wr(0), 4, &timing).is_err());
        // A write CAS at cycle 10 puts data at [15,19): same rank, legal
        // at bus level.
        assert!(ch.can_issue(&wr(0), 10, &timing).is_ok());
    }

    /// Reference data-slot search over the *unpruned* transfer history.
    fn unpruned_slot(
        history: &[(Cycle, Cycle, RankId)],
        is_read: bool,
        rank: RankId,
        from: Cycle,
        t: &TimingParams,
    ) -> Cycle {
        let lat = if is_read { t.t_cas } else { t.t_cwd } as Cycle;
        let burst = t.t_burst as Cycle;
        let mut at = from;
        loop {
            let (start, end) = (at + lat, at + lat + burst);
            let mut next_at = at;
            for &(ts, te, tr) in history {
                let gap = if tr == rank { 0 } else { t.t_rtrs as Cycle };
                if start < te + gap && ts < end + gap {
                    next_at = next_at.max((te + gap).saturating_sub(lat)).max(at + 1);
                }
            }
            if next_at == at {
                return at;
            }
            at = next_at;
        }
    }

    #[test]
    fn pruning_never_drops_a_needed_transfer_on_any_generation() {
        // Drive a packed CAS stream through the pruned channel while a
        // shadow list keeps every burst ever scheduled; after each apply
        // the pruned list must answer every future data-slot query (any
        // rank, either direction — exactly what `StreamMonitor` and the
        // schedulers still need) identically to the full history.
        for timing in [
            TimingParams::ddr3_1600(),
            TimingParams::ddr4_2400(),
            TimingParams::lpddr4_3200(),
            TimingParams::hbm2(),
        ] {
            let mut ch = ChannelState::for_timing(&timing);
            let mut shadow: Vec<(Cycle, Cycle, RankId)> = Vec::new();
            let mut cycle: Cycle = 0;
            let mut state = 0x243f_6a88_85a3_08d3u64;
            for _ in 0..200 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let rank = RankId(((state >> 33) % 4) as u8);
                let is_read = state >> 62 & 1 == 0;
                let jitter = ((state >> 40) % 7) as Cycle;
                let at = ch.next_data_slot_for(is_read, rank, cycle + 1 + jitter, &timing);
                let cmd = if is_read { rd(rank.0) } else { wr(rank.0) };
                assert!(ch.can_issue(&cmd, at, &timing).is_ok());
                ch.apply(&cmd, at, &timing);
                let lat = if is_read { timing.t_cas } else { timing.t_cwd } as Cycle;
                shadow.push((at + lat, at + lat + timing.t_burst as Cycle, rank));
                cycle = at;
                for probe_rank in 0..4u8 {
                    for probe_read in [false, true] {
                        for from in cycle + 1..cycle + 2 + 2 * timing.t_burst as Cycle {
                            let got = ch.next_data_slot_for(
                                probe_read,
                                RankId(probe_rank),
                                from,
                                &timing,
                            );
                            let want = unpruned_slot(
                                &shadow,
                                probe_read,
                                RankId(probe_rank),
                                from,
                                &timing,
                            );
                            assert_eq!(
                                got, want,
                                "pruned channel diverged (rank {probe_rank}, read \
                                 {probe_read}, from {from})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn busy_cycle_accounting() {
        let timing = t();
        let mut ch = ChannelState::new();
        ch.apply(&rd(0), 0, &timing);
        ch.apply(&rd(0), 4, &timing);
        assert_eq!(ch.data_bus_busy_cycles(), 8);
    }
}
