//! Property tests cross-validating the two independent implementations
//! of the DDR3 timing rules: the incremental device model and the
//! pairwise replay checker.

use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, ColId, Geometry, LineAddr, RankId, RowId};
use fsmc_dram::mapping::{AddressMapping, MappingScheme};
use fsmc_dram::{DramDevice, TimingChecker, TimingParams};
use proptest::prelude::*;

/// A simplified transaction request for generation.
#[derive(Debug, Clone, Copy)]
struct Req {
    rank: u8,
    bank: u8,
    row: u32,
    is_write: bool,
}

fn req_strategy() -> impl Strategy<Value = Req> {
    (0u8..8, 0u8..8, 0u32..64, any::<bool>()).prop_map(|(rank, bank, row, is_write)| Req {
        rank,
        bank,
        row,
        is_write,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any stream the device accepts greedily (close-page transactions at
    /// their earliest legal cycles) must replay cleanly through the
    /// independent checker.
    #[test]
    fn device_greedy_streams_satisfy_the_checker(reqs in prop::collection::vec(req_strategy(), 1..60)) {
        let geom = Geometry::paper_default();
        let t = TimingParams::ddr3_1600();
        let mut dev = DramDevice::new(geom, t);
        dev.record_commands();
        let mut cycle = 0u64;
        for r in reqs {
            let act = Command::activate(RankId(r.rank), BankId(r.bank), RowId(r.row));
            cycle = dev.earliest_issue(&act, cycle, 4000).expect("activate must fit");
            dev.issue(&act, cycle).unwrap();
            let cas = if r.is_write {
                Command::write_ap(RankId(r.rank), BankId(r.bank), RowId(r.row), ColId(0))
            } else {
                Command::read_ap(RankId(r.rank), BankId(r.bank), RowId(r.row), ColId(0))
            };
            let c = dev.earliest_issue(&cas, cycle, 4000).expect("CAS must fit");
            dev.issue(&cas, c).unwrap();
        }
        let log = dev.take_log();
        let checker = TimingChecker::new(geom, t);
        let violations = checker.check(&log);
        prop_assert!(violations.is_empty(), "checker disagrees: {:?}", violations.first());
    }

    /// Moving any single CAS earlier than the device allowed must trip
    /// the checker (the two implementations agree on *illegality* too).
    #[test]
    fn checker_catches_commands_the_device_would_reject(
        reqs in prop::collection::vec(req_strategy(), 2..20),
        victim_sel in any::<prop::sample::Index>(),
        shift in 1u64..4,
    ) {
        let geom = Geometry::paper_default();
        let t = TimingParams::ddr3_1600();
        let mut dev = DramDevice::new(geom, t);
        dev.record_commands();
        let mut cycle = 0u64;
        for r in &reqs {
            let act = Command::activate(RankId(r.rank), BankId(r.bank), RowId(r.row));
            cycle = dev.earliest_issue(&act, cycle, 4000).expect("fits");
            dev.issue(&act, cycle).unwrap();
            let cas = Command::read_ap(RankId(r.rank), BankId(r.bank), RowId(r.row), ColId(0));
            let c = dev.earliest_issue(&cas, cycle, 4000).expect("fits");
            dev.issue(&cas, c).unwrap();
        }
        let mut log = dev.take_log();
        // Pick a CAS whose earliest-issue position was timing-limited:
        // shifting it earlier collides with tRCD at minimum.
        let cas_positions: Vec<usize> = log
            .iter()
            .enumerate()
            .filter(|(_, tc)| tc.cmd.kind.is_cas())
            .map(|(i, _)| i)
            .collect();
        let idx = cas_positions[victim_sel.index(cas_positions.len())];
        let moved = TimedCommand::new(log[idx].cmd, log[idx].cycle.saturating_sub(shift.max(1)));
        log[idx] = moved;
        let checker = TimingChecker::new(geom, t);
        let violations = checker.check(&log);
        prop_assert!(
            !violations.is_empty(),
            "shifting {} earlier by {} went undetected",
            moved.cmd,
            shift
        );
    }

    /// Address mappings are bijections for every scheme.
    #[test]
    fn mapping_roundtrip(addr in 0u64..1_000_000, scheme_sel in 0usize..4) {
        let schemes = [
            MappingScheme::OpenPageLocality,
            MappingScheme::ClosePageInterleave,
            MappingScheme::RankPartitioned,
            MappingScheme::BankPartitioned,
        ];
        let geom = Geometry::paper_default();
        let m = AddressMapping::new(geom, schemes[scheme_sel]);
        let wrapped = LineAddr(addr % geom.total_lines());
        let loc = m.decode(wrapped);
        prop_assert!(geom.contains(&loc));
        prop_assert_eq!(m.encode(&loc), wrapped);
    }
}
