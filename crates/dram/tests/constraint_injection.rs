//! Failure injection: for every DDR3 rule the checker enforces, construct
//! a minimal stream that violates exactly that rule and assert the
//! checker names it — and that the *boundary* case (one cycle later)
//! passes. This pins the semantics of each constraint.

use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, ColId, Geometry, RankId, RowId};
use fsmc_dram::{TimingChecker, TimingParams};

fn checker() -> TimingChecker {
    TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600())
}

fn tc(cmd: Command, cycle: u64) -> TimedCommand {
    TimedCommand::new(cmd, cycle)
}

fn act(rank: u8, bank: u8, row: u32) -> Command {
    Command::activate(RankId(rank), BankId(bank), RowId(row))
}
fn rda(rank: u8, bank: u8, row: u32) -> Command {
    Command::read_ap(RankId(rank), BankId(bank), RowId(row), ColId(0))
}
fn wra(rank: u8, bank: u8, row: u32) -> Command {
    Command::write_ap(RankId(rank), BankId(bank), RowId(row), ColId(0))
}

/// Asserts that `bad` trips `constraint` and `good` is clean.
fn check_boundary(bad: &[TimedCommand], good: &[TimedCommand], constraint: &str) {
    let vs = checker().check(bad);
    assert!(
        vs.iter().any(|v| v.constraint.contains(constraint)),
        "expected a {constraint:?} violation, got {vs:?}"
    );
    let vs = checker().check(good);
    assert!(vs.is_empty(), "boundary case for {constraint:?} should pass: {vs:?}");
}

#[test]
fn trcd_boundary() {
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(rda(0, 0, 1), 10)],
        &[tc(act(0, 0, 1), 0), tc(rda(0, 0, 1), 11)],
        "tRCD",
    );
}

#[test]
fn trc_boundary() {
    // Read + auto-precharge completes at 39 = tRC; a second activate at
    // 38 violates both tRC and the precharge recovery.
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(rda(0, 0, 1), 11), tc(act(0, 0, 2), 38)],
        &[tc(act(0, 0, 1), 0), tc(rda(0, 0, 1), 11), tc(act(0, 0, 2), 39)],
        "tR", // tRC or tRP, both are row-cycle violations here
    );
}

#[test]
fn write_recovery_boundary() {
    // WRA at 11: precharge starts at 11+21 = 32, recovered at 43.
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(wra(0, 0, 1), 11), tc(act(0, 0, 2), 42)],
        &[tc(act(0, 0, 1), 0), tc(wra(0, 0, 1), 11), tc(act(0, 0, 2), 43)],
        "tRP",
    );
}

#[test]
fn tras_boundary_for_explicit_precharge() {
    let pre = Command::precharge(RankId(0), BankId(0));
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(pre, 27)],
        &[tc(act(0, 0, 1), 0), tc(pre, 28)],
        "tRAS",
    );
}

#[test]
fn trtp_boundary() {
    let pre = Command::precharge(RankId(0), BankId(0));
    // Plain read at 25: its tRTP bound (31) exceeds the tRAS bound (28),
    // so a precharge at 30 violates exactly tRTP.
    let rd = Command::read(RankId(0), BankId(0), RowId(1), ColId(0));
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(rd, 25), tc(pre, 30), tc(act(0, 0, 2), 60)],
        &[tc(act(0, 0, 1), 0), tc(rd, 25), tc(pre, 31), tc(act(0, 0, 2), 60)],
        "tRTP",
    );
}

#[test]
fn trrd_boundary() {
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(act(0, 1, 1), 4)],
        &[tc(act(0, 0, 1), 0), tc(act(0, 1, 1), 5)],
        "tRRD",
    );
}

#[test]
fn tfaw_boundary() {
    let base: Vec<TimedCommand> = (0..4).map(|i| tc(act(0, i, 1), i as u64 * 6)).collect();
    let mut bad = base.clone();
    bad.push(tc(act(0, 4, 1), 23));
    let mut good = base;
    good.push(tc(act(0, 4, 1), 24));
    check_boundary(&bad, &good, "tFAW");
}

#[test]
fn tccd_boundary() {
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(act(0, 1, 1), 5), tc(rda(0, 0, 1), 16), tc(rda(0, 1, 1), 19)],
        &[tc(act(0, 0, 1), 0), tc(act(0, 1, 1), 5), tc(rda(0, 0, 1), 16), tc(rda(0, 1, 1), 20)],
        "tCCD",
    );
}

#[test]
fn write_to_read_turnaround_boundary() {
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(act(0, 1, 1), 5), tc(wra(0, 0, 1), 16), tc(rda(0, 1, 1), 30)],
        &[tc(act(0, 0, 1), 0), tc(act(0, 1, 1), 5), tc(wra(0, 0, 1), 16), tc(rda(0, 1, 1), 31)],
        "tWTR",
    );
}

#[test]
fn read_to_write_turnaround_boundary() {
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(act(0, 1, 1), 5), tc(rda(0, 0, 1), 16), tc(wra(0, 1, 1), 25)],
        &[tc(act(0, 0, 1), 0), tc(act(0, 1, 1), 5), tc(rda(0, 0, 1), 16), tc(wra(0, 1, 1), 26)],
        "read-to-write",
    );
}

#[test]
fn trtrs_data_gap_boundary() {
    check_boundary(
        &[tc(act(0, 0, 1), 0), tc(act(1, 0, 1), 5), tc(rda(0, 0, 1), 16), tc(rda(1, 0, 1), 21)],
        &[tc(act(0, 0, 1), 0), tc(act(1, 0, 1), 5), tc(rda(0, 0, 1), 16), tc(rda(1, 0, 1), 22)],
        "tRTRS",
    );
}

#[test]
fn data_bus_overlap_detected() {
    // Same rank: read at 16 (data 27..31), second read at 18 (data 29..33).
    let vs = checker().check(&[
        tc(act(0, 0, 1), 0),
        tc(act(0, 1, 1), 5),
        tc(rda(0, 0, 1), 16),
        tc(rda(0, 1, 1), 18),
    ]);
    assert!(
        vs.iter()
            .any(|v| v.constraint.contains("data-bus overlap") || v.constraint.contains("tCCD")),
        "{vs:?}"
    );
}

#[test]
fn command_bus_collision_detected() {
    let vs = checker().check(&[tc(act(0, 0, 1), 7), tc(act(1, 0, 1), 7)]);
    assert!(vs.iter().any(|v| v.constraint.contains("command-bus")), "{vs:?}");
}

#[test]
fn cas_without_activate_detected() {
    let vs = checker().check(&[tc(rda(0, 0, 1), 5)]);
    assert!(vs.iter().any(|v| v.constraint.contains("closed bank")), "{vs:?}");
}

#[test]
fn cas_to_wrong_row_detected() {
    let vs = checker().check(&[tc(act(0, 0, 1), 0), tc(rda(0, 0, 2), 11)]);
    assert!(vs.iter().any(|v| v.constraint.contains("not open")), "{vs:?}");
}

#[test]
fn double_activate_detected() {
    let vs = checker().check(&[tc(act(0, 0, 1), 0), tc(act(0, 0, 2), 50)]);
    assert!(vs.iter().any(|v| v.constraint.contains("row is open")), "{vs:?}");
}

#[test]
fn refresh_with_open_row_detected() {
    let vs = checker().check(&[tc(act(0, 0, 1), 0), tc(Command::refresh(RankId(0)), 100)]);
    assert!(vs.iter().any(|v| v.constraint.contains("refresh with a row open")), "{vs:?}");
}

#[test]
fn trfc_boundary() {
    check_boundary(
        &[tc(Command::refresh(RankId(0)), 0), tc(Command::refresh(RankId(0)), 207)],
        &[tc(Command::refresh(RankId(0)), 0), tc(Command::refresh(RankId(0)), 208)],
        "tRFC",
    );
}

#[test]
fn power_down_rules_detected() {
    let vs = checker().check(&[tc(Command::power_down(RankId(0)), 0), tc(act(0, 0, 1), 5)]);
    assert!(vs.iter().any(|v| v.constraint.contains("powered-down")), "{vs:?}");
    // Double power-down and spurious power-up.
    let vs = checker()
        .check(&[tc(Command::power_down(RankId(0)), 0), tc(Command::power_down(RankId(0)), 5)]);
    assert!(vs.iter().any(|v| v.constraint.contains("already powered down")), "{vs:?}");
    let vs = checker().check(&[tc(Command::power_up(RankId(0)), 3)]);
    assert!(vs.iter().any(|v| v.constraint.contains("power-up of an active rank")), "{vs:?}");
}

#[test]
fn txp_boundary() {
    check_boundary(
        &[
            tc(Command::power_down(RankId(0)), 0),
            tc(Command::power_up(RankId(0)), 20),
            tc(act(0, 0, 1), 29),
        ],
        &[
            tc(Command::power_down(RankId(0)), 0),
            tc(Command::power_up(RankId(0)), 20),
            tc(act(0, 0, 1), 30),
        ],
        "tXP",
    );
}
