//! One deliberately-early (or state-illegal) command per `TimingChecker`
//! constraint: every rule's *violation* path has an executable witness, not
//! just its legal-stream path.
//!
//! Each witness stream is checked twice — once through the batch
//! [`TimingChecker`] and once through the online [`StreamMonitor`] — so the
//! two implementations are pinned to agree on every individual rule.

use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, ColId, RankId, RowId};
use fsmc_dram::{Cycle, DeviceGeneration, Geometry, StreamMonitor, TimingChecker, TimingParams};

fn tc(cmd: Command, cycle: Cycle) -> TimedCommand {
    TimedCommand::new(cmd, cycle)
}

fn act(r: u8, b: u8, row: u32, c: Cycle) -> TimedCommand {
    tc(Command::activate(RankId(r), BankId(b), RowId(row)), c)
}

fn rda(r: u8, b: u8, row: u32, c: Cycle) -> TimedCommand {
    tc(Command::read_ap(RankId(r), BankId(b), RowId(row), ColId(0)), c)
}

fn rd(r: u8, b: u8, row: u32, c: Cycle) -> TimedCommand {
    tc(Command::read(RankId(r), BankId(b), RowId(row), ColId(0)), c)
}

fn wra(r: u8, b: u8, row: u32, c: Cycle) -> TimedCommand {
    tc(Command::write_ap(RankId(r), BankId(b), RowId(row), ColId(0)), c)
}

fn wr(r: u8, b: u8, row: u32, c: Cycle) -> TimedCommand {
    tc(Command::write(RankId(r), BankId(b), RowId(row), ColId(0)), c)
}

fn pre(r: u8, b: u8, c: Cycle) -> TimedCommand {
    tc(Command::precharge(RankId(r), BankId(b)), c)
}

fn refresh(r: u8, c: Cycle) -> TimedCommand {
    tc(Command::refresh(RankId(r)), c)
}

fn pde(r: u8, c: Cycle) -> TimedCommand {
    tc(Command::power_down(RankId(r)), c)
}

fn pdx(r: u8, c: Cycle) -> TimedCommand {
    tc(Command::power_up(RankId(r)), c)
}

/// (constraint name, minimal stream whose check() must flag it).
///
/// The name list mirrors every `&'static str` constraint in
/// `checker.rs` — if a rule is added there without a witness here, the
/// completeness assertion in `all_constraints_have_a_witness` fails.
fn witnesses() -> Vec<(&'static str, Vec<TimedCommand>)> {
    vec![
        ("command-bus collision", vec![act(0, 0, 1, 10), act(1, 0, 1, 10)]),
        // CAS 2 apart: bursts (23..27) and (25..29) collide on the data bus.
        (
            "data-bus overlap",
            vec![act(0, 0, 5, 0), act(1, 0, 5, 1), rda(0, 0, 5, 12), rda(1, 0, 5, 14)],
        ),
        // CAS 4 apart: contiguous bursts, but the rank switch needs tRTRS=2.
        (
            "tRTRS rank-to-rank data gap",
            vec![act(0, 0, 5, 0), act(1, 0, 5, 1), rda(0, 0, 5, 12), rda(1, 0, 5, 16)],
        ),
        // RDA@11 precharges at max(11+tRTP, tRAS)=28; next ACT legal at 39.
        ("tRP", vec![act(0, 0, 5, 0), rda(0, 0, 5, 11), act(0, 0, 6, 38)]),
        // tRC = tRAS + tRP = 39 binds at exactly the same cycle.
        ("tRC", vec![act(0, 0, 5, 0), rda(0, 0, 5, 11), act(0, 0, 6, 38)]),
        ("tRCD", vec![act(0, 0, 5, 0), rda(0, 0, 5, 10)]),
        ("activate while a row is open", vec![act(0, 0, 1, 0), act(0, 0, 2, 50)]),
        ("CAS on a closed bank", vec![rda(0, 0, 5, 10)]),
        ("CAS to a row that is not open", vec![act(0, 0, 5, 0), rda(0, 0, 6, 11)]),
        ("tRAS", vec![act(0, 0, 5, 0), pre(0, 0, 27)]),
        ("tRTP", vec![act(0, 0, 5, 0), rd(0, 0, 5, 11), pre(0, 0, 16)]),
        // Write recovery: PRE legal at 11 + tCWD + tBURST + tWR = 32.
        ("write recovery (tWR)", vec![act(0, 0, 5, 0), wr(0, 0, 5, 11), pre(0, 0, 31)]),
        // Implicit precharge of the RDA completes at 28; REF legal at 39.
        ("tRP before REF", vec![act(0, 0, 5, 0), rda(0, 0, 5, 11), refresh(0, 38)]),
        ("refresh with a row open", vec![act(0, 0, 5, 0), refresh(0, 40)]),
        ("tRRD", vec![act(0, 0, 1, 0), act(0, 1, 1, 4)]),
        // Five activates 5 apart satisfy tRRD but break the tFAW=24 window.
        (
            "tFAW",
            vec![
                act(0, 0, 1, 0),
                act(0, 1, 1, 5),
                act(0, 2, 1, 10),
                act(0, 3, 1, 15),
                act(0, 4, 1, 20),
            ],
        ),
        ("tCCD", vec![act(0, 0, 5, 0), act(0, 1, 5, 5), rda(0, 0, 5, 16), rda(0, 1, 5, 19)]),
        (
            "read-to-write turnaround",
            vec![act(0, 0, 5, 0), act(0, 1, 5, 5), rd(0, 0, 5, 16), wra(0, 1, 5, 25)],
        ),
        (
            "tWTR write-to-read",
            vec![act(0, 0, 5, 0), act(0, 1, 5, 5), wra(0, 0, 5, 11), rda(0, 1, 5, 25)],
        ),
        ("tRFC", vec![refresh(0, 0), refresh(0, 207)]),
        ("command during tRFC", vec![refresh(0, 0), act(0, 0, 1, 100)]),
        ("already powered down", vec![pde(0, 0), pde(0, 5)]),
        ("power-up of an active rank", vec![pdx(0, 5)]),
        ("command to a powered-down rank", vec![pde(0, 0), act(0, 0, 1, 5)]),
        ("tXP power-down exit", vec![pde(0, 0), pdx(0, 10), act(0, 0, 1, 15)]),
    ]
}

#[test]
fn every_constraint_violation_path_is_exercised() {
    let geom = Geometry::paper_default();
    let t = TimingParams::ddr3_1600();
    let checker = TimingChecker::new(geom, t);
    for (name, stream) in witnesses() {
        let vs = checker.check(&stream);
        assert!(
            vs.iter().any(|v| v.constraint == name),
            "checker missed {name:?}: got {vs:?} for {stream:?}"
        );
        // The online monitor must flag the same rule on the same stream.
        let mut mon = StreamMonitor::new(geom, t);
        let online: Vec<_> = stream.iter().flat_map(|c| mon.observe(c)).collect();
        assert!(
            online.iter().any(|v| v.constraint == name),
            "monitor missed {name:?}: got {online:?} for {stream:?}"
        );
    }
}

#[test]
fn all_constraints_have_a_witness() {
    // Every constraint string the checker can emit, in source order.
    let expected = [
        "command-bus collision",
        "data-bus overlap",
        "tRTRS rank-to-rank data gap",
        "activate while a row is open",
        "tRP",
        "tRC",
        "CAS on a closed bank",
        "CAS to a row that is not open",
        "tRCD",
        "tRAS",
        "tRTP",
        "write recovery (tWR)",
        "refresh with a row open",
        "tRP before REF",
        "tRRD",
        "tFAW",
        "tCCD",
        "read-to-write turnaround",
        "tWTR write-to-read",
        "tRFC",
        "already powered down",
        "power-up of an active rank",
        "command during tRFC",
        "command to a powered-down rank",
        "tXP power-down exit",
    ];
    let have: Vec<&str> = witnesses().iter().map(|(n, _)| *n).collect();
    for name in expected {
        assert!(have.contains(&name), "no violation witness for {name:?}");
    }
    assert_eq!(have.len(), expected.len(), "stale witness entries");
}

/// The bank-group rule needs per-generation witnesses: the witness table
/// above runs on the paper's flat DDR3 part, where `tCCD_L same bank
/// group` can never fire. On every grouped generation a same-group CAS
/// pair spaced at exactly tCCD_S — a gap the *cross*-group rule permits
/// — must be flagged by both the batch checker and the online monitor,
/// and the identically-spaced cross-group pair must stay legal. Flat
/// generations must never emit the constraint at all.
#[test]
fn same_group_cas_pair_is_flagged_on_every_grouped_generation() {
    for gen in DeviceGeneration::all() {
        let p = gen.profile();
        let (t, geom) = (p.timing, p.geometry);
        let groups = geom.bank_groups();
        // Group = bank % groups: bank 0 and bank `groups` share group 0,
        // bank 0 and bank 1 never do (on grouped parts).
        let cas0 = (t.t_rcd + t.t_rrd) as Cycle;
        let stream = |other: u8| {
            vec![
                act(0, 0, 5, 0),
                act(0, other, 5, t.t_rrd as Cycle),
                rda(0, 0, 5, cas0),
                rda(0, other, 5, cas0 + t.t_ccd as Cycle),
            ]
        };
        let check_both = |stream: &[TimedCommand]| {
            let batch = TimingChecker::new(geom, t).check(stream);
            let mut mon = StreamMonitor::new(geom, t);
            let online: Vec<_> = stream.iter().flat_map(|c| mon.observe(c)).collect();
            (batch, online)
        };
        if groups > 1 {
            let (batch, online) = check_both(&stream(groups));
            assert!(
                batch.iter().any(|v| v.constraint == "tCCD_L same bank group"),
                "{gen}: checker missed the same-group tCCD_S pair: {batch:?}"
            );
            assert!(
                online.iter().any(|v| v.constraint == "tCCD_L same bank group"),
                "{gen}: monitor missed the same-group tCCD_S pair: {online:?}"
            );
            let (batch, online) = check_both(&stream(1));
            assert!(batch.is_empty(), "{gen}: cross-group pair at tCCD_S is legal: {batch:?}");
            assert!(
                online.is_empty(),
                "{gen}: monitor flagged a legal cross-group pair: {online:?}"
            );
        } else {
            let (batch, online) = check_both(&stream(1));
            assert!(batch.is_empty(), "{gen}: flat part flagged a tCCD_S pair: {batch:?}");
            assert!(
                online.is_empty(),
                "{gen}: flat-part monitor flagged a tCCD_S pair: {online:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Degraded-topology re-certification replay
// ---------------------------------------------------------------------
//
// The FS reconfiguration contract says masks change *which* banks slots
// may touch, never *when* slots fire. The property test below drives the
// real re-certifier (`FsScheduler::reconfigure` on random stuck-bank /
// dead-rank / thermal-refresh sets) and, for every topology it accepts,
// replays a worst-case command stream on the surviving silicon through
// the online `StreamMonitor`. The per-rule witnesses above pin the
// monitor's detection power for every Table-1 constraint, so a clean
// replay here means the accepted schedule genuinely satisfies them all.

use fsmc_core::sched::fs::{EnergyOptions, FsScheduler, FsVariant};
use fsmc_core::sched::{MemoryController, ReconfigEvent};
use proptest::prelude::*;

/// Worst-case ACT/CAS stream for `schedule` on the masked topology:
/// four intervals of slots, alternating directions and rows, with each
/// slot's rank/bank drawn from the owning domain's *healthy* silicon
/// (mirroring `remap_unhealthy`). Slots whose domain has no healthy
/// silicon left — a dead rank under rank partitioning — decay to
/// bubbles, which can never add a violation.
fn degraded_stream(
    schedule: &fsmc_core::solver::SlotSchedule,
    geom: &Geometry,
    variant: FsVariant,
    stuck: &[(u8, u8)],
    dead: &[u8],
) -> Vec<TimedCommand> {
    let n = schedule.threads() as u64;
    let ranks = geom.ranks_per_channel();
    let banks = geom.banks_per_rank();
    let mut out = Vec::new();
    for i in 0..n * 4 {
        let p = schedule.plan(i);
        let owner = (i % n) as u8;
        let interval = i / n;
        let spot = match variant {
            FsVariant::RankPartitioned => {
                // Domain owns rank `owner`; banks rotate over the rank's
                // healthy banks so consecutive own-slots avoid stuck ones.
                let rank = owner % ranks;
                if dead.contains(&rank) {
                    None
                } else {
                    let healthy: Vec<u8> =
                        (0..banks).filter(|&b| !stuck.contains(&(rank, b))).collect();
                    (!healthy.is_empty())
                        .then(|| (rank, healthy[interval as usize % healthy.len()]))
                }
            }
            _ => {
                // Bank striping: the domain keeps its bank index and
                // remaps off dead/stuck ranks (worst case: everyone who
                // can piles onto the first healthy rank).
                let bank = owner % banks;
                (0..ranks)
                    .find(|&r| !dead.contains(&r) && !stuck.contains(&(r, bank)))
                    .map(|r| (r, bank))
            }
        };
        let Some((rank, bank)) = spot else { continue };
        let row = if interval.is_multiple_of(2) { 11 } else { 29 };
        if i % 2 == 0 {
            out.push(act(rank, bank, row, p.read_act));
            out.push(rda(rank, bank, row, p.read_cas));
        } else {
            out.push(act(rank, bank, row, p.write_act));
            out.push(wra(rank, bank, row, p.write_cas));
        }
    }
    out.sort_by_key(|c| c.cycle);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accepted_degraded_solves_replay_cleanly_through_the_monitor(
        (stuck, dead, factor, domains, device_idx) in (
            proptest::collection::vec((0u8..8, 0u8..16), 0..3),
            proptest::collection::vec(0u8..8, 0..2),
            1u8..4,
            2u8..9,
            0usize..4,
        )
    ) {
        // Every generation's re-certifier gets replayed, not just the
        // paper's DDR3 part: fault sites are drawn over the widest
        // geometry and folded onto the profile's actual rank/bank count.
        let p = DeviceGeneration::all()[device_idx].profile();
        let (geom, t) = (p.geometry, p.timing);
        let ranks = geom.ranks_per_channel();
        let banks = geom.banks_per_rank();
        let stuck: Vec<(u8, u8)> =
            stuck.iter().map(|&(r, b)| (r % ranks, b % banks)).collect();
        let dead: Vec<u8> = dead.iter().map(|&r| r % ranks).collect();
        let mut events: Vec<ReconfigEvent> = stuck
            .iter()
            .map(|&(rank, bank)| ReconfigEvent::StuckBank { rank, bank })
            .collect();
        events.extend(dead.iter().map(|&rank| ReconfigEvent::DeadRank { rank }));
        if factor > 1 {
            events.push(ReconfigEvent::ThermalRefresh { factor });
        }
        if events.is_empty() {
            return;
        }
        for variant in [FsVariant::RankPartitioned, FsVariant::BankPartitioned] {
            let mut fs = FsScheduler::try_new(
                geom,
                t,
                domains,
                variant,
                false,
                EnergyOptions::default(),
            )
            .expect("every profile's undegraded topology must solve");
            if fs.reconfigure(&events, 0).is_err() {
                // The re-certifier rejected this topology: nothing to replay.
                continue;
            }
            prop_assert!(fs.epoch() >= 1, "accepted reconfiguration must advance the epoch");
            let Some(s) = fs.schedule() else { continue };
            let stream = degraded_stream(s, &geom, variant, &stuck, &dead);
            let mut mon = StreamMonitor::new(geom, t);
            let vs: Vec<_> = stream.iter().flat_map(|c| mon.observe(c)).collect();
            prop_assert!(
                vs.is_empty(),
                "accepted degraded solve ({} {variant:?}, stuck {stuck:?}, dead {dead:?}) \
                 violated Table-1: {vs:?}",
                p.generation
            );
        }
    }
}

/// Each witness becomes legal when its offending command is moved to the
/// first legal cycle the violation reports — the `earliest` hint is not
/// just documentation.
#[test]
fn earliest_hints_are_actionable() {
    let geom = Geometry::paper_default();
    let t = TimingParams::ddr3_1600();
    let checker = TimingChecker::new(geom, t);
    for (name, stream) in witnesses() {
        let vs = checker.check(&stream);
        let Some(v) = vs.iter().find(|v| v.constraint == name) else { continue };
        let Some(earliest) = v.earliest else { continue };
        let fixed: Vec<TimedCommand> = stream
            .iter()
            .map(|c| {
                if c.cmd == v.cmd && c.cycle == v.cycle {
                    TimedCommand::new(c.cmd, earliest)
                } else {
                    *c
                }
            })
            .collect();
        let still: Vec<_> =
            checker.check(&fixed).iter().filter(|w| w.constraint == name).cloned().collect();
        assert!(still.is_empty(), "{name:?}: still flagged after moving to earliest: {still:?}");
    }
}
