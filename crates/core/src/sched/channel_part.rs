//! Channel partitioning (Section 4.1): when the thread count does not
//! exceed the channel count, "it is most efficient to map each thread to
//! one or more channels. Since two threads don't share memory resources
//! in this case, there are no timing channels."
//!
//! Each domain gets a private channel running the *non-secure* FR-FCFS
//! scheduler at full speed — security comes from physical isolation, not
//! from scheduling, so there is no shaping, no dummies and no throughput
//! loss beyond the per-domain bandwidth cap.

use crate::domain::DomainId;
use crate::queues::QueueFull;
use crate::sched::baseline::BaselineScheduler;
use crate::sched::{Completion, McStats, MemoryController, SchedulerKind};
use crate::txn::Transaction;
use fsmc_dram::command::TimedCommand;
use fsmc_dram::geometry::Geometry;
use fsmc_dram::{ActivityCounters, Cycle, DramDevice, TimingParams};

/// One private channel (and FR-FCFS controller) per security domain.
#[derive(Debug)]
pub struct ChannelPartitionedController {
    channels: Vec<BaselineScheduler>,
    stats: McStats,
    domains: u8,
    /// Reusable per-tick completion buffer for the hot path.
    scratch: Vec<Completion>,
}

impl ChannelPartitionedController {
    /// Creates `domains` private channels, each with the geometry `geom`
    /// (interpreted per channel: its ranks and banks belong wholly to the
    /// owning domain).
    ///
    /// # Panics
    ///
    /// Panics if `domains` is zero.
    pub fn new(geom: Geometry, t: TimingParams, domains: u8) -> Self {
        assert!(domains > 0, "domains must be non-zero");
        ChannelPartitionedController {
            channels: (0..domains).map(|_| BaselineScheduler::new(geom, t, 1, false)).collect(),
            stats: McStats::new(domains as usize),
            domains,
            scratch: Vec::new(),
        }
    }

    /// Per-channel recorded command logs (each is a valid single-channel
    /// stream; they are deliberately *not* merged, since different
    /// channels share no buses).
    pub fn take_channel_logs(&mut self) -> Vec<Vec<TimedCommand>> {
        self.channels.iter_mut().map(|c| c.take_command_log()).collect()
    }

    /// Folds the per-channel controller statistics into the aggregate
    /// per-domain view.
    fn refresh_stats(&mut self) {
        let mut stats = McStats::new(self.domains as usize);
        for (d, ch) in self.channels.iter().enumerate() {
            let inner = ch.stats();
            *stats.domain_mut(DomainId(d as u8)) = *inner.domain(DomainId(0));
            stats.row_hits += inner.row_hits;
            stats.row_misses += inner.row_misses;
        }
        self.stats = stats;
    }
}

impl MemoryController for ChannelPartitionedController {
    fn can_accept(&self, domain: DomainId) -> bool {
        self.channels[domain.0 as usize].can_accept(DomainId(0))
    }

    fn enqueue(&mut self, txn: Transaction) -> Result<(), QueueFull> {
        let domain = txn.domain;
        // The inner controller is single-domain; remap and restore the id
        // on completion so the producer's routing still works.
        let inner_txn = Transaction { domain: DomainId(0), ..txn };
        self.channels[domain.0 as usize].enqueue(inner_txn).map_err(|_| QueueFull { domain })
    }

    fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        let scratch = &mut self.scratch;
        for (d, ch) in self.channels.iter_mut().enumerate() {
            ch.tick_into(now, scratch);
            for completion in scratch.drain(..) {
                let txn = Transaction { domain: DomainId(d as u8), ..completion.txn };
                out.push(Completion { txn, ..completion });
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        self.channels.iter().map(|ch| ch.next_event(now)).min().unwrap_or(now + 1)
    }

    fn device(&self) -> &DramDevice {
        self.channels[0].device()
    }

    fn aggregate_counters(&self) -> ActivityCounters {
        let mut agg = self.channels[0].device().counters().clone();
        for ch in &self.channels[1..] {
            agg.merge(ch.device().counters());
        }
        agg
    }

    fn finish(&mut self, now: Cycle) {
        for ch in &mut self.channels {
            ch.finish(now);
        }
        self.refresh_stats();
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::ChannelPartitioned
    }

    fn record_commands(&mut self) {
        for ch in &mut self.channels {
            ch.record_commands();
        }
    }

    fn take_command_log(&mut self) -> Vec<TimedCommand> {
        // Only the first channel's log: merged logs from independent
        // buses would spuriously violate single-channel rules. Use
        // `take_channel_logs` for all of them.
        self.channels[0].take_command_log()
    }

    fn has_pending_log(&self) -> bool {
        self.channels[0].has_pending_log()
    }

    fn take_command_log_into(&mut self, out: &mut Vec<TimedCommand>) {
        self.channels[0].take_command_log_into(out);
    }

    fn record_obs(&mut self) {
        for ch in &mut self.channels {
            ch.record_obs();
        }
    }

    fn has_obs(&self) -> bool {
        self.channels[0].has_obs()
    }

    fn take_obs_into(&mut self, out: &mut Vec<fsmc_dram::ObsCommand>) {
        self.channels[0].take_obs_into(out);
    }

    fn has_sched_events(&self) -> bool {
        self.channels[0].has_sched_events()
    }

    fn take_sched_events_into(&mut self, out: &mut Vec<crate::sched::SchedEvent>) {
        self.channels[0].take_sched_events_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::PartitionPolicy;
    use crate::txn::TxnId;
    use fsmc_dram::geometry::LineAddr;
    use fsmc_dram::TimingChecker;

    fn txn(id: u64, domain: u8, local: u64) -> Transaction {
        let geom = Geometry::paper_default();
        let loc = PartitionPolicy::None.map(&geom, DomainId(0), LineAddr(local));
        Transaction::read(TxnId(id), DomainId(domain), loc, 0)
    }

    #[test]
    fn domains_route_to_private_channels() {
        let mut mc = ChannelPartitionedController::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            4,
        );
        mc.enqueue(txn(1, 2, 100)).unwrap();
        mc.enqueue(txn(2, 3, 100)).unwrap();
        let mut done = Vec::new();
        for c in 0..100 {
            done.extend(mc.tick(c));
        }
        assert_eq!(done.len(), 2);
        // Completions carry the original domain ids.
        let mut domains: Vec<u8> = done.iter().map(|c| c.txn.domain.0).collect();
        domains.sort_unstable();
        assert_eq!(domains, vec![2, 3]);
        // Identical requests on private channels finish at identical times:
        // perfect isolation.
        assert_eq!(done[0].finish, done[1].finish);
    }

    #[test]
    fn channels_are_fully_isolated() {
        // Domain 0's timing must be unaffected by floods on domain 1.
        let run = |flood: bool| -> Vec<Cycle> {
            let mut mc = ChannelPartitionedController::new(
                Geometry::paper_default(),
                TimingParams::ddr3_1600(),
                2,
            );
            let mut finishes = Vec::new();
            let mut id = 10;
            for c in 0..3000u64 {
                if c % 40 == 0 && mc.can_accept(DomainId(0)) {
                    mc.enqueue(Transaction { arrival: c, ..txn(id, 0, id * 13) }).unwrap();
                    id += 1;
                }
                if flood && mc.can_accept(DomainId(1)) {
                    mc.enqueue(Transaction { arrival: c, ..txn(100_000 + id, 1, id * 7) }).unwrap();
                }
                for comp in mc.tick(c) {
                    if comp.txn.domain == DomainId(0) && !comp.txn.is_write {
                        finishes.push(comp.finish);
                    }
                }
            }
            finishes
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn per_channel_logs_are_each_legal() {
        let mut mc = ChannelPartitionedController::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            4,
        );
        mc.record_commands();
        for i in 0..32u64 {
            mc.enqueue(txn(i, (i % 4) as u8, i * 61)).unwrap();
        }
        for c in 0..2000 {
            mc.tick(c);
        }
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        for (ch, log) in mc.take_channel_logs().into_iter().enumerate() {
            assert!(!log.is_empty(), "channel {ch} idle");
            let v = checker.check(&log);
            assert!(v.is_empty(), "channel {ch}: {v:?}");
        }
    }

    #[test]
    fn aggregate_counters_cover_all_channels() {
        let mut mc = ChannelPartitionedController::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            2,
        );
        mc.enqueue(txn(1, 0, 5)).unwrap();
        mc.enqueue(txn(2, 1, 9)).unwrap();
        for c in 0..100 {
            mc.tick(c);
        }
        mc.finish(100);
        let agg = mc.aggregate_counters();
        assert_eq!(agg.total_reads(), 2);
        assert_eq!(agg.ranks().len(), 16); // 2 channels x 8 ranks
        assert_eq!(mc.stats().domain(DomainId(0)).demand_reads, 1);
        assert_eq!(mc.stats().domain(DomainId(1)).demand_reads, 1);
    }
}
