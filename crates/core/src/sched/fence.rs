//! Flush-based temporal partitioning (the `fence.t` family,
//! arXiv:2409.07576) — the literature's third point between TP and FS.
//!
//! Time is sliced into fixed *periods* owned round-robin by the domains,
//! like [`crate::sched::tp::TpScheduler`] without spatial partitioning —
//! but instead of running close-page with a worst-case dead time, the
//! owner runs *open-page* over the shared banks (keeping the row-buffer
//! benefit TP-NP gives up) and the tail of every period is a *fence
//! window*: no new transactions start, in-flight work drains, and a
//! precharge-all sweep flushes every row buffer. The next owner therefore
//! always inherits the same microarchitectural state — all banks closed —
//! so nothing about the previous owner's row or bank footprint survives
//! the hand-off.
//!
//! The fence window is derived from the device timing (the worst-case
//! drain of one late transaction plus the flush sweep), so the policy
//! constructs on every shipped device generation.

use crate::domain::DomainId;
use crate::queues::{QueueFull, TransactionQueue};
use crate::refresh::RefreshManager;
use crate::sched::{Completion, McStats, MemoryController, SchedulerKind};
use crate::txn::{Transaction, TxnKind};
use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, Geometry, RankId};
use fsmc_dram::{Cycle, DramDevice, TimingParams};

/// The fence window in cycles for a given device timing: the worst-case
/// tail of the last transaction allowed to start (ACT → CAS → data →
/// write recovery) plus the precharge-all flush, with a little slack for
/// bus turnaround.
pub fn fence_cycles(t: &TimingParams) -> u32 {
    t.t_rcd + t.t_cas.max(t.t_cwd) + t.t_burst + t.t_wr + t.t_ras + t.t_rp + 2 * t.t_rtrs + 8
}

/// One queued transaction and its command progress.
#[derive(Debug, Clone, Copy)]
struct Pending {
    txn: Transaction,
    issued_act: bool,
}

/// Fence-style flush-based TP controller for one channel.
#[derive(Debug)]
pub struct FenceScheduler {
    device: DramDevice,
    refresh: RefreshManager,
    stats: McStats,
    queues: Vec<TransactionQueue>,
    /// Owner transactions being walked through ACT → CAS (open-page; rows
    /// stay open until the fence flushes them).
    in_flight: Vec<Pending>,
    period: u32,
    fence: u32,
    domains: u8,
}

impl FenceScheduler {
    /// Creates a fence controller with the given period (cycles).
    ///
    /// # Panics
    ///
    /// Panics if `period` does not leave a usable issue window beyond the
    /// timing-derived fence, or if `domains` is zero.
    pub fn new(geom: Geometry, t: TimingParams, domains: u8, period: u32) -> Self {
        assert!(domains > 0, "domains must be non-zero");
        let fence = fence_cycles(&t);
        assert!(
            period > fence + t.t_rcd,
            "period {period} leaves no usable issue window (fence {fence})"
        );
        let device = DramDevice::new(geom, t);
        let refresh = RefreshManager::new(&t, geom.ranks_per_channel());
        FenceScheduler {
            device,
            refresh,
            stats: McStats::new(domains as usize),
            queues: (0..domains).map(|d| TransactionQueue::new(DomainId(d), 32)).collect(),
            in_flight: Vec::new(),
            period,
            fence,
            domains,
        }
    }

    /// The domain owning the period at `now`.
    pub fn owner_at(&self, now: Cycle) -> DomainId {
        DomainId(((now / self.period as Cycle) % self.domains as Cycle) as u8)
    }

    fn period_pos(&self, now: Cycle) -> u32 {
        (now % self.period as Cycle) as u32
    }

    /// Issues the CAS for an in-flight transaction whose row is open.
    /// Open-page: no auto-precharge — the fence flush closes the rows.
    /// In-flight work always pumps regardless of owner: new starts stop at
    /// the fence, so anything still in flight is draining toward it.
    fn pump_in_flight(&mut self, now: Cycle, completions: &mut Vec<Completion>) -> bool {
        for i in 0..self.in_flight.len() {
            let p = self.in_flight[i];
            let txn = p.txn;
            if self.device.open_row(txn.loc.rank, txn.loc.bank) != Some(txn.loc.row) {
                continue; // its ACT has not happened yet
            }
            let cas = if txn.is_write {
                Command::write(txn.loc.rank, txn.loc.bank, txn.loc.row, txn.loc.col)
            } else {
                Command::read(txn.loc.rank, txn.loc.bank, txn.loc.row, txn.loc.col)
            };
            if self.device.can_issue(&cas, now).is_ok() {
                let out = self.device.issue(&cas, now).expect("validated CAS");
                self.in_flight.remove(i);
                if p.issued_act {
                    self.stats.row_misses += 1;
                } else {
                    self.stats.row_hits += 1;
                }
                let finish = out.data_done.expect("CAS produces data");
                if !txn.is_write && txn.kind == TxnKind::Demand {
                    let ds = self.stats.domain_mut(txn.domain);
                    ds.read_latency_sum += finish.saturating_sub(txn.arrival);
                    ds.reads_completed += 1;
                }
                completions.push(Completion { txn, finish });
                return true;
            }
        }
        false
    }

    /// Starts the next transaction for the owner (open-page over shared
    /// banks: row hits adopted directly, misses precharge/activate).
    fn start_owner_transaction(&mut self, owner: DomainId, now: Cycle) -> bool {
        if self.in_flight.len() >= 4 {
            return false;
        }
        // Pass 1: row hits in the owner's queue (the open-page benefit
        // this policy keeps and TP-NP gives up).
        let device = &self.device;
        let hit = self.queues[owner.0 as usize]
            .take_first(|t| device.open_row(t.loc.rank, t.loc.bank) == Some(t.loc.row));
        if let Some(txn) = hit {
            self.in_flight.push(Pending { txn, issued_act: false });
            // The CAS itself issues via pump_in_flight on a later cycle.
            return false;
        }
        // Pass 2: oldest transaction whose bank can take its next command.
        let in_flight = &self.in_flight;
        let candidate = self.queues[owner.0 as usize].take_first(|txn| {
            if in_flight
                .iter()
                .any(|p| p.txn.loc.rank == txn.loc.rank && p.txn.loc.bank == txn.loc.bank)
            {
                return false;
            }
            match device.open_row(txn.loc.rank, txn.loc.bank) {
                Some(_) => {
                    device.can_issue(&Command::precharge(txn.loc.rank, txn.loc.bank), now).is_ok()
                }
                None => device
                    .can_issue(&Command::activate(txn.loc.rank, txn.loc.bank, txn.loc.row), now)
                    .is_ok(),
            }
        });
        let Some(txn) = candidate else { return false };
        match self.device.open_row(txn.loc.rank, txn.loc.bank) {
            Some(_) => {
                let pre = Command::precharge(txn.loc.rank, txn.loc.bank);
                self.device.issue(&pre, now).expect("validated precharge");
                self.in_flight.push(Pending { txn, issued_act: true });
            }
            None => {
                let act = Command::activate(txn.loc.rank, txn.loc.bank, txn.loc.row);
                self.device.issue(&act, now).expect("validated activate");
                self.in_flight.push(Pending { txn, issued_act: true });
            }
        }
        true
    }

    /// Issues pending ACTs for in-flight transactions whose bank is now
    /// closed (after an explicit precharge).
    fn pump_acts(&mut self, now: Cycle) -> bool {
        for p in &mut self.in_flight {
            let txn = p.txn;
            if self.device.open_row(txn.loc.rank, txn.loc.bank).is_none() {
                let act = Command::activate(txn.loc.rank, txn.loc.bank, txn.loc.row);
                if self.device.can_issue(&act, now).is_ok() {
                    self.device.issue(&act, now).expect("validated activate");
                    return true;
                }
            }
        }
        false
    }

    /// The fence flush (also the pre-refresh quiesce): sweep precharge-all
    /// across ranks with open rows, one command per cycle.
    fn flush_rows(&mut self, now: Cycle) {
        let geom = *self.device.geometry();
        for r in 0..geom.ranks_per_channel() {
            let any_open = (0..geom.banks_per_rank())
                .any(|b| self.device.open_row(RankId(r), BankId(b)).is_some());
            if any_open {
                let pre = Command::precharge_all(RankId(r));
                if self.device.can_issue(&pre, now).is_ok() {
                    self.device.issue(&pre, now).expect("validated precharge-all");
                    return;
                }
            }
        }
    }
}

impl MemoryController for FenceScheduler {
    fn can_accept(&self, domain: DomainId) -> bool {
        !self.queues[domain.0 as usize].is_full()
    }

    fn enqueue(&mut self, txn: Transaction) -> Result<(), QueueFull> {
        let ds = self.stats.domain_mut(txn.domain);
        if txn.is_write {
            ds.demand_writes += 1;
        } else {
            ds.demand_reads += 1;
        }
        self.queues[txn.domain.0 as usize].push(txn)
    }

    fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let mut completions = Vec::new();
        self.tick_into(now, &mut completions);
        completions
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        if let Some(cmd) = self.refresh.command_at(now) {
            self.device.issue(&cmd, now).expect("refresh must be legal after quiesce");
            return;
        }
        if self.refresh.in_window(now) {
            return;
        }
        if self.pump_in_flight(now, out) {
            return;
        }
        let act_ok = self.refresh.allows_transaction(now);
        if act_ok && self.pump_acts(now) {
            return;
        }
        if !act_ok {
            // Pre-refresh quiesce: close banks so REF is legal.
            self.flush_rows(now);
            return;
        }
        let pos = self.period_pos(now);
        if pos >= self.period - self.fence {
            // Fence window: no new starts; drain, then flush every row
            // buffer so the next owner inherits all-closed banks.
            if self.in_flight.is_empty() {
                self.flush_rows(now);
            }
            return;
        }
        let owner = self.owner_at(now);
        self.start_owner_transaction(owner, now);
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        // Mirrors TpScheduler::next_event: trivial while work is mid-
        // sequence; otherwise the earliest of refresh cadence, a queued
        // domain's next usable owned-period cycle, and (with open rows)
        // the refresh quiesce or the fence flush.
        if !self.in_flight.is_empty() {
            return now + 1;
        }
        let mut next = self.refresh.next_command_cycle(now);
        let period = self.period as Cycle;
        let fence = self.fence as Cycle;
        let domains = self.domains as Cycle;
        let from = now + 1;
        for q in &self.queues {
            if q.is_empty() {
                continue;
            }
            let d = q.domain().0 as Cycle;
            let k = from / period;
            let candidate = if k % domains == d && from % period < period - fence {
                from
            } else {
                let k2 = k + 1;
                (k2 + (d + domains - (k2 % domains)) % domains) * period
            };
            next = next.min(candidate);
        }
        if self.device.any_open_row() {
            next = next.min(self.refresh.next_blocked_cycle(from));
            let pos = from % period;
            let fz = if pos >= period - fence { from } else { from - pos + (period - fence) };
            next = next.min(fz);
        }
        next.max(from)
    }

    fn device(&self) -> &DramDevice {
        &self.device
    }

    fn finish(&mut self, now: Cycle) {
        self.device.finish(now);
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::TpFence { period: self.period }
    }

    fn record_commands(&mut self) {
        self.device.record_commands();
    }

    fn take_command_log(&mut self) -> Vec<TimedCommand> {
        self.device.take_log()
    }

    fn has_pending_log(&self) -> bool {
        self.device.has_log()
    }

    fn take_command_log_into(&mut self, out: &mut Vec<TimedCommand>) {
        self.device.take_log_into(out);
    }

    fn record_obs(&mut self) {
        self.device.record_obs();
    }

    fn has_obs(&self) -> bool {
        self.device.has_obs()
    }

    fn take_obs_into(&mut self, out: &mut Vec<fsmc_dram::ObsCommand>) {
        self.device.take_obs_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::PartitionPolicy;
    use crate::txn::TxnId;
    use fsmc_dram::geometry::LineAddr;
    use fsmc_dram::TimingChecker;

    fn mk(period: u32) -> FenceScheduler {
        FenceScheduler::new(Geometry::paper_default(), TimingParams::ddr3_1600(), 8, period)
    }

    fn txn(id: u64, domain: u8, local: u64, write: bool) -> Transaction {
        let geom = Geometry::paper_default();
        let loc = PartitionPolicy::None.map(&geom, DomainId(domain), LineAddr(local));
        if write {
            Transaction::write(TxnId(id), DomainId(domain), loc, 0)
        } else {
            Transaction::read(TxnId(id), DomainId(domain), loc, 0)
        }
    }

    #[test]
    fn ownership_rotates_round_robin() {
        let mc = mk(300);
        assert_eq!(mc.owner_at(0), DomainId(0));
        assert_eq!(mc.owner_at(299), DomainId(0));
        assert_eq!(mc.owner_at(300), DomainId(1));
        assert_eq!(mc.owner_at(8 * 300), DomainId(0));
    }

    #[test]
    fn fence_is_derived_from_timing_and_constructs_everywhere() {
        // Every shipped generation must admit the default period, and the
        // fence must cover a full transaction tail.
        for t in [
            TimingParams::ddr3_1600(),
            TimingParams::ddr4_2400(),
            TimingParams::lpddr4_3200(),
            TimingParams::hbm2(),
        ] {
            let f = fence_cycles(&t);
            assert!(f > t.t_rcd + t.t_cas + t.t_burst, "fence {f} too short");
            assert!(f + t.t_rcd < 300, "fence {f} does not fit the default period");
        }
    }

    #[test]
    #[should_panic(expected = "no usable issue window")]
    fn rejects_period_shorter_than_fence() {
        mk(80);
    }

    #[test]
    fn rows_are_flushed_at_every_period_boundary() {
        let mut mc = mk(300);
        for i in 0..64u64 {
            mc.enqueue(txn(i, (i % 8) as u8, i * 29, i % 4 == 0)).unwrap();
        }
        let mut done = 0;
        for c in 0..30_000u64 {
            // At every period boundary (before the new owner issues), no
            // rows may be open: the fence flushed them all.
            if c > 0 && c % 300 == 0 {
                let geom = *mc.device().geometry();
                for r in 0..geom.ranks_per_channel() {
                    for b in 0..geom.banks_per_rank() {
                        assert_eq!(
                            mc.device().open_row(RankId(r), BankId(b)),
                            None,
                            "row open across fence boundary at {c}"
                        );
                    }
                }
            }
            done += mc.tick(c).len();
        }
        assert!(done > 0, "no transaction completed");
    }

    #[test]
    fn open_page_within_a_period_yields_row_hits() {
        let mut mc = mk(300);
        // Same-row reads of domain 0, all inside its first period.
        for i in 0..4u64 {
            mc.enqueue(txn(i, 0, i, false)).unwrap();
        }
        let mut done = Vec::new();
        for c in 0..2_400u64 {
            done.extend(mc.tick(c));
        }
        assert_eq!(done.len(), 4);
        assert!(mc.stats().row_hits >= 3, "row hits {}", mc.stats().row_hits);
    }

    #[test]
    fn command_stream_is_legal() {
        let mut mc = mk(300);
        mc.record_commands();
        for i in 0..64u64 {
            mc.enqueue(txn(i, (i % 8) as u8, i * 29, i % 4 == 0)).unwrap();
        }
        let mut done = 0;
        for c in 0..30_000u64 {
            done += mc.tick(c).len();
        }
        assert!(done > 0);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn next_event_skips_are_sound() {
        // Sparse ticking (only at next_event cycles) must reproduce the
        // dense per-cycle run exactly, across idle periods and refresh
        // windows.
        let (mut dense, mut sparse) = (mk(300), mk(300));
        dense.record_commands();
        sparse.record_commands();
        for i in 0..12u64 {
            let t = txn(i, (i % 8) as u8, i * 29, i % 4 == 0);
            dense.enqueue(t).unwrap();
            sparse.enqueue(t).unwrap();
        }
        let horizon = 14_000u64;
        let mut dense_done = Vec::new();
        for c in 0..horizon {
            dense_done.extend(dense.tick(c));
        }
        let mut sparse_done = Vec::new();
        let mut c = 0u64;
        while c < horizon {
            sparse_done.extend(sparse.tick(c));
            c = sparse.next_event(c);
        }
        assert_eq!(dense_done, sparse_done);
        assert_eq!(dense.take_command_log(), sparse.take_command_log());
        assert_eq!(dense.stats(), sparse.stats());
    }
}
