//! Temporal Partitioning (Wang et al., HPCA 2014) — the prior secure
//! scheme the paper compares against (Section 2.3).
//!
//! Time is sliced into fixed *turns*; only the turn's owner domain may
//! start memory transactions, and no transaction may start during the
//! *dead time* at the end of a turn (so its resource usage cannot spill
//! into the next owner's turn).
//!
//! With **bank partitioning**, banks are private to a domain, so rows may
//! stay open across turns (the next owner touches different banks) and
//! the dead time only covers the shared-bus tail (~12 ns). Without
//! partitioning, banks are shared: every row must be closed again before
//! the turn ends, and the dead time covers the full bank-recovery worst
//! case (~65 ns).

use crate::domain::DomainId;
use crate::queues::{QueueFull, TransactionQueue};
use crate::refresh::RefreshManager;
use crate::sched::{Completion, McStats, MemoryController, SchedulerKind};
use crate::txn::{Transaction, TxnKind};
use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, Geometry, RankId};
use fsmc_dram::{Cycle, DramDevice, TimingParams};

/// Dead time (cycles) for bank-partitioned TP: the paper quotes ~12 ns
/// (~10 DRAM cycles) because only the shared data bus constrains the
/// hand-off.
pub const DEAD_TIME_BP: u32 = 10;
/// Dead time for non-partitioned TP: ~65 ns (~52 cycles) covering the
/// worst-case bank occupancy of the last transaction plus the precharge
/// sweep that returns the banks to the next owner closed.
pub const DEAD_TIME_NP: u32 = 52;

/// Minimum sensible turn length with bank partitioning (Figure 5's
/// smallest point).
pub fn min_turn_bp() -> u32 {
    60
}
/// Minimum turn length without partitioning (Figure 5 uses 172).
pub fn min_turn_np() -> u32 {
    172
}

/// One queued transaction and its command progress.
#[derive(Debug, Clone, Copy)]
struct Pending {
    txn: Transaction,
    issued_act: bool,
}

/// Temporal-partitioning controller for one channel.
#[derive(Debug)]
pub struct TpScheduler {
    device: DramDevice,
    t: TimingParams,
    refresh: RefreshManager,
    stats: McStats,
    kind: SchedulerKind,
    queues: Vec<TransactionQueue>,
    /// Owner-turn transactions currently being walked through their
    /// command sequences (open-page: ACT then CAS, rows left open).
    in_flight: Vec<Pending>,
    bank_partitioned: bool,
    turn: u32,
    dead: u32,
    domains: u8,
}

impl TpScheduler {
    /// Creates a TP controller.
    ///
    /// `bank_partitioned` selects the dead time and whether rows persist
    /// across turns; `turn` is the turn length in DRAM cycles (Figure 5
    /// sweeps this).
    ///
    /// # Panics
    ///
    /// Panics if `turn` does not exceed the dead time plus one transaction
    /// footprint, or if `domains` is zero.
    pub fn new(
        geom: Geometry,
        t: TimingParams,
        domains: u8,
        bank_partitioned: bool,
        turn: u32,
    ) -> Self {
        assert!(domains > 0, "domains must be non-zero");
        let dead = if bank_partitioned { DEAD_TIME_BP } else { DEAD_TIME_NP };
        assert!(
            turn > dead + t.t_rcd,
            "turn length {turn} leaves no usable issue window (dead time {dead})"
        );
        let device = DramDevice::new(geom, t);
        let refresh = RefreshManager::new(&t, geom.ranks_per_channel());
        let kind = if bank_partitioned {
            SchedulerKind::TpBankPartitioned { turn }
        } else {
            SchedulerKind::TpNoPartition { turn }
        };
        TpScheduler {
            device,
            t,
            refresh,
            stats: McStats::new(domains as usize),
            kind,
            queues: (0..domains).map(|d| TransactionQueue::new(DomainId(d), 32)).collect(),
            in_flight: Vec::new(),
            bank_partitioned,
            turn,
            dead,
            domains,
        }
    }

    /// The domain owning the turn at `now`.
    pub fn owner_at(&self, now: Cycle) -> DomainId {
        DomainId(((now / self.turn as Cycle) % self.domains as Cycle) as u8)
    }

    /// Position within the current turn.
    fn turn_pos(&self, now: Cycle) -> u32 {
        (now % self.turn as Cycle) as u32
    }

    /// Issues the CAS for an in-flight transaction whose row is open.
    /// Returns `Some(issued_completion)` if a command went out.
    ///
    /// With bank partitioning, only the *current turn owner's* commands
    /// may issue — a previous owner's leftover work must wait for its own
    /// next turn (its rows persist safely in its private banks). Without
    /// partitioning, transactions are serialised and gated so tightly
    /// that any in-flight CAS belongs to the current or immediately
    /// preceding owner and completes within the dead time.
    fn pump_in_flight(&mut self, now: Cycle, completions: &mut Vec<Completion>) -> bool {
        let owner = self.owner_at(now);
        for i in 0..self.in_flight.len() {
            let p = self.in_flight[i];
            let txn = p.txn;
            if self.bank_partitioned && txn.domain != owner {
                continue;
            }
            if self.device.open_row(txn.loc.rank, txn.loc.bank) != Some(txn.loc.row) {
                continue; // its ACT has not happened yet (shouldn't occur)
            }
            // Bank-partitioned turns leave the row open (the bank is
            // private); non-partitioned turns auto-precharge so the bank
            // returns to the next owner closed.
            let cas = match (txn.is_write, self.bank_partitioned) {
                (true, true) => {
                    Command::write(txn.loc.rank, txn.loc.bank, txn.loc.row, txn.loc.col)
                }
                (false, true) => {
                    Command::read(txn.loc.rank, txn.loc.bank, txn.loc.row, txn.loc.col)
                }
                (true, false) => {
                    Command::write_ap(txn.loc.rank, txn.loc.bank, txn.loc.row, txn.loc.col)
                }
                (false, false) => {
                    Command::read_ap(txn.loc.rank, txn.loc.bank, txn.loc.row, txn.loc.col)
                }
            };
            if self.device.can_issue(&cas, now).is_ok() {
                let out = self.device.issue(&cas, now).expect("validated CAS");
                self.in_flight.remove(i);
                if p.issued_act {
                    self.stats.row_misses += 1;
                } else {
                    self.stats.row_hits += 1;
                }
                let finish = out.data_done.expect("CAS produces data");
                if !txn.is_write && txn.kind == TxnKind::Demand {
                    let ds = self.stats.domain_mut(txn.domain);
                    ds.read_latency_sum += finish.saturating_sub(txn.arrival);
                    ds.reads_completed += 1;
                }
                completions.push(Completion { txn, finish });
                return true;
            }
        }
        false
    }

    /// Starts the next transaction for the owner.
    ///
    /// Bank-partitioned turns run open-page: row hits are adopted
    /// directly, misses precharge/activate, and rows persist. Without
    /// partitioning the turn runs close-page, and a transaction only
    /// starts if its CAS is predicted to follow the ACT within a couple
    /// of cycles — this is what bounds the dead time at ~52 cycles.
    fn start_owner_transaction(&mut self, owner: DomainId, now: Cycle) -> bool {
        // Without partitioning, transactions serialise: the CAS-slot
        // prediction below is only sound when no other CAS is pending, and
        // serialisation is what keeps the auto-precharge tail inside the
        // dead time.
        let cap = if self.bank_partitioned { 8 } else { 1 };
        let owner_in_flight = self.in_flight.iter().filter(|p| p.txn.domain == owner).count();
        if owner_in_flight >= cap || (!self.bank_partitioned && !self.in_flight.is_empty()) {
            return false;
        }
        if self.bank_partitioned {
            // Pass 1: row hits in the owner's queue (open-page benefit).
            let device = &self.device;
            let hit = self.queues[owner.0 as usize]
                .take_first(|t| device.open_row(t.loc.rank, t.loc.bank) == Some(t.loc.row));
            if let Some(txn) = hit {
                self.in_flight.push(Pending { txn, issued_act: false });
                // The CAS itself issues via pump_in_flight on a later cycle.
                return false;
            }
        }
        // Pass 2: oldest transaction whose bank can take its next command.
        let in_flight = &self.in_flight;
        let device = &self.device;
        let bank_partitioned = self.bank_partitioned;
        let t = self.t;
        let candidate = self.queues[owner.0 as usize].take_first(|txn| {
            // Don't start a second miss to a bank that an in-flight
            // transaction is still using.
            if in_flight
                .iter()
                .any(|p| p.txn.loc.rank == txn.loc.rank && p.txn.loc.bank == txn.loc.bank)
            {
                return false;
            }
            if !bank_partitioned {
                // Close-page: the CAS must land at ACT + tRCD (small
                // slack), or the auto-precharge tail would cross the turn
                // boundary.
                let cas_ready = device.rank_next_cas_at(txn.loc.rank, !txn.is_write);
                if cas_ready + t.t_rtrs as Cycle > now + t.t_rcd as Cycle {
                    return false;
                }
            }
            match device.open_row(txn.loc.rank, txn.loc.bank) {
                Some(_) => {
                    bank_partitioned
                        && device
                            .can_issue(&Command::precharge(txn.loc.rank, txn.loc.bank), now)
                            .is_ok()
                }
                None => device
                    .can_issue(&Command::activate(txn.loc.rank, txn.loc.bank, txn.loc.row), now)
                    .is_ok(),
            }
        });
        let Some(txn) = candidate else { return false };
        match self.device.open_row(txn.loc.rank, txn.loc.bank) {
            Some(_) => {
                let pre = Command::precharge(txn.loc.rank, txn.loc.bank);
                self.device.issue(&pre, now).expect("validated precharge");
                // Requeued as in-flight needing an ACT, which `pump_acts`
                // will issue once the precharge completes.
                self.in_flight.push(Pending { txn, issued_act: true });
            }
            None => {
                let act = Command::activate(txn.loc.rank, txn.loc.bank, txn.loc.row);
                self.device.issue(&act, now).expect("validated activate");
                self.in_flight.push(Pending { txn, issued_act: true });
            }
        }
        true
    }

    /// Issues pending ACTs for in-flight transactions whose bank is now
    /// closed (after an explicit precharge).
    fn pump_acts(&mut self, now: Cycle) -> bool {
        let owner = self.owner_at(now);
        for p in &mut self.in_flight {
            let txn = p.txn;
            if self.bank_partitioned && txn.domain != owner {
                continue;
            }
            if self.device.open_row(txn.loc.rank, txn.loc.bank).is_none() {
                let act = Command::activate(txn.loc.rank, txn.loc.bank, txn.loc.row);
                if self.device.can_issue(&act, now).is_ok() {
                    self.device.issue(&act, now).expect("validated activate");
                    return true;
                }
            }
        }
        false
    }

    /// Without bank partitioning, the dead time also returns every bank to
    /// the next owner *closed*: sweep precharge-alls.
    fn dead_time_close(&mut self, now: Cycle) {
        let geom = *self.device.geometry();
        for r in 0..geom.ranks_per_channel() {
            let any_open = (0..geom.banks_per_rank())
                .any(|b| self.device.open_row(RankId(r), BankId(b)).is_some());
            if any_open {
                let pre = Command::precharge_all(RankId(r));
                if self.device.can_issue(&pre, now).is_ok() {
                    self.device.issue(&pre, now).expect("validated precharge-all");
                    return;
                }
            }
        }
    }
}

impl MemoryController for TpScheduler {
    fn can_accept(&self, domain: DomainId) -> bool {
        !self.queues[domain.0 as usize].is_full()
    }

    fn enqueue(&mut self, txn: Transaction) -> Result<(), QueueFull> {
        let ds = self.stats.domain_mut(txn.domain);
        if txn.is_write {
            ds.demand_writes += 1;
        } else {
            ds.demand_reads += 1;
        }
        self.queues[txn.domain.0 as usize].push(txn)
    }

    fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let mut completions = Vec::new();
        self.tick_into(now, &mut completions);
        completions
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        if let Some(cmd) = self.refresh.command_at(now) {
            self.device.issue(&cmd, now).expect("refresh must be legal after quiesce");
            return;
        }
        if self.refresh.in_window(now) {
            return;
        }
        // Finish work already started (part of the owner's footprint,
        // covered by the dead-time accounting). CAS tails are bounded, so
        // they are safe even inside the pre-refresh quiesce.
        if self.pump_in_flight(now, out) {
            return;
        }
        let act_ok = self.refresh.allows_transaction(now);
        if act_ok && self.pump_acts(now) {
            return;
        }
        if !act_ok {
            // Pre-refresh quiesce: close banks so REF is legal.
            self.dead_time_close(now);
            return;
        }
        let pos = self.turn_pos(now);
        if pos >= self.turn - self.dead {
            // Dead time: no new transactions; without partitioning, also
            // hand the banks back closed.
            if !self.bank_partitioned && self.in_flight.is_empty() {
                self.dead_time_close(now);
            }
            return;
        }
        let owner = self.owner_at(now);
        self.start_owner_transaction(owner, now);
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        // In-flight transactions poll the device for CAS/ACT readiness
        // every cycle, so the bound is trivial while any work is mid-
        // sequence. Otherwise the next possible activity is the earliest
        // of: a queued domain's next usable owned-turn cycle, the
        // wall-clock refresh cadence, and (with open rows) the quiesce
        // sweep or the NP dead-zone close.
        if !self.in_flight.is_empty() {
            return now + 1;
        }
        let mut next = self.refresh.next_command_cycle(now);
        let turn = self.turn as Cycle;
        let dead = self.dead as Cycle;
        let domains = self.domains as Cycle;
        let from = now + 1;
        for q in &self.queues {
            if q.is_empty() {
                continue;
            }
            let d = q.domain().0 as Cycle;
            let k = from / turn;
            let candidate = if k % domains == d && from % turn < turn - dead {
                from
            } else {
                // Start of domain d's next turn after `k`.
                let k2 = k + 1;
                (k2 + (d + domains - (k2 % domains)) % domains) * turn
            };
            next = next.min(candidate);
        }
        if self.device.any_open_row() {
            next = next.min(self.refresh.next_blocked_cycle(from));
            if !self.bank_partitioned {
                let pos = from % turn;
                let dz = if pos >= turn - dead { from } else { from - pos + (turn - dead) };
                next = next.min(dz);
            }
        }
        next.max(from)
    }

    fn device(&self) -> &DramDevice {
        &self.device
    }

    fn finish(&mut self, now: Cycle) {
        self.device.finish(now);
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn kind(&self) -> SchedulerKind {
        self.kind
    }

    fn record_commands(&mut self) {
        self.device.record_commands();
    }

    fn take_command_log(&mut self) -> Vec<TimedCommand> {
        self.device.take_log()
    }

    fn has_pending_log(&self) -> bool {
        self.device.has_log()
    }

    fn take_command_log_into(&mut self, out: &mut Vec<TimedCommand>) {
        self.device.take_log_into(out);
    }

    fn record_obs(&mut self) {
        self.device.record_obs();
    }

    fn has_obs(&self) -> bool {
        self.device.has_obs()
    }

    fn take_obs_into(&mut self, out: &mut Vec<fsmc_dram::ObsCommand>) {
        self.device.take_obs_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::PartitionPolicy;
    use crate::txn::TxnId;
    use fsmc_dram::geometry::LineAddr;
    use fsmc_dram::TimingChecker;

    fn mk(bank_partitioned: bool, turn: u32) -> TpScheduler {
        TpScheduler::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            8,
            bank_partitioned,
            turn,
        )
    }

    fn txn(id: u64, domain: u8, local: u64, write: bool, policy: PartitionPolicy) -> Transaction {
        let geom = Geometry::paper_default();
        let loc = policy.map(&geom, DomainId(domain), LineAddr(local));
        if write {
            Transaction::write(TxnId(id), DomainId(domain), loc, 0)
        } else {
            Transaction::read(TxnId(id), DomainId(domain), loc, 0)
        }
    }

    #[test]
    fn ownership_rotates_round_robin() {
        let mc = mk(true, 60);
        assert_eq!(mc.owner_at(0), DomainId(0));
        assert_eq!(mc.owner_at(59), DomainId(0));
        assert_eq!(mc.owner_at(60), DomainId(1));
        assert_eq!(mc.owner_at(8 * 60), DomainId(0));
    }

    #[test]
    fn non_owner_waits_for_its_turn() {
        let mut mc = mk(true, 60);
        // Domain 3's turn starts at cycle 180.
        mc.enqueue(txn(1, 3, 0, false, PartitionPolicy::BankStriped)).unwrap();
        let mut first_act = None;
        for c in 0..400 {
            mc.tick(c);
            if mc.device().counters().total_activates() == 1 && first_act.is_none() {
                first_act = Some(c);
            }
        }
        let f = first_act.expect("transaction never issued");
        assert!((180..240).contains(&f), "ACT at {f}, expected inside domain 3's turn");
    }

    #[test]
    fn dead_time_blocks_late_starts() {
        let mut mc = mk(true, 60);
        // Arrive just inside the dead time of domain 0's turn (pos 50+).
        let t = txn(1, 0, 0, false, PartitionPolicy::BankStriped);
        for c in 0..51 {
            mc.tick(c);
        }
        mc.enqueue(Transaction { arrival: 51, ..t }).unwrap();
        let mut first_act = None;
        for c in 51..700 {
            mc.tick(c);
            if mc.device().counters().total_activates() == 1 && first_act.is_none() {
                first_act = Some(c);
            }
        }
        // Must wait for domain 0's next turn at 480.
        assert_eq!(first_act, Some(480));
    }

    #[test]
    fn bank_partitioned_rows_persist_across_turns_for_row_hits() {
        let mut mc = mk(true, 60);
        // Two reads to the same row of domain 0, far enough apart that the
        // second lands in domain 0's *next* turn.
        mc.enqueue(txn(1, 0, 0, false, PartitionPolicy::BankStriped)).unwrap();
        let mut done = Vec::new();
        for c in 0..480 {
            done.extend(mc.tick(c));
        }
        mc.enqueue(txn(2, 0, 1, false, PartitionPolicy::BankStriped)).unwrap();
        for c in 480..1000 {
            done.extend(mc.tick(c));
        }
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().row_hits, 1, "second read should hit the open row");
    }

    #[test]
    fn queuing_delay_spans_the_rotation() {
        // A TP read arriving at the start of someone else's turn waits
        // most of a rotation.
        let mut mc = mk(true, 60);
        mc.enqueue(txn(1, 4, 0, false, PartitionPolicy::BankStriped)).unwrap();
        let mut done = Vec::new();
        for c in 0..1000 {
            done.extend(mc.tick(c));
        }
        assert_eq!(done.len(), 1);
        assert!(done[0].finish > 240, "finish {} should wait for turn 4", done[0].finish);
    }

    #[test]
    fn command_stream_is_legal_bp() {
        let mut mc = mk(true, 60);
        mc.record_commands();
        for i in 0..64u64 {
            mc.enqueue(txn(i, (i % 8) as u8, i * 29, i % 4 == 0, PartitionPolicy::BankStriped))
                .unwrap();
        }
        let mut done = 0;
        for c in 0..8000 {
            done += mc.tick(c).len();
        }
        assert!(done > 0);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn command_stream_is_legal_np_and_banks_close_between_turns() {
        let mut mc = mk(false, 172);
        mc.record_commands();
        for i in 0..64u64 {
            mc.enqueue(txn(i, (i % 8) as u8, i * 29, i % 4 == 0, PartitionPolicy::None)).unwrap();
        }
        for c in 0..20_000u64 {
            // At every turn boundary (before the new owner issues), no
            // rows may be open (non-partitioned domains share banks).
            if c > 0 && c % 172 == 0 {
                let geom = *mc.device().geometry();
                for r in 0..geom.ranks_per_channel() {
                    for b in 0..geom.banks_per_rank() {
                        assert_eq!(
                            mc.device().open_row(RankId(r), BankId(b)),
                            None,
                            "row open across NP turn boundary at {c}"
                        );
                    }
                }
            }
            mc.tick(c);
        }
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    #[should_panic(expected = "no usable issue window")]
    fn rejects_turn_shorter_than_dead_time() {
        mk(false, 40);
    }

    #[test]
    fn next_event_skips_are_sound_for_bp_and_np() {
        // Sparse ticking (only at next_event cycles) must reproduce the
        // dense per-cycle run exactly, across idle turns and two refresh
        // windows, for both TP variants.
        for (bp, turn, policy) in
            [(true, 60, PartitionPolicy::BankStriped), (false, 172, PartitionPolicy::None)]
        {
            let (mut dense, mut sparse) = (mk(bp, turn), mk(bp, turn));
            dense.record_commands();
            sparse.record_commands();
            for i in 0..12u64 {
                let t = txn(i, (i % 8) as u8, i * 29, i % 4 == 0, policy);
                dense.enqueue(t).unwrap();
                sparse.enqueue(t).unwrap();
            }
            let horizon = 14_000u64;
            let mut dense_done = Vec::new();
            for c in 0..horizon {
                dense_done.extend(dense.tick(c));
            }
            let mut sparse_done = Vec::new();
            let mut c = 0u64;
            while c < horizon {
                sparse_done.extend(sparse.tick(c));
                c = sparse.next_event(c);
            }
            assert_eq!(dense_done, sparse_done, "bp={bp}");
            assert_eq!(dense.take_command_log(), sparse.take_command_log(), "bp={bp}");
            assert_eq!(dense.stats(), sparse.stats(), "bp={bp}");
        }
    }
}
