//! Memory-controller scheduling policies behind one trait.
//!
//! Three families are implemented:
//!
//! * [`baseline::BaselineScheduler`] — non-secure FR-FCFS open-page with
//!   watermark-driven write drain (the normalisation denominator of every
//!   figure in the paper).
//! * [`tp::TpScheduler`] — Temporal Partitioning (Wang et al., HPCA 2014),
//!   the prior secure scheme, in bank-partitioned and non-partitioned
//!   forms with configurable turn lengths.
//! * [`fs::FsScheduler`] — the paper's Fixed Service policies: rank
//!   partitioning, bank partitioning, reordered bank partitioning, naive
//!   no-partitioning and triple alternation, plus the prefetch and energy
//!   optimisations.

pub mod baseline;
pub mod channel_part;
pub mod fence;
pub mod fs;
pub mod multi_channel;
pub mod tp;

use crate::domain::{DomainId, PartitionPolicy};
use crate::queues::QueueFull;
use crate::txn::Transaction;
use fsmc_dram::checker::Violation;
use fsmc_dram::{Cycle, DramDevice, TimingParams};
use std::fmt;

/// Deterministic command-stream fault injection, applied by controllers
/// that support it (currently [`fs::FsScheduler`]) as transactions are
/// committed to command slots. Periods count committed transactions;
/// the same spec against the same workload/seed reproduces the same
/// faulty stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CmdFaultSpec {
    /// Every `delay_period`-th committed transaction has its commands
    /// shifted `delay_cycles` later (0 disables). A shifted command
    /// breaks the solved pipeline and is caught as a timing violation.
    pub delay_period: u64,
    pub delay_cycles: u64,
    /// Every `drop_period`-th committed transaction is silently dropped:
    /// no commands issue and no completion is ever delivered (0 disables).
    pub drop_period: u64,
    /// Stop injecting after this many faults (0 = unlimited).
    pub max_faults: u64,
}

impl CmdFaultSpec {
    pub fn is_enabled(&self) -> bool {
        self.delay_period > 0 || self.drop_period > 0
    }
}

/// The externally observable issue discipline of a solved Fixed-Service
/// pipeline: every ACT and CAS lands on a fixed phase of the slot pitch
/// `l`, and (under rank partitioning) the slot at a given index may only
/// touch its owning domain's rank.
///
/// An online monitor holding the spec can verify *schedule integrity* —
/// not just device-timing legality — command by command: a command that is
/// perfectly legal for the DRAM part but off its solved phase (or in
/// another domain's slot) is exactly the kind of silent drift that opens a
/// timing channel, and is invisible to a pure Table-1 checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CadenceSpec {
    /// Slot pitch `l` of the solved pipeline (cycles between slots).
    pub slot_pitch: Cycle,
    /// Absolute cycle of slot 0's read ACT; slot `g`'s read ACT is
    /// `read_act_anchor + g * slot_pitch`. Likewise for the other anchors.
    pub read_act_anchor: Cycle,
    pub write_act_anchor: Cycle,
    pub read_cas_anchor: Cycle,
    pub write_cas_anchor: Cycle,
    /// Owning rank per slot-pattern position, when the spatial partition
    /// pins each domain to one rank: the slot at index `g` may only touch
    /// `slot_owner_ranks[g % len]`. `None` disables ownership checking
    /// (bank-partitioned and unpartitioned variants).
    pub slot_owner_ranks: Option<Vec<u8>>,
}

impl CadenceSpec {
    /// The slot index a command at `cycle` occupies relative to `anchor`,
    /// if the cycle sits exactly on that anchor's phase.
    fn slot_at(anchor: Cycle, pitch: Cycle, cycle: Cycle) -> Option<u64> {
        (cycle >= anchor && (cycle - anchor).is_multiple_of(pitch))
            .then(|| (cycle - anchor) / pitch)
    }

    fn owner_ok(&self, slot: u64, rank: u8) -> bool {
        match &self.slot_owner_ranks {
            None => true,
            Some(owners) if owners.is_empty() => true,
            Some(owners) => owners[(slot % owners.len() as u64) as usize] == rank,
        }
    }

    /// Checks one issued command against the cadence. Refresh, precharge
    /// and power-down commands are exempt: they are wall-clock or
    /// transition events outside the per-slot pipeline.
    ///
    /// # Errors
    ///
    /// The name of the violated invariant.
    pub fn check(&self, tc: &fsmc_dram::command::TimedCommand) -> Result<(), &'static str> {
        let c = tc.cycle;
        let rank = tc.cmd.rank.0;
        match tc.cmd.kind {
            fsmc_dram::CommandKind::Activate => {
                // An ACT's direction (read or write slot) is not yet known,
                // so accept either anchor — and under rank partitioning,
                // either candidate slot whose owner matches.
                let slots = [
                    Self::slot_at(self.read_act_anchor, self.slot_pitch, c),
                    Self::slot_at(self.write_act_anchor, self.slot_pitch, c),
                ];
                if slots.iter().all(Option::is_none) {
                    return Err("FS cadence: ACT off its slot phase");
                }
                if !slots.iter().flatten().any(|&g| self.owner_ok(g, rank)) {
                    return Err("FS cadence: ACT in another domain's slot");
                }
                Ok(())
            }
            k if k.is_read() => match Self::slot_at(self.read_cas_anchor, self.slot_pitch, c) {
                None => Err("FS cadence: read CAS off its slot phase"),
                Some(g) if !self.owner_ok(g, rank) => {
                    Err("FS cadence: read CAS in another domain's slot")
                }
                Some(_) => Ok(()),
            },
            k if k.is_write() => match Self::slot_at(self.write_cas_anchor, self.slot_pitch, c) {
                None => Err("FS cadence: write CAS off its slot phase"),
                Some(g) if !self.owner_ok(g, rank) => {
                    Err("FS cadence: write CAS in another domain's slot")
                }
                Some(_) => Ok(()),
            },
            _ => Ok(()),
        }
    }
}

/// A persistent topology or membership change a controller is asked to
/// absorb at an epoch boundary. Unlike the transient injection faults in
/// [`CmdFaultSpec`], these do not go away: the controller must keep its
/// service guarantees on the degraded topology (or new domain set) for
/// the rest of the run.
///
/// The reconfiguration contract for Fixed-Service policies is that the
/// solved slot cadence (pitch, anchors, rank ownership) is *invariant*
/// across the transition: events may change which domains are attached,
/// which banks/ranks are eligible targets, and how often refresh runs,
/// but never when slots fire. That invariance is what keeps a surviving
/// domain's timing bit-identical whether or not a co-tenant churned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigEvent {
    /// One bank stopped retaining data: mask it out of dummy generation
    /// and remap its demand traffic onto a healthy bank in the same rank.
    StuckBank { rank: u8, bank: u8 },
    /// A whole rank died. Its tenant domain (under rank partitioning) is
    /// force-detached; the dead rank's slots become bubbles, since even a
    /// dummy cannot target dead silicon.
    DeadRank { rank: u8 },
    /// Thermal alarm: retention halves, so refresh must run `factor`
    /// times more often (tREFI divided by `factor`).
    ThermalRefresh { factor: u8 },
    /// A tenant domain left the host; its slots revert to dummies.
    DomainLeave { domain: u8 },
    /// A new tenant domain joined; it starts being served at the epoch
    /// boundary (its slots carried dummies until then).
    DomainJoin { domain: u8 },
}

impl ReconfigEvent {
    /// The domain whose service this event changes, when the event is
    /// about one specific domain under the given rank-partitioned
    /// domain-to-rank mapping (`domain d owns rank d % ranks`). Survivor
    /// non-interference claims exclude exactly these domains.
    pub fn touched_domain(&self, domains: u8, ranks: u8) -> Option<u8> {
        match *self {
            ReconfigEvent::DomainLeave { domain } | ReconfigEvent::DomainJoin { domain } => {
                Some(domain)
            }
            // Under rank partitioning the rank's tenant loses service;
            // with more domains than ranks this is conservative (first
            // tenant named, all sharers are really affected).
            ReconfigEvent::DeadRank { rank } => (rank < domains.min(ranks)).then_some(rank),
            ReconfigEvent::StuckBank { rank, .. } => (rank < domains.min(ranks)).then_some(rank),
            // Refresh cadence changes hit every domain identically.
            ReconfigEvent::ThermalRefresh { .. } => None,
        }
    }
}

/// Identifies a scheduling policy and its configuration (the design
/// points of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Non-secure FR-FCFS baseline.
    Baseline,
    /// Non-secure baseline with the sandbox prefetcher enabled.
    BaselinePrefetch,
    /// TP with bank partitioning at the given turn length (cycles).
    TpBankPartitioned { turn: u32 },
    /// TP with no spatial partitioning at the given turn length (cycles).
    TpNoPartition { turn: u32 },
    /// Flush-based TP (fence.t-style): open-page turns over shared banks,
    /// with every row buffer flushed at the end of each fixed period.
    TpFence { period: u32 },
    /// FS with rank partitioning (fixed periodic data, l = 7).
    FsRankPartitioned,
    /// FS rank partitioning with the sandbox prefetcher in dummy slots.
    FsRankPartitionedPrefetch,
    /// FS with basic bank partitioning (fixed periodic RAS, l = 15).
    FsBankPartitioned,
    /// FS with reordered bank partitioning (reads first, Q = 63).
    FsReorderedBankPartitioned,
    /// FS without spatial partitioning, naive pipeline (l = 43).
    FsNoPartitionNaive,
    /// FS without spatial partitioning, triple alternation.
    FsTripleAlternation,
    /// Channel partitioning: one private channel per domain (Section 4.1;
    /// the no-sharing case — secure by isolation, not scheduling).
    ChannelPartitioned,
    /// Rank-partitioned FS sharded across multiple channels (the paper's
    /// 32-core, 4-channel target system).
    FsMultiChannel { channels: u8 },
}

impl SchedulerKind {
    /// The spatial partition the OS must configure for this policy.
    pub fn partition_policy(&self) -> PartitionPolicy {
        match self {
            SchedulerKind::Baseline | SchedulerKind::BaselinePrefetch => PartitionPolicy::None,
            SchedulerKind::TpBankPartitioned { .. } => PartitionPolicy::BankStriped,
            SchedulerKind::TpNoPartition { .. } => PartitionPolicy::None,
            // Fence turns share banks; the flush is what isolates them.
            SchedulerKind::TpFence { .. } => PartitionPolicy::None,
            SchedulerKind::FsRankPartitioned | SchedulerKind::FsRankPartitionedPrefetch => {
                PartitionPolicy::Rank
            }
            SchedulerKind::FsBankPartitioned | SchedulerKind::FsReorderedBankPartitioned => {
                PartitionPolicy::BankStriped
            }
            SchedulerKind::FsNoPartitionNaive | SchedulerKind::FsTripleAlternation => {
                PartitionPolicy::None
            }
            // Within its private channel a domain owns everything; the
            // unpartitioned mapping maximises its bank parallelism.
            SchedulerKind::ChannelPartitioned => PartitionPolicy::None,
            SchedulerKind::FsMultiChannel { .. } => PartitionPolicy::Rank,
        }
    }

    /// True for the policies that close the memory timing channel.
    pub fn is_secure(&self) -> bool {
        !matches!(self, SchedulerKind::Baseline | SchedulerKind::BaselinePrefetch)
    }

    /// Short label used in result tables (matches the paper's legends).
    pub fn label(&self) -> String {
        match self {
            SchedulerKind::Baseline => "Baseline".into(),
            SchedulerKind::BaselinePrefetch => "Baseline_Prefetch".into(),
            SchedulerKind::TpBankPartitioned { turn } => format!("TP_BP_{turn}"),
            SchedulerKind::TpNoPartition { turn } => format!("TP_NP_{turn}"),
            SchedulerKind::TpFence { period } => format!("TP_Fence_{period}"),
            SchedulerKind::FsRankPartitioned => "FS_RP".into(),
            SchedulerKind::FsRankPartitionedPrefetch => "FS_RP-Prefetch".into(),
            SchedulerKind::FsBankPartitioned => "FS_BP".into(),
            SchedulerKind::FsReorderedBankPartitioned => "FS_Reordered_BP".into(),
            SchedulerKind::FsNoPartitionNaive => "FS_NP".into(),
            SchedulerKind::FsTripleAlternation => "FS_NP_Optimized".into(),
            SchedulerKind::ChannelPartitioned => "Channel_Partitioned".into(),
            SchedulerKind::FsMultiChannel { channels } => format!("FS_RP_{channels}ch"),
        }
    }

    /// The stable `--scheduler` token for this kind, used in printed
    /// repro command lines. Parameterised kinds (TP turn lengths,
    /// channel counts) map back to their default parameters on parse.
    pub fn cli_name(&self) -> &'static str {
        match self {
            SchedulerKind::Baseline => "baseline",
            SchedulerKind::BaselinePrefetch => "baseline-prefetch",
            SchedulerKind::TpBankPartitioned { .. } => "tp-bp",
            SchedulerKind::TpNoPartition { .. } => "tp-np",
            SchedulerKind::TpFence { .. } => "tp-fence",
            SchedulerKind::FsRankPartitioned => "fs-rp",
            SchedulerKind::FsRankPartitionedPrefetch => "fs-rp-prefetch",
            SchedulerKind::FsBankPartitioned => "fs-bp",
            SchedulerKind::FsReorderedBankPartitioned => "fs-reordered-bp",
            SchedulerKind::FsNoPartitionNaive => "fs-np",
            SchedulerKind::FsTripleAlternation => "fs-ta",
            SchedulerKind::ChannelPartitioned => "channel-part",
            SchedulerKind::FsMultiChannel { .. } => "fs-mc",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A finished memory transaction: delivered to the producer at `finish`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    pub txn: Transaction,
    /// DRAM cycle at which the data is available to the core (reads) or
    /// the write has been transmitted.
    pub finish: Cycle,
}

/// Per-domain scheduling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomainStats {
    pub demand_reads: u64,
    pub demand_writes: u64,
    pub dummies: u64,
    pub prefetches: u64,
    /// Sum of (finish - arrival) over completed demand reads.
    pub read_latency_sum: u64,
    pub reads_completed: u64,
}

impl DomainStats {
    /// Average demand-read latency in DRAM cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_completed as f64
        }
    }
}

/// Whole-controller statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McStats {
    domains: Vec<DomainStats>,
    /// CAS commands that hit an already-open row (baseline open-page).
    pub row_hits: u64,
    /// CAS commands that required an activate.
    pub row_misses: u64,
    /// FS energy optimisation 2: dummy/demand pairs whose activate energy
    /// is avoided because the row matches the previous access.
    pub boosted_row_hits: u64,
    /// Slots skipped entirely (refresh quiesce or no ready bank).
    pub bubbles: u64,
    /// Power-down entries issued (energy optimisation 3).
    pub power_downs: u64,
    /// Timing violations observed at command issue (each triggers either
    /// the conservative-pipeline fallback or, if already degraded,
    /// poisons the controller).
    pub timing_faults: u64,
    /// Construction-time fallbacks: the requested pipeline variant did
    /// not solve and the conservative pipeline was used instead.
    pub solver_fallbacks: u64,
    /// Demand transactions lost to injected faults or a full queue during
    /// degraded-mode requeue.
    pub dropped_txns: u64,
    /// Faults injected by an active [`CmdFaultSpec`].
    pub injected_faults: u64,
    /// Successful epoch reconfigurations adopted at a drained boundary.
    pub reconfigs: u64,
    /// True once the controller is running the conservative fallback
    /// pipeline instead of the variant it was built for.
    pub degraded: bool,
}

impl McStats {
    pub fn new(domains: usize) -> Self {
        McStats { domains: vec![DomainStats::default(); domains], ..Default::default() }
    }

    pub fn domain(&self, d: DomainId) -> &DomainStats {
        &self.domains[d.0 as usize]
    }

    pub fn domain_mut(&mut self, d: DomainId) -> &mut DomainStats {
        &mut self.domains[d.0 as usize]
    }

    pub fn domains(&self) -> &[DomainStats] {
        &self.domains
    }

    /// Fraction of issued transactions that were dummies.
    pub fn dummy_fraction(&self) -> f64 {
        let dummies: u64 = self.domains.iter().map(|d| d.dummies).sum();
        let total: u64 = self
            .domains
            .iter()
            .map(|d| d.demand_reads + d.demand_writes + d.dummies + d.prefetches)
            .sum();
        if total == 0 {
            0.0
        } else {
            dummies as f64 / total as f64
        }
    }

    /// Row-buffer hit rate over demand CAS commands.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Average demand-read latency across domains.
    pub fn avg_read_latency(&self) -> f64 {
        let sum: u64 = self.domains.iter().map(|d| d.read_latency_sum).sum();
        let n: u64 = self.domains.iter().map(|d| d.reads_completed).sum();
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

/// What filled an FS slot (or why it stayed empty), for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotGrantKind {
    /// A queued demand transaction.
    Demand,
    /// A sandbox prefetch.
    Prefetch,
    /// A dummy access (traffic shaping).
    Dummy,
    /// A power-down pair replacing the dummy.
    PowerDown,
    /// Nothing issued.
    Bubble,
}

/// A scheduler-level observability event. Command-bus activity is
/// captured by the device's [`fsmc_dram::ObsCommand`] side log; these
/// events carry what the command stream alone cannot show — slot
/// ownership decisions and degradation transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// A slot (or, for reordered BP, interval) decision: which domain
    /// owned it and what filled it.
    SlotGrant { cycle: Cycle, slot: u64, domain: DomainId, kind: SlotGrantKind },
    /// The controller degraded onto the conservative pipeline.
    Degraded { cycle: Cycle },
    /// The controller adopted a reconfigured epoch at a drained slot
    /// boundary (topology masks, domain membership or refresh cadence
    /// changed; the slot cadence did not).
    Reconfigured { cycle: Cycle, epoch: u64 },
}

/// The interface every scheduling policy implements.
///
/// A controller owns one channel's [`DramDevice`]; the system simulator
/// drives `tick` once per DRAM cycle and routes [`Completion`]s back to
/// the cores.
pub trait MemoryController {
    /// Whether `domain` may enqueue another transaction (back-pressure).
    fn can_accept(&self, domain: DomainId) -> bool;

    /// Enqueues a demand transaction.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] if the domain's queue is at capacity.
    fn enqueue(&mut self, txn: Transaction) -> Result<(), QueueFull>;

    /// Advances one DRAM cycle, issuing commands as the policy dictates.
    /// Completions may carry `finish` cycles in the future.
    fn tick(&mut self, now: Cycle) -> Vec<Completion>;

    /// Allocation-free variant of [`MemoryController::tick`]: appends this
    /// cycle's completions to `out` instead of returning a fresh `Vec`.
    /// The default delegates to `tick`; hot-path controllers override it.
    fn tick_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        out.extend(self.tick(now));
    }

    /// A *lower bound* on the next cycle at which `tick` may change any
    /// observable state (commands issued, completions produced, stats —
    /// including bubbles — or device counters), given that `tick(now)` has
    /// already run. The simulator may skip `tick` for every cycle in
    /// `(now, next_event(now))` without changing results.
    ///
    /// Soundness rule: any lower bound is legal. Returning `now + 1`
    /// (the default) disables skipping; returning a cycle *later* than the
    /// true next event is a bug. `Cycle::MAX` means "never again" (e.g. a
    /// poisoned controller).
    fn next_event(&self, now: Cycle) -> Cycle {
        now + 1
    }

    /// Bulk-advances the controller from `from` toward `until`
    /// (exclusive) in one call, for simulation layers that have proven
    /// the span externally quiet (no core can run, no delivery can
    /// land, no reconfiguration point or monitor deadline inside it).
    /// A supporting controller executes exactly the ticks per-cycle
    /// stepping would — hopping its own [`MemoryController::next_event`]
    /// bounds between them — and stops *after* the first tick that
    /// produces a completion or poisons the controller, appending that
    /// tick's completions to `out`.
    ///
    /// Returns the first cycle *not* processed: `until` when the span
    /// completed cleanly (`out` untouched), `t + 1` when the tick at
    /// `t` ended the span early, or `from` when the controller does not
    /// support bulk advancement here (the default; `out` untouched, no
    /// side effects) and the caller must step per-cycle.
    fn fast_forward(&mut self, from: Cycle, until: Cycle, out: &mut Vec<Completion>) -> Cycle {
        let _ = (until, out);
        from
    }

    /// Refines a cached [`MemoryController::next_event`] bound after
    /// `txn` was enqueued at cycle `now`: a *lower bound* on the next
    /// cycle at which a tick may act *because of `txn`*, assuming the
    /// rest of the controller state is unchanged. The caller takes
    /// `min(old_bound, hint)` as the new bound, so a policy whose
    /// candidate set grows by exactly the new transaction (all other
    /// enqueue side effects can only *delay* issues) can keep its
    /// elision span alive across arrivals instead of resetting it.
    ///
    /// The default of `now + 1` is always sound: it forces a real tick
    /// on the next cycle, which recomputes the full bound.
    fn enqueue_event_hint(&self, txn: &Transaction, now: Cycle) -> Cycle {
        let _ = txn;
        now + 1
    }

    /// The device this controller drives (counters, open-row state).
    /// Multi-channel controllers return their first channel here; use
    /// [`MemoryController::aggregate_counters`] for whole-system tallies.
    fn device(&self) -> &DramDevice;

    /// Activity counters aggregated over every channel this controller
    /// drives (identical to the device's counters for single-channel
    /// policies).
    fn aggregate_counters(&self) -> fsmc_dram::ActivityCounters {
        self.device().counters().clone()
    }

    /// Finalises counters at the end of simulation.
    fn finish(&mut self, now: Cycle);

    /// Scheduling statistics.
    fn stats(&self) -> &McStats;

    /// The policy this controller implements.
    fn kind(&self) -> SchedulerKind;

    /// Enables command-stream recording on the underlying device so the
    /// log can later be replayed through the timing checker.
    fn record_commands(&mut self);

    /// Takes the recorded command log (empty unless recording was enabled
    /// on the device).
    fn take_command_log(&mut self) -> Vec<fsmc_dram::command::TimedCommand>;

    /// Cheap probe: is there anything a [`MemoryController::take_command_log`]
    /// call would return? Lets per-cycle drains skip the call entirely on
    /// quiet cycles. The conservative default says "maybe".
    fn has_pending_log(&self) -> bool {
        true
    }

    /// Drains the recorded command log into `out`, reusing the caller's
    /// buffer instead of allocating. The default delegates to
    /// [`MemoryController::take_command_log`].
    fn take_command_log_into(&mut self, out: &mut Vec<fsmc_dram::command::TimedCommand>) {
        out.extend(self.take_command_log());
    }

    /// Enables observability recording: the device's [`fsmc_dram::ObsCommand`]
    /// side log plus (for schedulers with a slot cadence) scheduler-level
    /// [`SchedEvent`]s. Controllers without observability support ignore
    /// it (the default) — the tracing layer simply sees no events.
    fn record_obs(&mut self) {}

    /// Cheap probe: would [`MemoryController::take_obs_into`] return
    /// anything? Default: nothing ever.
    fn has_obs(&self) -> bool {
        false
    }

    /// Drains the device observability log into `out`, reusing the
    /// caller's buffer. No-op by default.
    fn take_obs_into(&mut self, _out: &mut Vec<fsmc_dram::ObsCommand>) {}

    /// Cheap probe: would [`MemoryController::take_sched_events_into`]
    /// return anything? Default: nothing ever.
    fn has_sched_events(&self) -> bool {
        false
    }

    /// Drains scheduler-level observability events into `out`, reusing
    /// the caller's buffer. No-op by default.
    fn take_sched_events_into(&mut self, _out: &mut Vec<SchedEvent>) {}

    /// The violation that poisoned this controller, if a timing fault was
    /// observed after the one permitted degradation. A poisoned
    /// controller stops issuing commands; the simulator surfaces this as
    /// a structured error instead of a panic.
    fn fault(&self) -> Option<Violation> {
        None
    }

    /// Arms deterministic command-stream fault injection. Controllers
    /// without fault support ignore the spec (the default).
    fn inject_command_faults(&mut self, _spec: CmdFaultSpec) {}

    /// Replaces the device's timing parameters while the *schedule* keeps
    /// the parameters it was solved for — the hook fault injection uses
    /// to model silicon that is slower than the controller believes
    /// (e.g. a stretched tRFC). No-op by default; must be called before
    /// the first tick. Controllers without fault support ignore it.
    fn set_device_timing(&mut self, _t: TimingParams) {}

    /// The fixed issue cadence this controller has committed to, for
    /// online schedule-integrity monitoring. `None` (the default) means
    /// the policy has no fixed cadence to enforce — baselines, TP, and FS
    /// variants whose discipline is interval- rather than slot-shaped.
    ///
    /// The spec changes when the controller degrades onto the conservative
    /// pipeline; callers must re-query it after a degradation transition.
    fn cadence_spec(&self) -> Option<CadenceSpec> {
        None
    }

    /// The earliest *safe adoption boundary* at or after `now` for a
    /// pending reconfiguration: a cycle at which every in-flight command
    /// of the old epoch has drained and the new epoch's first decision
    /// falls exactly on the fixed cadence. Policies without epochs adopt
    /// immediately (the default).
    fn reconfig_boundary(&self, now: Cycle) -> Cycle {
        now
    }

    /// Atomically applies a batch of [`ReconfigEvent`]s at `now`, which
    /// the caller has aligned to [`MemoryController::reconfig_boundary`].
    /// Policies with a solved pipeline re-solve for the masked topology
    /// and re-certify against Table 1 before adopting; the default (for
    /// policies without fixed service guarantees) absorbs the events as
    /// a no-op — membership changes are handled by the system detaching
    /// or attaching cores.
    ///
    /// # Errors
    ///
    /// The degraded topology admits no certified schedule compatible
    /// with the committed cadence.
    fn reconfigure(
        &mut self,
        events: &[ReconfigEvent],
        now: Cycle,
    ) -> Result<(), crate::error::CoreError> {
        let _ = (events, now);
        Ok(())
    }

    /// The configuration epoch this controller is serving: 0 until the
    /// first successful [`MemoryController::reconfigure`], bumped by one
    /// per adopted reconfiguration.
    fn epoch(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(SchedulerKind::FsRankPartitioned.label(), "FS_RP");
        assert_eq!(SchedulerKind::FsTripleAlternation.label(), "FS_NP_Optimized");
        assert_eq!(SchedulerKind::TpBankPartitioned { turn: 60 }.label(), "TP_BP_60");
        assert_eq!(SchedulerKind::TpFence { period: 300 }.label(), "TP_Fence_300");
    }

    #[test]
    fn security_classification() {
        assert!(!SchedulerKind::Baseline.is_secure());
        assert!(!SchedulerKind::BaselinePrefetch.is_secure());
        assert!(SchedulerKind::FsRankPartitioned.is_secure());
        assert!(SchedulerKind::TpNoPartition { turn: 172 }.is_secure());
        assert!(SchedulerKind::TpFence { period: 300 }.is_secure());
    }

    #[test]
    fn partition_policies() {
        assert_eq!(SchedulerKind::FsRankPartitioned.partition_policy(), PartitionPolicy::Rank);
        assert_eq!(
            SchedulerKind::FsReorderedBankPartitioned.partition_policy(),
            PartitionPolicy::BankStriped
        );
        assert_eq!(SchedulerKind::FsTripleAlternation.partition_policy(), PartitionPolicy::None);
        assert_eq!(
            SchedulerKind::TpFence { period: 300 }.partition_policy(),
            PartitionPolicy::None
        );
    }

    #[test]
    fn stats_aggregation() {
        let mut s = McStats::new(2);
        s.domain_mut(DomainId(0)).demand_reads = 6;
        s.domain_mut(DomainId(0)).dummies = 2;
        s.domain_mut(DomainId(1)).demand_writes = 2;
        assert!((s.dummy_fraction() - 0.2).abs() < 1e-12);
        s.row_hits = 3;
        s.row_misses = 1;
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn latency_averages() {
        let mut d = DomainStats::default();
        assert_eq!(d.avg_read_latency(), 0.0);
        d.read_latency_sum = 300;
        d.reads_completed = 10;
        assert!((d.avg_read_latency() - 30.0).abs() < 1e-12);
    }
}
