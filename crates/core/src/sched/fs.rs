//! The Fixed Service (FS) memory controller — the paper's contribution.
//!
//! Every security domain is *shaped* to one memory transaction per
//! `Q = n * l` cycles (a dummy is inserted when the domain has nothing
//! pending), and the solved slot schedule guarantees the resulting
//! command stream is free of resource conflicts. A domain's observable
//! timing is therefore a function of its own requests only — the
//! executable form of the paper's non-interference proof, which the
//! `fsmc-security` crate verifies end to end.
//!
//! Variants: rank partitioning (l = 7), basic bank partitioning (l = 15),
//! reordered bank partitioning (Q = 63, reads before writes, en-masse
//! read release), naive no-partitioning (l = 43) and triple alternation
//! (l = 15 with rotating bank-group masks). Optional features: sandbox
//! prefetching into dummy slots, suppressed dummies, row-hit energy
//! boosting, and rank power-down (energy optimisations 1–3).

use crate::domain::{DomainId, PartitionPolicy};
use crate::error::{ConfigError, CoreError};
use crate::prefetch::SandboxPrefetcher;
use crate::queues::{QueueFull, TransactionQueue};
use crate::refresh::RefreshManager;
use crate::sched::{
    CadenceSpec, CmdFaultSpec, Completion, McStats, MemoryController, ReconfigEvent, SchedEvent,
    SchedulerKind, SlotGrantKind,
};
use crate::solver::{
    certify_reordered, certify_uniform, conservative_pipeline, solve, solve_for_threads, Anchor,
    PartitionLevel, PipelineSolution, ReorderedBpSchedule, SlotSchedule, SolveError,
};
use crate::txn::{Transaction, TxnId, TxnKind};
use fsmc_dram::checker::Violation;
use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, Geometry, LineAddr, Location, RankId, RowId};
use fsmc_dram::{Cycle, DramDevice, TimingParams};
use std::collections::HashMap;

/// FS design points (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsVariant {
    RankPartitioned,
    BankPartitioned,
    ReorderedBankPartitioned,
    NoPartitionNaive,
    TripleAlternation,
}

impl FsVariant {
    /// The spatial partition each variant assumes.
    pub fn partition_policy(&self) -> PartitionPolicy {
        match self {
            FsVariant::RankPartitioned => PartitionPolicy::Rank,
            FsVariant::BankPartitioned | FsVariant::ReorderedBankPartitioned => {
                PartitionPolicy::BankStriped
            }
            FsVariant::NoPartitionNaive | FsVariant::TripleAlternation => PartitionPolicy::None,
        }
    }
}

/// The energy optimisations of Section 5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyOptions {
    /// Optimisation 1: dummy operations update timing state but do not
    /// spend DRAM array/bus energy.
    pub suppress_dummies: bool,
    /// Optimisation 2: skip activate/precharge energy when the slot's row
    /// matches the previous access to that bank.
    pub row_hit_boost: bool,
    /// Optimisation 3: power a rank down instead of issuing a dummy
    /// (rank-partitioned only).
    pub power_down: bool,
}

impl EnergyOptions {
    /// All three optimisations enabled.
    pub fn all() -> Self {
        EnergyOptions { suppress_dummies: true, row_hit_boost: true, power_down: true }
    }
}

/// Tracks *committed* (possibly not yet issued) activates and column
/// commands per rank, so slot decisions can detect same-rank timing
/// hazards that the solved pitch does not cover — the Section 7
/// phenomenon at low thread counts, where a thread revisits its own rank
/// sooner than the worst-case turnarounds allow.
///
/// Under rank partitioning a rank is touched by exactly one domain, so
/// consulting this tracker depends only on that domain's own history:
/// rejecting a slot (different transaction, or a bubble) leaks nothing.
#[derive(Debug, Clone)]
struct RankHazardTracker {
    /// Last four committed activate cycles per rank, oldest first.
    acts: Vec<Vec<Cycle>>,
    /// Last committed CAS per rank: (cycle, is_write).
    last_cas: Vec<Option<(Cycle, bool)>>,
}

impl RankHazardTracker {
    fn new(ranks: usize) -> Self {
        RankHazardTracker { acts: vec![Vec::new(); ranks], last_cas: vec![None; ranks] }
    }

    /// Would an activate at `act` violate tRRD/tFAW against committed
    /// activates to this rank?
    fn act_ok(&self, rank: RankId, act: Cycle, t: &TimingParams) -> bool {
        let acts = &self.acts[rank.0 as usize];
        if let Some(&last) = acts.last() {
            if act < last + t.t_rrd as Cycle {
                return false;
            }
        }
        if acts.len() == 4 && act < acts[0] + t.t_faw as Cycle {
            return false;
        }
        true
    }

    /// Would a CAS at `cas` violate tCCD or a read/write turnaround
    /// against the last committed CAS to this rank?
    ///
    /// Same-type spacing uses the conservative tCCD_L (equal to tCCD_S
    /// on parts without bank groups): the solver guarantees tCCD_L at
    /// every same-rank slot distance, and admitting a slot based on the
    /// *bank group* a previous domain happened to hit would make one
    /// domain's admission observable to another — exactly the leak FS
    /// exists to prevent.
    fn cas_ok(&self, rank: RankId, cas: Cycle, is_write: bool, t: &TimingParams) -> bool {
        match self.last_cas[rank.0 as usize] {
            None => true,
            Some((prev, prev_write)) => {
                let gap = match (prev_write, is_write) {
                    (false, false) | (true, true) => t.t_ccd_l,
                    (false, true) => t.rd_to_wr_same_rank(),
                    (true, false) => t.wr_to_rd_same_rank(),
                };
                cas >= prev + gap as Cycle
            }
        }
    }

    fn commit(&mut self, rank: RankId, act: Cycle, cas: Cycle, is_write: bool) {
        let acts = &mut self.acts[rank.0 as usize];
        if acts.len() == 4 {
            acts.remove(0);
        }
        acts.push(act);
        self.last_cas[rank.0 as usize] = Some((cas, is_write));
    }
}

/// A command scheduled for a future cycle.
#[derive(Debug, Clone, Copy)]
struct CmdEvent {
    cycle: Cycle,
    cmd: Command,
    suppressed: bool,
    /// Completion to emit once the command issues (reads only).
    completion: Option<Completion>,
}

/// The Fixed Service scheduler for one channel.
///
/// ```
/// use fsmc_core::domain::{DomainId, PartitionPolicy};
/// use fsmc_core::sched::fs::{EnergyOptions, FsScheduler, FsVariant};
/// use fsmc_core::sched::MemoryController;
/// use fsmc_core::txn::{Transaction, TxnId};
/// use fsmc_dram::geometry::LineAddr;
/// use fsmc_dram::{Geometry, TimingParams};
///
/// let geom = Geometry::paper_default();
/// let mut mc = FsScheduler::new(
///     geom,
///     TimingParams::ddr3_1600(),
///     8,
///     FsVariant::RankPartitioned,
///     false,
///     EnergyOptions::default(),
/// );
/// assert_eq!(mc.interval_q(), 56); // one slot per domain every Q cycles
/// let loc = PartitionPolicy::Rank.map(&geom, DomainId(0), LineAddr(42));
/// mc.enqueue(Transaction::read(TxnId(1), DomainId(0), loc, 0)).unwrap();
/// let mut done = Vec::new();
/// for cycle in 0..120 {
///     done.extend(mc.tick(cycle));
/// }
/// assert_eq!(done.len(), 1, "the read is served in its domain's slot");
/// ```
#[derive(Debug)]
pub struct FsScheduler {
    device: DramDevice,
    t: TimingParams,
    refresh: RefreshManager,
    stats: McStats,
    variant: FsVariant,
    policy: PartitionPolicy,
    queues: Vec<TransactionQueue>,
    prefetchers: Option<Vec<SandboxPrefetcher>>,
    energy: EnergyOptions,
    schedule: Option<SlotSchedule>,
    reordered: Option<ReorderedBpSchedule>,
    next_slot: u64,
    next_interval: u64,
    events: Vec<CmdEvent>,
    dummy_rotor: Vec<u64>,
    last_row: HashMap<(RankId, BankId), RowId>,
    rank_powered_down: Vec<bool>,
    hazards: RankHazardTracker,
    /// Slot ownership pattern (length = total SLA slots per interval).
    slot_pattern: Vec<DomainId>,
    /// Free command-bus phases (mod `l`) usable for power-down commands.
    free_phases: Vec<u64>,
    next_synth_id: u64,
    domains: u8,
    /// Running on the conservative fallback pipeline (after a runtime
    /// timing violation, or because the requested variant did not solve).
    degraded: bool,
    /// Set when degradation itself failed: the controller is poisoned and
    /// issues nothing further. Surfaced via [`MemoryController::fault`].
    fault: Option<Violation>,
    /// Deterministic command-fault injector, if armed.
    cmd_faults: Option<CmdFaultTracker>,
    /// Scheduler-level observability events (slot grants, degradations),
    /// recorded only when [`MemoryController::record_obs`] armed them.
    obs_events: Option<Vec<SchedEvent>>,
    /// Configuration epoch: 0 until the first adopted reconfiguration.
    epoch: u64,
    /// Banks masked out by [`ReconfigEvent::StuckBank`]: never a dummy
    /// target; demand aimed at one is remapped onto the next healthy
    /// bank the same domain owns.
    stuck_banks: Vec<(RankId, BankId)>,
    /// Ranks masked out by [`ReconfigEvent::DeadRank`]: no dummy, demand
    /// or power-down may target them, so their slots become bubbles.
    dead_ranks: Vec<bool>,
}

/// What the fault injector decides for one committed transaction.
enum CmdFault {
    None,
    Drop,
    Delay(u64),
}

/// Deterministic per-transaction fault schedule driven by [`CmdFaultSpec`].
#[derive(Debug, Clone, Copy, Default)]
struct CmdFaultTracker {
    spec: CmdFaultSpec,
    committed: u64,
    injected: u64,
}

impl CmdFaultTracker {
    fn next(&mut self) -> CmdFault {
        self.committed += 1;
        if self.spec.max_faults > 0 && self.injected >= self.spec.max_faults {
            return CmdFault::None;
        }
        if self.spec.drop_period > 0 && self.committed.is_multiple_of(self.spec.drop_period) {
            self.injected += 1;
            return CmdFault::Drop;
        }
        if self.spec.delay_period > 0 && self.committed.is_multiple_of(self.spec.delay_period) {
            self.injected += 1;
            return CmdFault::Delay(self.spec.delay_cycles);
        }
        CmdFault::None
    }
}

impl FsScheduler {
    /// Creates an FS controller for `domains` equally-served domains.
    ///
    /// `prefetch` enables the sandbox prefetcher in dummy slots
    /// (`FS_RP-Prefetch`); `energy` selects the Section 5.2 optimisations.
    ///
    /// # Panics
    ///
    /// Panics if `domains` is zero or not even the conservative fallback
    /// pipeline solves for the given timing parameters (see
    /// [`FsScheduler::try_new`]).
    pub fn new(
        geom: Geometry,
        t: TimingParams,
        domains: u8,
        variant: FsVariant,
        prefetch: bool,
        energy: EnergyOptions,
    ) -> Self {
        FsScheduler::try_new(geom, t, domains, variant, prefetch, energy)
            .unwrap_or_else(|e| panic!("FS controller construction failed: {e}"))
    }

    /// Fallible form of [`FsScheduler::new`]. If the requested variant's
    /// pipeline does not solve, the controller falls back to the
    /// conservative pipeline and starts degraded (recorded in
    /// [`McStats::solver_fallbacks`]); only when even that fails is a
    /// [`CoreError::Solve`] returned.
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for invalid arguments, [`CoreError::Solve`]
    /// when no pipeline (including the fallback) solves.
    pub fn try_new(
        geom: Geometry,
        t: TimingParams,
        domains: u8,
        variant: FsVariant,
        prefetch: bool,
        energy: EnergyOptions,
    ) -> Result<Self, CoreError> {
        if domains == 0 {
            return Err(ConfigError::new("domains must be non-zero").into());
        }
        FsScheduler::try_with_slot_weights(
            geom,
            t,
            &vec![1u8; domains as usize],
            variant,
            prefetch,
            energy,
        )
    }

    /// Creates an FS controller with a per-domain SLA: domain *d*
    /// receives `weights[d]` issue slots per interval (Section 5.1 —
    /// "each transaction queue receives a fixed level of service, as
    /// determined by the OS and a service-level agreement"). Slots are
    /// spread through the interval with a smooth weighted round-robin so
    /// a multi-slot domain's accesses are maximally separated.
    ///
    /// The slot *pattern* is fixed at construction by the SLA alone, so
    /// weighted service leaks nothing: every slot still carries exactly
    /// one (possibly dummy) transaction.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is zero, or no pipeline
    /// (including the conservative fallback) can be solved.
    pub fn with_slot_weights(
        geom: Geometry,
        t: TimingParams,
        weights: &[u8],
        variant: FsVariant,
        prefetch: bool,
        energy: EnergyOptions,
    ) -> Self {
        FsScheduler::try_with_slot_weights(geom, t, weights, variant, prefetch, energy)
            .unwrap_or_else(|e| panic!("FS controller construction failed: {e}"))
    }

    /// Either the variant's solved schedule, or the conservative fallback
    /// when the variant is infeasible for these timing parameters.
    fn schedule_or_fallback(
        sol: Result<PipelineSolution, SolveError>,
        t: &TimingParams,
        slots: u8,
        fell_back: &mut bool,
    ) -> Result<SlotSchedule, CoreError> {
        let sol = match sol {
            Ok(s) => s,
            Err(_) => {
                *fell_back = true;
                conservative_pipeline(t, slots)?
            }
        };
        Ok(SlotSchedule::uniform(sol, slots))
    }

    /// Fallible form of [`FsScheduler::with_slot_weights`], with the same
    /// degraded-start fallback as [`FsScheduler::try_new`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for invalid arguments, [`CoreError::Solve`]
    /// when no pipeline (including the fallback) solves.
    pub fn try_with_slot_weights(
        geom: Geometry,
        t: TimingParams,
        weights: &[u8],
        variant: FsVariant,
        prefetch: bool,
        energy: EnergyOptions,
    ) -> Result<Self, CoreError> {
        if weights.is_empty() {
            return Err(ConfigError::new("at least one domain required").into());
        }
        if weights.contains(&0) {
            return Err(ConfigError::new("every domain needs at least one slot").into());
        }
        let domains = weights.len() as u8;
        let total_slots: u16 = weights.iter().map(|&w| w as u16).sum();
        if total_slots > 255 {
            return Err(ConfigError::new("slot pattern too long (more than 255 slots)").into());
        }
        let slot_pattern = smooth_weighted_round_robin(weights);
        let device = DramDevice::new(geom, t);
        let refresh = RefreshManager::new(&t, geom.ranks_per_channel());
        let mut fell_back = false;
        let (schedule, reordered) = match variant {
            FsVariant::RankPartitioned => {
                // The pitch stays at the idealised l = 7 for *any* thread
                // count; same-rank hazards at low thread counts (the
                // Section 7 phenomenon) are handled dynamically by the
                // rank-hazard tracker: the scheduler picks a different
                // transaction or inserts a bubble, based only on the
                // domain's own history.
                let sol = solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank);
                (
                    Some(Self::schedule_or_fallback(sol, &t, total_slots as u8, &mut fell_back)?),
                    None,
                )
            }
            FsVariant::BankPartitioned => {
                let sol = solve_for_threads(
                    &t,
                    Anchor::FixedPeriodicRas,
                    PartitionLevel::Bank,
                    total_slots as u8,
                );
                (
                    Some(Self::schedule_or_fallback(sol, &t, total_slots as u8, &mut fell_back)?),
                    None,
                )
            }
            FsVariant::NoPartitionNaive => {
                let sol = solve_for_threads(
                    &t,
                    Anchor::FixedPeriodicRas,
                    PartitionLevel::None,
                    total_slots as u8,
                );
                (
                    Some(Self::schedule_or_fallback(sol, &t, total_slots as u8, &mut fell_back)?),
                    None,
                )
            }
            FsVariant::TripleAlternation => {
                let schedule = match SlotSchedule::triple_alternation(&t, total_slots as u8) {
                    Ok(s) => s,
                    Err(_) => {
                        fell_back = true;
                        SlotSchedule::uniform(
                            conservative_pipeline(&t, total_slots as u8)?,
                            total_slots as u8,
                        )
                    }
                };
                (Some(schedule), None)
            }
            FsVariant::ReorderedBankPartitioned => {
                if weights.iter().any(|&w| w != 1) {
                    return Err(ConfigError::new(
                        "reordered bank partitioning supports equal service only",
                    )
                    .into());
                }
                (None, Some(ReorderedBpSchedule::new(&t, domains)))
            }
        };
        let free_phases = schedule.map(|s| Self::compute_free_phases(&s)).unwrap_or_default();
        let mut stats = McStats::new(domains as usize);
        if fell_back {
            stats.solver_fallbacks += 1;
            stats.degraded = true;
        }
        Ok(FsScheduler {
            device,
            t,
            refresh,
            stats,
            variant,
            policy: variant.partition_policy(),
            queues: (0..domains).map(|d| TransactionQueue::new(DomainId(d), 16)).collect(),
            prefetchers: prefetch.then(|| (0..domains).map(|_| SandboxPrefetcher::new()).collect()),
            energy,
            schedule,
            reordered,
            next_slot: 0,
            next_interval: 0,
            events: Vec::new(),
            dummy_rotor: vec![0; domains as usize],
            last_row: HashMap::new(),
            rank_powered_down: vec![false; geom.ranks_per_channel() as usize],
            hazards: RankHazardTracker::new(geom.ranks_per_channel() as usize),
            slot_pattern,
            free_phases,
            next_synth_id: 1 << 61,
            domains,
            degraded: fell_back,
            fault: None,
            cmd_faults: None,
            obs_events: None,
            epoch: 0,
            stuck_banks: Vec::new(),
            dead_ranks: vec![false; geom.ranks_per_channel() as usize],
        })
    }

    /// Creates an FS controller from per-domain [`crate::domain::DomainConfig`]s (the
    /// OS/SLA view of Section 5.1): slot weights and queue depths are
    /// taken from the configs.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty, ids are not dense `0..n`, or any
    /// slot weight is zero.
    pub fn from_domain_configs(
        geom: Geometry,
        t: TimingParams,
        configs: &[crate::domain::DomainConfig],
        variant: FsVariant,
        prefetch: bool,
        energy: EnergyOptions,
    ) -> Self {
        assert!(!configs.is_empty(), "at least one domain required");
        for (i, c) in configs.iter().enumerate() {
            assert_eq!(c.id.0 as usize, i, "domain ids must be dense and ordered");
        }
        let weights: Vec<u8> = configs.iter().map(|c| c.slots_per_interval).collect();
        let mut mc = FsScheduler::with_slot_weights(geom, t, &weights, variant, prefetch, energy);
        mc.queues = configs.iter().map(|c| TransactionQueue::new(c.id, c.queue_capacity)).collect();
        mc
    }

    /// Creates an FS controller around a caller-supplied pipeline
    /// solution — the ablation hook for comparing anchor disciplines or
    /// custom pitches under the same scheduler machinery. The partition
    /// policy is taken from `variant`; the solution's pitch must have
    /// been produced (or certified) for a compatible partition level, or
    /// command issue will panic at runtime when the pipeline math is
    /// violated.
    ///
    /// # Panics
    ///
    /// Panics if `domains` is zero.
    pub fn with_pipeline(
        geom: Geometry,
        t: TimingParams,
        domains: u8,
        variant: FsVariant,
        solution: crate::solver::PipelineSolution,
        energy: EnergyOptions,
    ) -> Self {
        assert!(domains > 0, "domains must be non-zero");
        let mut mc = FsScheduler::new(geom, t, domains, variant, false, energy);
        let schedule = SlotSchedule::uniform(solution, domains);
        mc.free_phases = Self::compute_free_phases(&schedule);
        mc.schedule = Some(schedule);
        mc.reordered = None;
        mc
    }

    /// The slot schedule (uniform variants), for inspection/diagrams.
    pub fn schedule(&self) -> Option<&SlotSchedule> {
        self.schedule.as_ref()
    }

    /// The per-thread guaranteed service interval Q in DRAM cycles.
    pub fn interval_q(&self) -> u64 {
        match (&self.schedule, &self.reordered) {
            (Some(s), _) => s.q(),
            (_, Some(r)) => r.q(),
            _ => unreachable!("one schedule form always exists"),
        }
    }

    fn compute_free_phases(s: &SlotSchedule) -> Vec<u64> {
        let l = s.slot_pitch() as u64;
        let p0 = s.plan(0);
        let occupied: Vec<u64> =
            [p0.read_act, p0.read_cas, p0.write_act, p0.write_cas].iter().map(|c| c % l).collect();
        (0..l).filter(|ph| !occupied.contains(ph)).collect()
    }

    fn fresh_synth_id(&mut self) -> TxnId {
        let id = TxnId(self.next_synth_id);
        self.next_synth_id += 1;
        id
    }

    /// A dummy read inside `domain`'s partition, to a bank that is ready
    /// for an activate at `act_cycle` (and in `class` if given). Returns
    /// `None` when no bank is ready — the slot becomes a bubble.
    fn make_dummy(
        &mut self,
        domain: DomainId,
        act_cycle: Cycle,
        class: Option<u8>,
        now: Cycle,
    ) -> Option<Transaction> {
        let geom = *self.device.geometry();
        let banks = self.policy.banks_of(&geom, domain);
        let n = banks.len() as u64;
        let start = self.dummy_rotor[domain.0 as usize];
        for i in 0..n {
            let (rank, bank) = banks[((start + i) % n) as usize];
            if self.dead_ranks[rank.0 as usize] || self.stuck_banks.contains(&(rank, bank)) {
                continue;
            }
            if let Some(c) = class {
                if bank.0 % 3 != c {
                    continue;
                }
            }
            if !self.device.rank_bank_ready(rank, bank, act_cycle) {
                continue;
            }
            if !self.hazards.act_ok(rank, act_cycle, &self.t)
                || !self.hazards.cas_ok(rank, act_cycle + self.t.t_rcd as Cycle, false, &self.t)
            {
                continue;
            }
            self.dummy_rotor[domain.0 as usize] = start + i + 1;
            // Rotate rows so dummies do not accidentally enjoy row hits.
            let row = RowId((start as u32).wrapping_mul(2654435761) % geom.rows_per_bank());
            let loc =
                Location { channel: Default::default(), rank, bank, row, col: Default::default() };
            return Some(Transaction {
                id: self.fresh_synth_id(),
                domain,
                loc,
                local_addr: LineAddr(0),
                is_write: false,
                arrival: now,
                kind: TxnKind::Dummy,
            });
        }
        None
    }

    /// A prefetch transaction for `domain` if the prefetcher has a ready,
    /// bank-eligible target.
    fn make_prefetch(
        &mut self,
        domain: DomainId,
        act_cycle: Cycle,
        class: Option<u8>,
        now: Cycle,
    ) -> Option<Transaction> {
        let geom = *self.device.geometry();
        let local = {
            let p = self.prefetchers.as_mut()?.get_mut(domain.0 as usize)?;
            if !p.has_prefetch() {
                return None;
            }
            p.next_prefetch()?
        };
        let loc = self.remap_unhealthy(domain, self.policy.map(&geom, domain, local));
        if self.dead_ranks[loc.rank.0 as usize] {
            return None;
        }
        if let Some(c) = class {
            if loc.bank.0 % 3 != c {
                return None;
            }
        }
        if !self.device.rank_bank_ready(loc.rank, loc.bank, act_cycle)
            || !self.hazards.act_ok(loc.rank, act_cycle, &self.t)
            || !self.hazards.cas_ok(loc.rank, act_cycle + self.t.t_rcd as Cycle, false, &self.t)
        {
            return None;
        }
        Some(Transaction {
            id: self.fresh_synth_id(),
            domain,
            loc,
            local_addr: local,
            is_write: false,
            arrival: now,
            kind: TxnKind::Prefetch,
        })
    }

    /// Schedules the ACT/CAS events for `txn` in a uniform-slot plan.
    fn commit_uniform(&mut self, txn: Transaction, plan: &crate::solver::SlotPlan) {
        let (act_cycle, cas_cycle, data_cycle) = if txn.is_write {
            (plan.write_act, plan.write_cas, plan.write_data)
        } else {
            (plan.read_act, plan.read_cas, plan.read_data)
        };
        self.commit_commands(txn, act_cycle, cas_cycle, data_cycle, None);
    }

    /// Schedules ACT + CAS-with-auto-precharge, tagging the read
    /// completion (released at `release_override` if given — the
    /// reordered-BP en-masse rule).
    fn commit_commands(
        &mut self,
        txn: Transaction,
        act_cycle: Cycle,
        cas_cycle: Cycle,
        data_cycle: Cycle,
        release_override: Option<Cycle>,
    ) {
        let (mut act_cycle, mut cas_cycle) = (act_cycle, cas_cycle);
        if let Some(inj) = &mut self.cmd_faults {
            match inj.next() {
                CmdFault::None => {}
                CmdFault::Drop => {
                    // The commands never reach the command bus: a demand
                    // transaction's completion is silently lost, which the
                    // simulation watchdog is expected to catch.
                    self.stats.injected_faults += 1;
                    if txn.kind == TxnKind::Demand {
                        self.stats.dropped_txns += 1;
                    }
                    return;
                }
                CmdFault::Delay(d) => {
                    // Late silicon: both commands slip by `d` cycles, so
                    // they land outside the certified pipeline phases.
                    self.stats.injected_faults += 1;
                    act_cycle += d;
                    cas_cycle += d;
                }
            }
        }
        let suppressed = self.energy.suppress_dummies && txn.kind == TxnKind::Dummy;
        if self.energy.row_hit_boost {
            let key = (txn.loc.rank, txn.loc.bank);
            if self.last_row.get(&key) == Some(&txn.loc.row) {
                self.stats.boosted_row_hits += 1;
            }
            self.last_row.insert(key, txn.loc.row);
        }
        let act = Command::activate(txn.loc.rank, txn.loc.bank, txn.loc.row);
        self.events.push(CmdEvent { cycle: act_cycle, cmd: act, suppressed, completion: None });
        let cas = if txn.is_write {
            Command::write_ap(txn.loc.rank, txn.loc.bank, txn.loc.row, txn.loc.col)
        } else {
            Command::read_ap(txn.loc.rank, txn.loc.bank, txn.loc.row, txn.loc.col)
        };
        let completion = (txn.kind != TxnKind::Dummy).then(|| {
            let data_done = data_cycle + self.t.t_burst as Cycle;
            // Reads may be held for en-masse release (reordered BP);
            // write completions are producer bookkeeping only.
            let finish =
                if txn.is_write { data_done } else { release_override.unwrap_or(data_done) };
            Completion { txn, finish }
        });
        self.events.push(CmdEvent { cycle: cas_cycle, cmd: cas, suppressed, completion });
        self.hazards.commit(txn.loc.rank, act_cycle, cas_cycle, txn.is_write);
        match txn.kind {
            TxnKind::Dummy => self.stats.domain_mut(txn.domain).dummies += 1,
            TxnKind::Prefetch => self.stats.domain_mut(txn.domain).prefetches += 1,
            TxnKind::Demand => {}
        }
    }

    /// Picks the transaction for a slot: demand first (oldest eligible),
    /// then prefetch, then power-down (if enabled), then dummy.
    /// Returns `true` if the slot issued anything but a bubble.
    fn fill_slot(&mut self, plan: crate::solver::SlotPlan, now: Cycle) -> bool {
        let domain = plan.domain;
        let class = plan.bank_class;
        // Demand pick: oldest queued transaction whose bank is ready at
        // its direction's ACT cycle and matches the class mask. Bank
        // readiness depends only on this domain's own past accesses (and
        // class-mates under triple alternation, whose schedule is fixed),
        // so the choice leaks nothing about other domains.
        let device = &self.device;
        let hazards = &self.hazards;
        let timing = self.t;
        let (read_act, write_act) = (plan.read_act, plan.write_act);
        let (read_cas, write_cas) = (plan.read_cas, plan.write_cas);
        let picked = self.queues[domain.0 as usize].take_first(|t| {
            let (act_cycle, cas_cycle) =
                if t.is_write { (write_act, write_cas) } else { (read_act, read_cas) };
            if let Some(c) = class {
                if t.loc.bank.0 % 3 != c {
                    return false;
                }
            }
            device.rank_bank_ready(t.loc.rank, t.loc.bank, act_cycle)
                && hazards.act_ok(t.loc.rank, act_cycle, &timing)
                && hazards.cas_ok(t.loc.rank, cas_cycle, t.is_write, &timing)
        });
        if let Some(txn) = picked {
            self.commit_uniform(txn, &plan);
            self.note_slot(now, plan.slot, domain, SlotGrantKind::Demand);
            return true;
        }
        if let Some(pf) = self.make_prefetch(domain, plan.read_act, class, now) {
            self.commit_uniform(pf, &plan);
            self.note_slot(now, plan.slot, domain, SlotGrantKind::Prefetch);
            return true;
        }
        if self.energy.power_down
            && self.variant == FsVariant::RankPartitioned
            && self.try_power_down(domain, &plan, now)
        {
            self.note_slot(now, plan.slot, domain, SlotGrantKind::PowerDown);
            return true;
        }
        if let Some(dummy) = self.make_dummy(domain, plan.read_act, class, now) {
            self.commit_uniform(dummy, &plan);
            self.note_slot(now, plan.slot, domain, SlotGrantKind::Dummy);
            return true;
        }
        self.stats.bubbles += 1;
        self.note_slot(now, plan.slot, domain, SlotGrantKind::Bubble);
        false
    }

    /// Records a slot decision when observability is armed.
    fn note_slot(&mut self, cycle: Cycle, slot: u64, domain: DomainId, kind: SlotGrantKind) {
        if let Some(evs) = &mut self.obs_events {
            evs.push(SchedEvent::SlotGrant { cycle, slot, domain, kind });
        }
    }

    /// Energy optimisation 3: if the domain's rank is idle for the whole
    /// interval, power it down now and wake it just in time for the
    /// domain's next slot. Commands are placed on command-bus phases the
    /// slot schedule provably never uses.
    fn try_power_down(
        &mut self,
        domain: DomainId,
        plan: &crate::solver::SlotPlan,
        now: Cycle,
    ) -> bool {
        let Some(schedule) = self.schedule else { return false };
        if self.free_phases.len() < 2 {
            return false;
        }
        let geom = *self.device.geometry();
        let rank = RankId(domain.0 % geom.ranks_per_channel());
        if self.rank_powered_down[rank.0 as usize] || self.dead_ranks[rank.0 as usize] {
            return false;
        }
        if !self.device.rank_idle(rank, plan.read_act) {
            return false;
        }
        // The domain's next slot under the SLA pattern (a full interval
        // when it has a single slot).
        let len = self.slot_pattern.len() as u64;
        let pos = plan.slot % len;
        let gap_slots = (1..=len)
            .find(|d| self.slot_pattern[((pos + d) % len) as usize] == domain)
            .unwrap_or(len);
        let next_decision = plan.decision_cycle + gap_slots * schedule.slot_pitch() as u64;
        // Never straddle a refresh window with a powered-down rank.
        if let Some((wstart, _)) = self.refresh.next_window(now) {
            if next_decision + self.t.t_xp as Cycle >= wstart {
                return false;
            }
        }
        let l = schedule.slot_pitch() as u64;
        let pde_phase = self.free_phases[0];
        let pdx_phase = self.free_phases[1];
        let pde_cycle = next_multiple_with_phase(plan.read_act.max(now + 1), pde_phase, l);
        let wake_deadline = next_decision.saturating_sub(self.t.t_xp as Cycle);
        let pdx_cycle = prev_multiple_with_phase(wake_deadline, pdx_phase, l);
        if pdx_cycle <= pde_cycle {
            return false;
        }
        self.events.push(CmdEvent {
            cycle: pde_cycle,
            cmd: Command::power_down(rank),
            suppressed: false,
            completion: None,
        });
        self.events.push(CmdEvent {
            cycle: pdx_cycle,
            cmd: Command::power_up(rank),
            suppressed: false,
            completion: None,
        });
        self.rank_powered_down[rank.0 as usize] = true;
        self.stats.power_downs += 1;
        // Shaping note: the power-down pair replaces the dummy; it is
        // still a fixed function of this domain's own queue emptiness.
        self.stats.domain_mut(domain).dummies += 1;
        true
    }

    /// Reordered-BP interval commit: snapshot one transaction (or dummy)
    /// per domain, order reads before writes, release read data en masse.
    fn fill_interval(&mut self, k: u64, now: Cycle) {
        let r = self.reordered.expect("reordered schedule");
        let ready_by = {
            let (act0, _, _) = r.slot_times(k, 0, false);
            act0
        };
        let mut chosen: Vec<Transaction> = Vec::with_capacity(self.domains as usize);
        for d in 0..self.domains {
            let domain = DomainId(d);
            let device = &self.device;
            let picked = self.queues[d as usize]
                .take_first(|t| device.rank_bank_ready(t.loc.rank, t.loc.bank, ready_by));
            let txn = match picked {
                Some(t) => {
                    self.note_slot(now, k, domain, SlotGrantKind::Demand);
                    t
                }
                None => match self.make_dummy(domain, ready_by, None, now) {
                    Some(dummy) => {
                        self.note_slot(now, k, domain, SlotGrantKind::Dummy);
                        dummy
                    }
                    None => {
                        self.stats.bubbles += 1;
                        self.note_slot(now, k, domain, SlotGrantKind::Bubble);
                        continue;
                    }
                },
            };
            chosen.push(txn);
        }
        // Reads first (domain order), then writes (domain order).
        let release = r.release_cycle(k);
        let mut slot = 0u8;
        for &txn in chosen.iter().filter(|t| !t.is_write) {
            let (act, cas, data) = r.slot_times(k, slot, false);
            self.commit_commands(txn, act, cas, data, Some(release));
            slot += 1;
        }
        for &txn in chosen.iter().filter(|t| t.is_write) {
            let (act, cas, data) = r.slot_times(k, slot, true);
            self.commit_commands(txn, act, cas, data, None);
            slot += 1;
        }
    }

    /// Issues every event due at `now`; returns completions.
    fn pump_events(&mut self, now: Cycle, completions: &mut Vec<Completion>) {
        let mut i = 0;
        while i < self.events.len() {
            if self.events[i].cycle != now {
                i += 1;
                continue;
            }
            let ev = self.events.remove(i);
            let result = match ev.cmd.kind {
                fsmc_dram::CommandKind::PowerDownExit => {
                    let r = self.device.issue(&ev.cmd, now);
                    if r.is_ok() {
                        self.rank_powered_down[ev.cmd.rank.0 as usize] = false;
                    }
                    r
                }
                _ if ev.suppressed => self.device.issue_suppressed(&ev.cmd, now),
                _ => self.device.issue(&ev.cmd, now),
            };
            match result {
                Ok(_) => {}
                Err(v) => {
                    // The schedule produced an illegal command — pipeline
                    // math violated (faulty silicon, injected fault, or a
                    // mis-certified custom pipeline). Degrade instead of
                    // panicking; a second violation poisons the controller.
                    // The event goes back first so its transaction is
                    // requeued along with the rest of the in-flight work.
                    self.events.push(ev);
                    self.on_violation(now, v);
                    return;
                }
            }
            if let Some(c) = ev.completion {
                if c.txn.kind == TxnKind::Demand {
                    let ds = self.stats.domain_mut(c.txn.domain);
                    ds.read_latency_sum += c.finish.saturating_sub(c.txn.arrival);
                    ds.reads_completed += 1;
                }
                completions.push(c);
            }
        }
    }

    /// Handles a runtime timing violation. The first one triggers
    /// graceful degradation onto the conservative pipeline; a second one
    /// (or a failed degradation) poisons the controller: `fault()` then
    /// reports the violation and `tick` issues nothing further.
    fn on_violation(&mut self, now: Cycle, v: Violation) {
        self.stats.timing_faults += 1;
        if self.degraded || !self.enter_degraded(now) {
            self.fault = Some(v);
            self.events.clear();
        }
    }

    /// Switches to the conservative fallback pipeline: in-flight demand
    /// transactions are requeued, powered-down ranks get wake-up commands,
    /// and slot issue resumes on the wide pitch after a quiesce margin
    /// that clears every in-flight bank/bus state. Returns `false` when
    /// even the conservative pipeline cannot be solved.
    fn enter_degraded(&mut self, now: Cycle) -> bool {
        let total_slots = self.slot_pattern.len() as u8;
        let Ok(sol) = conservative_pipeline(&self.t, total_slots) else { return false };
        self.degraded = true;
        self.stats.degraded = true;
        self.stats.solver_fallbacks += 1;
        if let Some(evs) = &mut self.obs_events {
            evs.push(SchedEvent::Degraded { cycle: now });
        }
        // Requeue in-flight demand transactions so their completions are
        // not silently lost; anything that no longer fits is dropped.
        let events = std::mem::take(&mut self.events);
        for ev in events {
            if let Some(c) = ev.completion {
                if c.txn.kind == TxnKind::Demand
                    && self.queues[c.txn.domain.0 as usize].push(c.txn).is_err()
                {
                    self.stats.dropped_txns += 1;
                }
            }
        }
        // Quiesce margin: long enough for any in-flight refresh, bank
        // cycle or turnaround to drain before the new pipeline starts.
        let margin = (self.t.t_rfc + self.t.t_rc + 64) as Cycle;
        let ranks = self.device.geometry().ranks_per_channel();
        for r in 0..ranks {
            if self.rank_powered_down[r as usize] {
                self.events.push(CmdEvent {
                    cycle: now + margin + r as Cycle,
                    cmd: Command::power_up(RankId(r)),
                    suppressed: false,
                    completion: None,
                });
            }
        }
        // A violation can orphan an open row (its ACT issued, its CAS was
        // rejected, so nothing auto-precharges): close every bank before
        // the new pipeline (and the next refresh window) runs.
        let prea_at = now + margin + (ranks as Cycle) + self.t.t_xp as Cycle;
        for r in 0..ranks {
            self.events.push(CmdEvent {
                cycle: prea_at + r as Cycle,
                cmd: Command::precharge_all(RankId(r)),
                suppressed: false,
                completion: None,
            });
        }
        let schedule = SlotSchedule::uniform(sol, total_slots);
        self.next_slot = schedule.first_slot_from(prea_at + ranks as Cycle + self.t.t_rp as Cycle);
        self.free_phases = Self::compute_free_phases(&schedule);
        self.schedule = Some(schedule);
        self.reordered = None;
        // Power-down interacts with slot phases solved for the old pitch;
        // keep degraded mode simple and certified.
        self.energy.power_down = false;
        true
    }

    /// Whether the controller is running on the conservative fallback
    /// pipeline (either from construction or after a runtime violation).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Redirects a demand location off masked silicon: a stuck bank maps
    /// onto the next healthy bank in the owning domain's bank list
    /// (same-rank under rank partitioning, same bank index of another
    /// rank under bank striping — ownership is preserved either way).
    /// A location on healthy silicon is returned unchanged, and if every
    /// owned bank is masked the original stands (service over silence:
    /// the slot timing is identical either way).
    fn remap_unhealthy(&self, domain: DomainId, loc: Location) -> Location {
        if self.stuck_banks.is_empty() || !self.stuck_banks.contains(&(loc.rank, loc.bank)) {
            return loc;
        }
        let geom = *self.device.geometry();
        let banks = self.policy.banks_of(&geom, domain);
        let Some(pos) = banks.iter().position(|&(r, b)| r == loc.rank && b == loc.bank) else {
            return loc;
        };
        let n = banks.len();
        for i in 1..n {
            let (rank, bank) = banks[(pos + i) % n];
            if !self.dead_ranks[rank.0 as usize] && !self.stuck_banks.contains(&(rank, bank)) {
                return Location { rank, bank, ..loc };
            }
        }
        loc
    }

    /// Re-solves the committed pipeline for the (masked) topology and
    /// re-certifies it against Table 1. The FS reconfiguration contract
    /// requires the re-solve to reproduce the committed slot pitch —
    /// masks change *which* banks slots may touch, never *when* slots
    /// fire — so any pitch divergence or certification failure rejects
    /// the reconfiguration.
    fn recertify(&self) -> Result<(), ConfigError> {
        if let Some(r) = &self.reordered {
            if !certify_reordered(r, &self.t, self.device.geometry(), 3).certified() {
                return Err(ConfigError::new(
                    "reconfigured reordered-BP schedule failed Table-1 re-certification",
                ));
            }
            return Ok(());
        }
        let Some(s) = &self.schedule else { return Ok(()) };
        // The conservative fallback is certified by construction and is
        // already the widest pitch available — nothing to re-solve.
        if self.degraded {
            return Ok(());
        }
        let total_slots = self.slot_pattern.len() as u8;
        let (level, span, solved) = match self.variant {
            FsVariant::RankPartitioned => (
                PartitionLevel::Rank,
                4,
                Some(solve(&self.t, Anchor::FixedPeriodicData, PartitionLevel::Rank)),
            ),
            FsVariant::BankPartitioned => (
                PartitionLevel::Bank,
                4,
                Some(solve_for_threads(
                    &self.t,
                    Anchor::FixedPeriodicRas,
                    PartitionLevel::Bank,
                    total_slots,
                )),
            ),
            FsVariant::NoPartitionNaive => (
                PartitionLevel::None,
                4,
                Some(solve_for_threads(
                    &self.t,
                    Anchor::FixedPeriodicRas,
                    PartitionLevel::None,
                    total_slots,
                )),
            ),
            // Triple alternation's schedule is built (not solved); only
            // the certification step applies.
            FsVariant::TripleAlternation => (PartitionLevel::None, 3, None),
            FsVariant::ReorderedBankPartitioned => unreachable!("handled above"),
        };
        if let Some(sol) = solved {
            match sol {
                Ok(sol) if sol.l as u64 == s.slot_pitch() as u64 => {}
                Ok(sol) => {
                    return Err(ConfigError::new(format!(
                        "reconfigured pitch {} diverged from committed pitch {}",
                        sol.l,
                        s.slot_pitch()
                    )));
                }
                Err(_) => {
                    return Err(ConfigError::new(
                        "degraded topology admits no pipeline at the committed anchors",
                    ));
                }
            }
        }
        if !certify_uniform(s, level, &self.t, self.device.geometry(), span).certified() {
            return Err(ConfigError::new(
                "degraded-topology schedule failed Table-1 re-certification",
            ));
        }
        Ok(())
    }
}

/// First cycle >= `from` congruent to `phase` (mod `l`).
fn next_multiple_with_phase(from: Cycle, phase: u64, l: u64) -> Cycle {
    let rem = from % l;
    if rem <= phase {
        from + (phase - rem)
    } else {
        from + (l - rem) + phase
    }
}

/// Spreads weighted slots through an interval so a domain with k slots
/// sees them ~evenly spaced: domains are placed heaviest-first at their
/// ideal stride positions, bumping forward (wrapping) on collisions.
/// Weights [2,1,1] yield [0,1,0,2].
fn smooth_weighted_round_robin(weights: &[u8]) -> Vec<DomainId> {
    let total: usize = weights.iter().map(|&w| w as usize).sum();
    let mut pattern: Vec<Option<DomainId>> = vec![None; total];
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&d| std::cmp::Reverse(weights[d]));
    for d in order {
        let w = weights[d] as usize;
        for i in 0..w {
            let ideal = i * total / w;
            let mut pos = ideal;
            while pattern[pos].is_some() {
                pos = (pos + 1) % total;
            }
            pattern[pos] = Some(DomainId(d as u8));
        }
    }
    pattern.into_iter().map(|p| p.expect("all slots filled")).collect()
}

/// Last cycle <= `until` congruent to `phase` (mod `l`); 0 if none.
fn prev_multiple_with_phase(until: Cycle, phase: u64, l: u64) -> Cycle {
    let rem = until % l;
    if rem >= phase {
        until - (rem - phase)
    } else {
        (until - rem).saturating_sub(l) + phase
    }
}

impl MemoryController for FsScheduler {
    fn can_accept(&self, domain: DomainId) -> bool {
        !self.queues[domain.0 as usize].is_full()
    }

    fn enqueue(&mut self, txn: Transaction) -> Result<(), QueueFull> {
        {
            let ds = self.stats.domain_mut(txn.domain);
            if txn.is_write {
                ds.demand_writes += 1;
            } else {
                ds.demand_reads += 1;
            }
        }
        if !txn.is_write {
            if let Some(p) = &mut self.prefetchers {
                p[txn.domain.0 as usize].on_access(txn.local_addr);
            }
        }
        let mut txn = txn;
        txn.loc = self.remap_unhealthy(txn.domain, txn.loc);
        self.queues[txn.domain.0 as usize].push(txn)
    }

    fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let mut completions = Vec::new();
        self.tick_into(now, &mut completions);
        completions
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        if self.fault.is_some() {
            // Poisoned: degradation failed too. Nothing issues; the
            // simulation layer surfaces the stored violation.
            return;
        }
        if let Some(cmd) = self.refresh.command_at(now) {
            if let Err(v) = self.device.issue(&cmd, now) {
                self.on_violation(now, v);
            }
            return;
        }
        // Slot/interval decisions.
        if let Some(schedule) = self.schedule {
            loop {
                let mut plan = schedule.plan(self.next_slot);
                // SLA slot ownership: the schedule indexes virtual slots;
                // the fixed pattern maps them to domains.
                plan.domain =
                    self.slot_pattern[(self.next_slot % self.slot_pattern.len() as u64) as usize];
                if plan.decision_cycle > now {
                    break;
                }
                if plan.decision_cycle == now && self.refresh.allows_transaction(now) {
                    self.fill_slot(plan, now);
                } else if plan.decision_cycle == now {
                    self.stats.bubbles += 1;
                    self.note_slot(now, plan.slot, plan.domain, SlotGrantKind::Bubble);
                }
                self.next_slot += 1;
            }
        } else if let Some(r) = self.reordered {
            loop {
                let dec = r.decision_cycle(self.next_interval);
                if dec > now {
                    break;
                }
                if dec == now
                    && self.refresh.allows_transaction(now + r.q())
                    && self.refresh.allows_transaction(now)
                {
                    self.fill_interval(self.next_interval, now);
                } else if dec == now {
                    self.stats.bubbles += self.domains as u64;
                    for d in 0..self.domains {
                        self.note_slot(now, self.next_interval, DomainId(d), SlotGrantKind::Bubble);
                    }
                }
                self.next_interval += 1;
            }
        }
        self.pump_events(now, out);
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        // Everything FS does happens at precomputed cycles: slot/interval
        // decision points (which also account bubbles), scheduled command
        // events, and the wall-clock refresh cadence. A poisoned
        // controller never acts again.
        if self.fault.is_some() {
            return Cycle::MAX;
        }
        let mut next = self.refresh.next_command_cycle(now);
        if let Some(s) = &self.schedule {
            next = next.min(s.plan(self.next_slot).decision_cycle);
        } else if let Some(r) = &self.reordered {
            next = next.min(r.decision_cycle(self.next_interval));
        }
        for ev in &self.events {
            next = next.min(ev.cycle);
        }
        next.max(now + 1)
    }

    fn fast_forward(&mut self, from: Cycle, until: Cycle, out: &mut Vec<Completion>) -> Cycle {
        // Everything FS does is anchored to precomputed cycles, so the
        // whole span can be replayed here as one event-hopping loop:
        // run the *same* `tick_into` per-cycle stepping would run, at
        // exactly the cycles its own `next_event` bound (slot/interval
        // decisions, scheduled command events, wall-clock refresh)
        // admits — bit-identical by construction, refresh windows and
        // all. Decline when per-command observers are armed: the
        // simulation layer drains logs/observations tick by tick, and
        // hopping would batch those drains at different cycles.
        if self.device.is_recording() || self.device.has_obs() || self.obs_events.is_some() {
            return from;
        }
        let mut c = from;
        while c < until {
            self.tick_into(c, out);
            if !out.is_empty() || self.fault.is_some() {
                // The tick at `c` completed a transaction (its delivery
                // may wake a core) or poisoned the controller: hand
                // control back with the span cut right after it.
                return c + 1;
            }
            // Sound hop: `tick` is a no-op strictly before the bound.
            c = self.next_event(c);
        }
        until
    }

    fn device(&self) -> &DramDevice {
        &self.device
    }

    fn finish(&mut self, now: Cycle) {
        self.device.finish(now);
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn kind(&self) -> SchedulerKind {
        match (self.variant, self.prefetchers.is_some()) {
            (FsVariant::RankPartitioned, false) => SchedulerKind::FsRankPartitioned,
            (FsVariant::RankPartitioned, true) => SchedulerKind::FsRankPartitionedPrefetch,
            (FsVariant::BankPartitioned, _) => SchedulerKind::FsBankPartitioned,
            (FsVariant::ReorderedBankPartitioned, _) => SchedulerKind::FsReorderedBankPartitioned,
            (FsVariant::NoPartitionNaive, _) => SchedulerKind::FsNoPartitionNaive,
            (FsVariant::TripleAlternation, _) => SchedulerKind::FsTripleAlternation,
        }
    }

    fn record_commands(&mut self) {
        self.device.record_commands();
    }

    fn take_command_log(&mut self) -> Vec<TimedCommand> {
        self.device.take_log()
    }

    fn has_pending_log(&self) -> bool {
        self.device.has_log()
    }

    fn take_command_log_into(&mut self, out: &mut Vec<TimedCommand>) {
        self.device.take_log_into(out);
    }

    fn record_obs(&mut self) {
        self.device.record_obs();
        if self.obs_events.is_none() {
            self.obs_events = Some(Vec::new());
        }
    }

    fn has_obs(&self) -> bool {
        self.device.has_obs()
    }

    fn take_obs_into(&mut self, out: &mut Vec<fsmc_dram::ObsCommand>) {
        self.device.take_obs_into(out);
    }

    fn has_sched_events(&self) -> bool {
        self.obs_events.as_ref().is_some_and(|e| !e.is_empty())
    }

    fn take_sched_events_into(&mut self, out: &mut Vec<SchedEvent>) {
        if let Some(evs) = &mut self.obs_events {
            out.append(evs);
        }
    }

    fn fault(&self) -> Option<Violation> {
        self.fault
    }

    fn inject_command_faults(&mut self, spec: CmdFaultSpec) {
        self.cmd_faults = spec.is_enabled().then(|| CmdFaultTracker { spec, ..Default::default() });
    }

    fn set_device_timing(&mut self, t: TimingParams) {
        // Only the *device* changes; the solved schedule and refresh
        // cadence keep the nominal parameters, modelling silicon that is
        // slower than the pipeline was certified for. Mismatches surface
        // as runtime violations and drive the degradation machinery.
        let recording = self.device.is_recording();
        let obs = self.obs_events.is_some();
        self.device = DramDevice::new(*self.device.geometry(), t);
        if recording {
            self.device.record_commands();
        }
        if obs {
            self.device.record_obs();
        }
    }

    fn cadence_spec(&self) -> Option<CadenceSpec> {
        // The reordered-BP variant runs an interval discipline with no
        // per-slot anchors, and a poisoned controller issues nothing
        // worth monitoring; both report no cadence.
        let s = self.schedule.as_ref()?;
        if self.fault.is_some() {
            return None;
        }
        let p0 = s.plan(0);
        let ranks = self.device.geometry().ranks_per_channel();
        let owners = (self.policy == PartitionPolicy::Rank)
            .then(|| self.slot_pattern.iter().map(|d| d.0 % ranks).collect());
        Some(CadenceSpec {
            slot_pitch: s.slot_pitch() as Cycle,
            read_act_anchor: p0.read_act,
            write_act_anchor: p0.write_act,
            read_cas_anchor: p0.read_cas,
            write_cas_anchor: p0.write_cas,
            slot_owner_ranks: owners,
        })
    }

    fn reconfig_boundary(&self, now: Cycle) -> Cycle {
        // The same quiesce margin the degradation path uses: long enough
        // for any in-flight refresh, bank cycle or turnaround of the old
        // epoch to drain. The boundary itself is the first *interval*
        // start past the margin, so every domain's slot position relative
        // to the epoch edge is identical — the transition cannot favour
        // (or reveal) anyone.
        let margin = (self.t.t_rfc + self.t.t_rc + 64) as Cycle;
        let target = now + margin;
        if let Some(s) = &self.schedule {
            let len = self.slot_pattern.len() as u64;
            let mut slot = s.first_slot_from(target).max(self.next_slot);
            while !slot.is_multiple_of(len) {
                slot += 1;
            }
            s.plan(slot).decision_cycle
        } else if let Some(r) = &self.reordered {
            let mut k = self.next_interval;
            while r.decision_cycle(k) < target {
                k += 1;
            }
            r.decision_cycle(k)
        } else {
            target
        }
    }

    fn reconfigure(
        &mut self,
        events: &[ReconfigEvent],
        now: Cycle,
    ) -> Result<(), crate::error::CoreError> {
        if self.fault.is_some() || events.is_empty() {
            return Ok(());
        }
        let geom = *self.device.geometry();
        let ranks = geom.ranks_per_channel();
        let banks = geom.banks_per_rank();
        for ev in events {
            match *ev {
                ReconfigEvent::StuckBank { rank, bank } => {
                    let key = (RankId(rank % ranks), BankId(bank % banks));
                    if !self.stuck_banks.contains(&key) {
                        self.stuck_banks.push(key);
                    }
                }
                ReconfigEvent::DeadRank { rank } => {
                    self.dead_ranks[(rank % ranks) as usize] = true;
                }
                ReconfigEvent::ThermalRefresh { factor } => {
                    self.refresh = self.refresh.with_interval_scaled_down(factor);
                }
                // Membership is the system's concern (cores detach or
                // attach there); the leaving domain's queued demand is
                // drained below so no completion outlives its producer.
                ReconfigEvent::DomainLeave { .. } | ReconfigEvent::DomainJoin { .. } => {}
            }
        }
        // Drain doomed work: a leaving domain's queue, demand aimed at a
        // dead rank, and queued demand remapped off freshly stuck banks.
        let mut queues = std::mem::take(&mut self.queues);
        let mut dropped = 0u64;
        for q in queues.iter_mut() {
            let d = q.domain();
            let leaving = events
                .iter()
                .any(|e| matches!(*e, ReconfigEvent::DomainLeave { domain } if domain == d.0));
            let mut kept = Vec::with_capacity(q.len());
            while let Some(mut txn) = q.pop() {
                if leaving || self.dead_ranks[txn.loc.rank.0 as usize] {
                    dropped += 1;
                    continue;
                }
                txn.loc = self.remap_unhealthy(d, txn.loc);
                kept.push(txn);
            }
            for t in kept {
                q.push(t).expect("rebuilt queue cannot grow");
            }
        }
        self.queues = queues;
        self.stats.dropped_txns += dropped;
        // The masked topology must still certify at the committed
        // cadence before the new epoch is adopted.
        self.recertify()?;
        self.epoch += 1;
        self.stats.reconfigs += 1;
        if let Some(evs) = &mut self.obs_events {
            evs.push(SchedEvent::Reconfigured { cycle: now, epoch: self.epoch });
        }
        Ok(())
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_dram::geometry::ColId;
    use fsmc_dram::TimingChecker;

    fn mk(variant: FsVariant) -> FsScheduler {
        FsScheduler::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            8,
            variant,
            false,
            EnergyOptions::default(),
        )
    }

    fn txn(id: u64, domain: u8, local: u64, write: bool, policy: PartitionPolicy) -> Transaction {
        let geom = Geometry::paper_default();
        let loc = policy.map(&geom, DomainId(domain), LineAddr(local));
        let t = if write {
            Transaction::write(TxnId(id), DomainId(domain), loc, 0)
        } else {
            Transaction::read(TxnId(id), DomainId(domain), loc, 0)
        };
        t.with_local_addr(LineAddr(local))
    }

    fn run(mc: &mut FsScheduler, cycles: u64) -> Vec<Completion> {
        let mut all = Vec::new();
        for c in 0..cycles {
            all.extend(mc.tick(c));
        }
        all
    }

    #[test]
    fn rank_partitioned_serves_every_domain_every_q() {
        let mut mc = mk(FsVariant::RankPartitioned);
        assert_eq!(mc.interval_q(), 56);
        for d in 0..8u8 {
            mc.enqueue(txn(d as u64, d, 0, false, PartitionPolicy::Rank)).unwrap();
        }
        let done = run(&mut mc, 200);
        assert_eq!(done.len(), 8);
        // One read per slot, 7 cycles apart on the data bus.
        for w in done.windows(2) {
            assert_eq!(w[1].finish - w[0].finish, 7);
        }
    }

    #[test]
    fn dummies_fill_idle_slots() {
        let mut mc = mk(FsVariant::RankPartitioned);
        run(&mut mc, 56 * 4);
        // ~4 intervals x 8 slots, all dummies (no demand traffic).
        let dummies: u64 = (0..8).map(|d| mc.stats().domain(DomainId(d)).dummies).sum();
        assert!(dummies >= 24, "only {dummies} dummies");
        assert!(mc.stats().dummy_fraction() > 0.99);
    }

    #[test]
    fn rank_partitioned_stream_is_conflict_free_for_any_mix() {
        let mut mc = mk(FsVariant::RankPartitioned);
        mc.record_commands();
        for i in 0..64u64 {
            mc.enqueue(txn(i, (i % 8) as u8, i * 17, i % 3 == 0, PartitionPolicy::Rank)).unwrap();
        }
        run(&mut mc, 1500);
        let log = mc.take_command_log();
        assert!(log.len() > 100);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&log);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn bank_partitioned_and_naive_np_streams_are_conflict_free() {
        for (variant, policy) in [
            (FsVariant::BankPartitioned, PartitionPolicy::BankStriped),
            (FsVariant::NoPartitionNaive, PartitionPolicy::None),
        ] {
            let mut mc = mk(variant);
            mc.record_commands();
            for i in 0..48u64 {
                mc.enqueue(txn(i, (i % 8) as u8, i * 17, i % 3 == 0, policy)).unwrap();
            }
            run(&mut mc, 4000);
            let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
            let v = checker.check(&mc.take_command_log());
            assert!(v.is_empty(), "{variant:?}: {v:?}");
        }
    }

    #[test]
    fn triple_alternation_stream_is_conflict_free() {
        let mut mc = mk(FsVariant::TripleAlternation);
        mc.record_commands();
        for i in 0..64u64 {
            mc.enqueue(txn(i, (i % 8) as u8, i * 31, i % 4 == 0, PartitionPolicy::None)).unwrap();
        }
        run(&mut mc, 3000);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn reordered_bp_releases_reads_en_masse() {
        let mut mc = mk(FsVariant::ReorderedBankPartitioned);
        assert_eq!(mc.interval_q(), 63);
        for d in 0..4u8 {
            mc.enqueue(txn(d as u64, d, 0, false, PartitionPolicy::BankStriped)).unwrap();
        }
        let done = run(&mut mc, 300);
        assert_eq!(done.len(), 4);
        // All reads of an interval complete at the same cycle.
        let f0 = done[0].finish;
        assert!(done.iter().all(|c| c.finish == f0), "{done:?}");
    }

    #[test]
    fn reordered_bp_stream_is_conflict_free() {
        let mut mc = mk(FsVariant::ReorderedBankPartitioned);
        mc.record_commands();
        for i in 0..64u64 {
            mc.enqueue(txn(i, (i % 8) as u8, i * 13, i % 2 == 0, PartitionPolicy::BankStriped))
                .unwrap();
        }
        run(&mut mc, 2000);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn next_event_skips_are_sound_for_every_variant() {
        // Two identical controllers: one ticks every cycle, the other
        // ticks only at the cycles next_event admits. Completions,
        // command logs and stats must match exactly.
        for variant in [
            FsVariant::RankPartitioned,
            FsVariant::BankPartitioned,
            FsVariant::ReorderedBankPartitioned,
            FsVariant::NoPartitionNaive,
            FsVariant::TripleAlternation,
        ] {
            let policy = variant.partition_policy();
            let (mut dense, mut sparse) = (mk(variant), mk(variant));
            dense.record_commands();
            sparse.record_commands();
            for i in 0..16u64 {
                let t = txn(i, (i % 8) as u8, i * 17, i % 3 == 0, policy);
                dense.enqueue(t).unwrap();
                sparse.enqueue(t).unwrap();
            }
            let horizon = 8000u64;
            let mut dense_done = Vec::new();
            for c in 0..horizon {
                dense_done.extend(dense.tick(c));
            }
            let mut sparse_done = Vec::new();
            let mut c = 0u64;
            while c < horizon {
                sparse_done.extend(sparse.tick(c));
                c = sparse.next_event(c);
            }
            assert_eq!(dense_done, sparse_done, "{variant:?}");
            assert_eq!(dense.take_command_log(), sparse.take_command_log(), "{variant:?}");
            assert_eq!(dense.stats(), sparse.stats(), "{variant:?}");
        }
    }

    #[test]
    fn refresh_windows_do_not_break_the_pipeline() {
        let mut mc = mk(FsVariant::RankPartitioned);
        mc.record_commands();
        let mut id = 0u64;
        for c in 0..13_000u64 {
            if c % 40 == 0 && mc.can_accept(DomainId((id % 8) as u8)) {
                mc.enqueue(txn(id, (id % 8) as u8, id * 11, false, PartitionPolicy::Rank)).unwrap();
                id += 1;
            }
            mc.tick(c);
        }
        assert!(mc.device().counters().total_refreshes() >= 16);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn suppressed_dummies_do_not_count_as_array_activity() {
        let mut mc = FsScheduler::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            8,
            FsVariant::RankPartitioned,
            false,
            EnergyOptions { suppress_dummies: true, ..Default::default() },
        );
        run(&mut mc, 56 * 4);
        let c = mc.device().counters();
        assert_eq!(c.total_reads(), 0, "dummy reads must be suppressed");
        let suppressed: u64 = (0..8).map(|r| c.rank(r).suppressed).sum();
        assert!(suppressed > 16);
    }

    #[test]
    fn power_down_engages_on_idle_ranks_and_stream_stays_legal() {
        let mut mc = FsScheduler::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            8,
            FsVariant::RankPartitioned,
            false,
            EnergyOptions { power_down: true, ..Default::default() },
        );
        mc.record_commands();
        run(&mut mc, 2000);
        assert!(mc.stats().power_downs > 0);
        mc.finish(2000);
        let pd: u64 = (0..8).map(|r| mc.device().counters().rank(r).powered_down_cycles).sum();
        assert!(pd > 0, "no powered-down cycles recorded");
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn row_hit_boost_detects_repeated_rows() {
        let mut mc = FsScheduler::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            8,
            FsVariant::RankPartitioned,
            false,
            EnergyOptions { row_hit_boost: true, ..Default::default() },
        );
        // Two reads to the same row of domain 0.
        mc.enqueue(txn(1, 0, 5, false, PartitionPolicy::Rank)).unwrap();
        mc.enqueue(txn(2, 0, 6, false, PartitionPolicy::Rank)).unwrap();
        run(&mut mc, 300);
        assert!(mc.stats().boosted_row_hits >= 1);
    }

    #[test]
    fn two_domain_rank_partitioning_keeps_l7_with_dynamic_hazard_avoidance() {
        // Section 7: below ~6 ranks the 43-cycle same-rank worst case (and
        // the 15-cycle write-to-read turnaround) bite; the scheduler must
        // pick different transactions or insert bubbles rather than
        // violate timing. The stream must stay legal for a write-heavy mix.
        let mut mc = FsScheduler::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            2,
            FsVariant::RankPartitioned,
            false,
            EnergyOptions::default(),
        );
        assert_eq!(mc.schedule().unwrap().slot_pitch(), 7);
        mc.record_commands();
        for i in 0..24u64 {
            mc.enqueue(txn(i, (i % 2) as u8, i * 17, i % 2 == 0, PartitionPolicy::Rank)).unwrap();
        }
        let done = run(&mut mc, 4000);
        assert!(done.len() >= 10, "served {} reads", done.len());
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn weighted_sla_gives_proportional_service() {
        // Section 5.1: a domain's SLA decides its issue slots. Domain 0
        // gets 3 slots per interval, domains 1 and 2 get 1 each.
        let mut mc = FsScheduler::with_slot_weights(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            &[3, 1, 1],
            FsVariant::RankPartitioned,
            false,
            EnergyOptions::default(),
        );
        mc.record_commands();
        // Saturate every domain.
        let mut done = vec![0u64; 3];
        let mut id = 0u64;
        for c in 0..6000u64 {
            for d in 0..3u8 {
                if mc.can_accept(DomainId(d)) {
                    mc.enqueue(txn(id, d, id * 997, false, PartitionPolicy::Rank)).unwrap();
                    id += 1;
                }
            }
            for comp in mc.tick(c) {
                done[comp.txn.domain.0 as usize] += 1;
            }
        }
        // Domain 0 should see ~3x the service of domain 1.
        let ratio = done[0] as f64 / done[1].max(1) as f64;
        assert!((2.2..=3.8).contains(&ratio), "service {done:?} (ratio {ratio:.2}) not ~3:1:1");
        // And the stream stays legal.
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn domain_configs_drive_slots_and_queue_depths() {
        use crate::domain::DomainConfig;
        let configs = [
            DomainConfig { id: DomainId(0), slots_per_interval: 2, queue_capacity: 4 },
            DomainConfig::equal_service(DomainId(1)),
        ];
        let mut mc = FsScheduler::from_domain_configs(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            &configs,
            FsVariant::RankPartitioned,
            false,
            EnergyOptions::default(),
        );
        assert_eq!(mc.slot_pattern.len(), 3);
        // Queue capacity of domain 0 is 4: the fifth enqueue back-pressures.
        for i in 0..4 {
            mc.enqueue(txn(i, 0, i * 997, false, PartitionPolicy::Rank)).unwrap();
        }
        assert!(!mc.can_accept(DomainId(0)));
        assert!(mc.can_accept(DomainId(1)));
    }

    #[test]
    fn weighted_sla_slots_are_spread_not_clumped() {
        let mc = FsScheduler::with_slot_weights(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            &[2, 1, 1],
            FsVariant::RankPartitioned,
            false,
            EnergyOptions::default(),
        );
        let p = &mc.slot_pattern;
        assert_eq!(p.len(), 4);
        // Domain 0's two slots must not be adjacent (smooth WRR).
        let positions: Vec<usize> =
            p.iter().enumerate().filter(|(_, d)| d.0 == 0).map(|(i, _)| i).collect();
        assert_eq!(positions.len(), 2);
        let gap = positions[1] - positions[0];
        assert!(gap == 2, "pattern {p:?} clumps domain 0");
    }

    #[test]
    fn service_is_independent_of_other_domains_load() {
        // The executable non-interference core: domain 0's completion
        // times must be identical whether co-runners are idle or flooding.
        let run_domain0 = |others_busy: bool| -> Vec<Cycle> {
            let mut mc = mk(FsVariant::RankPartitioned);
            let mut id = 100;
            for i in 0..8u64 {
                mc.enqueue(txn(i, 0, i * 3, false, PartitionPolicy::Rank)).unwrap();
            }
            let mut finishes = Vec::new();
            for c in 0..2000u64 {
                if others_busy {
                    for d in 1..8u8 {
                        if c % 8 == d as u64 && mc.can_accept(DomainId(d)) {
                            mc.enqueue(txn(id, d, id * 7, id % 2 == 0, PartitionPolicy::Rank))
                                .unwrap();
                            id += 1;
                        }
                    }
                }
                for comp in mc.tick(c) {
                    if comp.txn.domain == DomainId(0) {
                        finishes.push(comp.finish);
                    }
                }
            }
            finishes
        };
        assert_eq!(run_domain0(false), run_domain0(true));
    }

    #[test]
    fn injected_delay_degrades_but_keeps_serving() {
        // One delayed command knocks the pipeline off its certified
        // phases: the controller must degrade (not panic), requeue the
        // in-flight work and keep serving on the conservative pitch.
        let mut mc = mk(FsVariant::RankPartitioned);
        // l = 7 and tBURST = 4: a 5-cycle slip leaves only 2 cycles to the
        // next slot's data burst, an overlap the device must reject.
        mc.inject_command_faults(CmdFaultSpec {
            delay_period: 5,
            delay_cycles: 5,
            max_faults: 1,
            ..Default::default()
        });
        let mut id = 0u64;
        let mut done = 0usize;
        for c in 0..30_000u64 {
            if c % 25 == 0 && mc.can_accept(DomainId((id % 8) as u8)) {
                mc.enqueue(txn(id, (id % 8) as u8, id * 11, false, PartitionPolicy::Rank)).unwrap();
                id += 1;
            }
            done += mc.tick(c).len();
        }
        assert!(mc.is_degraded(), "a 3-cycle slip must trigger degradation");
        assert!(mc.fault().is_none(), "one violation must not poison the controller");
        assert_eq!(mc.stats().injected_faults, 1);
        assert!(mc.stats().timing_faults >= 1);
        assert!(mc.stats().solver_fallbacks >= 1);
        assert!(mc.stats().degraded);
        // Demand service continues after the downgrade.
        assert!(done > id as usize / 2, "served {done} of {id} reads");
    }

    #[test]
    fn degraded_stream_stays_legal_after_the_violation() {
        // Post-downgrade the emitted command stream must again be
        // conflict-free (commands up to the violation are legal by
        // construction; the checker sees the whole log minus the one
        // rejected command, which the device never applied).
        let mut mc = mk(FsVariant::BankPartitioned);
        mc.record_commands();
        // l = 15: a 13-cycle slip lands the burst 2 cycles before the next
        // slot's, violating the data bus.
        mc.inject_command_faults(CmdFaultSpec {
            delay_period: 3,
            delay_cycles: 13,
            max_faults: 1,
            ..Default::default()
        });
        let mut id = 0u64;
        for c in 0..20_000u64 {
            if c % 30 == 0 && mc.can_accept(DomainId((id % 8) as u8)) {
                mc.enqueue(txn(
                    id,
                    (id % 8) as u8,
                    id * 17,
                    id.is_multiple_of(3),
                    PartitionPolicy::BankStriped,
                ))
                .unwrap();
                id += 1;
            }
            mc.tick(c);
        }
        assert!(mc.is_degraded());
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let v = checker.check(&mc.take_command_log());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn second_violation_poisons_the_controller() {
        // Unbounded injected delays keep violating even on the
        // conservative pipeline: after the single repair attempt the
        // controller must stop and expose the violation.
        let mut mc = mk(FsVariant::RankPartitioned);
        // A 40-cycle slip violates even the conservative 43-cycle pitch
        // (the burst lands 3 cycles before the next slot's), so the repair
        // attempt cannot hold.
        mc.inject_command_faults(CmdFaultSpec {
            delay_period: 4,
            delay_cycles: 40,
            max_faults: 0, // unbounded
            ..Default::default()
        });
        let mut id = 0u64;
        for c in 0..60_000u64 {
            if c % 20 == 0 && mc.can_accept(DomainId((id % 8) as u8)) {
                mc.enqueue(txn(id, (id % 8) as u8, id * 13, false, PartitionPolicy::Rank)).unwrap();
                id += 1;
            }
            mc.tick(c);
            if mc.fault().is_some() {
                break;
            }
        }
        let v = mc.fault().expect("persistent faults must poison the controller");
        assert!(mc.stats().timing_faults >= 2);
        assert!(!v.constraint.is_empty());
        // Poisoned controllers issue nothing.
        assert!(mc.tick(100_000).is_empty());
    }

    #[test]
    fn stretched_trc_widens_triple_alternation_instead_of_falling_back() {
        // A huge tRC used to break triple alternation's distance-3
        // same-bank argument outright; the schedule now widens its own
        // pitch to ceil(tRC / 3) = 67 and stays on the variant.
        let mut t = TimingParams::ddr3_1600();
        t.t_rc = 200;
        let mc = FsScheduler::try_new(
            Geometry::paper_default(),
            t,
            8,
            FsVariant::TripleAlternation,
            false,
            EnergyOptions::default(),
        )
        .expect("widened triple alternation should solve for a stretched tRC");
        assert!(!mc.is_degraded());
        assert_eq!(mc.stats().solver_fallbacks, 0);
        assert_eq!(mc.schedule().unwrap().slot_pitch(), 67);
    }

    #[test]
    fn unsolvable_variant_tries_the_fallback_and_reports_the_error() {
        // An absurd tRTRS pushes the rank-partitioned data pipeline past
        // the solver's search bound. The conservative fallback assumes
        // every turnaround at once — cross-rank included — so it cannot
        // solve either; construction must surface a solve error, not
        // panic or hand back an uncertified schedule.
        let mut t = TimingParams::ddr3_1600();
        t.t_rtrs = 600;
        let e = FsScheduler::try_new(
            Geometry::paper_default(),
            t,
            8,
            FsVariant::RankPartitioned,
            false,
            EnergyOptions::default(),
        )
        .expect_err("no pipeline solves with a 600-cycle tRTRS");
        assert!(matches!(e, CoreError::Solve(_)), "{e}");
    }

    #[test]
    fn invalid_configs_are_reported_not_panicked() {
        let geom = Geometry::paper_default();
        let t = TimingParams::ddr3_1600();
        let e = FsScheduler::try_new(
            geom,
            t,
            0,
            FsVariant::RankPartitioned,
            false,
            EnergyOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(e, CoreError::Config(_)), "{e}");
        let e = FsScheduler::try_with_slot_weights(
            geom,
            t,
            &[1, 0],
            FsVariant::RankPartitioned,
            false,
            EnergyOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(e, CoreError::Config(_)), "{e}");
        let e = FsScheduler::try_with_slot_weights(
            geom,
            t,
            &[2, 1],
            FsVariant::ReorderedBankPartitioned,
            false,
            EnergyOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(e, CoreError::Config(_)), "{e}");
    }

    #[test]
    fn moderately_stretched_device_trfc_is_absorbed_without_violations() {
        // Device refreshes take twice as long as certified. The slot
        // filler's bank-readiness guard sees the slow device directly, so
        // the overrun costs bubbles, not violations.
        let mut mc = mk(FsVariant::RankPartitioned);
        let mut slow = TimingParams::ddr3_1600();
        slow.t_rfc *= 2;
        mc.set_device_timing(slow);
        let mut id = 0u64;
        let mut done = 0usize;
        for c in 0..20_000u64 {
            if c % 20 == 0 && mc.can_accept(DomainId((id % 8) as u8)) {
                mc.enqueue(txn(id, (id % 8) as u8, id * 7, false, PartitionPolicy::Rank)).unwrap();
                id += 1;
            }
            done += mc.tick(c).len();
        }
        assert!(mc.fault().is_none());
        assert!(!mc.is_degraded(), "a 2x tRFC must be absorbed, not degrade");
        assert!(done > 100, "served only {done} reads");
    }

    #[test]
    fn extreme_device_trfc_stretch_degrades_then_poisons() {
        // The acceptance scenario's core: tRFC stretched past tREFI means
        // the next window's REF arrives while the previous refresh is
        // still in progress. The first collision degrades; refresh cadence
        // is unchanged in degraded mode, so the next REF poisons.
        let mut mc = mk(FsVariant::RankPartitioned);
        let mut slow = TimingParams::ddr3_1600();
        slow.t_rfc *= 40;
        mc.set_device_timing(slow);
        let mut id = 0u64;
        for c in 0..40_000u64 {
            if c % 20 == 0 && mc.can_accept(DomainId((id % 8) as u8)) {
                mc.enqueue(txn(id, (id % 8) as u8, id * 7, false, PartitionPolicy::Rank)).unwrap();
                id += 1;
            }
            mc.tick(c);
            if mc.fault().is_some() {
                break;
            }
        }
        assert!(mc.stats().degraded, "first REF collision must degrade");
        assert!(mc.fault().is_some(), "persistent REF collisions must poison");
        assert!(mc.stats().timing_faults >= 2);
    }

    #[test]
    fn stretched_device_trtrs_degrades_and_recovers_on_the_wide_pitch() {
        // Slow rank-to-rank bus switching: the certified 7-cycle pitch
        // leaves a 3-cycle gap between bursts of different ranks, so a
        // tRTRS of 20 violates immediately — but the conservative 43-cycle
        // pitch leaves 39, so the degraded controller keeps serving.
        let mut mc = mk(FsVariant::RankPartitioned);
        let mut slow = TimingParams::ddr3_1600();
        slow.t_rtrs = 20;
        mc.set_device_timing(slow);
        let mut id = 0u64;
        let mut done = 0usize;
        for c in 0..30_000u64 {
            if c % 25 == 0 && mc.can_accept(DomainId((id % 8) as u8)) {
                mc.enqueue(txn(id, (id % 8) as u8, id * 7, false, PartitionPolicy::Rank)).unwrap();
                id += 1;
            }
            done += mc.tick(c).len();
        }
        assert!(mc.is_degraded());
        assert!(mc.fault().is_none(), "the wide pitch must hold: {:?}", mc.fault());
        assert!(done > 100, "served only {done} reads after the downgrade");
    }

    #[test]
    fn cadence_spec_accepts_every_recorded_command() {
        // The advertised cadence must describe the controller's actual
        // issue behaviour: an un-faulted run may not contain a single
        // command the spec rejects, across every slot-shaped variant.
        for variant in [
            FsVariant::RankPartitioned,
            FsVariant::BankPartitioned,
            FsVariant::NoPartitionNaive,
            FsVariant::TripleAlternation,
        ] {
            let mut mc = mk(variant);
            let policy = variant.partition_policy();
            mc.record_commands();
            let spec = MemoryController::cadence_spec(&mc)
                .expect("slot-shaped FS variants advertise a cadence");
            if variant == FsVariant::RankPartitioned {
                assert!(spec.slot_owner_ranks.is_some(), "RP must carry slot ownership");
            }
            let mut id = 0u64;
            for c in 0..8_000u64 {
                if c.is_multiple_of(9) && mc.can_accept(DomainId((id % 8) as u8)) {
                    mc.enqueue(txn(id, (id % 8) as u8, id * 13, id.is_multiple_of(3), policy))
                        .unwrap();
                    id += 1;
                }
                mc.tick(c);
            }
            assert!(mc.fault().is_none(), "{variant:?} faulted: {:?}", mc.fault());
            let log = MemoryController::take_command_log(&mut mc);
            assert!(log.iter().any(|tc| tc.cmd.kind.is_cas()), "{variant:?}: empty log");
            for tc in &log {
                if let Err(name) = spec.check(tc) {
                    panic!("{variant:?}: {tc} rejected by its own cadence: {name}");
                }
            }
        }
    }

    #[test]
    fn reconfigure_keeps_the_cadence_and_bumps_the_epoch() {
        let mut mc = mk(FsVariant::RankPartitioned);
        mc.record_commands();
        let before = MemoryController::cadence_spec(&mc).unwrap();
        for c in 0..200u64 {
            mc.tick(c);
        }
        let boundary = mc.reconfig_boundary(200);
        assert!(boundary >= 200 + (mc.t.t_rfc + mc.t.t_rc + 64) as Cycle);
        let events = [
            ReconfigEvent::StuckBank { rank: 3, bank: 2 },
            ReconfigEvent::DomainLeave { domain: 5 },
        ];
        mc.reconfigure(&events, boundary).expect("unchanged timing must re-certify");
        assert_eq!(MemoryController::epoch(&mc), 1);
        assert_eq!(mc.stats().reconfigs, 1);
        // The committed cadence is invariant across the epoch edge.
        assert_eq!(MemoryController::cadence_spec(&mc).unwrap(), before);
        // Post-adoption commands still satisfy it, and dummies never
        // touch the stuck bank.
        for c in 200..boundary + 600 {
            mc.tick(c);
        }
        assert!(mc.fault().is_none());
        let log = MemoryController::take_command_log(&mut mc);
        for tc in log.iter().filter(|tc| tc.cycle >= boundary) {
            assert!(before.check(tc).is_ok(), "{tc} off cadence after reconfig");
            if tc.cmd.kind == fsmc_dram::CommandKind::Activate {
                assert!(
                    !(tc.cmd.rank == RankId(3) && tc.cmd.bank == BankId(2)),
                    "stuck bank activated after reconfig: {tc}"
                );
            }
        }
    }

    #[test]
    fn dead_rank_slots_become_bubbles_and_demand_is_dropped() {
        let mut mc = mk(FsVariant::RankPartitioned);
        // Queue demand for domain 2 (rank 2 under rank partitioning).
        for i in 0..4u64 {
            mc.enqueue(txn(i, 2, i * 5, false, PartitionPolicy::Rank)).unwrap();
        }
        mc.reconfigure(&[ReconfigEvent::DeadRank { rank: 2 }], 0).unwrap();
        assert_eq!(mc.stats().dropped_txns, 4, "queued demand to the dead rank is dropped");
        let bubbles_before = mc.stats().bubbles;
        let done = run(&mut mc, 56 * 4);
        assert!(done.is_empty(), "nothing can complete on a dead rank");
        // Domain 2's slots go empty (its rank is masked even for dummies).
        assert!(mc.stats().bubbles >= bubbles_before + 4);
        assert_eq!(mc.stats().domain(DomainId(2)).dummies, 0);
    }

    #[test]
    fn stuck_bank_demand_is_remapped_within_the_partition() {
        let mut mc = mk(FsVariant::RankPartitioned);
        mc.reconfigure(&[ReconfigEvent::StuckBank { rank: 0, bank: 1 }], 0).unwrap();
        // A read mapping onto the stuck bank lands on a healthy bank of
        // the same rank instead.
        let geom = Geometry::paper_default();
        let loc = PartitionPolicy::Rank.map(&geom, DomainId(0), LineAddr(0));
        let stuck = Location { bank: BankId(1), ..loc };
        let t = Transaction::read(TxnId(9), DomainId(0), stuck, 0);
        mc.enqueue(t).unwrap();
        let done = run(&mut mc, 300);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].txn.loc.rank, RankId(0), "remap must stay in the owned rank");
        assert_ne!(done[0].txn.loc.bank, BankId(1), "remap must leave the stuck bank");
    }

    #[test]
    fn thermal_refresh_reconfig_refreshes_more_often() {
        let (mut nominal, mut hot) =
            (mk(FsVariant::RankPartitioned), mk(FsVariant::RankPartitioned));
        hot.reconfigure(&[ReconfigEvent::ThermalRefresh { factor: 2 }], 0).unwrap();
        assert_eq!(MemoryController::epoch(&hot), 1);
        for c in 0..14_000u64 {
            nominal.tick(c);
            hot.tick(c);
        }
        let n = nominal.device().counters().total_refreshes();
        let h = hot.device().counters().total_refreshes();
        assert!(h >= 2 * n - 8, "hot {h} vs nominal {n}: doubling must show");
        assert!(hot.fault().is_none());
    }

    #[test]
    fn cadence_spec_flags_off_phase_and_foreign_slot() {
        let mc = mk(FsVariant::RankPartitioned);
        let spec = MemoryController::cadence_spec(&mc).unwrap();
        // A read CAS one cycle off its anchor phase is rejected.
        let on = TimedCommand::new(
            Command::read_ap(RankId(0), BankId(0), RowId(0), ColId(0)),
            spec.read_cas_anchor,
        );
        assert!(spec.check(&on).is_ok());
        let off = TimedCommand::new(on.cmd, spec.read_cas_anchor + 1);
        assert_eq!(spec.check(&off), Err("FS cadence: read CAS off its slot phase"));
        // Slot 0 belongs to domain 0 (rank 0); the same phase one slot
        // later belongs to domain 1, so rank 0 there is slot theft.
        let theft = TimedCommand::new(on.cmd, spec.read_cas_anchor + spec.slot_pitch);
        assert_eq!(spec.check(&theft), Err("FS cadence: read CAS in another domain's slot"));
        // Refresh is exempt at any cycle.
        let refresh = TimedCommand::new(Command::refresh(RankId(3)), 12345);
        assert!(spec.check(&refresh).is_ok());
    }
}
