//! The non-secure baseline: FR-FCFS open-page scheduling with
//! watermark-driven write draining and optional sandbox prefetching.
//!
//! This is the normalisation denominator for every figure in the paper.
//! (The paper uses the MSC-2012 winner; FR-FCFS open-page with write
//! drain is the same class of aggressive row-hit-first scheduler — see
//! DESIGN.md for the substitution note.)

use crate::domain::{DomainId, PartitionPolicy};
use crate::prefetch::SandboxPrefetcher;
use crate::queues::QueueFull;
use crate::refresh::RefreshManager;
use crate::sched::{Completion, McStats, MemoryController, SchedulerKind};
use crate::txn::{Transaction, TxnId, TxnKind};
use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, Geometry, LineAddr, RankId};
use fsmc_dram::{Cycle, DramDevice, TimingParams};

/// One queued transaction and its command progress.
#[derive(Debug, Clone, Copy)]
struct Pending {
    txn: Transaction,
    issued_act: bool,
}

/// FR-FCFS open-page controller for one channel.
#[derive(Debug)]
pub struct BaselineScheduler {
    device: DramDevice,
    t: TimingParams,
    refresh: RefreshManager,
    stats: McStats,
    kind: SchedulerKind,
    reads: Vec<Pending>,
    writes: Vec<Pending>,
    read_capacity: usize,
    write_capacity: usize,
    drain_hi: usize,
    drain_lo: usize,
    draining: bool,
    prefetchers: Vec<SandboxPrefetcher>,
    next_prefetch_id: u64,
    domains: u8,
}

impl BaselineScheduler {
    /// Creates a baseline controller; `prefetch` enables the sandbox
    /// prefetcher (the `Baseline_Prefetch` design point of Figure 7).
    pub fn new(geom: Geometry, t: TimingParams, domains: u8, prefetch: bool) -> Self {
        let device = DramDevice::new(geom, t);
        let refresh = RefreshManager::new(&t, geom.ranks_per_channel());
        BaselineScheduler {
            device,
            t,
            refresh,
            stats: McStats::new(domains as usize),
            kind: if prefetch { SchedulerKind::BaselinePrefetch } else { SchedulerKind::Baseline },
            reads: Vec::new(),
            writes: Vec::new(),
            read_capacity: 64,
            write_capacity: 64,
            drain_hi: 40,
            drain_lo: 16,
            draining: false,
            prefetchers: (0..domains).map(|_| SandboxPrefetcher::new()).collect(),
            next_prefetch_id: 1 << 62,
            domains,
        }
    }

    fn prefetch_enabled(&self) -> bool {
        matches!(self.kind, SchedulerKind::BaselinePrefetch)
    }

    /// Generate prefetch transactions while there is queue headroom.
    fn pump_prefetches(&mut self, now: Cycle) {
        if !self.prefetch_enabled() {
            return;
        }
        let geom = *self.device.geometry();
        // Prefetches only ride on an otherwise lightly-loaded read queue;
        // under load they would steal bandwidth from demand misses.
        for d in 0..self.domains {
            while self.reads.len() < self.domains as usize {
                let Some(local) = self.prefetchers[d as usize].next_prefetch() else { break };
                let loc = PartitionPolicy::None.map(&geom, DomainId(d), local);
                let txn = Transaction {
                    id: TxnId(self.next_prefetch_id),
                    domain: DomainId(d),
                    loc,
                    local_addr: local,
                    is_write: false,
                    arrival: now,
                    kind: TxnKind::Prefetch,
                };
                self.next_prefetch_id += 1;
                self.reads.push(Pending { txn, issued_act: false });
                self.stats.domain_mut(DomainId(d)).prefetches += 1;
            }
        }
    }

    /// During the pre-refresh quiesce, close banks that are still open so
    /// the refresh window starts with every bank precharged.
    fn quiesce_precharge(&mut self, now: Cycle) {
        let Some((start, _)) = self.refresh.next_window(now) else { return };
        if now + self.t.t_rp as Cycle > start {
            return; // too late for a precharge to recover before the REF
        }
        let geom = *self.device.geometry();
        for r in 0..geom.ranks_per_channel() {
            let any_open = (0..geom.banks_per_rank())
                .any(|b| self.device.open_row(RankId(r), BankId(b)).is_some());
            if any_open {
                let pre = Command::precharge_all(RankId(r));
                if self.device.can_issue(&pre, now).is_ok() {
                    self.device.issue(&pre, now).expect("validated precharge-all");
                    return;
                }
            }
        }
    }

    /// Attempts FR-FCFS issue from `queue`; returns a completion if a CAS
    /// retired a transaction. At most one command is issued.
    fn try_issue(
        &mut self,
        is_write_queue: bool,
        now: Cycle,
        act_allowed: bool,
    ) -> (bool, Option<Completion>) {
        // Pass 1: row hits, oldest first.
        let queue = if is_write_queue { &self.writes } else { &self.reads };
        let mut cas_idx = None;
        for (i, p) in queue.iter().enumerate() {
            let open = self.device.open_row(p.txn.loc.rank, p.txn.loc.bank);
            if open == Some(p.txn.loc.row) {
                let cas = if p.txn.is_write {
                    Command::write(p.txn.loc.rank, p.txn.loc.bank, p.txn.loc.row, p.txn.loc.col)
                } else {
                    Command::read(p.txn.loc.rank, p.txn.loc.bank, p.txn.loc.row, p.txn.loc.col)
                };
                if self.device.can_issue(&cas, now).is_ok() {
                    cas_idx = Some((i, cas));
                    break;
                }
            }
        }
        if let Some((i, cas)) = cas_idx {
            let p = if is_write_queue { self.writes.remove(i) } else { self.reads.remove(i) };
            let out = self.device.issue(&cas, now).expect("validated CAS");
            if p.issued_act {
                self.stats.row_misses += 1;
            } else {
                self.stats.row_hits += 1;
            }
            let finish = out.data_done.expect("CAS produces data");
            if !p.txn.is_write && p.txn.kind == TxnKind::Demand {
                let ds = self.stats.domain_mut(p.txn.domain);
                ds.read_latency_sum += finish.saturating_sub(p.txn.arrival);
                ds.reads_completed += 1;
            }
            // Writes complete too: the producer uses this to retire its
            // store-to-load forwarding window.
            return (true, Some(Completion { txn: p.txn, finish }));
        }

        // Pass 2: oldest transaction whose next command (PRE or ACT) can
        // issue. Never precharge a row some pending transaction still hits.
        let queue_len = if is_write_queue { self.writes.len() } else { self.reads.len() };
        for i in 0..queue_len {
            let p = if is_write_queue { self.writes[i] } else { self.reads[i] };
            let loc = p.txn.loc;
            match self.device.open_row(loc.rank, loc.bank) {
                Some(r) if r == loc.row => { /* covered by pass 1; bus busy */ }
                Some(open_row) => {
                    let someone_hits = self.reads.iter().chain(self.writes.iter()).any(|q| {
                        q.txn.loc.rank == loc.rank
                            && q.txn.loc.bank == loc.bank
                            && q.txn.loc.row == open_row
                    });
                    if !someone_hits {
                        let pre = Command::precharge(loc.rank, loc.bank);
                        if self.device.can_issue(&pre, now).is_ok() {
                            self.device.issue(&pre, now).expect("validated precharge");
                            return (true, None);
                        }
                    }
                }
                None => {
                    if act_allowed {
                        let act = Command::activate(loc.rank, loc.bank, loc.row);
                        if self.device.can_issue(&act, now).is_ok() {
                            self.device.issue(&act, now).expect("validated activate");
                            if is_write_queue {
                                self.writes[i].issued_act = true;
                            } else {
                                self.reads[i].issued_act = true;
                            }
                            return (true, None);
                        }
                    }
                }
            }
        }
        (false, None)
    }
}

impl MemoryController for BaselineScheduler {
    fn can_accept(&self, _domain: DomainId) -> bool {
        self.reads.len() < self.read_capacity && self.writes.len() < self.write_capacity
    }

    fn enqueue(&mut self, txn: Transaction) -> Result<(), QueueFull> {
        let queue_full = if txn.is_write {
            self.writes.len() >= self.write_capacity
        } else {
            self.reads.len() >= self.read_capacity
        };
        if queue_full {
            return Err(QueueFull { domain: txn.domain });
        }
        let ds = self.stats.domain_mut(txn.domain);
        if txn.is_write {
            ds.demand_writes += 1;
        } else {
            ds.demand_reads += 1;
            if self.prefetch_enabled() {
                self.prefetchers[txn.domain.0 as usize].on_access(txn.local_addr);
            }
        }
        let pending = Pending { txn, issued_act: false };
        if txn.is_write {
            self.writes.push(pending);
        } else {
            self.reads.push(pending);
        }
        Ok(())
    }

    fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        // Refresh window handling (identical across policies).
        if let Some(cmd) = self.refresh.command_at(now) {
            self.device.issue(&cmd, now).expect("refresh must be legal after quiesce");
            return Vec::new();
        }
        if self.refresh.in_window(now) {
            return Vec::new();
        }
        let act_allowed = self.refresh.allows_transaction(now);
        if !act_allowed {
            self.quiesce_precharge(now);
            // CAS to already-open rows could run past the window; stop
            // everything except the precharges above.
            return Vec::new();
        }

        self.pump_prefetches(now);

        // Write-drain hysteresis.
        if self.writes.len() >= self.drain_hi {
            self.draining = true;
        } else if self.writes.len() <= self.drain_lo {
            self.draining = false;
        }
        let drain = self.draining || self.reads.is_empty();

        let mut completions = Vec::new();
        let (issued, c) = self.try_issue(drain, now, act_allowed);
        if let Some(c) = c {
            completions.push(c);
        }
        if !issued {
            // Opportunistic issue from the other queue.
            let (_, c2) = self.try_issue(!drain, now, act_allowed);
            if let Some(c2) = c2 {
                completions.push(c2);
            }
        }
        completions
    }

    fn device(&self) -> &DramDevice {
        &self.device
    }

    fn finish(&mut self, now: Cycle) {
        self.device.finish(now);
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn kind(&self) -> SchedulerKind {
        self.kind
    }

    fn record_commands(&mut self) {
        self.device.record_commands();
    }

    fn take_command_log(&mut self) -> Vec<TimedCommand> {
        self.device.take_log()
    }
}

/// Convenience: map a domain-local address for this controller's
/// (unpartitioned) address space.
pub fn map_local(geom: &Geometry, domain: DomainId, local: LineAddr) -> fsmc_dram::Location {
    PartitionPolicy::None.map(geom, domain, local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_dram::TimingChecker;

    fn mk() -> BaselineScheduler {
        BaselineScheduler::new(Geometry::paper_default(), TimingParams::ddr3_1600(), 8, false)
    }

    fn txn(id: u64, domain: u8, local: u64, write: bool) -> Transaction {
        let geom = Geometry::paper_default();
        let loc = PartitionPolicy::None.map(&geom, DomainId(domain), LineAddr(local));
        if write {
            Transaction::write(TxnId(id), DomainId(domain), loc, 0)
        } else {
            Transaction::read(TxnId(id), DomainId(domain), loc, 0).with_local_addr(LineAddr(local))
        }
    }

    fn run(mc: &mut BaselineScheduler, cycles: u64) -> Vec<Completion> {
        let mut all = Vec::new();
        for c in 0..cycles {
            all.extend(mc.tick(c));
        }
        all
    }

    #[test]
    fn single_read_completes_with_act_plus_cas_latency() {
        let mut mc = mk();
        mc.enqueue(txn(1, 0, 100, false)).unwrap();
        let done = run(&mut mc, 60);
        assert_eq!(done.len(), 1);
        // ACT at 0, CAS at 11, data done at 11 + 11 + 4 = 26.
        assert_eq!(done[0].finish, 26);
        assert_eq!(mc.stats().row_misses, 1);
    }

    #[test]
    fn second_read_to_same_row_is_a_row_hit() {
        let mut mc = mk();
        mc.enqueue(txn(1, 0, 100, false)).unwrap();
        mc.enqueue(txn(2, 0, 101, false)).unwrap();
        let done = run(&mut mc, 80);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().row_hits, 1);
        assert_eq!(mc.stats().row_misses, 1);
        // The hit's CAS follows tCCD after the first CAS.
        assert_eq!(done[1].finish - done[0].finish, 4);
    }

    #[test]
    fn writes_drain_when_reads_are_absent() {
        let mut mc = mk();
        for i in 0..4 {
            mc.enqueue(txn(i, 0, i * 1000, true)).unwrap();
        }
        run(&mut mc, 400);
        let w: u64 = mc.device().counters().total_writes();
        assert_eq!(w, 4);
    }

    #[test]
    fn command_stream_is_legal() {
        let mut mc = mk();
        mc.record_commands();
        for i in 0..32u64 {
            mc.enqueue(txn(i, (i % 8) as u8, i * 37, i % 3 == 0)).unwrap();
        }
        run(&mut mc, 3000);
        let log = mc.take_command_log();
        assert!(log.len() >= 32);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let violations = checker.check(&log);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn refresh_windows_interleave_without_violations() {
        let mut mc = mk();
        mc.record_commands();
        let mut id = 0;
        let mut completions = 0;
        for c in 0..14_000u64 {
            if c % 50 == 0 && mc.can_accept(DomainId(0)) {
                mc.enqueue(txn(id, (id % 8) as u8, id * 53, false)).unwrap();
                id += 1;
            }
            completions += mc.tick(c).len();
        }
        assert!(completions > 100);
        // Two refresh windows elapsed; all 8 ranks refreshed in each.
        assert_eq!(mc.device().counters().total_refreshes(), 16);
        let log = mc.take_command_log();
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let violations = checker.check(&log);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn backpressure_on_full_read_queue() {
        let mut mc = mk();
        for i in 0..64 {
            mc.enqueue(txn(i, 0, i, false)).unwrap();
        }
        assert!(!mc.can_accept(DomainId(0)));
        assert!(mc.enqueue(txn(99, 0, 99, false)).is_err());
    }

    #[test]
    fn prefetcher_injects_prefetch_reads_on_streaming_pattern() {
        let mut mc =
            BaselineScheduler::new(Geometry::paper_default(), TimingParams::ddr3_1600(), 8, true);
        let mut cycle = 0u64;
        for i in 0..600u64 {
            mc.enqueue(txn(i, 0, i, false)).unwrap();
            for _ in 0..12 {
                mc.tick(cycle);
                cycle += 1;
            }
        }
        let pf = mc.stats().domain(DomainId(0)).prefetches;
        assert!(pf > 0, "sandbox prefetcher never activated");
    }
}
