//! The non-secure baseline: FR-FCFS open-page scheduling with
//! watermark-driven write draining and optional sandbox prefetching.
//!
//! This is the normalisation denominator for every figure in the paper.
//! (The paper uses the MSC-2012 winner; FR-FCFS open-page with write
//! drain is the same class of aggressive row-hit-first scheduler — see
//! DESIGN.md for the substitution note.)

use crate::domain::{DomainId, PartitionPolicy};
use crate::prefetch::SandboxPrefetcher;
use crate::queues::QueueFull;
use crate::refresh::RefreshManager;
use crate::sched::{Completion, McStats, MemoryController, SchedulerKind};
use crate::txn::{Transaction, TxnId, TxnKind};
use fsmc_dram::command::{Command, TimedCommand};
use fsmc_dram::geometry::{BankId, Geometry, LineAddr, RankId};
use fsmc_dram::{Cycle, DramDevice, TimingParams, NO_ROW};

/// Immutable per-tick view of the device and queue state shared by the
/// (up to) two [`BaselineScheduler::try_issue`] attempts of one tick:
/// a flat open-row table, rank-level legality floors, and the
/// pending-row-hit bank mask for the FR-FCFS precharge guard. Nothing
/// it caches can change between the attempts — the second runs only
/// when the first issued no command — so one build serves both, and
/// every queue entry is classified with plain array loads instead of
/// per-entry device accessor calls.
///
/// `rows`/`hit_mask` are valid only when `!wide` (geometry fits 128
/// banks; the paper's is 64); wide geometries keep the direct scans.
struct IssueSnapshot {
    rows: [u32; 128],
    /// Per-bank command floors (`BankArrays` ready cycles), flat-indexed
    /// like `rows`: the passes touch them once per candidate entry, so
    /// one indexed load beats the accessor chain through the device.
    cas_bank_f: [Cycle; 128],
    act_bank_f: [Cycle; 128],
    pre_bank_f: [Cycle; 128],
    pre_f: [Cycle; 16],
    act_f: [Cycle; 16],
    /// Rank CAS floors by direction, indexed `[is_write][rank]` so the
    /// branchless classification sweeps select without a branch.
    cas_dir_f: [[Cycle; 16]; 2],
    /// Lazily-built FR-FCFS precharge guard: banks with a pending row
    /// hit. Only pass 2 reads it, and ticks that issue a CAS in pass 1
    /// never reach pass 2 — so the two-queue sweep is deferred until
    /// first use (`None` = not built yet).
    hit_mask: std::cell::Cell<Option<u128>>,
    bpr: u32,
    prefilter: bool,
    wide: bool,
}

/// One queued transaction and its command progress.
#[derive(Debug, Clone, Copy)]
struct Pending {
    txn: Transaction,
    issued_act: bool,
}

/// FR-FCFS open-page controller for one channel.
#[derive(Debug)]
pub struct BaselineScheduler {
    device: DramDevice,
    t: TimingParams,
    refresh: RefreshManager,
    stats: McStats,
    kind: SchedulerKind,
    reads: Vec<Pending>,
    writes: Vec<Pending>,
    read_capacity: usize,
    write_capacity: usize,
    drain_hi: usize,
    drain_lo: usize,
    draining: bool,
    prefetchers: Vec<SandboxPrefetcher>,
    next_prefetch_id: u64,
    domains: u8,
    /// Cached provable-no-op bound: every tick at a cycle strictly below
    /// this issues nothing and mutates nothing. Taken from `next_event`
    /// after a tick that issued no command; cleared (0) by anything that
    /// could create a new issue candidate — an enqueue, or any tick that
    /// touched the device. Queue contents and row state are constant
    /// while it holds, so both `tick_into` and `next_event` answer in
    /// O(1) instead of rescanning two 64-entry queues per idle cycle.
    idle_until: Cycle,
}

impl BaselineScheduler {
    /// Creates a baseline controller; `prefetch` enables the sandbox
    /// prefetcher (the `Baseline_Prefetch` design point of Figure 7).
    pub fn new(geom: Geometry, t: TimingParams, domains: u8, prefetch: bool) -> Self {
        let device = DramDevice::new(geom, t);
        let refresh = RefreshManager::new(&t, geom.ranks_per_channel());
        BaselineScheduler {
            device,
            t,
            refresh,
            stats: McStats::new(domains as usize),
            kind: if prefetch { SchedulerKind::BaselinePrefetch } else { SchedulerKind::Baseline },
            reads: Vec::new(),
            writes: Vec::new(),
            read_capacity: 64,
            write_capacity: 64,
            drain_hi: 40,
            drain_lo: 16,
            draining: false,
            prefetchers: (0..domains).map(|_| SandboxPrefetcher::new()).collect(),
            next_prefetch_id: 1 << 62,
            domains,
            idle_until: 0,
        }
    }

    fn prefetch_enabled(&self) -> bool {
        matches!(self.kind, SchedulerKind::BaselinePrefetch)
    }

    /// Generate prefetch transactions while there is queue headroom.
    fn pump_prefetches(&mut self, now: Cycle) {
        if !self.prefetch_enabled() {
            return;
        }
        let geom = *self.device.geometry();
        // Prefetches only ride on an otherwise lightly-loaded read queue;
        // under load they would steal bandwidth from demand misses.
        for d in 0..self.domains {
            while self.reads.len() < self.domains as usize {
                let Some(local) = self.prefetchers[d as usize].next_prefetch() else { break };
                let loc = PartitionPolicy::None.map(&geom, DomainId(d), local);
                let txn = Transaction {
                    id: TxnId(self.next_prefetch_id),
                    domain: DomainId(d),
                    loc,
                    local_addr: local,
                    is_write: false,
                    arrival: now,
                    kind: TxnKind::Prefetch,
                };
                self.next_prefetch_id += 1;
                self.reads.push(Pending { txn, issued_act: false });
                self.stats.domain_mut(DomainId(d)).prefetches += 1;
            }
        }
    }

    /// During the pre-refresh quiesce, close banks that are still open so
    /// the refresh window starts with every bank precharged.
    fn quiesce_precharge(&mut self, now: Cycle) {
        let Some((start, _)) = self.refresh.next_window(now) else { return };
        if now + self.t.t_rp as Cycle > start {
            return; // too late for a precharge to recover before the REF
        }
        let geom = *self.device.geometry();
        for r in 0..geom.ranks_per_channel() {
            let any_open = (0..geom.banks_per_rank())
                .any(|b| self.device.open_row(RankId(r), BankId(b)).is_some());
            if any_open {
                let pre = Command::precharge_all(RankId(r));
                if self.device.can_issue(&pre, now).is_ok() {
                    self.device.issue(&pre, now).expect("validated precharge-all");
                    return;
                }
            }
        }
    }

    /// Builds the per-tick issue snapshot (see [`IssueSnapshot`]).
    fn snapshot(&self) -> IssueSnapshot {
        let geom = self.device.geometry();
        let nranks = geom.ranks_per_channel() as usize;
        let bpr = geom.banks_per_rank() as u32;
        let wide = nranks as u32 * bpr > 128;
        let mut s = IssueSnapshot {
            rows: [NO_ROW; 128],
            cas_bank_f: [0; 128],
            act_bank_f: [0; 128],
            pre_bank_f: [0; 128],
            pre_f: [0; 16],
            act_f: [0; 16],
            cas_dir_f: [[0; 16]; 2],
            hit_mask: std::cell::Cell::new(None),
            bpr,
            prefilter: nranks <= 16,
            wide,
        };
        if s.prefilter {
            for r in 0..nranks {
                let (p, a, rd, wr) = self.device.rank_floor_parts(RankId(r as u8));
                s.pre_f[r] = p;
                s.act_f[r] = a;
                s.cas_dir_f[0][r] = rd;
                s.cas_dir_f[1][r] = wr;
            }
        }
        if !wide {
            for r in 0..nranks {
                let banks = self.device.banks_of(RankId(r as u8));
                let rows = banks.open_rows_slice();
                let base = r * bpr as usize;
                s.rows[base..][..rows.len()].copy_from_slice(rows);
                s.cas_bank_f[base..][..rows.len()].copy_from_slice(banks.next_cas_slice());
                s.act_bank_f[base..][..rows.len()].copy_from_slice(banks.next_activate_slice());
                s.pre_bank_f[base..][..rows.len()].copy_from_slice(banks.next_precharge_slice());
            }
        }
        s
    }

    /// The deferred pending-row-hit mask of `snap` (see
    /// [`IssueSnapshot::hit_mask`]), building it on first use.
    fn hit_mask_of(&self, snap: &IssueSnapshot) -> u128 {
        if let Some(m) = snap.hit_mask.get() {
            return m;
        }
        let mut m = 0u128;
        for q in self.reads.iter().chain(self.writes.iter()) {
            let l = q.txn.loc;
            let gbi = l.rank.0 as u32 * snap.bpr + l.bank.0 as u32;
            if snap.rows[gbi as usize] == l.row.0 {
                m |= 1u128 << gbi;
            }
        }
        snap.hit_mask.set(Some(m));
        m
    }

    /// Attempts FR-FCFS issue from `queue`; returns a completion if a CAS
    /// retired a transaction. At most one command is issued.
    ///
    /// The rank-level floors in `snap` reject candidates blocked by a
    /// rank-wide constraint (tCCD between row hits, tRRD/tFAW between
    /// ACTs, refresh recovery) with one compare instead of a full
    /// `can_issue` validation. Sound because a floor past `now` makes
    /// `can_issue` fail for that class — the same candidates are
    /// attempted, in the same order, with identical outcomes.
    fn try_issue(
        &mut self,
        is_write_queue: bool,
        now: Cycle,
        act_allowed: bool,
        snap: &IssueSnapshot,
    ) -> (bool, Option<Completion>) {
        // Pass 1: row hits, oldest first. On table-backed geometries the
        // sweep is branchless — every entry contributes one candidate
        // bit computed from indexed loads (no per-entry branch to
        // mispredict on the irregular hit pattern) — and only the few
        // floor-ready hits pay a `can_issue`, oldest first.
        let queue = if is_write_queue { &self.writes } else { &self.reads };
        let mut cas_idx = None;
        if !snap.wide && snap.prefilter && queue.len() <= 64 {
            let mut cand = 0u64;
            for (i, p) in queue.iter().enumerate() {
                let l = p.txn.loc;
                let gbi = (l.rank.0 as u32 * snap.bpr + l.bank.0 as u32) as usize;
                let hit = (snap.rows[gbi] == l.row.0) as u64;
                let rank_floor = snap.cas_dir_f[p.txn.is_write as usize][l.rank.0 as usize];
                let ready = (rank_floor.max(snap.cas_bank_f[gbi]) <= now) as u64;
                cand |= (hit & ready) << i;
            }
            // Candidates that clear the rank/bank floors mostly fail on
            // the data bus (cross-rank tRTRS gaps around in-flight
            // bursts). That verdict depends only on (direction, rank,
            // cycle), so probe it once per pair and skip the full
            // validation for every candidate behind a blocked bus.
            let mut bus = [[0u8; 16]; 2]; // 0 unknown, 1 admits, 2 blocked
            while cand != 0 {
                let i = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                let p = &queue[i];
                let l = p.txn.loc;
                let d = p.txn.is_write as usize;
                let r = l.rank.0 as usize;
                let admits = match bus[d][r] {
                    0 => {
                        let a = self.device.data_bus_admits(!p.txn.is_write, l.rank, now);
                        bus[d][r] = if a { 1 } else { 2 };
                        a
                    }
                    m => m == 1,
                };
                if !admits {
                    continue;
                }
                let cas = if p.txn.is_write {
                    Command::write(l.rank, l.bank, l.row, l.col)
                } else {
                    Command::read(l.rank, l.bank, l.row, l.col)
                };
                if self.device.can_issue(&cas, now).is_ok() {
                    cas_idx = Some((i, cas));
                    break;
                }
            }
        } else {
            for (i, p) in queue.iter().enumerate() {
                let l = p.txn.loc;
                if self.device.open_row(l.rank, l.bank) == Some(l.row) {
                    let cas = if p.txn.is_write {
                        Command::write(l.rank, l.bank, l.row, l.col)
                    } else {
                        Command::read(l.rank, l.bank, l.row, l.col)
                    };
                    if self.device.can_issue(&cas, now).is_ok() {
                        cas_idx = Some((i, cas));
                        break;
                    }
                }
            }
        }
        if let Some((i, cas)) = cas_idx {
            let p = if is_write_queue { self.writes.remove(i) } else { self.reads.remove(i) };
            let out = self.device.issue(&cas, now).expect("validated CAS");
            if p.issued_act {
                self.stats.row_misses += 1;
            } else {
                self.stats.row_hits += 1;
            }
            let finish = out.data_done.expect("CAS produces data");
            if !p.txn.is_write && p.txn.kind == TxnKind::Demand {
                let ds = self.stats.domain_mut(p.txn.domain);
                ds.read_latency_sum += finish.saturating_sub(p.txn.arrival);
                ds.reads_completed += 1;
            }
            // Writes complete too: the producer uses this to retire its
            // store-to-load forwarding window.
            return (true, Some(Completion { txn: p.txn, finish }));
        }

        // Pass 2: oldest transaction whose next command (PRE or ACT) can
        // issue. Never precharge a row some pending transaction still hits.
        // The guard is answered with the snapshot's bitmask (row state
        // is constant until a command issues, and pass 2 returns as
        // soon as it issues); geometries too wide for a u128 fall back
        // to the direct scan.
        let queue_len = if is_write_queue { self.writes.len() } else { self.reads.len() };
        if !snap.wide && snap.prefilter && queue_len <= 64 {
            // Branchless class sweep: one candidate bit per entry whose
            // PRE (conflict) or ACT (closed bank) clears its floors.
            // The FR-FCFS precharge guard and the full validation run
            // only per candidate, oldest first.
            let mut cand = 0u64;
            {
                let queue = if is_write_queue { &self.writes } else { &self.reads };
                for (i, p) in queue.iter().enumerate() {
                    let l = p.txn.loc;
                    let r = l.rank.0 as usize;
                    let gbi = (l.rank.0 as u32 * snap.bpr + l.bank.0 as u32) as usize;
                    let open = snap.rows[gbi];
                    let closed = open == NO_ROW;
                    let conflict = !closed & (open != l.row.0);
                    let act_ready = act_allowed & (snap.act_f[r].max(snap.act_bank_f[gbi]) <= now);
                    let pre_ready = snap.pre_f[r].max(snap.pre_bank_f[gbi]) <= now;
                    cand |= (((closed & act_ready) | (conflict & pre_ready)) as u64) << i;
                }
            }
            while cand != 0 {
                let i = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                let loc =
                    if is_write_queue { self.writes[i].txn.loc } else { self.reads[i].txn.loc };
                let gbi = (loc.rank.0 as u32 * snap.bpr + loc.bank.0 as u32) as usize;
                if snap.rows[gbi] == NO_ROW {
                    let act = Command::activate(loc.rank, loc.bank, loc.row);
                    if self.device.can_issue(&act, now).is_ok() {
                        self.device.issue(&act, now).expect("validated activate");
                        if is_write_queue {
                            self.writes[i].issued_act = true;
                        } else {
                            self.reads[i].issued_act = true;
                        }
                        return (true, None);
                    }
                } else {
                    if self.hit_mask_of(snap) & (1u128 << gbi) != 0 {
                        continue; // deferred: some pending txn still hits
                    }
                    let pre = Command::precharge(loc.rank, loc.bank);
                    if self.device.can_issue(&pre, now).is_ok() {
                        self.device.issue(&pre, now).expect("validated precharge");
                        return (true, None);
                    }
                }
            }
            return (false, None);
        }
        for i in 0..queue_len {
            let loc = if is_write_queue { self.writes[i].txn.loc } else { self.reads[i].txn.loc };
            match self.device.open_row(loc.rank, loc.bank) {
                Some(r) if r == loc.row => { /* covered by pass 1; bus busy */ }
                Some(open_row) => {
                    let someone_hits = self.reads.iter().chain(self.writes.iter()).any(|q| {
                        q.txn.loc.rank == loc.rank
                            && q.txn.loc.bank == loc.bank
                            && q.txn.loc.row == open_row
                    });
                    if !someone_hits {
                        let pre = Command::precharge(loc.rank, loc.bank);
                        if self.device.can_issue(&pre, now).is_ok() {
                            self.device.issue(&pre, now).expect("validated precharge");
                            return (true, None);
                        }
                    }
                }
                None => {
                    if act_allowed {
                        let act = Command::activate(loc.rank, loc.bank, loc.row);
                        if self.device.can_issue(&act, now).is_ok() {
                            self.device.issue(&act, now).expect("validated activate");
                            if is_write_queue {
                                self.writes[i].issued_act = true;
                            } else {
                                self.reads[i].issued_act = true;
                            }
                            return (true, None);
                        }
                    }
                }
            }
        }
        (false, None)
    }
}

impl MemoryController for BaselineScheduler {
    fn can_accept(&self, _domain: DomainId) -> bool {
        self.reads.len() < self.read_capacity && self.writes.len() < self.write_capacity
    }

    fn enqueue(&mut self, txn: Transaction) -> Result<(), QueueFull> {
        let queue_full = if txn.is_write {
            self.writes.len() >= self.write_capacity
        } else {
            self.reads.len() >= self.read_capacity
        };
        if queue_full {
            return Err(QueueFull { domain: txn.domain });
        }
        let ds = self.stats.domain_mut(txn.domain);
        if txn.is_write {
            ds.demand_writes += 1;
        } else {
            ds.demand_reads += 1;
            if self.prefetch_enabled() {
                self.prefetchers[txn.domain.0 as usize].on_access(txn.local_addr);
            }
        }
        let pending = Pending { txn, issued_act: false };
        if txn.is_write {
            self.writes.push(pending);
        } else {
            self.reads.push(pending);
        }
        self.idle_until = 0;
        Ok(())
    }

    fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let mut completions = Vec::new();
        self.tick_into(now, &mut completions);
        completions
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        // Provably-idle tick: the cached bound was a full `next_event`
        // scan of this exact state (every mutation since would have
        // cleared it), and that scan folded in the refresh command
        // cycles, the quiesce onset, and every FR-FCFS candidate — so
        // nothing below could fire either. Skip the queue scans.
        if now < self.idle_until {
            return;
        }
        // Refresh window handling (identical across policies).
        if let Some(cmd) = self.refresh.command_at(now) {
            self.device.issue(&cmd, now).expect("refresh must be legal after quiesce");
            self.idle_until = 0;
            return;
        }
        if self.refresh.in_window(now) {
            return;
        }
        let act_allowed = self.refresh.allows_transaction(now);
        if !act_allowed {
            self.quiesce_precharge(now);
            // CAS to already-open rows could run past the window; stop
            // everything except the precharges above. The quiesce may
            // have touched the device, so drop any cached bound.
            self.idle_until = 0;
            return;
        }

        self.pump_prefetches(now);

        // Write-drain hysteresis.
        if self.writes.len() >= self.drain_hi {
            self.draining = true;
        } else if self.writes.len() <= self.drain_lo {
            self.draining = false;
        }
        let drain = self.draining || self.reads.is_empty();

        let snap = self.snapshot();
        let (issued, c) = self.try_issue(drain, now, act_allowed, &snap);
        if let Some(c) = c {
            out.push(c);
        }
        let mut any = issued;
        if !issued {
            // Opportunistic issue from the other queue (device and
            // queue state unchanged — the first attempt issued
            // nothing — so the snapshot is still exact).
            let (issued2, c2) = self.try_issue(!drain, now, act_allowed, &snap);
            any = issued2;
            if let Some(c2) = c2 {
                out.push(c2);
            }
        }
        self.idle_until = if any {
            0
        } else {
            // Nothing issued and nothing mutated: the state this tick
            // scanned stays exactly as-is until the bound (or an
            // enqueue clears it), so the scans need not repeat.
            self.next_event(now)
        };
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        // Same reasoning as in `tick_into`: the cached bound is the
        // result of scanning this exact (unchanged) state, so a fresh
        // scan could only return the same cycle.
        if now < self.idle_until {
            return self.idle_until;
        }
        // The prefetcher can inject new work on any tick with headroom.
        if self.prefetchers.iter().any(|p| p.has_prefetch()) {
            return now + 1;
        }
        // Wall-clock refresh: the staggered REF commands themselves, and
        // (outside a window) the quiesce onset where ACTs stop and open
        // rows get swept closed.
        let mut next = self.refresh.next_command_cycle(now);
        if self.refresh.in_window(now + 1) {
            // Inside the window nothing but REFs issue; the first
            // transaction command can come no earlier than the window end.
            if let Some((_, end)) = self.refresh.next_window(now + 1) {
                next = next.min(end);
            }
            return next.max(now + 1);
        }
        next = next.min(self.refresh.next_blocked_cycle(now + 1));
        // FR-FCFS candidates: for each pending transaction, the earliest
        // cycle its next command (CAS, PRE or ACT per current row state)
        // could become device-legal *and* pass the scheduler's own
        // guards. Row state and queue contents only change when a
        // command issues (the simulator lowers the cached bound via
        // `enqueue_event_hint` on every enqueue), so no tick before the
        // minimum over all candidates can issue anything — those cycles
        // are provable no-ops. A precharge
        // deferred because pending row hits still target the open row is
        // excluded: it stays deferred until one of those hits' CAS — a
        // candidate in its own right — issues first.
        // Candidate legality is row- and column-independent within each
        // command class (ACT gates on the bank being closed, CAS on the
        // row already matching, PRE on the bank being open), so the
        // per-transaction candidate set dedupes to one representative
        // command per populated (bank, class): a single classification
        // pass over both queues builds read-hit / write-hit / conflict /
        // closed bitmasks — they fit a u128 for any realistic geometry
        // (the paper's is 8 ranks x 8 banks) — then each set bit costs
        // one device probe instead of one per queued transaction.
        let geom = *self.device.geometry();
        let bpr = geom.banks_per_rank() as u32;
        if geom.ranks_per_channel() as u32 * bpr > 128 {
            // Geometry too wide for the bitmasks: per-transaction scan.
            for p in self.reads.iter().chain(self.writes.iter()) {
                let loc = p.txn.loc;
                let cmd = match self.device.open_row(loc.rank, loc.bank) {
                    Some(r) if r == loc.row => {
                        if p.txn.is_write {
                            Command::write(loc.rank, loc.bank, loc.row, loc.col)
                        } else {
                            Command::read(loc.rank, loc.bank, loc.row, loc.col)
                        }
                    }
                    Some(open_row) => {
                        let someone_hits = self.reads.iter().chain(self.writes.iter()).any(|q| {
                            q.txn.loc.rank == loc.rank
                                && q.txn.loc.bank == loc.bank
                                && q.txn.loc.row == open_row
                        });
                        if someone_hits {
                            continue;
                        }
                        Command::precharge(loc.rank, loc.bank)
                    }
                    None => Command::activate(loc.rank, loc.bank, loc.row),
                };
                next = next.min(self.device.next_legal_at(&cmd, now + 1));
                if next <= now + 1 {
                    return now + 1;
                }
            }
            return next.max(now + 1);
        }
        // Flat open-row table once, then one indexed load per entry —
        // the classification sweep touches up to 128 queue entries.
        let nranks = geom.ranks_per_channel() as usize;
        let mut rows = [NO_ROW; 128];
        for r in 0..nranks {
            let src = self.device.banks_of(RankId(r as u8)).open_rows_slice();
            rows[r * bpr as usize..][..src.len()].copy_from_slice(src);
        }
        let (mut read_hit, mut write_hit, mut conflict, mut closed) = (0u128, 0u128, 0u128, 0u128);
        for q in self.reads.iter().chain(self.writes.iter()) {
            let l = q.txn.loc;
            let gbi = l.rank.0 as u32 * bpr + l.bank.0 as u32;
            let bit = 1u128 << gbi;
            match rows[gbi as usize] {
                r if r == l.row.0 => {
                    if q.txn.is_write {
                        write_hit |= bit;
                    } else {
                        read_hit |= bit;
                    }
                }
                NO_ROW => closed |= bit,
                _ => conflict |= bit,
            }
        }
        // One fused device scan evaluates every candidate: a bank with
        // any pending row hit never precharges (the FR-FCFS guard), so
        // conflicted banks only contribute a PRE candidate when no hit
        // shares the bank.
        next = next.min(self.device.next_event_bound(
            now + 1,
            read_hit,
            write_hit,
            conflict & !(read_hit | write_hit),
            closed,
        ));
        next.max(now + 1)
    }

    fn enqueue_event_hint(&self, txn: &Transaction, now: Cycle) -> Cycle {
        // A demand read may just have trained the prefetcher (see
        // `enqueue`); fresh prefetches are pumped on the very next tick.
        if self.prefetchers.iter().any(|p| p.has_prefetch()) {
            return now + 1;
        }
        // The only *new* issue candidate is this transaction's own next
        // command: both queues are tried opportunistically every tick,
        // so existing entries' candidacy is unchanged, and every other
        // enqueue side effect (row-hit guards on deferred precharges,
        // drain-priority flips) can only *delay* issues. The precharge
        // guard is deliberately ignored — a too-early bound merely
        // costs one no-op tick.
        let loc = txn.loc;
        let cmd = match self.device.open_row(loc.rank, loc.bank) {
            Some(r) if r == loc.row => {
                if txn.is_write {
                    Command::write(loc.rank, loc.bank, loc.row, loc.col)
                } else {
                    Command::read(loc.rank, loc.bank, loc.row, loc.col)
                }
            }
            Some(_) => Command::precharge(loc.rank, loc.bank),
            None => Command::activate(loc.rank, loc.bank, loc.row),
        };
        let at = self.device.next_legal_at(&cmd, now + 1);
        if at == Cycle::MAX {
            // Legality hinges on some other command issuing first; fall
            // back to a plain re-tick rather than claiming "never".
            return now + 1;
        }
        at.max(now + 1)
    }

    fn device(&self) -> &DramDevice {
        &self.device
    }

    fn finish(&mut self, now: Cycle) {
        self.device.finish(now);
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn kind(&self) -> SchedulerKind {
        self.kind
    }

    fn record_commands(&mut self) {
        self.device.record_commands();
    }

    fn take_command_log(&mut self) -> Vec<TimedCommand> {
        self.device.take_log()
    }

    fn has_pending_log(&self) -> bool {
        self.device.has_log()
    }

    fn take_command_log_into(&mut self, out: &mut Vec<TimedCommand>) {
        self.device.take_log_into(out);
    }

    fn record_obs(&mut self) {
        self.device.record_obs();
    }

    fn has_obs(&self) -> bool {
        self.device.has_obs()
    }

    fn take_obs_into(&mut self, out: &mut Vec<fsmc_dram::ObsCommand>) {
        self.device.take_obs_into(out);
    }
}

/// Convenience: map a domain-local address for this controller's
/// (unpartitioned) address space.
pub fn map_local(geom: &Geometry, domain: DomainId, local: LineAddr) -> fsmc_dram::Location {
    PartitionPolicy::None.map(geom, domain, local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmc_dram::TimingChecker;

    fn mk() -> BaselineScheduler {
        BaselineScheduler::new(Geometry::paper_default(), TimingParams::ddr3_1600(), 8, false)
    }

    fn txn(id: u64, domain: u8, local: u64, write: bool) -> Transaction {
        let geom = Geometry::paper_default();
        let loc = PartitionPolicy::None.map(&geom, DomainId(domain), LineAddr(local));
        if write {
            Transaction::write(TxnId(id), DomainId(domain), loc, 0)
        } else {
            Transaction::read(TxnId(id), DomainId(domain), loc, 0).with_local_addr(LineAddr(local))
        }
    }

    fn run(mc: &mut BaselineScheduler, cycles: u64) -> Vec<Completion> {
        let mut all = Vec::new();
        for c in 0..cycles {
            all.extend(mc.tick(c));
        }
        all
    }

    #[test]
    fn single_read_completes_with_act_plus_cas_latency() {
        let mut mc = mk();
        mc.enqueue(txn(1, 0, 100, false)).unwrap();
        let done = run(&mut mc, 60);
        assert_eq!(done.len(), 1);
        // ACT at 0, CAS at 11, data done at 11 + 11 + 4 = 26.
        assert_eq!(done[0].finish, 26);
        assert_eq!(mc.stats().row_misses, 1);
    }

    #[test]
    fn second_read_to_same_row_is_a_row_hit() {
        let mut mc = mk();
        mc.enqueue(txn(1, 0, 100, false)).unwrap();
        mc.enqueue(txn(2, 0, 101, false)).unwrap();
        let done = run(&mut mc, 80);
        assert_eq!(done.len(), 2);
        assert_eq!(mc.stats().row_hits, 1);
        assert_eq!(mc.stats().row_misses, 1);
        // The hit's CAS follows tCCD after the first CAS.
        assert_eq!(done[1].finish - done[0].finish, 4);
    }

    #[test]
    fn writes_drain_when_reads_are_absent() {
        let mut mc = mk();
        for i in 0..4 {
            mc.enqueue(txn(i, 0, i * 1000, true)).unwrap();
        }
        run(&mut mc, 400);
        let w: u64 = mc.device().counters().total_writes();
        assert_eq!(w, 4);
    }

    #[test]
    fn command_stream_is_legal() {
        let mut mc = mk();
        mc.record_commands();
        for i in 0..32u64 {
            mc.enqueue(txn(i, (i % 8) as u8, i * 37, i % 3 == 0)).unwrap();
        }
        run(&mut mc, 3000);
        let log = mc.take_command_log();
        assert!(log.len() >= 32);
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let violations = checker.check(&log);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn refresh_windows_interleave_without_violations() {
        let mut mc = mk();
        mc.record_commands();
        let mut id = 0;
        let mut completions = 0;
        for c in 0..14_000u64 {
            if c % 50 == 0 && mc.can_accept(DomainId(0)) {
                mc.enqueue(txn(id, (id % 8) as u8, id * 53, false)).unwrap();
                id += 1;
            }
            completions += mc.tick(c).len();
        }
        assert!(completions > 100);
        // Two refresh windows elapsed; all 8 ranks refreshed in each.
        assert_eq!(mc.device().counters().total_refreshes(), 16);
        let log = mc.take_command_log();
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        let violations = checker.check(&log);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn next_event_skips_are_sound_across_idle_refresh_spans() {
        // A short burst drains, then the controller idles across two
        // refresh windows; ticking only at next_event cycles must give a
        // byte-identical command log and stats.
        let (mut dense, mut sparse) = (mk(), mk());
        dense.record_commands();
        sparse.record_commands();
        for i in 0..8u64 {
            let t = txn(i, (i % 8) as u8, i * 37, i % 3 == 0);
            dense.enqueue(t).unwrap();
            sparse.enqueue(t).unwrap();
        }
        let horizon = 14_000u64;
        let mut dense_done = Vec::new();
        for c in 0..horizon {
            dense_done.extend(dense.tick(c));
        }
        let mut sparse_done = Vec::new();
        let mut c = 0u64;
        while c < horizon {
            sparse_done.extend(sparse.tick(c));
            c = sparse.next_event(c);
        }
        assert_eq!(dense_done, sparse_done);
        assert_eq!(dense.take_command_log(), sparse.take_command_log());
        assert_eq!(dense.stats(), sparse.stats());
    }

    #[test]
    fn next_event_skips_are_sound_under_sustained_load() {
        // A steady mixed read/write stream keeps the queues busy across
        // refresh windows, write-drain flips, row conflicts and tFAW
        // pressure — exercising the per-transaction earliest-issue bound
        // rather than the idle wall-clock one. The sparse loop also wakes
        // at arrival cycles, mirroring the simulator (which never skips
        // while any core could enqueue).
        let (mut dense, mut sparse) = (mk(), mk());
        dense.record_commands();
        sparse.record_commands();
        let arrivals: Vec<(u64, Transaction)> = (0..120u64)
            .map(|i| (40 * (i / 4), txn(i, (i % 8) as u8, i * 97, i % 4 == 3)))
            .collect();
        let horizon = 14_000u64;
        let mut dense_done = Vec::new();
        let mut ai = 0;
        for c in 0..horizon {
            while ai < arrivals.len() && arrivals[ai].0 <= c {
                dense.enqueue(arrivals[ai].1).unwrap();
                ai += 1;
            }
            dense_done.extend(dense.tick(c));
        }
        let mut sparse_done = Vec::new();
        let mut ai = 0;
        let mut c = 0u64;
        while c < horizon {
            while ai < arrivals.len() && arrivals[ai].0 <= c {
                sparse.enqueue(arrivals[ai].1).unwrap();
                ai += 1;
            }
            sparse_done.extend(sparse.tick(c));
            let mut next = sparse.next_event(c);
            if ai < arrivals.len() {
                next = next.min(arrivals[ai].0.max(c + 1));
            }
            c = next;
        }
        assert_eq!(dense_done, sparse_done);
        assert_eq!(dense.take_command_log(), sparse.take_command_log());
        assert_eq!(dense.stats(), sparse.stats());
    }

    #[test]
    fn backpressure_on_full_read_queue() {
        let mut mc = mk();
        for i in 0..64 {
            mc.enqueue(txn(i, 0, i, false)).unwrap();
        }
        assert!(!mc.can_accept(DomainId(0)));
        assert!(mc.enqueue(txn(99, 0, 99, false)).is_err());
    }

    #[test]
    fn prefetcher_injects_prefetch_reads_on_streaming_pattern() {
        let mut mc =
            BaselineScheduler::new(Geometry::paper_default(), TimingParams::ddr3_1600(), 8, true);
        let mut cycle = 0u64;
        for i in 0..600u64 {
            mc.enqueue(txn(i, 0, i, false)).unwrap();
            for _ in 0..12 {
                mc.tick(cycle);
                cycle += 1;
            }
        }
        let pf = mc.stats().domain(DomainId(0)).prefetches;
        assert!(pf > 0, "sandbox prefetcher never activated");
    }
}
