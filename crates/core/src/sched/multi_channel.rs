//! The paper's full target system (Section 6): "a 32-core processor with
//! 4 channels". Section 4.1's rank-partitioning rule assigns each thread
//! one of the 32 ranks in the system — i.e. domains are *split across
//! channels*, and every channel that serves multiple domains runs the FS
//! policy independently.
//!
//! This controller shards `domains` security domains over `channels`
//! private FS controllers (domains `c*k .. (c+1)*k` on channel `c`);
//! cross-channel timing interaction is physically impossible, and each
//! channel's non-interference argument is the single-channel one.

use crate::domain::DomainId;
use crate::queues::QueueFull;
use crate::sched::fs::{EnergyOptions, FsScheduler, FsVariant};
use crate::sched::{Completion, McStats, MemoryController, SchedulerKind};
use crate::txn::Transaction;
use fsmc_dram::command::TimedCommand;
use fsmc_dram::geometry::Geometry;
use fsmc_dram::{ActivityCounters, Cycle, DramDevice, TimingParams};

/// FS sharded over multiple channels.
#[derive(Debug)]
pub struct MultiChannelFs {
    channels: Vec<FsScheduler>,
    /// Domains per channel.
    dpc: u8,
    stats: McStats,
    domains: u8,
    /// Reusable per-tick completion buffer for the hot path.
    scratch: Vec<Completion>,
}

impl MultiChannelFs {
    /// Creates `channels` FS controllers, each serving
    /// `domains / channels` domains on its own copy of the per-channel
    /// geometry `geom`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or does not divide `domains`.
    pub fn new(
        geom: Geometry,
        t: TimingParams,
        domains: u8,
        channels: u8,
        variant: FsVariant,
        energy: EnergyOptions,
    ) -> Self {
        assert!(channels > 0, "channels must be non-zero");
        assert!(
            domains.is_multiple_of(channels) && domains >= channels,
            "domains ({domains}) must be a positive multiple of channels ({channels})"
        );
        let dpc = domains / channels;
        MultiChannelFs {
            channels: (0..channels)
                .map(|_| FsScheduler::new(geom, t, dpc, variant, false, energy))
                .collect(),
            dpc,
            stats: McStats::new(domains as usize),
            domains,
            scratch: Vec::new(),
        }
    }

    fn channel_of(&self, domain: DomainId) -> usize {
        (domain.0 / self.dpc) as usize
    }

    fn local(&self, domain: DomainId) -> DomainId {
        DomainId(domain.0 % self.dpc)
    }

    /// Per-channel command logs (each independently checkable).
    pub fn take_channel_logs(&mut self) -> Vec<Vec<TimedCommand>> {
        self.channels.iter_mut().map(|c| c.take_command_log()).collect()
    }

    /// Domains served per channel.
    pub fn domains_per_channel(&self) -> u8 {
        self.dpc
    }

    fn refresh_stats(&mut self) {
        let mut stats = McStats::new(self.domains as usize);
        for (c, ch) in self.channels.iter().enumerate() {
            let inner = ch.stats();
            for l in 0..self.dpc {
                let global = DomainId(c as u8 * self.dpc + l);
                *stats.domain_mut(global) = *inner.domain(DomainId(l));
            }
            stats.row_hits += inner.row_hits;
            stats.row_misses += inner.row_misses;
            stats.boosted_row_hits += inner.boosted_row_hits;
            stats.bubbles += inner.bubbles;
            stats.power_downs += inner.power_downs;
        }
        self.stats = stats;
    }
}

impl MemoryController for MultiChannelFs {
    fn can_accept(&self, domain: DomainId) -> bool {
        self.channels[self.channel_of(domain)].can_accept(self.local(domain))
    }

    fn enqueue(&mut self, txn: Transaction) -> Result<(), QueueFull> {
        let ch = self.channel_of(txn.domain);
        let local = self.local(txn.domain);
        let inner = Transaction { domain: local, ..txn };
        self.channels[ch].enqueue(inner).map_err(|_| QueueFull { domain: txn.domain })
    }

    fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        let mut out = Vec::new();
        self.tick_into(now, &mut out);
        out
    }

    fn tick_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        let dpc = self.dpc;
        let scratch = &mut self.scratch;
        for (c, ch) in self.channels.iter_mut().enumerate() {
            ch.tick_into(now, scratch);
            for completion in scratch.drain(..) {
                let global = DomainId(c as u8 * dpc + completion.txn.domain.0);
                let txn = Transaction { domain: global, ..completion.txn };
                out.push(Completion { txn, ..completion });
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Cycle {
        self.channels.iter().map(|ch| ch.next_event(now)).min().unwrap_or(now + 1)
    }

    fn device(&self) -> &DramDevice {
        self.channels[0].device()
    }

    fn aggregate_counters(&self) -> ActivityCounters {
        let mut agg = self.channels[0].device().counters().clone();
        for ch in &self.channels[1..] {
            agg.merge(ch.device().counters());
        }
        agg
    }

    fn finish(&mut self, now: Cycle) {
        for ch in &mut self.channels {
            ch.finish(now);
        }
        self.refresh_stats();
    }

    fn stats(&self) -> &McStats {
        &self.stats
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::FsMultiChannel { channels: self.channels.len() as u8 }
    }

    fn record_commands(&mut self) {
        for ch in &mut self.channels {
            ch.record_commands();
        }
    }

    fn take_command_log(&mut self) -> Vec<TimedCommand> {
        self.channels[0].take_command_log()
    }

    fn has_pending_log(&self) -> bool {
        self.channels[0].has_pending_log()
    }

    fn take_command_log_into(&mut self, out: &mut Vec<TimedCommand>) {
        self.channels[0].take_command_log_into(out);
    }

    fn record_obs(&mut self) {
        for ch in &mut self.channels {
            ch.record_obs();
        }
    }

    fn has_obs(&self) -> bool {
        self.channels[0].has_obs()
    }

    fn take_obs_into(&mut self, out: &mut Vec<fsmc_dram::ObsCommand>) {
        self.channels[0].take_obs_into(out);
    }

    fn has_sched_events(&self) -> bool {
        self.channels[0].has_sched_events()
    }

    fn take_sched_events_into(&mut self, out: &mut Vec<crate::sched::SchedEvent>) {
        self.channels[0].take_sched_events_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::PartitionPolicy;
    use crate::txn::TxnId;
    use fsmc_dram::geometry::LineAddr;
    use fsmc_dram::TimingChecker;

    fn mk(domains: u8, channels: u8) -> MultiChannelFs {
        MultiChannelFs::new(
            Geometry::paper_default(),
            TimingParams::ddr3_1600(),
            domains,
            channels,
            FsVariant::RankPartitioned,
            EnergyOptions::default(),
        )
    }

    fn txn(id: u64, domain: u8, dpc: u8, local: u64) -> Transaction {
        let geom = Geometry::paper_default();
        let loc = PartitionPolicy::Rank.map(&geom, DomainId(domain % dpc), LineAddr(local));
        Transaction::read(TxnId(id), DomainId(domain), loc, 0)
    }

    #[test]
    fn paper_target_system_32_cores_4_channels() {
        let mc = mk(32, 4);
        assert_eq!(mc.domains_per_channel(), 8);
        assert_eq!(mc.kind(), SchedulerKind::FsMultiChannel { channels: 4 });
    }

    #[test]
    fn domains_shard_onto_channels_and_complete() {
        let mut mc = mk(16, 2);
        // One read per domain.
        for d in 0..16u8 {
            mc.enqueue(txn(d as u64, d, 8, d as u64 * 977)).unwrap();
        }
        let mut done = Vec::new();
        for c in 0..400 {
            done.extend(mc.tick(c));
        }
        let reads: Vec<&Completion> = done.iter().filter(|c| !c.txn.is_write).collect();
        assert_eq!(reads.len(), 16);
        // Domains with the same per-channel slot finish simultaneously on
        // their own channels (d and d+8 hold slot d%8 of channels 0 and 1).
        for d in 0..8usize {
            let a = reads.iter().find(|c| c.txn.domain.0 == d as u8).unwrap();
            let b = reads.iter().find(|c| c.txn.domain.0 == d as u8 + 8).unwrap();
            assert_eq!(a.finish, b.finish, "channels should be independent mirrors");
        }
    }

    #[test]
    fn per_channel_streams_are_legal() {
        let mut mc = mk(16, 2);
        mc.record_commands();
        for i in 0..64u64 {
            mc.enqueue(txn(i, (i % 16) as u8, 8, i * 31)).unwrap();
        }
        for c in 0..2000 {
            mc.tick(c);
        }
        let checker = TimingChecker::new(Geometry::paper_default(), TimingParams::ddr3_1600());
        for (ch, log) in mc.take_channel_logs().into_iter().enumerate() {
            assert!(!log.is_empty());
            let v = checker.check(&log);
            assert!(v.is_empty(), "channel {ch}: {v:?}");
        }
    }

    #[test]
    fn cross_channel_domains_cannot_interfere() {
        // Domain 0 (channel 0) timing vs domain 8..15 (channel 1) load.
        let run = |flood: bool| -> Vec<Cycle> {
            let mut mc = mk(16, 2);
            let mut finishes = Vec::new();
            let mut id = 1u64;
            for c in 0..3000u64 {
                if c % 60 == 0 && mc.can_accept(DomainId(0)) {
                    mc.enqueue(Transaction { arrival: c, ..txn(id, 0, 8, id * 997) }).unwrap();
                    id += 1;
                }
                if flood {
                    for d in 8..16u8 {
                        if mc.can_accept(DomainId(d)) {
                            mc.enqueue(Transaction {
                                arrival: c,
                                ..txn(1_000_000 + id * d as u64, d, 8, id * 13)
                            })
                            .unwrap();
                        }
                    }
                }
                for comp in mc.tick(c) {
                    if comp.txn.domain == DomainId(0) && !comp.txn.is_write {
                        finishes.push(comp.finish);
                    }
                }
            }
            finishes
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "multiple of channels")]
    fn uneven_sharding_rejected() {
        mk(10, 4);
    }
}
