//! Typed errors for controller construction and pipeline solving.
//!
//! Construction-time problems split into two kinds: a [`ConfigError`]
//! means the caller asked for something structurally impossible (zero
//! domains, an over-long slot pattern), while a propagated
//! [`SolveError`] means the timing parameters admit no conflict-free
//! pipeline below the solver's search bound. Both are recoverable —
//! callers can fall back to [`crate::solver::conservative_pipeline`] or
//! surface the error — which is why the fallible `try_*` constructors
//! return [`CoreError`] instead of panicking.

use crate::solver::SolveError;
use std::error::Error;
use std::fmt;

/// A structurally invalid controller configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub message: String,
}

impl ConfigError {
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError { message: message.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid controller configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

/// Any error the core scheduling layer can produce at construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// No conflict-free pipeline exists for the requested variant (and,
    /// where attempted, the conservative fallback also failed to solve).
    Solve(SolveError),
    /// The requested configuration is structurally invalid.
    Config(ConfigError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Solve(e) => write!(f, "{e}"),
            CoreError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Solve(e) => Some(e),
            CoreError::Config(e) => Some(e),
        }
    }
}

impl From<SolveError> for CoreError {
    fn from(e: SolveError) -> Self {
        CoreError::Solve(e)
    }
}

impl From<ConfigError> for CoreError {
    fn from(e: ConfigError) -> Self {
        CoreError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Anchor, PartitionLevel};

    #[test]
    fn display_forms_name_the_cause() {
        let c = CoreError::from(ConfigError::new("zero domains"));
        assert!(c.to_string().contains("zero domains"));
        let s = CoreError::from(SolveError {
            anchor: Anchor::FixedPeriodicData,
            level: PartitionLevel::Rank,
        });
        assert!(s.to_string().contains("no feasible slot pitch"));
    }

    #[test]
    fn sources_chain() {
        let c = CoreError::from(ConfigError::new("x"));
        assert!(c.source().is_some());
    }
}
