//! Deterministic refresh management shared by every scheduling policy.
//!
//! Refresh windows are a fixed function of wall-clock time — never of any
//! domain's behaviour — so they carry zero information. Every `tREFI`
//! cycles a window opens: the controller stops issuing transaction
//! commands early enough that all banks are idle at the window start,
//! then issues one `REF` per rank (staggered one cycle apart on the
//! command bus) and resumes `tRFC` later.

use fsmc_dram::command::Command;
use fsmc_dram::geometry::RankId;
use fsmc_dram::{Cycle, TimingParams};

/// Fixed-schedule refresh controller for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshManager {
    t_refi: Cycle,
    t_rfc: Cycle,
    ranks: u8,
    /// Worst-case tail of a transaction issued at cycle `c`: its bank can
    /// stay busy until `c + lead` (write ACT through auto-precharge).
    lead: Cycle,
    enabled: bool,
}

impl RefreshManager {
    pub fn new(t: &TimingParams, ranks: u8) -> Self {
        RefreshManager {
            t_refi: t.t_refi as Cycle,
            t_rfc: t.t_rfc as Cycle,
            ranks,
            // Worst in-flight tail from a transaction's *first* command:
            // ACT (possibly skewed from the decision point), a CAS that
            // turnaround delays can push out by up to wr->rd = 15 cycles,
            // write recovery, the auto-precharge, plus slack for the
            // pre-window precharge-all sweep across ranks.
            lead: (t.t_rcd
                + t.wr_to_rd_same_rank()
                + t.write_ap_pre_offset()
                + t.t_rp
                + t.t_rtrs
                + t.t_burst
                + 16) as Cycle,
            enabled: true,
        }
    }

    /// A manager that never refreshes (for microbenchmarks isolating the
    /// scheduling pipelines; real runs keep refresh on).
    pub fn disabled(t: &TimingParams, ranks: u8) -> Self {
        RefreshManager { enabled: false, ..RefreshManager::new(t, ranks) }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// A copy of this manager refreshing `factor` times more often
    /// (thermal alarm: retention drops, so tREFI is divided by `factor`).
    /// The interval is clamped so a window plus the quiesce lead always
    /// fits — beyond that the schedule could never issue a transaction.
    /// Refresh stays a fixed function of wall-clock time, so the scaled
    /// cadence is still identical for every domain.
    #[must_use]
    pub fn with_interval_scaled_down(&self, factor: u8) -> Self {
        let factor = (factor.max(1)) as Cycle;
        let floor = self.window_duration() + self.lead + 1;
        RefreshManager { t_refi: (self.t_refi / factor).max(floor), ..*self }
    }

    /// The refresh interval currently in force (nominal tREFI, or the
    /// scaled-down interval after a thermal reconfiguration).
    pub fn interval(&self) -> Cycle {
        self.t_refi
    }

    /// Duration of one window: staggered REF issue plus tRFC.
    pub fn window_duration(&self) -> Cycle {
        self.ranks as Cycle + self.t_rfc
    }

    /// The window covering or after `cycle`, as `(start, end)`; `None` if
    /// refresh is disabled. Windows start at multiples of tREFI (k >= 1).
    pub fn next_window(&self, cycle: Cycle) -> Option<(Cycle, Cycle)> {
        if !self.enabled {
            return None;
        }
        // Window k covers [k*tREFI, k*tREFI + duration), k >= 1.
        let mut k = (cycle / self.t_refi).max(1);
        if cycle >= k * self.t_refi + self.window_duration() {
            k += 1;
        }
        let start = k * self.t_refi;
        Some((start, start + self.window_duration()))
    }

    /// True while `cycle` is inside a refresh window (no transaction
    /// commands may issue).
    pub fn in_window(&self, cycle: Cycle) -> bool {
        if !self.enabled || cycle < self.t_refi {
            return false;
        }
        cycle % self.t_refi < self.window_duration() && cycle / self.t_refi >= 1
    }

    /// True if a transaction issuing its first command at `cycle` is safe:
    /// its worst-case bank activity (`cycle + lead`) ends before the next
    /// window opens, and `cycle` is outside any window.
    pub fn allows_transaction(&self, cycle: Cycle) -> bool {
        if !self.enabled {
            return true;
        }
        if self.in_window(cycle) {
            return false;
        }
        match self.next_window(cycle) {
            Some((start, _)) => cycle + self.lead <= start,
            None => true,
        }
    }

    /// The refresh command (if any) to put on the command bus at `cycle`:
    /// rank `i` is refreshed at window start + `i`.
    pub fn command_at(&self, cycle: Cycle) -> Option<Command> {
        if !self.enabled || cycle < self.t_refi {
            return None;
        }
        let offset = cycle % self.t_refi;
        if offset < self.ranks as Cycle {
            Some(Command::refresh(RankId(offset as u8)))
        } else {
            None
        }
    }

    /// The next cycle strictly after `now` at which [`Self::command_at`]
    /// produces a REF command; `Cycle::MAX` if refresh is disabled. Used
    /// by controllers to advertise their next wall-clock event.
    pub fn next_command_cycle(&self, now: Cycle) -> Cycle {
        if !self.enabled {
            return Cycle::MAX;
        }
        let from = (now + 1).max(self.t_refi);
        if from % self.t_refi < self.ranks as Cycle {
            from
        } else {
            (from / self.t_refi + 1) * self.t_refi
        }
    }

    /// The first cycle at or after `from` where
    /// [`Self::allows_transaction`] is false (quiesce onset or window);
    /// `Cycle::MAX` if refresh is disabled and nothing ever blocks.
    pub fn next_blocked_cycle(&self, from: Cycle) -> Cycle {
        if !self.enabled {
            return Cycle::MAX;
        }
        if !self.allows_transaction(from) {
            return from;
        }
        // `from` passed the check, so it sits outside every window with
        // `from + lead <= start`: blocking begins once the quiesce margin
        // before the next window is entered.
        match self.next_window(from) {
            Some((start, _)) => start - self.lead + 1,
            None => Cycle::MAX,
        }
    }

    /// Fraction of time lost to refresh windows (identical for every
    /// policy and domain).
    pub fn overhead(&self) -> f64 {
        if !self.enabled {
            0.0
        } else {
            self.window_duration() as f64 / self.t_refi as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> RefreshManager {
        RefreshManager::new(&TimingParams::ddr3_1600(), 8)
    }

    #[test]
    fn window_geometry() {
        let m = mgr();
        assert_eq!(m.window_duration(), 8 + 208);
        assert!(!m.in_window(0));
        assert!(!m.in_window(6239));
        assert!(m.in_window(6240));
        assert!(m.in_window(6240 + 215));
        assert!(!m.in_window(6240 + 216));
    }

    #[test]
    fn commands_staggered_one_per_rank() {
        let m = mgr();
        for i in 0..8u64 {
            let c = m.command_at(6240 + i).unwrap();
            assert_eq!(c.rank, RankId(i as u8));
        }
        assert!(m.command_at(6240 + 8).is_none());
        assert!(m.command_at(100).is_none());
    }

    #[test]
    fn transactions_blocked_close_to_window() {
        let m = mgr();
        // lead = 11 + 15 + 21 + 11 + 2 + 4 + 16 = 80.
        assert!(m.allows_transaction(6240 - 80));
        assert!(!m.allows_transaction(6240 - 79));
        assert!(!m.allows_transaction(6240 + 10));
        assert!(m.allows_transaction(6240 + 216));
    }

    #[test]
    fn disabled_manager_never_blocks() {
        let m = RefreshManager::disabled(&TimingParams::ddr3_1600(), 8);
        assert!(m.allows_transaction(6240));
        assert!(!m.in_window(6240));
        assert!(m.command_at(6240).is_none());
        assert_eq!(m.overhead(), 0.0);
    }

    #[test]
    fn next_command_cycle_matches_command_at() {
        let m = mgr();
        for now in [0, 100, 6239, 6240, 6244, 6247, 6248, 12470] {
            let next = m.next_command_cycle(now);
            assert!(m.command_at(next).is_some(), "now={now} next={next}");
            for c in now + 1..next {
                assert!(m.command_at(c).is_none(), "now={now} c={c}");
            }
        }
        let off = RefreshManager::disabled(&TimingParams::ddr3_1600(), 8);
        assert_eq!(off.next_command_cycle(0), Cycle::MAX);
    }

    #[test]
    fn next_blocked_cycle_matches_allows_transaction() {
        let m = mgr();
        for from in [0, 6000, 6240 - 79, 6240 + 10, 6300] {
            let next = m.next_blocked_cycle(from);
            assert!(!m.allows_transaction(next), "from={from} next={next}");
            for c in from..next {
                assert!(m.allows_transaction(c), "from={from} c={c}");
            }
        }
        let off = RefreshManager::disabled(&TimingParams::ddr3_1600(), 8);
        assert_eq!(off.next_blocked_cycle(6240), Cycle::MAX);
    }

    #[test]
    fn thermal_scaling_tightens_the_interval_and_stays_feasible() {
        let m = mgr().with_interval_scaled_down(2);
        assert_eq!(m.interval(), 3120);
        assert!(m.in_window(3120));
        assert!(m.allows_transaction(3120 + m.window_duration()));
        // Pathological factors clamp to a feasible interval instead of
        // wedging the schedule.
        let tiny = mgr().with_interval_scaled_down(255);
        assert!(tiny.interval() > tiny.window_duration());
        assert!(tiny.allows_transaction(tiny.interval() + tiny.window_duration()));
        // Factor 0 is treated as 1 (no change).
        assert_eq!(mgr().with_interval_scaled_down(0).interval(), mgr().interval());
    }

    #[test]
    fn overhead_is_a_few_percent() {
        let m = mgr();
        assert!(m.overhead() > 0.03 && m.overhead() < 0.04);
    }
}
