//! # fsmc-core — Fixed-Service memory controller policies
//!
//! The paper's primary contribution, implemented as a library:
//!
//! * [`solver`] — the mathematical framework of Section 3/4: given DDR3
//!   timing parameters, an anchor discipline (fixed periodic data, RAS or
//!   CAS) and a spatial-partitioning level, derive the minimum slot pitch
//!   `l` such that the resulting pipeline has **zero resource conflicts**,
//!   and materialise concrete slot schedules (including the reordered
//!   bank-partitioned and triple-alternation variants).
//! * [`sched`] — three memory-controller implementations sharing one
//!   trait: the non-secure FR-FCFS baseline, Temporal Partitioning (TP,
//!   the prior state of the art), and Fixed Service (FS) in all the
//!   paper's variants.
//! * [`domain`] — security domains, SLA slot allocation and spatial
//!   partition assignment.
//! * [`txn`] / [`queues`] — memory transactions and the per-domain
//!   transaction queues of the proposed microarchitecture.
//! * [`prefetch`] — the sandbox prefetcher used to turn dummy slots into
//!   useful work.
//! * [`refresh`] — the deterministic, domain-independent refresh manager
//!   shared by every policy.
//!
//! ## Example: solve for the paper's pipelines
//!
//! ```
//! use fsmc_core::solver::{solve, Anchor, PartitionLevel};
//! use fsmc_dram::TimingParams;
//!
//! let t = TimingParams::ddr3_1600();
//! let rank = solve(&t, Anchor::FixedPeriodicData, PartitionLevel::Rank).unwrap();
//! assert_eq!(rank.l, 7); // Section 3.1: "the smallest value of l ... is 7"
//! let bank = solve(&t, Anchor::FixedPeriodicRas, PartitionLevel::Bank).unwrap();
//! assert_eq!(bank.l, 15); // Section 4.2
//! ```

pub mod domain;
pub mod error;
pub mod prefetch;
pub mod queues;
pub mod refresh;
pub mod sched;
pub mod solver;
pub mod txn;

pub use domain::{DomainConfig, DomainId, PartitionPolicy};
pub use error::{ConfigError, CoreError};
pub use sched::{
    CadenceSpec, Completion, MemoryController, SchedEvent, SchedulerKind, SlotGrantKind,
};
pub use txn::{Transaction, TxnId, TxnKind};
