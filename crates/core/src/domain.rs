//! Security domains and spatial-partition assignment.
//!
//! A *security domain* is the unit of isolation: a VM, container or
//! process group whose memory traffic must not be observable by other
//! domains. The OS/hypervisor assigns each domain a share of memory
//! capacity and bandwidth (the SLA); the partition policy decides how
//! that capacity maps onto ranks and banks.

use fsmc_dram::geometry::{BankId, ChannelId, ColId, Geometry, LineAddr, Location, RankId, RowId};
use std::fmt;

/// Identifies a security domain (thread / VM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomainId(pub u8);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// How memory is spatially split among domains (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionPolicy {
    /// Each domain owns one or more ranks; with eight domains and eight
    /// ranks per channel, domain *d* owns rank *d*.
    Rank,
    /// Each domain owns one bank index *across all ranks* (bank striping);
    /// domains therefore share ranks but never share a bank.
    BankStriped,
    /// No spatial partitioning: domains share all banks; addresses are
    /// interleaved with per-domain row offsets.
    None,
}

impl PartitionPolicy {
    /// Maps a domain-local line address into a global DRAM location under
    /// this policy.
    ///
    /// Domain-local addresses preserve locality: consecutive local lines
    /// walk the columns of one row before moving on, so a streaming
    /// workload enjoys row-buffer locality in the baseline and maps to a
    /// well-formed footprint under FS.
    pub fn map(&self, geom: &Geometry, domain: DomainId, local: LineAddr) -> Location {
        let cols = geom.cols_per_row() as u64;
        let banks = geom.banks_per_rank() as u64;
        let ranks = geom.ranks_per_channel() as u64;
        let rows = geom.rows_per_bank() as u64;
        let d = domain.0 as u64;
        match self {
            PartitionPolicy::Rank => {
                // col (low), bank, row (high); rank fixed to the domain.
                let mut a = local.0 % (cols * banks * rows);
                let col = a % cols;
                a /= cols;
                let bank = a % banks;
                a /= banks;
                let row = a % rows;
                Location {
                    channel: ChannelId(0),
                    rank: RankId((d % ranks) as u8),
                    bank: BankId(bank as u8),
                    row: RowId(row as u32),
                    col: ColId(col as u16),
                }
            }
            PartitionPolicy::BankStriped => {
                // col (low), rank, row (high); bank fixed to the domain.
                let mut a = local.0 % (cols * ranks * rows);
                let col = a % cols;
                a /= cols;
                let rank = a % ranks;
                a /= ranks;
                let row = a % rows;
                Location {
                    channel: ChannelId(0),
                    rank: RankId(rank as u8),
                    bank: BankId((d % banks) as u8),
                    row: RowId(row as u32),
                    col: ColId(col as u16),
                }
            }
            PartitionPolicy::None => {
                // Shared banks: col (low), bank, rank, row (high), with the
                // row space offset per domain so working sets are disjoint
                // (the OS still gives each domain its own pages).
                let mut a = local.0 % (cols * banks * ranks * rows);
                let col = a % cols;
                a /= cols;
                let bank = a % banks;
                a /= banks;
                let rank = a % ranks;
                a /= ranks;
                let row = (a + d * (rows / 16).max(1)) % rows;
                Location {
                    channel: ChannelId(0),
                    rank: RankId(rank as u8),
                    bank: BankId(bank as u8),
                    row: RowId(row as u32),
                    col: ColId(col as u16),
                }
            }
        }
    }

    /// True if `loc` lies inside `domain`'s partition.
    pub fn owns(&self, geom: &Geometry, domain: DomainId, loc: &Location) -> bool {
        match self {
            PartitionPolicy::Rank => loc.rank.0 == domain.0 % geom.ranks_per_channel(),
            PartitionPolicy::BankStriped => loc.bank.0 == domain.0 % geom.banks_per_rank(),
            PartitionPolicy::None => true,
        }
    }

    /// The ranks a domain may touch under this policy.
    pub fn ranks_of(&self, geom: &Geometry, domain: DomainId) -> Vec<RankId> {
        match self {
            PartitionPolicy::Rank => vec![RankId(domain.0 % geom.ranks_per_channel())],
            _ => (0..geom.ranks_per_channel()).map(RankId).collect(),
        }
    }

    /// The banks (rank, bank) pairs a domain may touch.
    pub fn banks_of(&self, geom: &Geometry, domain: DomainId) -> Vec<(RankId, BankId)> {
        match self {
            PartitionPolicy::Rank => {
                let r = RankId(domain.0 % geom.ranks_per_channel());
                (0..geom.banks_per_rank()).map(|b| (r, BankId(b))).collect()
            }
            PartitionPolicy::BankStriped => {
                let b = BankId(domain.0 % geom.banks_per_rank());
                (0..geom.ranks_per_channel()).map(|r| (RankId(r), b)).collect()
            }
            PartitionPolicy::None => (0..geom.ranks_per_channel())
                .flat_map(|r| (0..geom.banks_per_rank()).map(move |b| (RankId(r), BankId(b))))
                .collect(),
        }
    }
}

/// Per-domain configuration: SLA issue slots and queue depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainConfig {
    pub id: DomainId,
    /// Issue slots this domain receives per FS interval (SLA). The paper's
    /// experiments use one slot per domain.
    pub slots_per_interval: u8,
    /// Transaction-queue capacity for this domain.
    pub queue_capacity: usize,
}

impl DomainConfig {
    /// The default equal-service configuration: one slot, 16-deep queue.
    pub fn equal_service(id: DomainId) -> Self {
        DomainConfig { id, slots_per_interval: 1, queue_capacity: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_partition_confines_domain_to_its_rank() {
        let g = Geometry::paper_default();
        let p = PartitionPolicy::Rank;
        for d in 0..8u8 {
            for a in [0u64, 1, 1000, 123_456] {
                let loc = p.map(&g, DomainId(d), LineAddr(a));
                assert_eq!(loc.rank.0, d);
                assert!(p.owns(&g, DomainId(d), &loc));
                assert!(g.contains(&loc));
            }
        }
    }

    #[test]
    fn bank_striped_confines_domain_to_its_bank_index() {
        let g = Geometry::paper_default();
        let p = PartitionPolicy::BankStriped;
        for d in 0..8u8 {
            let loc = p.map(&g, DomainId(d), LineAddr(999));
            assert_eq!(loc.bank.0, d);
            assert!(p.owns(&g, DomainId(d), &loc));
        }
        // Different domains never share a bank.
        let a = p.map(&g, DomainId(0), LineAddr(5));
        let b = p.map(&g, DomainId(1), LineAddr(5));
        assert_ne!(a.bank, b.bank);
    }

    #[test]
    fn locality_preserved_for_consecutive_lines() {
        let g = Geometry::paper_default();
        for p in [PartitionPolicy::Rank, PartitionPolicy::BankStriped, PartitionPolicy::None] {
            let l0 = p.map(&g, DomainId(3), LineAddr(0));
            let l1 = p.map(&g, DomainId(3), LineAddr(1));
            assert_eq!(l0.row, l1.row, "{p:?}");
            assert_eq!(l0.bank, l1.bank, "{p:?}");
            assert_eq!(l0.rank, l1.rank, "{p:?}");
        }
    }

    #[test]
    fn banks_of_counts() {
        let g = Geometry::paper_default();
        assert_eq!(PartitionPolicy::Rank.banks_of(&g, DomainId(2)).len(), 8);
        assert_eq!(PartitionPolicy::BankStriped.banks_of(&g, DomainId(2)).len(), 8);
        assert_eq!(PartitionPolicy::None.banks_of(&g, DomainId(2)).len(), 64);
    }

    #[test]
    fn none_partition_separates_working_sets_by_row() {
        let g = Geometry::paper_default();
        let p = PartitionPolicy::None;
        let a = p.map(&g, DomainId(0), LineAddr(0));
        let b = p.map(&g, DomainId(1), LineAddr(0));
        // Same bank (shared) but different rows.
        assert_eq!(a.bank, b.bank);
        assert_ne!(a.row, b.row);
    }
}
